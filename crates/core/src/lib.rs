//! Predictive resilience modeling: the core library of the
//! `predictive-resilience` workspace.
//!
//! This crate implements the contribution of *Predictive Resilience
//! Modeling* (Silva, Hermosillo Hidalgo, Linkov, Fiondella — 2022
//! Resilience Week): fitting parametric models to the degradation-and-
//! recovery curves of disrupted systems **before recovery completes**, so
//! that performance, recovery time, and interval-based resilience metrics
//! can be *predicted* rather than only scored retrospectively.
//!
//! # The two model families
//!
//! * [`bathtub`] — resilience curves shaped like bathtub hazard functions
//!   from reliability engineering: the [`bathtub::QuadraticModel`]
//!   (`P(t) = α + βt + γt²`, paper Eq. 1–3) and the
//!   [`bathtub::CompetingRisksModel`] (`P(t) = 2γt + α/(1+βt)`, the
//!   Hjorth-style competing-risks form, paper Eq. 4–6).
//! * [`mixture`] — mixtures `P(t) = a₁(t)(1−F₁(t)) + a₂(t)F₂(t)` (paper
//!   Eq. 7) with Exponential/Weibull components (and Gamma/LogNormal
//!   extensions) and recovery trends `a₂(t) ∈ {β, βt, e^{βt}, β·ln t}`.
//!
//! # Pipeline
//!
//! 1. [`fit`] — least-squares estimation (paper Eq. 8) via multi-start
//!    Nelder–Mead with optional Levenberg–Marquardt polish, in a
//!    transformed parameter space that enforces each family's validity
//!    constraints.
//! 2. [`validate`] — SSE, predictive MSE, adjusted R² (Eq. 9–11),
//!    confidence bands and empirical coverage (Eq. 12–13).
//! 3. [`metrics`] — the eight interval-based resilience metrics
//!    (Eq. 14–21) in both *actual* (observed curve) and *predicted*
//!    (fitted model) form, with relative errors (Eq. 22).
//! 4. [`analysis`] — one-call drivers that reproduce the paper's tables.
//! 5. [`runtime`] — supervised execution: deadlines and cancellation,
//!    retry-with-backoff for non-converged fits, panic isolation, and
//!    degraded-but-usable rankings when individual families fail.
//!
//! # Quickstart
//!
//! ```
//! use resilience_core::analysis::evaluate_model;
//! use resilience_core::bathtub::CompetingRisksFamily;
//! use resilience_data::recessions::Recession;
//!
//! let series = Recession::R1990_93.payroll_index();
//! // Fit on all but the last 5 months, predict the rest (paper Table I).
//! let eval = evaluate_model(&CompetingRisksFamily, &series, 5, 0.05)?;
//! assert!(eval.gof.r2_adj > 0.9, "U-shaped curves fit well");
//! # Ok::<(), resilience_core::CoreError>(())
//! ```

// `!(x > 0.0)`-style comparisons are used deliberately throughout this
// crate: unlike `x <= 0.0`, they also reject NaN, which is exactly the
// validation semantics parameter checks need.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
pub mod bathtub;
pub mod bootstrap;
pub mod chaos;
pub mod diagnostics;
pub mod error;
pub mod extended;
pub mod fit;
pub mod forecast;
pub mod guard;
pub mod metrics;
pub mod mixture;
pub mod model;
pub mod report;
pub mod runtime;
pub mod selection;
pub mod validate;

pub use error::CoreError;
pub use model::{ModelFamily, ResilienceModel};
