//! Residual diagnostics: is a fit statistically adequate, or merely the
//! best of a bad family?
//!
//! Adjusted R² (paper Eq. 11) measures variance explained, but a model
//! can score well while leaving *structured* residuals — the signature of
//! a family that cannot express the curve (the paper's W/L cases). This
//! module quantifies that structure: residual moments, lag-1
//! autocorrelation, a runs test, and a Kolmogorov–Smirnov distance
//! against the fitted normal, so users can distinguish "noisy but right"
//! from "precisely wrong".

use crate::model::ResilienceModel;
use crate::CoreError;
use resilience_data::PerformanceSeries;
use resilience_stats::describe;
use resilience_stats::{ContinuousDistribution, EmpiricalCdf, Normal};

/// Summary of a fit's residual structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualDiagnostics {
    /// Number of residuals.
    pub n: usize,
    /// Residual mean (should be ~0 for least squares with an intercept
    /// degree of freedom).
    pub mean: f64,
    /// Residual standard deviation.
    pub std_dev: f64,
    /// Lag-1 autocorrelation; |values| ≫ 2/√n indicate unmodeled
    /// structure.
    pub lag1_autocorrelation: f64,
    /// Kolmogorov–Smirnov distance between the residuals and
    /// `N(mean, std_dev²)`.
    pub ks_vs_normal: f64,
    /// Asymptotic p-value of `ks_vs_normal` (small values reject
    /// normality).
    pub ks_p_value: f64,
    /// Number of sign runs in the residual sequence.
    pub runs: usize,
    /// Expected number of runs under randomness, `2·n₊·n₋/n + 1`.
    pub expected_runs: f64,
}

impl ResidualDiagnostics {
    /// A coarse adequacy verdict: residuals look unstructured when the
    /// lag-1 autocorrelation is within `3/√n` and the observed runs are
    /// at least 60 % of the expected count.
    #[must_use]
    pub fn looks_unstructured(&self) -> bool {
        let acf_bound = 3.0 / (self.n as f64).sqrt();
        self.lag1_autocorrelation.abs() <= acf_bound
            && (self.runs as f64) >= 0.6 * self.expected_runs
    }
}

/// Computes [`ResidualDiagnostics`] for a fitted model against a series.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for fewer than 8 observations
/// or constant residuals (nothing to diagnose), and propagates
/// statistical errors.
pub fn residual_diagnostics(
    model: &dyn ResilienceModel,
    series: &PerformanceSeries,
) -> Result<ResidualDiagnostics, CoreError> {
    let residuals = model.residuals(series);
    let n = residuals.len();
    if n < 8 {
        return Err(CoreError::arg(
            "residual_diagnostics",
            format!("need at least 8 observations, got {n}"),
        ));
    }
    let mean = describe::mean(&residuals)?;
    let std_dev = describe::std_dev(&residuals)?;
    if std_dev == 0.0 {
        return Err(CoreError::arg(
            "residual_diagnostics",
            "residuals are constant",
        ));
    }
    let lag1 = describe::autocorrelation(&residuals, 1)?;
    let normal = Normal::new(mean, std_dev)?;
    let ks = EmpiricalCdf::new(residuals.clone())?.ks_statistic(|x| normal.cdf(x));
    let ks_p = resilience_stats::inference::ks_p_value(ks.min(1.0), n)?;
    // Runs test: count sign runs around zero (ties attach to the previous
    // sign).
    let mut runs = 0usize;
    let mut n_pos = 0usize;
    let mut n_neg = 0usize;
    let mut prev_sign = 0i8;
    for &r in &residuals {
        let sign = if r > 0.0 {
            1i8
        } else if r < 0.0 {
            -1i8
        } else {
            prev_sign
        };
        if sign > 0 {
            n_pos += 1;
        } else if sign < 0 {
            n_neg += 1;
        }
        if sign != prev_sign && sign != 0 {
            runs += 1;
            prev_sign = sign;
        }
    }
    let expected_runs = if n_pos + n_neg > 0 {
        2.0 * n_pos as f64 * n_neg as f64 / (n_pos + n_neg) as f64 + 1.0
    } else {
        1.0
    };
    Ok(ResidualDiagnostics {
        n,
        mean,
        std_dev,
        lag1_autocorrelation: lag1,
        ks_vs_normal: ks,
        ks_p_value: ks_p,
        runs,
        expected_runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bathtub::QuadraticModel;

    fn truth() -> QuadraticModel {
        QuadraticModel::new(1.0, -0.012, 0.0004).unwrap()
    }

    fn noisy_series(n: usize, amp: f64) -> PerformanceSeries {
        // Deterministic pseudo-noise that is sign-alternating enough to
        // look unstructured.
        let m = truth();
        let mut w = 0.37_f64;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                w = (w * 131.0).fract();
                m.predict(i as f64) + amp * (w - 0.5)
            })
            .collect();
        PerformanceSeries::monthly("noisy", values).unwrap()
    }

    #[test]
    fn good_fit_has_unstructured_residuals() {
        let s = noisy_series(48, 0.004);
        let d = residual_diagnostics(&truth(), &s).unwrap();
        assert!(d.mean.abs() < 0.002);
        assert!(d.std_dev > 0.0);
        assert!(
            d.looks_unstructured(),
            "true-model residuals should look random: {d:?}"
        );
    }

    #[test]
    fn wrong_family_leaves_structured_residuals() {
        // A flat model on the curved data: residuals trace the curve, so
        // lag-1 autocorrelation is large and runs are few.
        struct Flat;
        impl ResilienceModel for Flat {
            fn name(&self) -> &'static str {
                "Flat"
            }
            fn params(&self) -> Vec<f64> {
                vec![0.95]
            }
            fn predict(&self, _: f64) -> f64 {
                0.95
            }
        }
        let s = noisy_series(48, 0.001);
        let d = residual_diagnostics(&Flat, &s).unwrap();
        assert!(d.lag1_autocorrelation > 0.8, "{d:?}");
        assert!(!d.looks_unstructured());
    }

    #[test]
    fn w_shape_misfit_is_detected() {
        // The paper's 1980 story, retold by diagnostics: a single-episode
        // fit to the W curve leaves wavy residuals.
        let series = resilience_data::recessions::Recession::R1980.payroll_index();
        let fit = crate::fit::fit_least_squares(
            &crate::bathtub::CompetingRisksFamily,
            &series,
            &crate::fit::FitConfig::default(),
        )
        .unwrap();
        let d = residual_diagnostics(fit.model.as_ref(), &series).unwrap();
        assert!(
            !d.looks_unstructured(),
            "W-shape misfit must show structure: {d:?}"
        );
    }

    #[test]
    fn validates_input() {
        let s = PerformanceSeries::monthly("short", vec![1.0; 4]).unwrap();
        assert!(residual_diagnostics(&truth(), &s).is_err());
    }

    #[test]
    fn runs_counted_correctly_on_alternating_signs() {
        // Residuals alternate each step: runs ≈ n.
        struct Zero;
        impl ResilienceModel for Zero {
            fn name(&self) -> &'static str {
                "Zero"
            }
            fn params(&self) -> Vec<f64> {
                vec![0.0]
            }
            fn predict(&self, _: f64) -> f64 {
                0.0
            }
        }
        let values: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let s = PerformanceSeries::monthly("alt", values).unwrap();
        let d = residual_diagnostics(&Zero, &s).unwrap();
        assert_eq!(d.runs, 20);
        assert!(d.lag1_autocorrelation < -0.8);
    }
}
