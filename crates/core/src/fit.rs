//! Least-squares model fitting (paper Eq. 8).
//!
//! The pipeline minimizes `Σᵢ (R(tᵢ) − P(tᵢ; θ))²` over each family's
//! feasible parameter set. Because the SSE surfaces are nonconvex
//! (especially for mixtures), fitting runs multi-start Nelder–Mead from
//! the family's data-driven guesses in the *internal* (unconstrained)
//! space, then optionally polishes the winner with Levenberg–Marquardt.

use crate::guard::{self, Violation};
use crate::model::{ModelFamily, ResilienceModel};
use crate::CoreError;
use resilience_data::PerformanceSeries;
use resilience_math::linalg::Matrix;
use resilience_math::sum::sum_squared_diff;
use resilience_obs::{Event, HistogramId};
use resilience_optim::levenberg_marquardt::{LevenbergMarquardt, LmConfig};
use resilience_optim::multi_start::multi_start_nelder_mead_with_control;
use resilience_optim::nelder_mead::{NelderMead, NelderMeadConfig};
use resilience_optim::problem::LeastSquares;
use resilience_optim::report::{OptimReport, TerminationReason};
use resilience_optim::{Control, Objective, OptimError, Parallelism};
use std::cell::RefCell;

/// Default evaluation budget under which a converged warm-start probe
/// short-circuits the cold multi-start phase (see [`WarmStart`]).
pub const DEFAULT_WARM_EVAL_BUDGET: usize = 600;

/// Warm-start seeding for [`fit_least_squares`].
///
/// When present in [`FitConfig::warm_start`], the fit first runs a single
/// Nelder–Mead probe seeded from `params` (typically a previous point-fit
/// optimum — bootstrap replicates and runtime retries resample *around*
/// the same basin, so the old optimum is almost always in it). A probe
/// that converges within `max_evaluations` objective evaluations
/// short-circuits the cold multi-start entirely; otherwise the cold phase
/// runs as usual and the better of the two results wins, with the warm
/// result keeping ties (it is conceptually start 0).
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// External (feasible) parameters to seed from.
    pub params: Vec<f64>,
    /// Evaluation budget for the short-circuit test.
    pub max_evaluations: usize,
}

impl WarmStart {
    /// Warm start from `params` with [`DEFAULT_WARM_EVAL_BUDGET`].
    #[must_use]
    pub fn new(params: Vec<f64>) -> Self {
        WarmStart {
            params,
            max_evaluations: DEFAULT_WARM_EVAL_BUDGET,
        }
    }
}

/// Configuration for [`fit_least_squares`].
#[derive(Debug, Clone)]
pub struct FitConfig {
    /// Nelder–Mead settings for the multi-start phase.
    pub nelder_mead: NelderMeadConfig,
    /// Whether to polish the multi-start winner with Levenberg–Marquardt.
    pub lm_polish: bool,
    /// Levenberg–Marquardt settings for the polish phase.
    pub lm: LmConfig,
    /// Cap on the number of starting points taken from
    /// [`ModelFamily::initial_guesses`].
    pub max_starts: usize,
    /// Thread fan-out for the multi-start phase. Every setting produces
    /// bit-identical results; see `DESIGN.md` §Performance & determinism.
    pub parallelism: Parallelism,
    /// Optional warm start (previous optimum); see [`WarmStart`].
    pub warm_start: Option<WarmStart>,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            // Basin-finding tolerances: Nelder–Mead only needs to land in
            // the right basin, because the Levenberg–Marquardt polish
            // (analytic Jacobians, DESIGN.md §11) drives the winner to
            // machine-precision optimality far faster than simplex
            // contraction would. Tightening these back to {1e-13, 1e-9}
            // reproduces the pre-§11 fits but costs ~2.5x the wall clock
            // for SSE changes below 1e-10.
            // The iteration cap only binds for the 5–6 parameter extended
            // families (the paper's 3-parameter families converge by
            // tolerance near ~150 iterations); those families scale it
            // via [`ModelFamily::nm_iteration_scale`] — 600×2 covers the
            // ~1000 iterations a double-episode fit needs to settle.
            nelder_mead: NelderMeadConfig {
                max_iterations: 600,
                f_tol: 1e-7,
                x_tol: 1e-5,
                ..NelderMeadConfig::default()
            },
            lm_polish: true,
            lm: LmConfig::default(),
            max_starts: 24,
            parallelism: Parallelism::Auto,
            warm_start: None,
        }
    }
}

/// A fitted resilience model together with fit diagnostics.
pub struct FittedModel {
    /// The fitted model.
    pub model: Box<dyn ResilienceModel>,
    /// External (feasible) parameters.
    pub params: Vec<f64>,
    /// Sum of squared errors on the fitting data (paper Eq. 9).
    pub sse: f64,
    /// Number of objective evaluations consumed across all starts.
    pub evaluations: usize,
    /// Whether the winning Nelder–Mead run *or* the Levenberg–Marquardt
    /// polish terminated by convergence (rather than hitting an iteration
    /// budget). The default Nelder–Mead tolerances are basin-finding
    /// loose, so the polish converging is the usual certificate. A
    /// non-converged fit is still usable — it is the best point found —
    /// but it is what [`crate::runtime::RetryPolicy`] retries with
    /// jittered starts.
    pub converged: bool,
}

impl std::fmt::Debug for FittedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FittedModel")
            .field("name", &self.model.name())
            .field("params", &self.params)
            .field("sse", &self.sse)
            .field("evaluations", &self.evaluations)
            .field("converged", &self.converged)
            .finish()
    }
}

/// The SSE objective over a family's internal space, with reusable
/// scratch so one evaluation allocates nothing. Implements the optimizer
/// [`Objective`] trait: scalar evaluation for the simplex updates, and a
/// batched evaluation that routes whole simplexes / DE populations through
/// the family's single-pass [`ModelFamily::sse_batch_into`] kernel when it
/// has one (bit-identical to the scalar path by that method's contract).
struct SseObjective<'a> {
    family: &'a dyn ModelFamily,
    times: &'a [f64],
    observed: &'a [f64],
    scratch: RefCell<(Vec<f64>, Vec<f64>)>,
}

impl<'a> SseObjective<'a> {
    fn new(family: &'a dyn ModelFamily, times: &'a [f64], observed: &'a [f64]) -> Self {
        SseObjective {
            family,
            times,
            observed,
            scratch: RefCell::new((vec![0.0; family.n_params()], vec![0.0; times.len()])),
        }
    }
}

impl Objective for SseObjective<'_> {
    fn eval(&self, internal: &[f64]) -> f64 {
        let mut guard = self.scratch.borrow_mut();
        let (params, predicted) = &mut *guard;
        self.family.internal_to_params_into(internal, params);
        if !self
            .family
            .predict_params_into(params, self.times, predicted)
        {
            return f64::INFINITY;
        }
        if predicted.iter().any(|v| !v.is_finite()) {
            return f64::INFINITY;
        }
        sum_squared_diff(self.observed, predicted)
    }

    fn eval_batch(&self, points: &[f64], n_dims: usize, out: &mut [f64]) {
        assert_eq!(
            points.len(),
            n_dims * out.len(),
            "eval_batch requires points.len() == n_dims * out.len()"
        );
        debug_assert_eq!(n_dims, self.family.n_params());
        if !self
            .family
            .sse_batch_into(points, self.times, self.observed, out)
        {
            for (o, x) in out.iter_mut().zip(points.chunks_exact(n_dims)) {
                *o = self.eval(x);
            }
        }
    }
}

/// The least-squares residual problem `r_i = y_i − P(t_i; θ(u))` over the
/// internal space, for the Levenberg–Marquardt polish. Forwards the
/// family's analytic Jacobian (negated, per the residual sign) when it
/// has one.
struct FamilyResiduals<'a> {
    family: &'a dyn ModelFamily,
    times: &'a [f64],
    observed: &'a [f64],
    params_scratch: RefCell<Vec<f64>>,
}

impl LeastSquares for FamilyResiduals<'_> {
    fn n_params(&self) -> usize {
        self.family.n_params()
    }

    fn n_residuals(&self) -> usize {
        self.observed.len()
    }

    fn residuals(&self, internal: &[f64], out: &mut [f64]) {
        // Predictions are written straight into the residual buffer, then
        // flipped in place, so LM's residual sweeps allocate nothing.
        let params = &mut *self.params_scratch.borrow_mut();
        self.family.internal_to_params_into(internal, params);
        if self.family.predict_params_into(params, self.times, out) {
            for (r, &y) in out.iter_mut().zip(self.observed) {
                *r = y - *r;
            }
        } else {
            out.fill(f64::NAN);
        }
    }

    fn jacobian_into(&self, internal: &[f64], out: &mut Matrix) -> Option<()> {
        let params = &mut *self.params_scratch.borrow_mut();
        self.family.internal_to_params_into(internal, params);
        if !self
            .family
            .predict_jacobian_into(internal, params, self.times, out)
        {
            return None;
        }
        // The family writes ∂P/∂u; residuals are y − P, so J = −∂P/∂u.
        for i in 0..out.rows() {
            for j in 0..out.cols() {
                out[(i, j)] = -out[(i, j)];
            }
        }
        Some(())
    }
}

/// Fits `family` to `series` by least squares (paper Eq. 8).
///
/// # Errors
///
/// * [`CoreError::Fit`] when every start fails (e.g. the family cannot
///   represent any curve near the data).
/// * [`CoreError::Numerical`] when the winning SSE or parameters are
///   non-finite (guard layer; should not happen since the objective maps
///   infeasible points to +∞, defensive).
/// * [`CoreError::InvalidParameters`] when the winning parameters fail to
///   rebuild (should not happen; defensive).
///
/// # Examples
///
/// ```
/// use resilience_core::bathtub::QuadraticFamily;
/// use resilience_core::fit::{fit_least_squares, FitConfig};
/// use resilience_data::PerformanceSeries;
///
/// // Noiseless quadratic data is recovered exactly.
/// let values: Vec<f64> = (0..40)
///     .map(|i| {
///         let t = i as f64;
///         1.0 - 0.012 * t + 0.0004 * t * t
///     })
///     .collect();
/// let series = PerformanceSeries::monthly("demo", values)?;
/// let fit = fit_least_squares(&QuadraticFamily, &series, &FitConfig::default())?;
/// assert!(fit.sse < 1e-10);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fit_least_squares(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    config: &FitConfig,
) -> Result<FittedModel, CoreError> {
    fit_least_squares_with(family, series, config, &Control::unbounded())
}

/// [`fit_least_squares`] under an execution [`Control`] (deadline and/or
/// cancellation token).
///
/// Every solver in the multi-start phase polls the control between
/// iterations, so a fit whose objective loops forever at the iteration
/// level — or simply takes too long — returns [`CoreError::TimedOut`] /
/// [`CoreError::Cancelled`] instead of hanging the caller. A stop during
/// the optional Levenberg–Marquardt polish is *not* an error: the
/// multi-start winner is already a valid fit, so the polish is skipped
/// and that winner is returned.
///
/// # Errors
///
/// Everything [`fit_least_squares`] returns, plus [`CoreError::TimedOut`]
/// and [`CoreError::Cancelled`] when the control stops the multi-start
/// phase.
pub fn fit_least_squares_with(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    config: &FitConfig,
    control: &Control,
) -> Result<FittedModel, CoreError> {
    let observed = series.values();
    let times = series.times();
    let n_params = family.n_params();

    // SSE objective over the internal space; infeasible parameters map to
    // +∞ so the simplex contracts away from them. Each instance owns
    // scratch buffers (zero heap allocations per evaluation); the factory
    // hands every worker thread of the multi-start phase its own instance.
    let make_objective = || SseObjective::new(family, times, observed);

    // Families whose landscapes need longer simplex walks scale the
    // configured iteration cap (see [`ModelFamily::nm_iteration_scale`]);
    // for the paper families the factor is 1 and this is `config`'s cap
    // unchanged. Applies to the warm probe and the cold phase alike.
    let nm_config = NelderMeadConfig {
        max_iterations: config
            .nelder_mead
            .max_iterations
            .saturating_mul(family.nm_iteration_scale()),
        ..config.nelder_mead.clone()
    };

    let traced = control.observed();
    let map_stop = |e: OptimError| match e {
        OptimError::TimedOut { .. } => CoreError::timed_out("fit_least_squares"),
        OptimError::Cancelled { .. } => CoreError::cancelled("fit_least_squares"),
        other => CoreError::Fit(other),
    };

    // Warm-start probe: one serial Nelder–Mead run seeded from the
    // provided optimum. Seeded this close, it usually converges in a
    // fraction of the cold phase's budget and short-circuits it entirely
    // (see [`WarmStart`]). A probe that fails to convert or start is not
    // an error — the cold phase below covers for it — but a deadline or
    // cancellation stop propagates like any other.
    let mut warm_report: Option<OptimReport> = None;
    let mut fit_started_emitted = false;
    let mut short_circuit = false;
    if let Some(warm) = &config.warm_start {
        if let Ok(internal) = family.params_to_internal(&warm.params) {
            if traced {
                control.emit(Event::FitStarted {
                    family: family.name(),
                    starts: 1,
                });
                fit_started_emitted = true;
            }
            let objective = make_objective();
            match NelderMead::new(nm_config.clone())
                .minimize_with_control(&objective, &internal, control)
            {
                Ok(report) => {
                    short_circuit = report.termination == TerminationReason::Converged
                        && report.evaluations <= warm.max_evaluations;
                    warm_report = Some(report);
                }
                Err(e) if e.is_stop() => return Err(map_stop(e)),
                Err(_) => {}
            }
        }
    }

    let cold = if short_circuit {
        None
    } else {
        // Collect internal starting points from the family's guesses.
        let starts: Vec<Vec<f64>> = family
            .initial_guesses(series)
            .into_iter()
            .filter_map(|g| family.params_to_internal(&g).ok())
            .take(config.max_starts)
            .collect();
        if starts.is_empty() && warm_report.is_none() {
            return Err(CoreError::Fit(
                resilience_optim::OptimError::AllStartsFailed { attempts: 0 },
            ));
        }
        if traced && !fit_started_emitted {
            control.emit(Event::FitStarted {
                family: family.name(),
                starts: starts.len() as u32,
            });
        }
        if starts.is_empty() {
            None
        } else {
            match multi_start_nelder_mead_with_control(
                &make_objective,
                &starts,
                &nm_config,
                config.parallelism,
                control,
            ) {
                Ok(report) => Some(report),
                Err(e) if e.is_stop() => return Err(map_stop(e)),
                // Every cold start failed: fatal only without a warm fit.
                Err(e) => match warm_report {
                    Some(_) => None,
                    None => return Err(map_stop(e)),
                },
            }
        }
    };

    // Reduce: the warm result is conceptually start 0, so it wins ties
    // (same strict `<` rule as the multi-start driver).
    let best = match (warm_report, cold) {
        (Some(w), Some(c)) => {
            if c.value < w.value {
                c
            } else {
                w
            }
        }
        (Some(w), None) => w,
        (None, Some(c)) => c,
        (None, None) => unreachable!("guarded by the empty-starts check above"),
    };
    let nm_converged = best.termination == TerminationReason::Converged;
    let mut lm_converged = false;
    let mut best_internal = best.params;
    let mut best_sse = best.value;
    let mut evaluations = best.evaluations;

    if config.lm_polish {
        // The residual problem carries the family's analytic Jacobian when
        // it has one (all six paper families; DESIGN.md §11), so LM skips
        // its finite-difference sweeps; reusable scratch keeps the polish
        // allocation-free per iteration either way.
        let problem = FamilyResiduals {
            family,
            times,
            observed,
            params_scratch: RefCell::new(vec![0.0; n_params]),
        };
        // A failed or stopped polish is not a fit failure: the multi-start
        // winner above is already a complete answer, so `Err` here (LM
        // divergence, deadline, cancellation) just skips the refinement.
        if let Ok(report) = LevenbergMarquardt::new(config.lm.clone()).minimize_with_control(
            &problem,
            &best_internal,
            control,
        ) {
            evaluations += report.evaluations;
            lm_converged = report.termination == TerminationReason::Converged;
            if report.value < best_sse {
                best_sse = report.value;
                best_internal = report.params;
            }
        }
    }
    let converged = nm_converged || lm_converged;

    // Guard layer (DESIGN.md §8): the optimizer can only hand back a
    // finite SSE because the objective maps off-domain points to +∞, but
    // a regression anywhere in that chain would otherwise leak NaN into
    // every downstream table. Fail loudly instead.
    if !best_sse.is_finite() {
        return Err(CoreError::guard(
            "fit_least_squares",
            Violation::NonFiniteOutput,
            format!("final SSE for {} is {best_sse}", family.name()),
        ));
    }
    let params = family.internal_to_params(&best_internal);
    guard::finite_outputs(family.name(), &params)?;
    let model = family.build(&params)?;
    if traced {
        // The fit span closes here; `evaluations` is the winning start
        // plus polish (counter events above carry the per-start totals).
        control.emit(Event::FitFinished {
            family: family.name(),
            sse: best_sse,
            evaluations: evaluations as u64,
            converged,
        });
        control.emit(Event::Hist {
            id: HistogramId::EvalsPerFit,
            value: evaluations as u64,
        });
    }
    Ok(FittedModel {
        model,
        params,
        sse: best_sse,
        evaluations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bathtub::{CompetingRisksFamily, QuadraticFamily};
    use crate::mixture::MixtureFamily;

    fn quadratic_series(noise: f64) -> PerformanceSeries {
        let mut wiggle = 0.41_f64;
        let values: Vec<f64> = (0..48)
            .map(|i| {
                let t = i as f64;
                wiggle = (wiggle * 137.0).fract();
                1.0 - 0.012 * t + 0.0004 * t * t + noise * (wiggle - 0.5)
            })
            .collect();
        PerformanceSeries::monthly("quad", values).unwrap()
    }

    #[test]
    fn quadratic_family_recovers_exact_parameters() {
        let s = quadratic_series(0.0);
        let fit = fit_least_squares(&QuadraticFamily, &s, &FitConfig::default()).unwrap();
        assert!(fit.sse < 1e-12, "sse = {}", fit.sse);
        assert!((fit.params[0] - 1.0).abs() < 1e-4);
        assert!((fit.params[1] + 0.012).abs() < 1e-5);
        assert!((fit.params[2] - 0.0004).abs() < 1e-6);
    }

    #[test]
    fn quadratic_family_fits_noisy_data() {
        let s = quadratic_series(0.002);
        let fit = fit_least_squares(&QuadraticFamily, &s, &FitConfig::default()).unwrap();
        // SSE should be on the order of n·(noise/2)²·(1/3) ≈ 1e-5.
        assert!(fit.sse < 1e-4, "sse = {}", fit.sse);
        assert!((fit.params[1] + 0.012).abs() < 2e-3);
    }

    #[test]
    fn competing_risks_recovers_exact_parameters() {
        let truth = crate::bathtub::CompetingRisksModel::new(1.0, 0.2, 0.0008).unwrap();
        use crate::model::ResilienceModel;
        let values: Vec<f64> = (0..48).map(|i| truth.predict(i as f64)).collect();
        let s = PerformanceSeries::monthly("cr", values).unwrap();
        let fit = fit_least_squares(&CompetingRisksFamily, &s, &FitConfig::default()).unwrap();
        assert!(fit.sse < 1e-10, "sse = {}", fit.sse);
        assert!((fit.params[0] - 1.0).abs() < 1e-3, "{:?}", fit.params);
        assert!((fit.params[1] - 0.2).abs() < 0.05, "{:?}", fit.params);
    }

    #[test]
    fn mixture_fits_recession_data_well() {
        let s = resilience_data::recessions::Recession::R1990_93.payroll_index();
        let fam = &MixtureFamily::paper_combinations()[1]; // Wei-Exp
        let fit = fit_least_squares(fam, &s, &FitConfig::default()).unwrap();
        // 48 points spanning a 2% dip: a good fit is SSE ≲ 1e-3.
        assert!(fit.sse < 5e-3, "sse = {}", fit.sse);
        assert_eq!(fit.model.name(), "Wei-Exp");
    }

    #[test]
    fn fit_is_deterministic() {
        let s = quadratic_series(0.002);
        let a = fit_least_squares(&QuadraticFamily, &s, &FitConfig::default()).unwrap();
        let b = fit_least_squares(&QuadraticFamily, &s, &FitConfig::default()).unwrap();
        assert_eq!(a.params, b.params);
        assert_eq!(a.sse, b.sse);
    }

    #[test]
    fn fit_parallelism_is_bit_identical() {
        let s = quadratic_series(0.002);
        let serial = fit_least_squares(
            &QuadraticFamily,
            &s,
            &FitConfig {
                parallelism: Parallelism::Serial,
                ..FitConfig::default()
            },
        )
        .unwrap();
        for p in [
            Parallelism::Fixed(1),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let fit = fit_least_squares(
                &QuadraticFamily,
                &s,
                &FitConfig {
                    parallelism: p,
                    ..FitConfig::default()
                },
            )
            .unwrap();
            assert_eq!(fit.params, serial.params, "{p:?}");
            assert_eq!(fit.sse, serial.sse, "{p:?}");
            assert_eq!(fit.evaluations, serial.evaluations, "{p:?}");
        }
    }

    #[test]
    fn lm_polish_never_hurts() {
        let s = quadratic_series(0.002);
        let with = fit_least_squares(
            &QuadraticFamily,
            &s,
            &FitConfig {
                lm_polish: true,
                ..FitConfig::default()
            },
        )
        .unwrap();
        let without = fit_least_squares(
            &QuadraticFamily,
            &s,
            &FitConfig {
                lm_polish: false,
                ..FitConfig::default()
            },
        )
        .unwrap();
        assert!(with.sse <= without.sse + 1e-15);
    }

    #[test]
    fn debug_impl_mentions_name() {
        let s = quadratic_series(0.0);
        let fit = fit_least_squares(&QuadraticFamily, &s, &FitConfig::default()).unwrap();
        let dbg = format!("{fit:?}");
        assert!(dbg.contains("Quadratic"));
        assert!(dbg.contains("converged"));
    }

    #[test]
    fn expired_deadline_is_a_typed_timeout() {
        let s = quadratic_series(0.002);
        let err = fit_least_squares_with(
            &QuadraticFamily,
            &s,
            &FitConfig::default(),
            &Control::with_deadline(std::time::Duration::ZERO),
        )
        .unwrap_err();
        assert!(
            matches!(err, CoreError::TimedOut { what } if what == "fit_least_squares"),
            "{err}"
        );
    }

    #[test]
    fn cancellation_is_a_typed_cancel() {
        let token = resilience_optim::CancelToken::new();
        token.cancel();
        let s = quadratic_series(0.002);
        let err = fit_least_squares_with(
            &QuadraticFamily,
            &s,
            &FitConfig::default(),
            &Control::with_token(&token),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Cancelled { .. }), "{err}");
    }

    #[test]
    fn unbounded_control_is_bit_identical_to_plain_fit() {
        let s = quadratic_series(0.002);
        let plain = fit_least_squares(&QuadraticFamily, &s, &FitConfig::default()).unwrap();
        let controlled = fit_least_squares_with(
            &QuadraticFamily,
            &s,
            &FitConfig::default(),
            &Control::unbounded(),
        )
        .unwrap();
        assert_eq!(plain.params, controlled.params);
        assert_eq!(plain.sse, controlled.sse);
        assert_eq!(plain.evaluations, controlled.evaluations);
        assert!(plain.converged);
    }
}
