//! Interval-based resilience metrics (paper §IV, Eq. 14–22).
//!
//! Eight metrics from the resilience literature, each computable in two
//! ways:
//!
//! * **actual** — from the observed curve (piecewise-linear trapezoid
//!   integration of the data), and
//! * **predicted** — from a fitted [`ResilienceModel`] (closed-form areas
//!   where the family provides them, adaptive quadrature otherwise).
//!
//! The *predictive protocol* of the paper's §IV replaces the hazard time
//! `t_h` with the boundary of the training window and `t_r` with the last
//! observation, so the metrics quantify the model's forecast over the
//! held-out horizon; [`MetricContext::predictive`] constructs exactly
//! that configuration. Note: the paper's own Table II mixes interval
//! conventions (its integral spans ℓ months while its rectangle terms
//! span ℓ−1); this implementation is internally consistent — all terms
//! use the same window — which EXPERIMENTS.md documents.

use crate::guard;
use crate::model::ResilienceModel;
use crate::CoreError;
use resilience_data::{PerformanceSeries, TrainTestSplit};

/// The eight interval-based metrics of the paper's §IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Eq. 14 — area under the curve over the window (Bruneau &
    /// Reinhorn).
    PerformancePreserved,
    /// Eq. 16 — area *above* the curve relative to nominal (Yang &
    /// Frangopol). Negative when the system out-performs nominal.
    PerformanceLost,
    /// Eq. 15 — area under the curve over nominal area (Ouyang &
    /// Dueñas-Osorio).
    NormalizedAveragePreserved,
    /// Eq. 17 — area above the curve over nominal area (Zhou et al.).
    NormalizedAverageLost,
    /// Eq. 18 — performance preserved from the minimum to recovery,
    /// minus the rectangle below the minimum (Zobel).
    PreservedFromMinimum,
    /// Eq. 19 — average performance preserved (Reed et al.).
    AveragePreserved,
    /// Eq. 20 — average performance lost (Reed et al.).
    AverageLost,
    /// Eq. 21 — weighted average of performance preserved before and
    /// after the minimum (Cimellaro et al.), weight `α`.
    WeightedBeforeAfterMinimum,
}

impl MetricKind {
    /// All eight metrics in the paper's table order.
    pub const ALL: [MetricKind; 8] = [
        MetricKind::PerformancePreserved,
        MetricKind::PerformanceLost,
        MetricKind::NormalizedAveragePreserved,
        MetricKind::NormalizedAverageLost,
        MetricKind::PreservedFromMinimum,
        MetricKind::AveragePreserved,
        MetricKind::AverageLost,
        MetricKind::WeightedBeforeAfterMinimum,
    ];

    /// Row label matching the paper's Tables II and IV.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            MetricKind::PerformancePreserved => "Performance preserved",
            MetricKind::PerformanceLost => "Performance lost",
            MetricKind::NormalizedAveragePreserved => "Normalized average performance preserved",
            MetricKind::NormalizedAverageLost => "Normalized average performance lost",
            MetricKind::PreservedFromMinimum => "Performance preserved from the minimum",
            MetricKind::AveragePreserved => "Average performance preserved",
            MetricKind::AverageLost => "Average performance lost",
            MetricKind::WeightedBeforeAfterMinimum => {
                "Average performance preserved before/after minimum"
            }
        }
    }
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The window and reference quantities a metric evaluation needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricContext {
    /// Window start — the paper's `t_h` (or `t_{n−ℓ}` in predictive
    /// mode).
    pub t_start: f64,
    /// Window end — the paper's `t_r` (last observation in predictive
    /// mode).
    pub t_end: f64,
    /// Nominal performance `P(t_h)` used by the "lost" metrics.
    pub nominal: f64,
    /// Time of minimum performance `t_d` (used by Eq. 18 and Eq. 21).
    pub t_min: f64,
    /// Start of the *full* interval, used by Eq. 21's first term.
    pub t_full_start: f64,
    /// The user weight `α ∈ (0, 1)` of Eq. 21.
    pub weight: f64,
}

impl MetricContext {
    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for a degenerate window, a
    /// minimum outside `[t_full_start, t_end]`, or a weight outside
    /// `(0, 1)`.
    pub fn validated(self) -> Result<Self, CoreError> {
        if !(self.t_start < self.t_end) {
            return Err(CoreError::arg(
                "MetricContext",
                format!(
                    "need t_start < t_end, got [{}, {}]",
                    self.t_start, self.t_end
                ),
            ));
        }
        if !(self.t_full_start <= self.t_min && self.t_min < self.t_end) {
            return Err(CoreError::arg(
                "MetricContext",
                format!(
                    "need t_full_start <= t_min < t_end, got {} / {} / {}",
                    self.t_full_start, self.t_min, self.t_end
                ),
            ));
        }
        if !(self.weight > 0.0 && self.weight < 1.0) {
            return Err(CoreError::arg(
                "MetricContext",
                format!("weight must be in (0, 1), got {}", self.weight),
            ));
        }
        Ok(self)
    }

    /// Builds the paper's predictive-mode context from a train/test
    /// split (§IV): the window runs from the end of the training data to
    /// the last observation; `t_d` is taken from the observed data when
    /// the minimum has already been observed, otherwise from the model's
    /// predicted trough.
    ///
    /// # Errors
    ///
    /// Propagates validation failures; returns
    /// [`CoreError::InvalidArgument`] for an empty split.
    pub fn predictive(
        split: &TrainTestSplit,
        full: &PerformanceSeries,
        model: &dyn ResilienceModel,
        weight: f64,
    ) -> Result<Self, CoreError> {
        let train = &split.train;
        let t_start = train.times()[train.len() - 1];
        let t_end = full.times()[full.len() - 1];
        let t_full_start = full.times()[0];
        let nominal = train.values()[train.len() - 1];
        // Has the minimum been observed in the training window? The paper
        // uses the observed minimum when available, otherwise the model's
        // predicted trough.
        let (t_min_obs, _) = train.trough().ok_or_else(|| {
            CoreError::arg("MetricContext::predictive", "training series is empty")
        })?;
        let interior = t_min_obs > t_full_start && t_min_obs < t_start;
        let t_min = if interior {
            t_min_obs
        } else {
            // Clamp the model's trough strictly inside the full interval
            // so every metric window stays non-degenerate.
            let eps = 1e-6 * (t_end - t_full_start);
            model
                .trough_time(t_full_start, t_end)?
                .clamp(t_full_start + eps, t_end - eps)
        };
        MetricContext {
            t_start,
            t_end,
            nominal,
            t_min,
            t_full_start,
            weight,
        }
        .validated()
    }
}

/// Exact integral of the piecewise-linear observed curve over `[a, b]`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] when `[a, b]` is degenerate or
/// extends beyond the observed range.
pub fn integrate_series(series: &PerformanceSeries, a: f64, b: f64) -> Result<f64, CoreError> {
    let times = series.times();
    let first = times[0];
    let last = times[times.len() - 1];
    if !(a < b) {
        return Err(CoreError::arg(
            "integrate_series",
            format!("need a < b, got [{a}, {b}]"),
        ));
    }
    if a < first - 1e-9 || b > last + 1e-9 {
        return Err(CoreError::arg(
            "integrate_series",
            format!("window [{a}, {b}] outside observed range [{first}, {last}]"),
        ));
    }
    let values = series.values();
    let mut total = 0.0;
    for i in 1..times.len() {
        let (t0, t1) = (times[i - 1], times[i]);
        let lo = t0.max(a);
        let hi = t1.min(b);
        if hi <= lo {
            continue;
        }
        // Linear segment: interpolate endpoint values.
        let f = |t: f64| values[i - 1] + (values[i] - values[i - 1]) * (t - t0) / (t1 - t0);
        total += 0.5 * (f(lo) + f(hi)) * (hi - lo);
    }
    Ok(total)
}

/// A source of curve values/areas so actual and predicted metrics share
/// one implementation.
enum Curve<'a> {
    Observed(&'a PerformanceSeries),
    Model(&'a dyn ResilienceModel),
}

impl Curve<'_> {
    fn area(&self, a: f64, b: f64) -> Result<f64, CoreError> {
        match self {
            Curve::Observed(s) => integrate_series(s, a, b),
            Curve::Model(m) => m.area(a, b),
        }
    }

    fn value(&self, t: f64) -> Result<f64, CoreError> {
        match self {
            Curve::Observed(s) => Ok(s.value_at(t)?),
            Curve::Model(m) => Ok(m.predict(t)),
        }
    }
}

fn compute(curve: &Curve<'_>, kind: MetricKind, ctx: &MetricContext) -> Result<f64, CoreError> {
    let width = ctx.t_end - ctx.t_start;
    match kind {
        MetricKind::PerformancePreserved => curve.area(ctx.t_start, ctx.t_end),
        MetricKind::PerformanceLost => {
            let preserved = curve.area(ctx.t_start, ctx.t_end)?;
            Ok(ctx.nominal * width - preserved)
        }
        MetricKind::NormalizedAveragePreserved => {
            let preserved = curve.area(ctx.t_start, ctx.t_end)?;
            Ok(preserved / (ctx.nominal * width))
        }
        MetricKind::NormalizedAverageLost => {
            let preserved = curve.area(ctx.t_start, ctx.t_end)?;
            Ok((ctx.nominal * width - preserved) / (ctx.nominal * width))
        }
        MetricKind::PreservedFromMinimum => {
            if !(ctx.t_min < ctx.t_end) {
                return Err(CoreError::arg(
                    "PreservedFromMinimum",
                    "t_min must precede t_end",
                ));
            }
            let area = curve.area(ctx.t_min, ctx.t_end)?;
            let p_min = curve.value(ctx.t_min)?;
            Ok(area - p_min * (ctx.t_end - ctx.t_min))
        }
        MetricKind::AveragePreserved => Ok(curve.area(ctx.t_start, ctx.t_end)? / width),
        MetricKind::AverageLost => {
            let preserved = curve.area(ctx.t_start, ctx.t_end)?;
            Ok((ctx.nominal * width - preserved) / width)
        }
        MetricKind::WeightedBeforeAfterMinimum => {
            let before_width = ctx.t_min - ctx.t_full_start;
            let after_width = ctx.t_end - ctx.t_min;
            if before_width <= 0.0 || after_width <= 0.0 {
                return Err(CoreError::arg(
                    "WeightedBeforeAfterMinimum",
                    "t_min must lie strictly inside the full interval",
                ));
            }
            let before = curve.area(ctx.t_full_start, ctx.t_min)? / before_width;
            let after = curve.area(ctx.t_min, ctx.t_end)? / after_width;
            Ok(ctx.weight * before + (1.0 - ctx.weight) * after)
        }
    }
}

/// Metric value from the observed curve (“Actual” columns of the paper's
/// Tables II and IV).
///
/// # Errors
///
/// Propagates geometry/integration failures; returns
/// [`CoreError::Numerical`] when the metric value is non-finite (guard
/// layer, DESIGN.md §8).
pub fn actual_metric(
    series: &PerformanceSeries,
    kind: MetricKind,
    ctx: &MetricContext,
) -> Result<f64, CoreError> {
    guard::finite_output(
        "actual_metric",
        compute(&Curve::Observed(series), kind, ctx)?,
    )
}

/// Metric value from a fitted model (“Predicted” columns).
///
/// # Errors
///
/// Propagates geometry/integration failures; returns
/// [`CoreError::Numerical`] when the metric value is non-finite (guard
/// layer, DESIGN.md §8).
pub fn predicted_metric(
    model: &dyn ResilienceModel,
    kind: MetricKind,
    ctx: &MetricContext,
) -> Result<f64, CoreError> {
    guard::finite_output(
        "predicted_metric",
        compute(&Curve::Model(model), kind, ctx)?,
    )
}

/// Point-based resilience metrics — an extension beyond the paper's
/// interval-based set (its §IV cites point-based metrics as a category;
/// DESIGN.md §5 tracks this addition). All are computed from a fitted
/// model over a window `[a, b]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointMetrics {
    /// Robustness: minimum performance over the window, as a fraction of
    /// the performance at the window start.
    pub robustness: f64,
    /// Time of the performance minimum.
    pub time_to_trough: f64,
    /// Rapidity: average recovery slope from the trough to the window
    /// end, `(P(b) − P(t_d)) / (b − t_d)`; zero when the trough sits at
    /// the window end.
    pub rapidity: f64,
    /// Maximum degradation depth `P(a) − P(t_d)`.
    pub max_degradation: f64,
}

/// Computes the point-based metrics of a model over `[a, b]`.
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] for a degenerate window or a
///   non-positive starting performance.
/// * Propagates trough-location failures.
pub fn point_metrics(
    model: &dyn ResilienceModel,
    a: f64,
    b: f64,
) -> Result<PointMetrics, CoreError> {
    if !(a < b) {
        return Err(CoreError::arg(
            "point_metrics",
            format!("need a < b, got [{a}, {b}]"),
        ));
    }
    let start = model.predict(a);
    if !(start > 0.0) {
        return Err(CoreError::arg(
            "point_metrics",
            format!("performance at window start must be positive, got {start}"),
        ));
    }
    let t_d = model.trough_time(a, b)?;
    let p_d = model.predict(t_d);
    let p_end = model.predict(b);
    let rapidity = if b - t_d > 1e-12 {
        (p_end - p_d) / (b - t_d)
    } else {
        0.0
    };
    Ok(PointMetrics {
        robustness: p_d / start,
        time_to_trough: t_d,
        rapidity,
        max_degradation: start - p_d,
    })
}

/// Relative error `δ = |actual − predicted| / |actual|` (paper Eq. 22).
///
/// # Errors
///
/// * [`CoreError::Numerical`] when either input is NaN/∞ — previously a
///   NaN `actual` flowed straight through to a NaN δ (guard layer,
///   DESIGN.md §8).
/// * [`CoreError::InvalidArgument`] when `actual == 0` (the paper's δ is
///   undefined there).
pub fn relative_error(actual: f64, predicted: f64) -> Result<f64, CoreError> {
    guard::finite_input("relative_error", actual)?;
    guard::finite_input("relative_error", predicted)?;
    if actual == 0.0 {
        return Err(CoreError::arg(
            "relative_error",
            "actual value is zero; relative error undefined",
        ));
    }
    Ok(((actual - predicted) / actual).abs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bathtub::QuadraticModel;

    fn model() -> QuadraticModel {
        QuadraticModel::new(1.0, -0.012, 0.0004).unwrap()
    }

    fn series_from_model(n: usize) -> PerformanceSeries {
        let m = model();
        let values: Vec<f64> = (0..n).map(|i| m.predict(i as f64)).collect();
        PerformanceSeries::monthly("m", values).unwrap()
    }

    fn ctx() -> MetricContext {
        MetricContext {
            t_start: 42.0,
            t_end: 47.0,
            nominal: model().predict(42.0),
            t_min: 15.0,
            t_full_start: 0.0,
            weight: 0.5,
        }
        .validated()
        .unwrap()
    }

    #[test]
    fn context_validation() {
        let mut c = ctx();
        c.t_end = c.t_start;
        assert!(c.validated().is_err());
        let mut c = ctx();
        c.t_min = 50.0;
        assert!(c.validated().is_err());
        let mut c = ctx();
        c.weight = 1.0;
        assert!(c.validated().is_err());
    }

    #[test]
    fn integrate_series_exact_on_linear_data() {
        let s = PerformanceSeries::monthly("lin", (0..11).map(|i| i as f64).collect()).unwrap();
        // ∫₀¹⁰ t dt = 50.
        assert!((integrate_series(&s, 0.0, 10.0).unwrap() - 50.0).abs() < 1e-12);
        // Partial window with fractional endpoints: ∫_{0.5}^{2.5} t dt = 3.
        assert!((integrate_series(&s, 0.5, 2.5).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn integrate_series_rejects_bad_windows() {
        let s = series_from_model(10);
        assert!(integrate_series(&s, 3.0, 3.0).is_err());
        assert!(integrate_series(&s, -1.0, 5.0).is_err());
        assert!(integrate_series(&s, 0.0, 20.0).is_err());
    }

    #[test]
    fn actual_and_predicted_agree_on_exact_data() {
        // The observed series IS the model sampled monthly, so the
        // trapezoid actual and the analytic predicted agree to the
        // trapezoid discretization error (tiny for this gentle curve).
        let s = series_from_model(48);
        let c = ctx();
        for kind in MetricKind::ALL {
            let a = actual_metric(&s, kind, &c).unwrap();
            let p = predicted_metric(&model(), kind, &c).unwrap();
            // Tolerance: trapezoid discretization error of the monthly
            // grid, h²·|f''|·width/12 ≈ 7e-5 per month; the widest window
            // any metric integrates spans the full 47 months.
            assert!((a - p).abs() < 4e-3, "{kind}: actual {a} vs predicted {p}");
        }
    }

    #[test]
    fn preserved_and_lost_sum_to_nominal_rectangle() {
        let s = series_from_model(48);
        let c = ctx();
        let preserved = actual_metric(&s, MetricKind::PerformancePreserved, &c).unwrap();
        let lost = actual_metric(&s, MetricKind::PerformanceLost, &c).unwrap();
        let rect = c.nominal * (c.t_end - c.t_start);
        assert!((preserved + lost - rect).abs() < 1e-10);
    }

    #[test]
    fn normalized_metrics_are_ratios() {
        let s = series_from_model(48);
        let c = ctx();
        let preserved = actual_metric(&s, MetricKind::PerformancePreserved, &c).unwrap();
        let norm = actual_metric(&s, MetricKind::NormalizedAveragePreserved, &c).unwrap();
        let rect = c.nominal * (c.t_end - c.t_start);
        assert!((norm - preserved / rect).abs() < 1e-12);
        let nl = actual_metric(&s, MetricKind::NormalizedAverageLost, &c).unwrap();
        assert!((norm + nl - 1.0).abs() < 1e-12);
    }

    #[test]
    fn averages_divide_by_width() {
        let s = series_from_model(48);
        let c = ctx();
        let preserved = actual_metric(&s, MetricKind::PerformancePreserved, &c).unwrap();
        let avg = actual_metric(&s, MetricKind::AveragePreserved, &c).unwrap();
        assert!((avg - preserved / 5.0).abs() < 1e-12);
        let lost = actual_metric(&s, MetricKind::PerformanceLost, &c).unwrap();
        let avg_lost = actual_metric(&s, MetricKind::AverageLost, &c).unwrap();
        assert!((avg_lost - lost / 5.0).abs() < 1e-12);
    }

    #[test]
    fn lost_negative_when_above_nominal() {
        // The model recovers above P(42) over [42, 47]? P is increasing
        // past the trough at 15, so values in the window exceed P(42) ⇒
        // performance lost < 0, matching the paper's interpretation of
        // negative losses.
        let c = ctx();
        let lost = predicted_metric(&model(), MetricKind::PerformanceLost, &c).unwrap();
        assert!(lost < 0.0);
    }

    #[test]
    fn preserved_from_minimum_nonnegative_for_convex_recovery() {
        let s = series_from_model(48);
        let c = ctx();
        let v = actual_metric(&s, MetricKind::PreservedFromMinimum, &c).unwrap();
        // Area above the minimum rectangle is strictly positive.
        assert!(v > 0.0);
    }

    #[test]
    fn weighted_metric_interpolates_between_halves() {
        let s = series_from_model(48);
        let mut c = ctx();
        c.weight = 0.5;
        let half = actual_metric(&s, MetricKind::WeightedBeforeAfterMinimum, &c).unwrap();
        c.weight = 0.999;
        let before_heavy = actual_metric(&s, MetricKind::WeightedBeforeAfterMinimum, &c).unwrap();
        c.weight = 0.001;
        let after_heavy = actual_metric(&s, MetricKind::WeightedBeforeAfterMinimum, &c).unwrap();
        let lo = before_heavy.min(after_heavy);
        let hi = before_heavy.max(after_heavy);
        assert!(half > lo && half < hi);
    }

    #[test]
    fn predictive_context_from_split() {
        let s = series_from_model(48);
        let split = s.split_at(43).unwrap();
        let m = model();
        let c = MetricContext::predictive(&split, &s, &m, 0.5).unwrap();
        assert_eq!(c.t_start, 42.0);
        assert_eq!(c.t_end, 47.0);
        assert_eq!(c.t_full_start, 0.0);
        // Trough of the quadratic is at 15, observed inside training data.
        assert!((c.t_min - 15.0).abs() < 1e-9);
        assert!((c.nominal - m.predict(42.0)).abs() < 1e-12);
    }

    #[test]
    fn predictive_context_uses_model_trough_when_unobserved() {
        // Truncate before the trough: only 10 points, trough at 15 not
        // yet observed ⇒ the context must use the model's trough.
        let m = model();
        let values: Vec<f64> = (0..12).map(|i| m.predict(i as f64)).collect();
        let s = PerformanceSeries::monthly("early", values).unwrap();
        let split = s.split_at(10).unwrap();
        let c = MetricContext::predictive(&split, &s, &m, 0.5).unwrap();
        // Model trough clamped to the window: 11 > ... the full window is
        // [0, 11], the true trough 15 clamps to 11 — but validation needs
        // t_min < t_end, so it must have been clamped inside.
        assert!(c.t_min <= 11.0);
        assert!(c.t_min > 0.0);
    }

    #[test]
    fn relative_error_eq22() {
        assert!((relative_error(2.0, 1.9).unwrap() - 0.05).abs() < 1e-12);
        assert!((relative_error(-1.0, -1.1).unwrap() - 0.1).abs() < 1e-12);
        assert!(relative_error(0.0, 1.0).is_err());
    }

    #[test]
    fn relative_error_rejects_non_finite_inputs() {
        // Regression: a NaN actual used to flow through to a silent NaN δ.
        assert!(relative_error(f64::NAN, 1.0).is_err());
        assert!(relative_error(1.0, f64::NAN).is_err());
        assert!(relative_error(f64::INFINITY, 1.0).is_err());
        assert!(relative_error(1.0, f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn point_metrics_on_known_curve() {
        // Quadratic with trough at 15: P(15) = minimum.
        let m = model();
        let pm = point_metrics(&m, 0.0, 47.0).unwrap();
        assert!((pm.time_to_trough - 15.0).abs() < 1e-9);
        assert!((pm.robustness - m.minimum() / m.predict(0.0)).abs() < 1e-9);
        assert!((pm.max_degradation - (m.predict(0.0) - m.minimum())).abs() < 1e-9);
        // Recovery slope positive past the trough.
        assert!(pm.rapidity > 0.0);
        let want = (m.predict(47.0) - m.minimum()) / (47.0 - 15.0);
        assert!((pm.rapidity - want).abs() < 1e-9);
    }

    #[test]
    fn point_metrics_validation() {
        let m = model();
        assert!(point_metrics(&m, 5.0, 5.0).is_err());
        assert!(point_metrics(&m, 10.0, 2.0).is_err());
    }

    #[test]
    fn point_metrics_monotone_curve_trough_at_edge() {
        // A strictly increasing curve: trough at the window start,
        // robustness 1.
        struct Rising;
        impl ResilienceModel for Rising {
            fn name(&self) -> &'static str {
                "Rising"
            }
            fn params(&self) -> Vec<f64> {
                vec![1.0]
            }
            fn predict(&self, t: f64) -> f64 {
                1.0 + 0.01 * t
            }
        }
        let pm = point_metrics(&Rising, 0.0, 10.0).unwrap();
        assert!(pm.time_to_trough < 0.5);
        assert!((pm.robustness - 1.0).abs() < 1e-3);
        assert!(pm.max_degradation.abs() < 1e-3);
    }

    #[test]
    fn all_metrics_have_unique_labels() {
        let labels: std::collections::HashSet<_> =
            MetricKind::ALL.iter().map(MetricKind::label).collect();
        assert_eq!(labels.len(), 8);
    }
}
