//! Forward forecasting: extend a fitted resilience curve beyond the
//! observed data with uncertainty intervals.
//!
//! This is the operational form of the paper's motivation — "project when
//! the system will recover to a specified level of performance" — as a
//! single call: fit on everything observed so far, then emit point
//! forecasts with Eq. 13-style intervals for the next months, plus a
//! recovery outlook for user-specified performance levels.

use crate::fit::{fit_least_squares, FitConfig, FittedModel};
use crate::model::ModelFamily;
use crate::validate::{residual_sigma, sse};
use crate::CoreError;
use resilience_data::PerformanceSeries;
use resilience_stats::inference::{normal_interval, ConfidenceInterval};

/// One forecast step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastPoint {
    /// Forecast time.
    pub t: f64,
    /// Point prediction `P(t)`.
    pub predicted: f64,
    /// `1 − α` interval around the prediction (Eq. 13 construction with
    /// the training residual σ).
    pub interval: ConfidenceInterval,
}

/// A fitted model's forecast over a future horizon.
pub struct Forecast {
    /// The fitted model used for the forecast.
    pub fit: FittedModel,
    /// Residual σ from the training fit (Eq. 12).
    pub sigma: f64,
    /// Forecast points, one per future month.
    pub points: Vec<ForecastPoint>,
}

impl std::fmt::Debug for Forecast {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Forecast")
            .field("model", &self.fit.model.name())
            .field("sigma", &self.sigma)
            .field("horizon", &self.points.len())
            .finish()
    }
}

impl Forecast {
    /// The forecast time of recovery to `level`, if it occurs within the
    /// forecast horizon.
    #[must_use]
    pub fn recovery_within_horizon(&self, level: f64) -> Option<f64> {
        let last_obs_t = self.points.first().map(|p| p.t - 1.0)?;
        let horizon_end = self.points.last().map(|p| p.t)?;
        self.fit
            .model
            .time_to_recover(level, last_obs_t, horizon_end)
            .ok()
    }
}

/// Fits `family` to the entire observed series and forecasts the next
/// `horizon` time steps (continuing the series' mean step size).
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] when `horizon == 0`.
/// * Propagates fit and inference failures.
///
/// # Examples
///
/// ```
/// use resilience_core::bathtub::CompetingRisksFamily;
/// use resilience_core::forecast::forecast;
/// use resilience_data::recessions::Recession;
///
/// let observed = Recession::R1990_93.payroll_index();
/// let fc = forecast(&CompetingRisksFamily, &observed, 12, 0.05)?;
/// assert_eq!(fc.points.len(), 12);
/// // Forecasts continue past the last observed month (t = 47).
/// assert!(fc.points[0].t > 47.0);
/// # Ok::<(), resilience_core::CoreError>(())
/// ```
pub fn forecast(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    horizon: usize,
    alpha: f64,
) -> Result<Forecast, CoreError> {
    forecast_with(family, series, horizon, alpha, &FitConfig::default())
}

/// [`forecast`] with an explicit fit configuration.
///
/// # Errors
///
/// Same conditions as [`forecast`].
pub fn forecast_with(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    horizon: usize,
    alpha: f64,
    config: &FitConfig,
) -> Result<Forecast, CoreError> {
    if horizon == 0 {
        return Err(CoreError::arg("forecast", "horizon must be positive"));
    }
    let fit = fit_least_squares(family, series, config)?;
    let sigma = residual_sigma(sse(fit.model.as_ref(), series), series.len())?;
    let times = series.times();
    let last_t = times[times.len() - 1];
    let mean_step = (times[times.len() - 1] - times[0]) / (times.len() - 1) as f64;
    let points = (1..=horizon)
        .map(|k| {
            let t = last_t + k as f64 * mean_step;
            let predicted = fit.model.predict(t);
            let interval = normal_interval(predicted, sigma, alpha)?;
            Ok(ForecastPoint {
                t,
                predicted,
                interval,
            })
        })
        .collect::<Result<Vec<_>, CoreError>>()?;
    Ok(Forecast { fit, sigma, points })
}

/// Recovery outlook: for each performance level, the forecast time (if
/// any, within `horizon_months` past the data) at which the fitted model
/// reaches it.
///
/// # Errors
///
/// Propagates fit failures; returns [`CoreError::InvalidArgument`] for an
/// empty level list or zero horizon.
pub fn recovery_outlook(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    levels: &[f64],
    horizon_months: f64,
) -> Result<Vec<(f64, Option<f64>)>, CoreError> {
    if levels.is_empty() {
        return Err(CoreError::arg("recovery_outlook", "no levels given"));
    }
    if !(horizon_months > 0.0) {
        return Err(CoreError::arg(
            "recovery_outlook",
            "horizon must be positive",
        ));
    }
    let fit = fit_least_squares(family, series, &FitConfig::default())?;
    let times = series.times();
    let (t_min, _) = series
        .trough()
        .ok_or_else(|| CoreError::arg("recovery_outlook", "series is empty"))?;
    let horizon_end = times[times.len() - 1] + horizon_months;
    Ok(levels
        .iter()
        .map(|&level| {
            let t = fit.model.time_to_recover(level, t_min, horizon_end).ok();
            (level, t)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bathtub::{CompetingRisksFamily, QuadraticFamily};
    use resilience_data::recessions::Recession;

    #[test]
    fn forecast_extends_beyond_data() {
        let series = Recession::R1990_93.payroll_index();
        let fc = forecast(&CompetingRisksFamily, &series, 6, 0.05).unwrap();
        assert_eq!(fc.points.len(), 6);
        assert_eq!(fc.points[0].t, 48.0);
        assert_eq!(fc.points[5].t, 53.0);
        for p in &fc.points {
            assert!(p.interval.contains(p.predicted));
            assert!(p.predicted.is_finite());
        }
        assert!(fc.sigma > 0.0);
    }

    #[test]
    fn forecast_continues_the_recovery_trend() {
        // 1990-93 ends in a growth phase: the forecast should keep
        // rising.
        let series = Recession::R1990_93.payroll_index();
        let fc = forecast(&CompetingRisksFamily, &series, 12, 0.05).unwrap();
        let first = fc.points.first().unwrap().predicted;
        let last = fc.points.last().unwrap().predicted;
        assert!(last > first, "recovery should continue: {first} -> {last}");
    }

    #[test]
    fn forecast_rejects_zero_horizon() {
        let series = Recession::R1990_93.payroll_index();
        assert!(forecast(&QuadraticFamily, &series, 0, 0.05).is_err());
    }

    #[test]
    fn recovery_outlook_orders_levels() {
        let series = Recession::R1990_93.payroll_index();
        let outlook =
            recovery_outlook(&CompetingRisksFamily, &series, &[1.0, 1.05, 5.0], 120.0).unwrap();
        // Recovery to 1.0 happens before recovery to 1.05.
        let t_nominal = outlook[0].1.expect("recovers to nominal");
        let t_above = outlook[1].1.expect("reaches 1.05 eventually (linear term)");
        assert!(t_nominal < t_above);
        // An absurd level is not reached within the horizon.
        assert!(outlook[2].1.is_none());
    }

    #[test]
    fn recovery_outlook_validates() {
        let series = Recession::R1990_93.payroll_index();
        assert!(recovery_outlook(&QuadraticFamily, &series, &[], 10.0).is_err());
        assert!(recovery_outlook(&QuadraticFamily, &series, &[1.0], 0.0).is_err());
    }

    #[test]
    fn recovery_within_horizon_consistency() {
        let series = Recession::R1990_93.payroll_index();
        let fc = forecast(&CompetingRisksFamily, &series, 60, 0.05).unwrap();
        // The model ends above nominal already, so recovery to a level it
        // has passed clamps to the window start.
        if let Some(t) = fc.recovery_within_horizon(1.0) {
            assert!(t >= 47.0 - 1e-9);
        }
    }

    #[test]
    fn debug_impl() {
        let series = Recession::R1990_93.payroll_index();
        let fc = forecast(&QuadraticFamily, &series, 3, 0.05).unwrap();
        let s = format!("{fc:?}");
        assert!(s.contains("Quadratic"));
        assert!(s.contains('3'));
    }
}
