//! Plain-text table rendering for the reproduction harness.
//!
//! The `repro` binary in `resilience-bench` prints each of the paper's
//! tables and figure series as aligned text; this module holds the shared
//! formatter so examples can use it too.

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use resilience_core::report::Table;
/// let mut t = Table::new(vec!["Measure".into(), "Quadratic".into()]);
/// t.add_row(vec!["SSE".into(), "0.00227675".into()]);
/// let s = t.render();
/// assert!(s.contains("Measure"));
/// assert!(s.contains("0.00227675"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// extend the column count.
    pub fn add_row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator line.
    #[must_use]
    pub fn render(&self) -> String {
        let n_cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; n_cols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for row in &self.rows {
            measure(&mut widths, row);
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut out = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                out.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            out.trim_end().to_string()
        };
        let mut lines = Vec::with_capacity(self.rows.len() + 2);
        lines.push(render_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols.saturating_sub(1));
        lines.push("-".repeat(total));
        for row in &self.rows {
            lines.push(render_row(row, &widths));
        }
        lines.join("\n")
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Formats a float with the 8-decimal convention of the paper's tables.
#[must_use]
pub fn fmt_metric(v: f64) -> String {
    format!("{v:.8}")
}

/// Formats an empirical coverage as a percentage (`"95.83%"`).
#[must_use]
pub fn fmt_percent(v: f64) -> String {
    format!("{:.2}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["A".into(), "Long header".into()]);
        t.add_row(vec!["x".into(), "1".into()]);
        t.add_row(vec!["yyyy".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines start their second column at the same offset.
        let col = lines[0].find("Long").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
        assert_eq!(lines[3].find("22").unwrap(), col);
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new(vec!["A".into()]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        t.add_row(vec!["only".into()]);
        let s = t.render();
        assert!(s.contains('3'));
        assert!(s.contains("only"));
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(vec!["A".into()]);
        assert!(t.is_empty());
        t.add_row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_metric(0.001059), "0.00105900");
        assert_eq!(fmt_percent(0.9583), "95.83%");
    }
}
