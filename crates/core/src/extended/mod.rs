//! Extended model families beyond the paper (DESIGN.md §5).
//!
//! The paper's conclusion calls for "additional modeling efforts that can
//! capture these more general scenarios" — the W-shaped and L/K-shaped
//! curves that defeat both of its model families. This module supplies
//! two such efforts:
//!
//! * [`DoubleBathtubModel`] — a competing-risks curve plus a delayed
//!   second degradation episode, expressing the W's two troughs.
//! * [`CrashRecoveryModel`] — a sudden-crash, saturating-recovery curve
//!   for L/K shapes whose drop is too abrupt and whose recovery too flat
//!   for the paper's families.
//!
//! Both implement the same [`ModelFamily`](crate::model::ModelFamily) /
//! [`ResilienceModel`](crate::model::ResilienceModel) traits, so
//! every experiment (goodness of fit, bands, metrics) extends to them
//! unchanged; the `repro shapes-extended` experiment quantifies the gain.

mod crash_recovery;
mod double_bathtub;

pub use crash_recovery::{CrashRecoveryFamily, CrashRecoveryModel};
pub use double_bathtub::{DoubleBathtubFamily, DoubleBathtubModel};
