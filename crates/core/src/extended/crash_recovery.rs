//! An L/K-capable extension: sudden crash with saturating partial
//! recovery.

use crate::model::{ModelFamily, ResilienceModel};
use crate::CoreError;
use resilience_data::PerformanceSeries;

/// Crash-and-saturating-recovery resilience curve:
///
/// ```text
/// P(t) = 1 − (1 − p_min)·(t/t_c)^k                 for t < t_c
/// P(t) = p∞ − (p∞ − p_min)·e^{−ρ(t − t_c)}          for t ≥ t_c
/// ```
///
/// Five parameters: crash time `t_c > 0`, trough level `p_min`, recovery
/// asymptote `p∞ > p_min` (which may sit below the nominal 1 — the L/K
/// signature of permanent loss), recovery rate `ρ > 0`, and crash
/// sharpness `k ≥ 1` (larger = more of the drop concentrated just before
/// `t_c`). The curve is continuous at `t_c` by construction.
///
/// This is the "additional modeling effort" the paper's conclusion calls
/// for on its 2020-21 data: both of the paper's families assume a
/// *gradual* single decline, which an abrupt crash followed by a
/// flattening grind violates.
///
/// # Examples
///
/// ```
/// use resilience_core::extended::CrashRecoveryModel;
/// use resilience_core::ResilienceModel;
///
/// let m = CrashRecoveryModel::new(2.0, 0.85, 0.96, 0.15, 3.0)?;
/// assert!((m.predict(0.0) - 1.0).abs() < 1e-12);
/// assert!((m.predict(2.0) - 0.85).abs() < 1e-12);  // the trough
/// assert!(m.predict(50.0) < 0.97);                 // permanent loss
/// # Ok::<(), resilience_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashRecoveryModel {
    crash_time: f64,
    p_min: f64,
    p_inf: f64,
    rate: f64,
    sharpness: f64,
}

impl CrashRecoveryModel {
    /// Creates a crash-recovery model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] unless `t_c > 0`,
    /// `0 < p_min < p_inf`, `ρ > 0`, and `k ≥ 1`.
    pub fn new(
        crash_time: f64,
        p_min: f64,
        p_inf: f64,
        rate: f64,
        sharpness: f64,
    ) -> Result<Self, CoreError> {
        if !(crash_time > 0.0) || !crash_time.is_finite() {
            return Err(CoreError::params(
                "CrashRecovery",
                format!("need t_c > 0, got {crash_time}"),
            ));
        }
        if !(p_min > 0.0) || !(p_inf > p_min) || !p_inf.is_finite() {
            return Err(CoreError::params(
                "CrashRecovery",
                format!("need 0 < p_min < p_inf, got p_min = {p_min}, p_inf = {p_inf}"),
            ));
        }
        if !(rate > 0.0) || !rate.is_finite() {
            return Err(CoreError::params(
                "CrashRecovery",
                format!("need ρ > 0, got {rate}"),
            ));
        }
        if !(sharpness >= 1.0) || !sharpness.is_finite() {
            return Err(CoreError::params(
                "CrashRecovery",
                format!("need k >= 1, got {sharpness}"),
            ));
        }
        Ok(CrashRecoveryModel {
            crash_time,
            p_min,
            p_inf,
            rate,
            sharpness,
        })
    }

    /// Allocation-free mirror of the `new` constraints, used by the
    /// fitting hot path.
    fn feasible(params: &[f64]) -> bool {
        params.len() == 5
            && params[0] > 0.0
            && params[0].is_finite()
            && params[1] > 0.0
            && params[2] > params[1]
            && params[2].is_finite()
            && params[3] > 0.0
            && params[3].is_finite()
            && params[4] >= 1.0
            && params[4].is_finite()
    }

    /// The crash (trough) time `t_c`.
    #[must_use]
    pub fn crash_time(&self) -> f64 {
        self.crash_time
    }

    /// The trough level `p_min`.
    #[must_use]
    pub fn minimum(&self) -> f64 {
        self.p_min
    }

    /// The recovery asymptote `p∞` (long-run performance).
    #[must_use]
    pub fn asymptote(&self) -> f64 {
        self.p_inf
    }

    /// Closed-form time of recovery to `level`:
    /// `t_c − ln((p∞ − level)/(p∞ − p_min))/ρ` for
    /// `p_min ≤ level < p∞`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSolution`] when `level ≥ p∞` (never
    /// reached — the permanent-loss case) or `level < p_min`.
    pub fn recovery_time(&self, level: f64) -> Result<f64, CoreError> {
        if level >= self.p_inf {
            return Err(CoreError::no_solution(
                "CrashRecoveryModel::recovery_time",
                format!("level {level} is at/above the asymptote {}", self.p_inf),
            ));
        }
        if level <= self.p_min {
            return Ok(self.crash_time);
        }
        let ratio = (self.p_inf - level) / (self.p_inf - self.p_min);
        Ok(self.crash_time - ratio.ln() / self.rate)
    }
}

impl ResilienceModel for CrashRecoveryModel {
    fn name(&self) -> &'static str {
        "Crash Recovery"
    }

    fn params(&self) -> Vec<f64> {
        vec![
            self.crash_time,
            self.p_min,
            self.p_inf,
            self.rate,
            self.sharpness,
        ]
    }

    fn predict(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 1.0;
        }
        if t < self.crash_time {
            1.0 - (1.0 - self.p_min) * (t / self.crash_time).powf(self.sharpness)
        } else {
            self.p_inf - (self.p_inf - self.p_min) * (-self.rate * (t - self.crash_time)).exp()
        }
    }

    fn predict_into(&self, ts: &[f64], out: &mut [f64]) {
        assert_eq!(
            ts.len(),
            out.len(),
            "predict_into requires ts and out of equal length"
        );
        for (o, &t) in out.iter_mut().zip(ts) {
            *o = if t < 0.0 {
                1.0
            } else if t < self.crash_time {
                1.0 - (1.0 - self.p_min) * (t / self.crash_time).powf(self.sharpness)
            } else {
                self.p_inf - (self.p_inf - self.p_min) * (-self.rate * (t - self.crash_time)).exp()
            };
        }
    }

    /// Closed-form area: power-law segment before `t_c`, exponential
    /// segment after.
    fn area(&self, a: f64, b: f64) -> Result<f64, CoreError> {
        if !(a <= b) || !a.is_finite() || !b.is_finite() || a < 0.0 {
            return Err(CoreError::arg(
                "CrashRecoveryModel::area",
                format!("need finite 0 <= a <= b, got [{a}, {b}]"),
            ));
        }
        // ∫ pre-crash: t − (1−p_min)·t_c/(k+1)·(t/t_c)^{k+1}
        let pre = |t: f64| {
            t - (1.0 - self.p_min) * self.crash_time / (self.sharpness + 1.0)
                * (t / self.crash_time).powf(self.sharpness + 1.0)
        };
        // ∫ post-crash from t_c: p∞·x + (p∞ − p_min)/ρ·(e^{−ρx} − 1),
        // with x = t − t_c.
        let post = |t: f64| {
            let x = t - self.crash_time;
            self.p_inf * x + (self.p_inf - self.p_min) / self.rate * ((-self.rate * x).exp() - 1.0)
        };
        let eval = |t: f64| {
            if t <= self.crash_time {
                pre(t)
            } else {
                pre(self.crash_time) + post(t)
            }
        };
        Ok(eval(b) - eval(a))
    }

    fn trough_time(&self, a: f64, b: f64) -> Result<f64, CoreError> {
        if !(a < b) {
            return Err(CoreError::arg(
                "CrashRecoveryModel::trough_time",
                format!("need a < b, got [{a}, {b}]"),
            ));
        }
        Ok(self.crash_time.clamp(a, b))
    }

    fn time_to_recover(&self, level: f64, from: f64, horizon: f64) -> Result<f64, CoreError> {
        let t = self.recovery_time(level)?;
        if t < from {
            return Ok(from);
        }
        if t > horizon {
            return Err(CoreError::no_solution(
                "CrashRecoveryModel::time_to_recover",
                format!("recovery at t = {t} is beyond horizon {horizon}"),
            ));
        }
        Ok(t)
    }
}

/// The [`ModelFamily`] for [`CrashRecoveryModel`].
///
/// Internal parameterization keeps every constraint structural:
/// `t_c = e^{i₀}`, `p_min = e^{i₁}·s` with a logistic share of `p_inf`,
/// handled as: `p_inf = e^{i₂}`, `p_min = p_inf·σ(i₁)`, `ρ = e^{i₃}`,
/// `k = 1 + e^{i₄}`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashRecoveryFamily;

impl CrashRecoveryFamily {
    fn sigmoid(x: f64) -> f64 {
        let s = if x >= 0.0 {
            1.0 / (1.0 + (-x).exp())
        } else {
            let e = x.exp();
            e / (1.0 + e)
        };
        s.clamp(1e-9, 1.0 - 1e-9)
    }
}

impl ModelFamily for CrashRecoveryFamily {
    fn name(&self) -> &'static str {
        "Crash Recovery"
    }

    fn n_params(&self) -> usize {
        5
    }

    /// The crash discontinuity makes the pre/post-crash segments trade
    /// off through the shared `p_inf`, so give this five-parameter
    /// landscape the same doubled walk as the other extended shape.
    fn nm_iteration_scale(&self) -> usize {
        2
    }

    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        assert_eq!(
            internal.len(),
            5,
            "CrashRecoveryFamily expects 5 internal params"
        );
        let crash_time = internal[0].exp();
        let p_inf = internal[2].exp();
        let p_min = p_inf * CrashRecoveryFamily::sigmoid(internal[1]);
        let rate = internal[3].exp();
        let sharpness = 1.0 + internal[4].exp();
        vec![crash_time, p_min, p_inf, rate, sharpness]
    }

    fn internal_to_params_into(&self, internal: &[f64], out: &mut [f64]) {
        assert_eq!(
            internal.len(),
            5,
            "CrashRecoveryFamily expects 5 internal params"
        );
        assert_eq!(out.len(), 5, "CrashRecoveryFamily writes 5 external params");
        let p_inf = internal[2].exp();
        out[0] = internal[0].exp();
        out[1] = p_inf * CrashRecoveryFamily::sigmoid(internal[1]);
        out[2] = p_inf;
        out[3] = internal[3].exp();
        out[4] = 1.0 + internal[4].exp();
    }

    fn predict_params_into(&self, params: &[f64], ts: &[f64], out: &mut [f64]) -> bool {
        if !CrashRecoveryModel::feasible(params) {
            return false;
        }
        let model = CrashRecoveryModel {
            crash_time: params[0],
            p_min: params[1],
            p_inf: params[2],
            rate: params[3],
            sharpness: params[4],
        };
        model.predict_into(ts, out);
        true
    }

    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        if params.len() != 5 {
            return Err(CoreError::params("CrashRecovery", "expected 5 parameters"));
        }
        CrashRecoveryModel::new(params[0], params[1], params[2], params[3], params[4])?;
        let share = (params[1] / params[2]).clamp(1e-9, 1.0 - 1e-9);
        Ok(vec![
            params[0].ln(),
            (share / (1.0 - share)).ln(),
            params[2].ln(),
            params[3].ln(),
            (params[4] - 1.0).max(1e-12).ln(),
        ])
    }

    fn build(&self, params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        if params.len() != 5 {
            return Err(CoreError::params("CrashRecovery", "expected 5 parameters"));
        }
        Ok(Box::new(CrashRecoveryModel::new(
            params[0], params[1], params[2], params[3], params[4],
        )?))
    }

    fn initial_guesses(&self, series: &PerformanceSeries) -> Vec<Vec<f64>> {
        let (t_d, p_d) = series.trough().unwrap_or((1.0, 0.9 * series.nominal()));
        let t_d = t_d.max(0.5);
        let end_val = series.values()[series.len() - 1];
        let p_inf = end_val.max(p_d + 1e-3) * 1.01;
        let t_end = series.times()[series.len() - 1].max(2.0);
        let mut guesses = Vec::new();
        for rate in [0.05, 0.15, 0.5] {
            for sharpness in [1.5, 3.0, 6.0] {
                guesses.push(vec![t_d, p_d.max(1e-3), p_inf, rate, sharpness]);
            }
        }
        // A fallback assuming the crash is at 10% of the window.
        guesses.push(vec![0.1 * t_end, 0.8, 1.0, 0.1, 2.0]);
        guesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{fit_least_squares, FitConfig};
    use crate::validate::r2_adjusted;
    use resilience_data::recessions::Recession;

    fn model() -> CrashRecoveryModel {
        CrashRecoveryModel::new(2.0, 0.85, 0.96, 0.15, 3.0).unwrap()
    }

    #[test]
    fn constructor_validates() {
        assert!(CrashRecoveryModel::new(0.0, 0.8, 0.9, 0.1, 2.0).is_err());
        assert!(CrashRecoveryModel::new(1.0, 0.9, 0.8, 0.1, 2.0).is_err()); // p_min > p_inf
        assert!(CrashRecoveryModel::new(1.0, 0.0, 0.9, 0.1, 2.0).is_err());
        assert!(CrashRecoveryModel::new(1.0, 0.8, 0.9, 0.0, 2.0).is_err());
        assert!(CrashRecoveryModel::new(1.0, 0.8, 0.9, 0.1, 0.5).is_err()); // k < 1
    }

    #[test]
    fn continuous_at_crash_time() {
        let m = model();
        let eps = 1e-9;
        let before = m.predict(2.0 - eps);
        let after = m.predict(2.0 + eps);
        assert!((before - after).abs() < 1e-6);
        assert!((m.predict(2.0) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn approaches_asymptote_not_nominal() {
        let m = model();
        assert!((m.predict(1000.0) - 0.96).abs() < 1e-10);
        assert!(m.predict(1000.0) < 1.0, "permanent loss");
    }

    #[test]
    fn recovery_time_closed_form() {
        let m = model();
        let t = m.recovery_time(0.93).unwrap();
        assert!((m.predict(t) - 0.93).abs() < 1e-10);
        assert!(m.recovery_time(0.97).is_err()); // above asymptote
        assert_eq!(m.recovery_time(0.5).unwrap(), 2.0); // below trough
    }

    #[test]
    fn area_matches_quadrature_across_the_kink() {
        let m = model();
        for (a, b) in [(0.0, 1.5), (0.0, 10.0), (1.0, 23.0), (5.0, 20.0)] {
            let analytic = m.area(a, b).unwrap();
            let numeric =
                resilience_math::quad::adaptive_simpson(|t| m.predict(t), a, b, 1e-11, 44).unwrap();
            assert!(
                (analytic - numeric).abs() < 1e-7,
                "[{a}, {b}]: {analytic} vs {numeric}"
            );
        }
        assert!(model().area(-1.0, 3.0).is_err());
    }

    #[test]
    fn family_roundtrip() {
        let fam = CrashRecoveryFamily;
        let params = vec![2.0, 0.85, 0.96, 0.15, 3.0];
        let internal = fam.params_to_internal(&params).unwrap();
        let back = fam.internal_to_params(&internal);
        for (a, b) in params.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{params:?} vs {back:?}");
        }
    }

    #[test]
    fn family_internal_always_feasible() {
        let fam = CrashRecoveryFamily;
        for &a in &[-3.0, 0.0, 2.0] {
            for &b in &[-5.0, 0.0, 5.0] {
                let p = fam.internal_to_params(&[a, b, -0.05, -1.0, 0.5]);
                assert!(
                    CrashRecoveryModel::new(p[0], p[1], p[2], p[3], p[4]).is_ok(),
                    "infeasible {p:?}"
                );
            }
        }
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let fam = CrashRecoveryFamily;
        let params = [2.0, 0.85, 0.96, 0.15, 3.0];
        let internal = fam.params_to_internal(&params).unwrap();
        let mut back = [0.0; 5];
        fam.internal_to_params_into(&internal, &mut back);
        assert_eq!(back.to_vec(), fam.internal_to_params(&internal));

        let ts = [0.0, 1.0, 2.0, 10.0, 40.0];
        let mut out = [f64::NAN; 5];
        assert!(fam.predict_params_into(&params, &ts, &mut out));
        let model = fam.build(&params).unwrap();
        assert_eq!(out.to_vec(), model.predict_many(&ts));

        assert!(!fam.predict_params_into(&[1.0, 0.9, 0.8, 0.1, 2.0], &ts, &mut out));
        assert!(!fam.predict_params_into(&[1.0, 0.8, 0.9, 0.1], &ts, &mut out));
    }

    #[test]
    fn fits_covid_l_shape_where_paper_families_fail() {
        let series = Recession::R2020_21.payroll_index();
        let train = series.split_at(21).unwrap().train;
        let config = FitConfig::default();
        let fit = fit_least_squares(&CrashRecoveryFamily, &train, &config).unwrap();
        let r2 = r2_adjusted(fit.model.as_ref(), &train, 5).unwrap();
        assert!(
            r2 > 0.9,
            "crash-recovery should capture the L shape: r2 = {r2}"
        );
    }

    #[test]
    fn initial_guesses_feasible() {
        let series = Recession::R2020_21.payroll_index();
        let fam = CrashRecoveryFamily;
        for g in fam.initial_guesses(&series) {
            assert!(fam.build(&g).is_ok(), "infeasible guess {g:?}");
        }
    }
}
