//! A W-capable extension: competing-risks curve plus a delayed second
//! degradation episode.

use crate::model::{ModelFamily, ResilienceModel};
use crate::CoreError;
use resilience_data::PerformanceSeries;

/// Competing-risks resilience curve with a delayed second dip:
///
/// ```text
/// P(t) = 2γt + α/(1 + βt) − d·h(t − τ)
/// h(x) = (x/w)·e^{1 − x/w}   for x > 0, else 0
/// ```
///
/// The base term is the paper's competing-risks model (its Eq. 4); the
/// hump `d·h` subtracts a second degradation episode of depth `d`
/// centered `w` months after its onset `τ`. Six parameters, all
/// positive. With `d → 0` it reduces to the paper's model, so it can
/// only fit better in-sample — the question the W experiment answers is
/// *how much* better on double-dip data.
///
/// # Examples
///
/// ```
/// use resilience_core::bathtub::CompetingRisksModel;
/// use resilience_core::extended::DoubleBathtubModel;
/// use resilience_core::ResilienceModel;
///
/// let m = DoubleBathtubModel::new(1.0, 0.05, 0.012, 0.06, 20.0, 6.0)?;
/// assert!((m.predict(0.0) - 1.0).abs() < 1e-12);
/// // The second episode (onset τ = 20, peaking at τ + w = 26) pulls the
/// // curve below the single-episode baseline by exactly its depth.
/// let base = CompetingRisksModel::new(1.0, 0.05, 0.012)?;
/// assert!((base.predict(26.0) - m.predict(26.0) - 0.06).abs() < 1e-12);
/// # Ok::<(), resilience_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoubleBathtubModel {
    alpha: f64,
    beta: f64,
    gamma: f64,
    depth: f64,
    onset: f64,
    width: f64,
}

impl DoubleBathtubModel {
    /// Creates a double-bathtub model with base parameters `α, β, γ`
    /// (first episode), second-episode depth `d`, onset `τ`, and width
    /// `w`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] unless every parameter is
    /// finite and positive.
    pub fn new(
        alpha: f64,
        beta: f64,
        gamma: f64,
        depth: f64,
        onset: f64,
        width: f64,
    ) -> Result<Self, CoreError> {
        for (name, v) in [
            ("α", alpha),
            ("β", beta),
            ("γ", gamma),
            ("d", depth),
            ("τ", onset),
            ("w", width),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(CoreError::params(
                    "DoubleBathtub",
                    format!("need {name} > 0 and finite, got {v}"),
                ));
            }
        }
        Ok(DoubleBathtubModel {
            alpha,
            beta,
            gamma,
            depth,
            onset,
            width,
        })
    }

    /// The second-episode hump `h(t − τ)` scaled by depth.
    fn second_dip(&self, t: f64) -> f64 {
        let x = t - self.onset;
        if x <= 0.0 {
            return 0.0;
        }
        let u = x / self.width;
        self.depth * u * (1.0 - u).exp()
    }

    /// Closed-form integral of the second dip from `τ` to `t`:
    /// `d·w·e·(1 − e^{−u}(1+u))` with `u = (t−τ)/w`.
    fn second_dip_integral(&self, t: f64) -> f64 {
        let x = t - self.onset;
        if x <= 0.0 {
            return 0.0;
        }
        let u = x / self.width;
        self.depth * self.width * std::f64::consts::E * (1.0 - (-u).exp() * (1.0 + u))
    }

    /// Allocation-free mirror of the `new` constraints, used by the
    /// fitting hot path.
    fn feasible(params: &[f64]) -> bool {
        params.len() == 6 && params.iter().all(|&v| v > 0.0 && v.is_finite())
    }

    /// Onset time of the second episode.
    #[must_use]
    pub fn onset(&self) -> f64 {
        self.onset
    }

    /// Depth of the second episode (performance lost at its peak).
    #[must_use]
    pub fn depth(&self) -> f64 {
        self.depth
    }
}

impl ResilienceModel for DoubleBathtubModel {
    fn name(&self) -> &'static str {
        "Double Bathtub"
    }

    fn params(&self) -> Vec<f64> {
        vec![
            self.alpha, self.beta, self.gamma, self.depth, self.onset, self.width,
        ]
    }

    fn predict(&self, t: f64) -> f64 {
        2.0 * self.gamma * t + self.alpha / (1.0 + self.beta * t) - self.second_dip(t)
    }

    fn predict_into(&self, ts: &[f64], out: &mut [f64]) {
        assert_eq!(
            ts.len(),
            out.len(),
            "predict_into requires ts and out of equal length"
        );
        for (o, &t) in out.iter_mut().zip(ts) {
            *o = 2.0 * self.gamma * t + self.alpha / (1.0 + self.beta * t) - self.second_dip(t);
        }
    }

    fn area(&self, a: f64, b: f64) -> Result<f64, CoreError> {
        if !(a <= b) || !a.is_finite() || !b.is_finite() {
            return Err(CoreError::arg(
                "DoubleBathtubModel::area",
                format!("need finite a <= b, got [{a}, {b}]"),
            ));
        }
        if 1.0 + self.beta * a <= 0.0 {
            return Err(CoreError::arg(
                "DoubleBathtubModel::area",
                format!("lower endpoint {a} outside the model domain"),
            ));
        }
        let base =
            |t: f64| self.gamma * t * t + (self.alpha / self.beta) * (1.0 + self.beta * t).ln();
        Ok(base(b) - base(a) - (self.second_dip_integral(b) - self.second_dip_integral(a)))
    }
}

/// The [`ModelFamily`] for [`DoubleBathtubModel`]: all six parameters
/// positive (log transforms).
#[derive(Debug, Clone, Copy, Default)]
pub struct DoubleBathtubFamily;

impl ModelFamily for DoubleBathtubFamily {
    fn name(&self) -> &'static str {
        "Double Bathtub"
    }

    fn n_params(&self) -> usize {
        6
    }

    /// Two dips resolve sequentially: the simplex settles the first
    /// episode before the second's depth/onset/width move, so the walk
    /// runs roughly twice as long as a single-episode fit (the 1981-83
    /// double-dip recession needs ~1000 iterations where the paper
    /// families finish near 150).
    fn nm_iteration_scale(&self) -> usize {
        2
    }

    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        assert_eq!(
            internal.len(),
            6,
            "DoubleBathtubFamily expects 6 internal params"
        );
        internal.iter().map(|v| v.exp()).collect()
    }

    fn internal_to_params_into(&self, internal: &[f64], out: &mut [f64]) {
        assert_eq!(
            internal.len(),
            6,
            "DoubleBathtubFamily expects 6 internal params"
        );
        assert_eq!(out.len(), 6, "DoubleBathtubFamily writes 6 external params");
        for (o, v) in out.iter_mut().zip(internal) {
            *o = v.exp();
        }
    }

    fn predict_params_into(&self, params: &[f64], ts: &[f64], out: &mut [f64]) -> bool {
        if !DoubleBathtubModel::feasible(params) {
            return false;
        }
        let model = DoubleBathtubModel {
            alpha: params[0],
            beta: params[1],
            gamma: params[2],
            depth: params[3],
            onset: params[4],
            width: params[5],
        };
        model.predict_into(ts, out);
        true
    }

    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        if params.len() != 6 {
            return Err(CoreError::params("DoubleBathtub", "expected 6 parameters"));
        }
        DoubleBathtubModel::new(
            params[0], params[1], params[2], params[3], params[4], params[5],
        )?;
        Ok(params.iter().map(|v| v.ln()).collect())
    }

    fn build(&self, params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        if params.len() != 6 {
            return Err(CoreError::params("DoubleBathtub", "expected 6 parameters"));
        }
        Ok(Box::new(DoubleBathtubModel::new(
            params[0], params[1], params[2], params[3], params[4], params[5],
        )?))
    }

    fn initial_guesses(&self, series: &PerformanceSeries) -> Vec<Vec<f64>> {
        let nominal = series.nominal().max(1e-6);
        let t_end = series.times()[series.len() - 1].max(4.0);
        let values = series.values();
        // Locate two candidate troughs: global min, and the deepest local
        // min in the half not containing the global one.
        let (t1, p1) = series.trough().unwrap_or((t_end / 4.0, nominal));
        let mid = series.len() / 2;
        let (other_half, offset) = if (t1 as usize) < mid {
            (&values[mid..], mid)
        } else {
            (&values[..mid], 0)
        };
        let (i2, p2) = other_half
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &v)| (i + offset, v))
            .unwrap_or((series.len() / 2, nominal));
        let t2 = series.times()[i2];
        let (first_t, second_t, second_depth) = if t1 < t2 {
            (t1, t2, (nominal - p2).max(1e-3))
        } else {
            (t2, t1, (nominal - p1).max(1e-3))
        };
        let mut guesses = Vec::new();
        for beta in [0.1, 0.3, 0.8] {
            for width in [4.0, 8.0, 14.0] {
                guesses.push(vec![
                    nominal,
                    beta,
                    (0.05 * nominal / t_end).max(1e-6),
                    second_depth,
                    (second_t - width).max(first_t + 1.0).max(1.0),
                    width,
                ]);
            }
        }
        guesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::{fit_least_squares, FitConfig};
    use resilience_data::recessions::Recession;

    fn model() -> DoubleBathtubModel {
        DoubleBathtubModel::new(1.0, 0.5, 0.002, 0.03, 18.0, 8.0).unwrap()
    }

    #[test]
    fn rejects_nonpositive_parameters() {
        assert!(DoubleBathtubModel::new(0.0, 1.0, 1.0, 1.0, 1.0, 1.0).is_err());
        assert!(DoubleBathtubModel::new(1.0, 1.0, 1.0, 1.0, -1.0, 1.0).is_err());
        assert!(DoubleBathtubModel::new(1.0, 1.0, 1.0, 1.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn reduces_to_competing_risks_before_onset() {
        let m = model();
        let cr = crate::bathtub::CompetingRisksModel::new(1.0, 0.5, 0.002).unwrap();
        for &t in &[0.0, 5.0, 17.9] {
            assert!((m.predict(t) - cr.predict(t)).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn second_dip_peaks_at_onset_plus_width() {
        let m = model();
        // Hump maximum at τ + w = 26 with value d.
        let at_peak = m.second_dip(26.0);
        assert!((at_peak - 0.03).abs() < 1e-12);
        assert!(m.second_dip(22.0) < at_peak);
        assert!(m.second_dip(40.0) < at_peak);
        assert_eq!(m.second_dip(10.0), 0.0);
    }

    #[test]
    fn produces_two_local_minima() {
        // Base bathtub troughs near t ≈ 9; second episode peaks at
        // τ + w = 26 — well separated, so the curve is a genuine W.
        let m = DoubleBathtubModel::new(1.0, 0.05, 0.012, 0.06, 20.0, 6.0).unwrap();
        let v: Vec<f64> = (0..48).map(|i| m.predict(i as f64)).collect();
        let mut minima = 0;
        for i in 1..47 {
            if v[i] < v[i - 1] - 1e-9 && v[i] < v[i + 1] - 1e-9 {
                minima += 1;
            }
        }
        assert!(minima >= 2, "expected a W, found {minima} local minima");
    }

    #[test]
    fn closed_form_area_matches_quadrature() {
        let m = model();
        let analytic = m.area(0.0, 47.0).unwrap();
        let numeric =
            resilience_math::quad::adaptive_simpson(|t| m.predict(t), 0.0, 47.0, 1e-11, 42)
                .unwrap();
        assert!((analytic - numeric).abs() < 1e-7, "{analytic} vs {numeric}");
        // Window straddling the onset.
        let a2 = m.area(10.0, 30.0).unwrap();
        let n2 = resilience_math::quad::adaptive_simpson(|t| m.predict(t), 10.0, 30.0, 1e-11, 42)
            .unwrap();
        assert!((a2 - n2).abs() < 1e-7);
    }

    #[test]
    fn family_roundtrip_and_feasibility() {
        let fam = DoubleBathtubFamily;
        let params = vec![1.0, 0.5, 0.002, 0.03, 18.0, 8.0];
        let internal = fam.params_to_internal(&params).unwrap();
        let back = fam.internal_to_params(&internal);
        for (a, b) in params.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(fam.params_to_internal(&[1.0; 5]).is_err());
        assert!(fam.build(&[1.0, 1.0, 1.0, 1.0, 1.0, -1.0]).is_err());
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let fam = DoubleBathtubFamily;
        let params = [1.0, 0.5, 0.002, 0.03, 18.0, 8.0];
        let internal = fam.params_to_internal(&params).unwrap();
        let mut back = [0.0; 6];
        fam.internal_to_params_into(&internal, &mut back);
        assert_eq!(back.to_vec(), fam.internal_to_params(&internal));

        let ts = [0.0, 10.0, 26.0, 47.0];
        let mut out = [f64::NAN; 4];
        assert!(fam.predict_params_into(&params, &ts, &mut out));
        let model = fam.build(&params).unwrap();
        assert_eq!(out.to_vec(), model.predict_many(&ts));

        assert!(!fam.predict_params_into(&[1.0, 1.0, 1.0, 1.0, 1.0, -1.0], &ts, &mut out));
        assert!(!fam.predict_params_into(&[1.0; 5], &ts, &mut out));
    }

    #[test]
    fn fits_w_shaped_recession_better_than_single_bathtub() {
        let series = Recession::R1980.payroll_index();
        let train = series.split_at(43).unwrap().train;
        let config = FitConfig::default();
        let single =
            fit_least_squares(&crate::bathtub::CompetingRisksFamily, &train, &config).unwrap();
        let double = fit_least_squares(&DoubleBathtubFamily, &train, &config).unwrap();
        assert!(
            double.sse < 0.6 * single.sse,
            "double ({}) should clearly beat single ({}) on the W shape",
            double.sse,
            single.sse
        );
    }

    #[test]
    fn initial_guesses_feasible() {
        let series = Recession::R1980.payroll_index();
        let fam = DoubleBathtubFamily;
        for g in fam.initial_guesses(&series) {
            assert!(fam.build(&g).is_ok(), "infeasible guess {g:?}");
        }
    }
}
