//! Error type for the core modeling layer.

use std::fmt;

/// Errors produced by `resilience-core`.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Model parameters violated the family's validity constraints.
    InvalidParameters {
        /// Model family name.
        family: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// The requested operation has no solution (e.g. the curve never
    /// recovers to the requested level).
    NoSolution {
        /// Operation name.
        what: &'static str,
        /// Human-readable description.
        detail: String,
    },
    /// Invalid argument to an analysis routine.
    InvalidArgument {
        /// Routine name.
        what: &'static str,
        /// Human-readable description.
        detail: String,
    },
    /// Fitting failed.
    Fit(resilience_optim::OptimError),
    /// A statistical routine failed.
    Stats(resilience_stats::StatsError),
    /// A numerical routine failed.
    Math(resilience_math::MathError),
    /// A data-layer operation failed.
    Data(resilience_data::DataError),
    /// A numerical-domain guard rejected a value: NaN/∞ propagation was
    /// stopped at a pipeline boundary (see [`crate::guard`]).
    Numerical {
        /// Routine or model name where the guard fired.
        what: &'static str,
        /// What kind of domain violation was detected.
        violation: crate::guard::Violation,
        /// Human-readable description of the offending value.
        detail: String,
    },
    /// An operation exceeded its execution deadline and was stopped at a
    /// cooperative cancellation point (see [`crate::runtime`]).
    TimedOut {
        /// Operation name (e.g. `"fit_least_squares"`).
        what: &'static str,
    },
    /// An operation was cancelled via a
    /// [`CancelToken`](resilience_optim::CancelToken).
    Cancelled {
        /// Operation name.
        what: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameters { family, detail } => {
                write!(f, "{family}: invalid parameters: {detail}")
            }
            CoreError::NoSolution { what, detail } => write!(f, "{what}: no solution: {detail}"),
            CoreError::InvalidArgument { what, detail } => {
                write!(f, "{what}: invalid argument: {detail}")
            }
            CoreError::Fit(e) => write!(f, "fit failed: {e}"),
            CoreError::Stats(e) => write!(f, "statistics error: {e}"),
            CoreError::Math(e) => write!(f, "numerical error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::Numerical {
                what,
                violation,
                detail,
            } => {
                write!(
                    f,
                    "{what}: numerical domain violation ({violation}): {detail}"
                )
            }
            CoreError::TimedOut { what } => write!(f, "{what}: deadline exceeded"),
            CoreError::Cancelled { what } => write!(f, "{what}: cancelled"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Fit(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::Math(e) => Some(e),
            CoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<resilience_optim::OptimError> for CoreError {
    fn from(e: resilience_optim::OptimError) -> Self {
        CoreError::Fit(e)
    }
}

impl From<resilience_stats::StatsError> for CoreError {
    fn from(e: resilience_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<resilience_math::MathError> for CoreError {
    fn from(e: resilience_math::MathError) -> Self {
        CoreError::Math(e)
    }
}

impl From<resilience_data::DataError> for CoreError {
    fn from(e: resilience_data::DataError) -> Self {
        CoreError::Data(e)
    }
}

impl CoreError {
    /// Convenience constructor for [`CoreError::InvalidParameters`].
    pub fn params(family: &'static str, detail: impl Into<String>) -> Self {
        CoreError::InvalidParameters {
            family,
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`CoreError::InvalidArgument`].
    pub fn arg(what: &'static str, detail: impl Into<String>) -> Self {
        CoreError::InvalidArgument {
            what,
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`CoreError::NoSolution`].
    pub fn no_solution(what: &'static str, detail: impl Into<String>) -> Self {
        CoreError::NoSolution {
            what,
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`CoreError::Numerical`].
    pub fn guard(
        what: &'static str,
        violation: crate::guard::Violation,
        detail: impl Into<String>,
    ) -> Self {
        CoreError::Numerical {
            what,
            violation,
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`CoreError::TimedOut`].
    pub fn timed_out(what: &'static str) -> Self {
        CoreError::TimedOut { what }
    }

    /// Convenience constructor for [`CoreError::Cancelled`].
    pub fn cancelled(what: &'static str) -> Self {
        CoreError::Cancelled { what }
    }

    /// `true` when this error is a cooperative stop (deadline or
    /// cancellation) rather than a genuine failure — either directly
    /// ([`CoreError::TimedOut`] / [`CoreError::Cancelled`]) or wrapping a
    /// stopped optimizer run.
    #[must_use]
    pub fn is_stop(&self) -> bool {
        match self {
            CoreError::TimedOut { .. } | CoreError::Cancelled { .. } => true,
            CoreError::Fit(e) => e.is_stop(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::params("Quadratic", "gamma <= 0")
            .to_string()
            .contains("Quadratic"));
        assert!(CoreError::no_solution("recovery_time", "never recovers")
            .to_string()
            .contains("never recovers"));
        assert!(CoreError::arg("evaluate", "horizon too large")
            .to_string()
            .contains("horizon"));
        let g = CoreError::guard(
            "fit_least_squares",
            crate::guard::Violation::NonFiniteOutput,
            "final SSE is NaN",
        );
        let msg = g.to_string();
        assert!(msg.contains("fit_least_squares"), "{msg}");
        assert!(msg.contains("non-finite output"), "{msg}");
    }

    #[test]
    fn sources_preserved() {
        use std::error::Error;
        let e = CoreError::from(resilience_math::MathError::domain("f", "x"));
        assert!(e.source().is_some());
        let e2 = CoreError::from(resilience_optim::OptimError::config("c", "d"));
        assert!(e2.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }

    #[test]
    fn stop_errors_display_and_classify() {
        let t = CoreError::timed_out("fit_least_squares");
        assert_eq!(t.to_string(), "fit_least_squares: deadline exceeded");
        assert!(t.is_stop());
        let c = CoreError::cancelled("rank_models");
        assert_eq!(c.to_string(), "rank_models: cancelled");
        assert!(c.is_stop());
        // A wrapped stopped optimizer run is a stop too; plain errors are not.
        let wrapped = CoreError::Fit(resilience_optim::OptimError::TimedOut { evaluations: 3 });
        assert!(wrapped.is_stop());
        assert!(!CoreError::arg("x", "y").is_stop());
        assert!(!CoreError::from(resilience_optim::OptimError::config("c", "d")).is_stop());
    }
}
