//! Deterministic chaos injection for the supervised runtime (DESIGN.md §14).
//!
//! A [`ChaosPlan`] decides, for every (cell, family) job the fleet runs —
//! and for every retry attempt inside a job — whether to inject a fault
//! and which one. Decisions are drawn from counter-derived
//! [`XorShift64`] streams keyed by `(seed, cell, family)` (plus the
//! attempt number for transient faults), never from wall-clock or global
//! RNG state, so a chaos run is a pure function of the plan: bit-identical
//! across reruns and thread counts. This is the same discipline the data
//! layer's Poisson outage processes follow — here it is turned on the
//! runtime itself.
//!
//! The faults model the failure classes the supervisor must absorb:
//!
//! * [`ChaosFault::ForcedPanic`] — the job's fit closure panics
//!   (exercises panic isolation at the parallel boundary);
//! * [`ChaosFault::DeadlineBlowout`] — the job's deadline collapses to
//!   zero before fitting, so the solver's first cancellation point fires
//!   (exercises the timeout path through the *real* stop machinery);
//! * [`ChaosFault::RetryExhaustion`] — every fit attempt fails, consuming
//!   the whole retry schedule (exercises bounded-retry accounting);
//! * [`ChaosFault::ObserverLoss`] — the job's telemetry sink is dropped
//!   before fitting (exercises result paths under observer write
//!   failures: the fit must still land, only its trace is lost);
//! * transient per-attempt eval errors (see [`ChaosPlan::transient`]) —
//!   one attempt fails retryably, the next may succeed (exercises the
//!   retry schedule's recovery path).

use resilience_obs::ChaosKind;
use resilience_stats::XorShift64;

/// FNV-1a over a family name: a stable, dependency-free 64-bit key so
/// chaos streams depend on the family's identity, not its index in some
/// particular family list.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A job-boundary fault selected by [`ChaosPlan::job_fault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Panic inside the job's fit closure.
    ForcedPanic,
    /// Collapse the job's deadline to zero before fitting.
    DeadlineBlowout,
    /// Fail every fit attempt, exhausting the retry schedule.
    RetryExhaustion,
    /// Drop the job's telemetry sink before fitting.
    ObserverLoss,
}

impl ChaosFault {
    /// The telemetry classification for this fault
    /// ([`resilience_obs::Event::ChaosInjected`]).
    pub fn kind(self) -> ChaosKind {
        match self {
            ChaosFault::ForcedPanic => ChaosKind::Panic,
            ChaosFault::DeadlineBlowout => ChaosKind::Deadline,
            ChaosFault::RetryExhaustion => ChaosKind::Exhaustion,
            ChaosFault::ObserverLoss => ChaosKind::ObserverLoss,
        }
    }
}

/// A deterministic fault-injection plan.
///
/// Rates are per-mille (0–1000): each job draws one uniform value in
/// `[0, 1000)` from its `(seed, cell, family)` stream and walks the rate
/// thresholds in declaration order. Rates summing above 1000 saturate
/// (later faults are shadowed); the plan is still deterministic.
///
/// # Examples
///
/// ```
/// use resilience_core::chaos::ChaosPlan;
/// let plan = ChaosPlan {
///     seed: 7,
///     panic_per_mille: 1000, // every job panics
///     ..ChaosPlan::default()
/// };
/// let a = plan.job_fault(3, "Quadratic");
/// assert_eq!(a, plan.job_fault(3, "Quadratic")); // pure function
/// assert!(a.is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed of every chaos stream.
    pub seed: u64,
    /// Per-mille rate of [`ChaosFault::ForcedPanic`].
    pub panic_per_mille: u16,
    /// Per-mille rate of [`ChaosFault::DeadlineBlowout`].
    pub deadline_per_mille: u16,
    /// Per-mille rate of [`ChaosFault::RetryExhaustion`].
    pub exhaustion_per_mille: u16,
    /// Per-mille rate of [`ChaosFault::ObserverLoss`].
    pub observer_loss_per_mille: u16,
    /// Per-mille rate, *per attempt*, of a transient eval error.
    pub transient_per_mille: u16,
}

impl Default for ChaosPlan {
    /// A disabled plan: zero rates everywhere.
    fn default() -> Self {
        ChaosPlan {
            seed: 0xC4A05,
            panic_per_mille: 0,
            deadline_per_mille: 0,
            exhaustion_per_mille: 0,
            observer_loss_per_mille: 0,
            transient_per_mille: 0,
        }
    }
}

impl ChaosPlan {
    /// The substream key for one (cell, family) job. Mixing the family
    /// *name* (not index) keeps a family's fault schedule stable when the
    /// family list is reordered or extended.
    fn job_key(cell: u32, family: &str) -> u64 {
        (u64::from(cell) << 32) ^ fnv1a(family)
    }

    /// The job-boundary fault for `(cell, family)`, if any.
    ///
    /// Pure function of `(self.seed, cell, family)`.
    pub fn job_fault(&self, cell: u32, family: &str) -> Option<ChaosFault> {
        let mut rng = XorShift64::stream(self.seed, Self::job_key(cell, family));
        let draw = (rng.next_u64() % 1000) as u16;
        let mut edge = 0u16;
        for (rate, fault) in [
            (self.panic_per_mille, ChaosFault::ForcedPanic),
            (self.deadline_per_mille, ChaosFault::DeadlineBlowout),
            (self.exhaustion_per_mille, ChaosFault::RetryExhaustion),
            (self.observer_loss_per_mille, ChaosFault::ObserverLoss),
        ] {
            edge = edge.saturating_add(rate);
            if draw < edge {
                return Some(fault);
            }
        }
        None
    }

    /// Whether attempt `attempt` (1-based) of the `(cell, family)` job
    /// suffers a transient eval error.
    ///
    /// Pure function of `(self.seed, cell, family, attempt)`; a job whose
    /// first attempt is hit can still succeed on a retry.
    pub fn transient(&self, cell: u32, family: &str, attempt: u32) -> bool {
        if self.transient_per_mille == 0 {
            return false;
        }
        let key = Self::job_key(cell, family) ^ (u64::from(attempt) << 17);
        let mut rng = XorShift64::stream(self.seed ^ 0x7A_17, key);
        ((rng.next_u64() % 1000) as u16) < self.transient_per_mille
    }

    /// Whether this plan can inject anything at all.
    pub fn enabled(&self) -> bool {
        self.panic_per_mille > 0
            || self.deadline_per_mille > 0
            || self.exhaustion_per_mille > 0
            || self.observer_loss_per_mille > 0
            || self.transient_per_mille > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_draws_are_pure_functions_of_the_plan() {
        let plan = ChaosPlan {
            seed: 42,
            panic_per_mille: 100,
            deadline_per_mille: 100,
            exhaustion_per_mille: 100,
            observer_loss_per_mille: 100,
            transient_per_mille: 200,
        };
        for cell in 0..64u32 {
            for family in ["Quadratic", "Hjorth", "MixtureW"] {
                assert_eq!(plan.job_fault(cell, family), plan.job_fault(cell, family));
                for attempt in 1..=3u32 {
                    assert_eq!(
                        plan.transient(cell, family, attempt),
                        plan.transient(cell, family, attempt)
                    );
                }
            }
        }
    }

    #[test]
    fn rates_shape_the_fault_mix() {
        let always = ChaosPlan {
            panic_per_mille: 1000,
            ..ChaosPlan::default()
        };
        let never = ChaosPlan::default();
        for cell in 0..32u32 {
            assert_eq!(always.job_fault(cell, "Q"), Some(ChaosFault::ForcedPanic));
            assert_eq!(never.job_fault(cell, "Q"), None);
            assert!(!never.transient(cell, "Q", 1));
        }
        assert!(always.enabled());
        assert!(!never.enabled());
    }

    #[test]
    fn streams_decorrelate_across_cells_and_families() {
        // With a 25% aggregate rate, 64 cells x 2 families must see both
        // faulted and clean jobs — a degenerate keying (every job sharing
        // one stream) would make them all equal.
        let plan = ChaosPlan {
            seed: 7,
            panic_per_mille: 125,
            deadline_per_mille: 125,
            ..ChaosPlan::default()
        };
        let mut faulted = 0;
        let mut clean = 0;
        for cell in 0..64u32 {
            for family in ["Quadratic", "Hjorth"] {
                match plan.job_fault(cell, family) {
                    Some(_) => faulted += 1,
                    None => clean += 1,
                }
            }
        }
        assert!(faulted > 0 && clean > 0, "faulted={faulted} clean={clean}");
    }
}
