//! Recovery trend functions `a₂(t)` for the mixture model.

/// The recovery trend `a₂(t; β)` of the paper's Eq. 7. The paper
/// considers four increasing forms characteristic of economic recovery:
/// `{β, βt, e^{βt}, β·ln t}`, and evaluates `β·ln t` in its Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trend {
    /// `a₂(t) = β` — recovery saturates at a constant level.
    Constant,
    /// `a₂(t) = β·t` — linear growth.
    Linear,
    /// `a₂(t) = e^{βt}` — exponential growth (note: equals 1 at `t = 0`
    /// regardless of β).
    Exponential,
    /// `a₂(t) = β·ln t` (0 for `t ≤ 1`) — the slowly compounding growth
    /// the paper uses for its recession experiments.
    ///
    /// # The `t ≤ 1` convention
    ///
    /// `ln t` is singular at `t → 0⁺` and negative on `(0, 1)`; a raw
    /// `β·ln t` would send the recovery term to −∞ at the hazard onset
    /// and make it *subtract* performance before the first month. The
    /// convention here clamps `a₂` to exactly 0 on `t ≤ 1`. The clamped
    /// form is **continuous at `t = 1`** — both branches evaluate to 0
    /// there (`β·ln 1 = 0`), so the mixture curve `P(t)` has no jump;
    /// only the derivative `a₂′` is discontinuous (0 vs `β/t`), which
    /// the least-squares fitter sees as a flat region, not a cliff. See
    /// DESIGN.md §8.
    Logarithmic,
}

impl Trend {
    /// All four trends in the paper's order.
    pub const ALL: [Trend; 4] = [
        Trend::Constant,
        Trend::Linear,
        Trend::Exponential,
        Trend::Logarithmic,
    ];

    /// Evaluates `a₂(t; β)`.
    ///
    /// The logarithmic trend is defined as 0 for `t ≤ 1` (clamp
    /// convention; see [`Trend::Logarithmic`] and DESIGN.md §8) so the
    /// mixture stays finite at the hazard onset and the value is
    /// continuous — though not differentiable — at `t = 1`.
    #[must_use]
    pub fn eval(&self, beta: f64, t: f64) -> f64 {
        match self {
            Trend::Constant => beta,
            Trend::Linear => beta * t,
            Trend::Exponential => (beta * t).exp(),
            Trend::Logarithmic => {
                if t <= 1.0 {
                    0.0
                } else {
                    beta * t.ln()
                }
            }
        }
    }

    /// Partial derivative `∂a₂/∂β` at `(β, t)` — used by the analytic
    /// mixture Jacobian.
    ///
    /// The logarithmic trend's clamp makes `a₂` identically 0 on
    /// `t ≤ 1`, so its β-derivative is 0 there and `ln t` beyond.
    #[must_use]
    pub fn beta_gradient(&self, beta: f64, t: f64) -> f64 {
        match self {
            Trend::Constant => 1.0,
            Trend::Linear => t,
            Trend::Exponential => t * (beta * t).exp(),
            Trend::Logarithmic => {
                if t <= 1.0 {
                    0.0
                } else {
                    t.ln()
                }
            }
        }
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Trend::Constant => "β",
            Trend::Linear => "βt",
            Trend::Exponential => "e^{βt}",
            Trend::Logarithmic => "β·ln t",
        }
    }
}

impl std::fmt::Display for Trend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ignores_time() {
        assert_eq!(Trend::Constant.eval(0.7, 0.0), 0.7);
        assert_eq!(Trend::Constant.eval(0.7, 100.0), 0.7);
    }

    #[test]
    fn linear_scales_with_time() {
        assert_eq!(Trend::Linear.eval(0.5, 4.0), 2.0);
        assert_eq!(Trend::Linear.eval(0.5, 0.0), 0.0);
    }

    #[test]
    fn exponential_is_one_at_origin() {
        assert_eq!(Trend::Exponential.eval(0.3, 0.0), 1.0);
        assert!((Trend::Exponential.eval(0.1, 10.0) - 1.0f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn logarithmic_zero_before_one() {
        assert_eq!(Trend::Logarithmic.eval(2.0, 0.0), 0.0);
        assert_eq!(Trend::Logarithmic.eval(2.0, 1.0), 0.0);
        assert!((Trend::Logarithmic.eval(2.0, std::f64::consts::E) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn logarithmic_is_continuous_at_one() {
        // Both branches evaluate to 0 at t = 1; approaching from either
        // side must not jump.
        let beta = 2.0;
        let eps = 1e-9;
        assert_eq!(Trend::Logarithmic.eval(beta, 1.0), 0.0);
        assert_eq!(Trend::Logarithmic.eval(beta, 1.0 - eps), 0.0);
        let above = Trend::Logarithmic.eval(beta, 1.0 + eps);
        assert!(above.abs() < 1e-8, "jump at t = 1⁺: {above}");
    }

    #[test]
    fn all_trends_finite_near_origin() {
        // The raw β·ln t would be −∞ at t = 0; the clamp keeps every
        // trend finite over the whole observation range.
        for trend in Trend::ALL {
            for i in 0..=100 {
                let t = i as f64 * 0.02; // 0.0 ..= 2.0, straddling t = 1
                let v = trend.eval(0.4, t);
                assert!(v.is_finite(), "{trend} at t = {t}: {v}");
            }
        }
    }

    #[test]
    fn all_trends_increasing_for_positive_beta() {
        for trend in Trend::ALL {
            let early = trend.eval(0.4, 2.0);
            let late = trend.eval(0.4, 30.0);
            assert!(late >= early, "{trend} decreased");
        }
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> = Trend::ALL.iter().map(Trend::label).collect();
        assert_eq!(labels.len(), 4);
    }
}
