//! Mixture-distribution resilience models (paper §II-B, Eq. 7).
//!
//! The curve is a competition between a degradation process and a
//! recovery process:
//!
//! ```text
//! P(t) = a₁(t)·(1 − F₁(t)) + a₂(t)·F₂(t)
//! ```
//!
//! with `a₁(t) = 1` (the paper's simplification), `F₁` the degradation
//! CDF, `F₂` the recovery CDF, and `a₂(t)` an increasing recovery trend.
//! The paper's Table III evaluates the four pairings of Exponential and
//! Weibull components under `a₂(t) = β·ln t`; this module supports any
//! [`ComponentKind`] pairing under any [`Trend`].

mod component;
mod trend;

pub use component::{BuiltComponent, ComponentKind};
pub use trend::Trend;

use crate::model::{sse_batch_kernel, ModelFamily, ResilienceModel};
use crate::CoreError;
use resilience_data::PerformanceSeries;
use resilience_math::linalg::Matrix;

/// A fitted mixture resilience model (paper Eq. 7 with `a₁ = 1`).
///
/// # Examples
///
/// ```
/// use resilience_core::mixture::{ComponentKind, MixtureModel, Trend};
/// use resilience_core::ResilienceModel;
///
/// // Wei-Exp with a logarithmic recovery trend, the paper's best
/// // performing combination on the 1990-93 data.
/// let m = MixtureModel::new(
///     ComponentKind::Weibull, vec![2.0, 15.0],
///     ComponentKind::Exponential, vec![0.08],
///     Trend::Logarithmic, 0.30,
/// )?;
/// assert!((m.predict(0.0) - 1.0).abs() < 1e-12); // starts at nominal
/// # Ok::<(), resilience_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MixtureModel {
    f1_kind: ComponentKind,
    f1_params: Vec<f64>,
    f1: BuiltComponent,
    f2_kind: ComponentKind,
    f2_params: Vec<f64>,
    f2: BuiltComponent,
    trend: Trend,
    beta: f64,
    name: &'static str,
}

impl MixtureModel {
    /// Creates a mixture model from its components, trend, and trend
    /// coefficient `β`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] for infeasible component
    /// parameters or a non-finite/non-positive `β`.
    pub fn new(
        f1_kind: ComponentKind,
        f1_params: Vec<f64>,
        f2_kind: ComponentKind,
        f2_params: Vec<f64>,
        trend: Trend,
        beta: f64,
    ) -> Result<Self, CoreError> {
        if !(beta > 0.0) || !beta.is_finite() {
            return Err(CoreError::params(
                "Mixture",
                format!("trend coefficient β must be positive and finite, got {beta}"),
            ));
        }
        let f1 = f1_kind.build(&f1_params)?;
        let f2 = f2_kind.build(&f2_params)?;
        Ok(MixtureModel {
            f1_kind,
            f1_params,
            f1,
            f2_kind,
            f2_params,
            f2,
            trend,
            beta,
            name: combo_name(f1_kind, f2_kind),
        })
    }

    /// The degradation component kind.
    #[must_use]
    pub fn degradation_kind(&self) -> ComponentKind {
        self.f1_kind
    }

    /// The recovery component kind.
    #[must_use]
    pub fn recovery_kind(&self) -> ComponentKind {
        self.f2_kind
    }

    /// The recovery trend.
    #[must_use]
    pub fn trend(&self) -> Trend {
        self.trend
    }

    /// The trend coefficient `β`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The degradation term `1 − F₁(t)` alone.
    #[must_use]
    pub fn degradation_term(&self, t: f64) -> f64 {
        self.f1.survival(t)
    }

    /// The recovery term `a₂(t)·F₂(t)` alone.
    #[must_use]
    pub fn recovery_term(&self, t: f64) -> f64 {
        self.trend.eval(self.beta, t) * self.f2.cdf(t)
    }
}

impl ResilienceModel for MixtureModel {
    fn name(&self) -> &'static str {
        self.name
    }

    fn params(&self) -> Vec<f64> {
        let mut p = self.f1_params.clone();
        p.extend_from_slice(&self.f2_params);
        p.push(self.beta);
        p
    }

    fn predict(&self, t: f64) -> f64 {
        self.degradation_term(t) + self.recovery_term(t)
    }

    fn predict_into(&self, ts: &[f64], out: &mut [f64]) {
        assert_eq!(
            ts.len(),
            out.len(),
            "predict_into requires ts and out of equal length"
        );
        for (o, &t) in out.iter_mut().zip(ts) {
            *o = self.f1.survival(t) + self.trend.eval(self.beta, t) * self.f2.cdf(t);
        }
    }
}

/// Table label for a component pairing (e.g. `"Wei-Exp"`).
#[must_use]
pub fn combo_name(f1: ComponentKind, f2: ComponentKind) -> &'static str {
    use ComponentKind as K;
    match (f1, f2) {
        (K::Exponential, K::Exponential) => "Exp-Exp",
        (K::Exponential, K::Weibull) => "Exp-Wei",
        (K::Exponential, K::Gamma) => "Exp-Gam",
        (K::Exponential, K::LogNormal) => "Exp-LogN",
        (K::Weibull, K::Exponential) => "Wei-Exp",
        (K::Weibull, K::Weibull) => "Wei-Wei",
        (K::Weibull, K::Gamma) => "Wei-Gam",
        (K::Weibull, K::LogNormal) => "Wei-LogN",
        (K::Gamma, K::Exponential) => "Gam-Exp",
        (K::Gamma, K::Weibull) => "Gam-Wei",
        (K::Gamma, K::Gamma) => "Gam-Gam",
        (K::Gamma, K::LogNormal) => "Gam-LogN",
        (K::LogNormal, K::Exponential) => "LogN-Exp",
        (K::LogNormal, K::Weibull) => "LogN-Wei",
        (K::LogNormal, K::Gamma) => "LogN-Gam",
        (K::LogNormal, K::LogNormal) => "LogN-LogN",
    }
}

/// The [`ModelFamily`] for mixture models with fixed component kinds and
/// trend.
///
/// Parameters are ordered `[F₁ params…, F₂ params…, β]`. The internal
/// space log-transforms every positive parameter (all but LogNormal's μ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixtureFamily {
    /// Degradation component kind.
    pub f1: ComponentKind,
    /// Recovery component kind.
    pub f2: ComponentKind,
    /// Recovery trend.
    pub trend: Trend,
}

impl MixtureFamily {
    /// The paper's four evaluated combinations (Exp/Wei pairings) under
    /// the logarithmic trend of its Table III.
    #[must_use]
    pub fn paper_combinations() -> Vec<MixtureFamily> {
        use ComponentKind as K;
        [
            (K::Exponential, K::Exponential),
            (K::Weibull, K::Exponential),
            (K::Exponential, K::Weibull),
            (K::Weibull, K::Weibull),
        ]
        .into_iter()
        .map(|(f1, f2)| MixtureFamily {
            f1,
            f2,
            trend: Trend::Logarithmic,
        })
        .collect()
    }

    /// Positivity flags for the external parameter vector.
    fn positivity(&self) -> Vec<bool> {
        let mut flags = Vec::with_capacity(self.n_params());
        for i in 0..self.f1.n_params() {
            flags.push(self.f1.param_positive(i));
        }
        for i in 0..self.f2.n_params() {
            flags.push(self.f2.param_positive(i));
        }
        flags.push(true); // β > 0
        flags
    }

    fn split_params<'a>(&self, params: &'a [f64]) -> (&'a [f64], &'a [f64], f64) {
        let n1 = self.f1.n_params();
        let n2 = self.f2.n_params();
        (&params[..n1], &params[n1..n1 + n2], params[n1 + n2])
    }

    /// Positivity flag for external parameter `i` without materializing
    /// the whole flag vector (hot-path counterpart of `positivity`).
    fn param_positive_at(&self, i: usize) -> bool {
        let n1 = self.f1.n_params();
        let n2 = self.f2.n_params();
        if i < n1 {
            self.f1.param_positive(i)
        } else if i < n1 + n2 {
            self.f2.param_positive(i - n1)
        } else {
            true // β > 0
        }
    }
}

impl ModelFamily for MixtureFamily {
    fn name(&self) -> &'static str {
        combo_name(self.f1, self.f2)
    }

    fn n_params(&self) -> usize {
        self.f1.n_params() + self.f2.n_params() + 1
    }

    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        assert_eq!(
            internal.len(),
            self.n_params(),
            "internal dimension mismatch"
        );
        internal
            .iter()
            .zip(self.positivity())
            .map(|(&v, positive)| if positive { v.exp() } else { v })
            .collect()
    }

    fn internal_to_params_into(&self, internal: &[f64], out: &mut [f64]) {
        assert_eq!(
            internal.len(),
            self.n_params(),
            "internal dimension mismatch"
        );
        assert_eq!(out.len(), self.n_params(), "external dimension mismatch");
        for (i, (o, &v)) in out.iter_mut().zip(internal).enumerate() {
            *o = if self.param_positive_at(i) {
                v.exp()
            } else {
                v
            };
        }
    }

    fn predict_params_into(&self, params: &[f64], ts: &[f64], out: &mut [f64]) -> bool {
        assert_eq!(
            ts.len(),
            out.len(),
            "predict_params_into requires ts and out of equal length"
        );
        if params.len() != self.n_params() {
            return false;
        }
        let (p1, p2, beta) = self.split_params(params);
        if !(beta > 0.0) || !beta.is_finite() {
            return false;
        }
        let (Some(f1), Some(f2)) = (self.f1.try_build(p1), self.f2.try_build(p2)) else {
            return false;
        };
        for (o, &t) in out.iter_mut().zip(ts) {
            *o = f1.survival(t) + self.trend.eval(beta, t) * f2.cdf(t);
        }
        true
    }

    /// Hand-derived partials of `P(t) = (1 − F₁(t)) + a₂(β, t)·F₂(t)`,
    /// chain-ruled through the all-log internal map (`∂θ/∂u = θ`; every
    /// Exp/Wei parameter and β is positive):
    ///
    /// * degradation params: `∂P/∂u_j = −θ_j·∂F₁/∂θ_j`
    /// * recovery params: `∂P/∂u_j = a₂(β, t)·θ_j·∂F₂/∂θ_j`
    /// * trend coefficient: `∂P/∂u_β = β·(∂a₂/∂β)·F₂(t)`
    ///
    /// Only the paper's Exp/Wei pairings have closed-form component
    /// gradients; Gamma/LogNormal mixtures return `false` and the LM
    /// polish falls back to finite differences.
    fn predict_jacobian_into(
        &self,
        internal: &[f64],
        params: &[f64],
        ts: &[f64],
        out: &mut Matrix,
    ) -> bool {
        let n = self.n_params();
        if internal.len() != n
            || params.len() != n
            || !self.f1.has_cdf_gradient()
            || !self.f2.has_cdf_gradient()
        {
            return false;
        }
        let (p1, p2, beta) = self.split_params(params);
        if !(beta > 0.0) || !beta.is_finite() {
            return false;
        }
        let (Some(f1), Some(f2)) = (self.f1.try_build(p1), self.f2.try_build(p2)) else {
            return false;
        };
        let (n1, n2) = (self.f1.n_params(), self.f2.n_params());
        let mut g = [0.0_f64; 2]; // component gradient scratch (≤ 2 params)
        for (i, &t) in ts.iter().enumerate() {
            let trend = self.trend.eval(beta, t);
            f1.cdf_gradient(t, &mut g[..n1]);
            for (j, &gj) in g[..n1].iter().enumerate() {
                out[(i, j)] = -p1[j] * gj;
            }
            f2.cdf_gradient(t, &mut g[..n2]);
            for (j, &gj) in g[..n2].iter().enumerate() {
                out[(i, n1 + j)] = trend * p2[j] * gj;
            }
            out[(i, n1 + n2)] = beta * self.trend.beta_gradient(beta, t) * f2.cdf(t);
        }
        true
    }

    fn sse_batch_into(&self, internals: &[f64], ts: &[f64], ys: &[f64], out: &mut [f64]) -> bool {
        let n = self.n_params();
        let (n1, n2) = (self.f1.n_params(), self.f2.n_params());
        sse_batch_kernel(
            n,
            internals,
            ts,
            ys,
            out,
            |u| {
                // Identical arithmetic to `internal_to_params_into` +
                // the feasibility checks of `predict_params_into`.
                let mut p = [0.0_f64; 8];
                for (i, (o, &v)) in p[..n].iter_mut().zip(u).enumerate() {
                    *o = if self.param_positive_at(i) {
                        v.exp()
                    } else {
                        v
                    };
                }
                let beta = p[n1 + n2];
                if !(beta > 0.0) || !beta.is_finite() {
                    return None;
                }
                let f1 = self.f1.try_build(&p[..n1])?;
                let f2 = self.f2.try_build(&p[n1..n1 + n2])?;
                Some((f1, f2, beta))
            },
            |&(f1, f2, beta), t| {
                // Same expression as the scalar `predict_params_into`.
                f1.survival(t) + self.trend.eval(beta, t) * f2.cdf(t)
            },
        );
        true
    }

    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        if params.len() != self.n_params() {
            return Err(CoreError::params(
                "Mixture",
                format!(
                    "expected {} parameters, got {}",
                    self.n_params(),
                    params.len()
                ),
            ));
        }
        params
            .iter()
            .zip(self.positivity())
            .map(|(&v, positive)| {
                if positive {
                    if v > 0.0 {
                        Ok(v.ln())
                    } else {
                        Err(CoreError::params(
                            "Mixture",
                            format!("parameter {v} must be positive"),
                        ))
                    }
                } else {
                    Ok(v)
                }
            })
            .collect()
    }

    fn build(&self, params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        if params.len() != self.n_params() {
            return Err(CoreError::params(
                "Mixture",
                format!(
                    "expected {} parameters, got {}",
                    self.n_params(),
                    params.len()
                ),
            ));
        }
        let (p1, p2, beta) = self.split_params(params);
        Ok(Box::new(MixtureModel::new(
            self.f1,
            p1.to_vec(),
            self.f2,
            p2.to_vec(),
            self.trend,
            beta,
        )?))
    }

    fn initial_guesses(&self, series: &PerformanceSeries) -> Vec<Vec<f64>> {
        let t_end = series.times()[series.len() - 1].max(2.0);
        let (t_d, _) = series.trough().unwrap_or((t_end / 3.0, series.nominal()));
        let t_d = t_d.max(1.0);
        let end_val = series.values()[series.len() - 1].max(0.1);
        // β scaled so a₂(t_end)·1 ≈ the end level.
        let beta_guess = match self.trend {
            Trend::Constant => end_val,
            Trend::Linear => end_val / t_end,
            Trend::Exponential => (end_val.ln() / t_end).abs().max(1e-4),
            Trend::Logarithmic => end_val / t_end.ln(),
        };
        let mut guesses = Vec::new();
        for p1 in self.f1.candidate_params(t_d) {
            for p2 in self.f2.candidate_params(0.5 * (t_d + t_end)) {
                for scale in [1.0, 0.5] {
                    let mut g = p1.clone();
                    g.extend_from_slice(&p2);
                    g.push(beta_guess * scale);
                    guesses.push(g);
                }
            }
        }
        guesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wei_exp() -> MixtureModel {
        MixtureModel::new(
            ComponentKind::Weibull,
            vec![2.0, 15.0],
            ComponentKind::Exponential,
            vec![0.08],
            Trend::Logarithmic,
            0.30,
        )
        .unwrap()
    }

    #[test]
    fn starts_at_nominal_one() {
        // a₁(0)(1 − F₁(0)) = 1, and the log trend is 0 at t = 0.
        assert!((wei_exp().predict(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_beta_and_params() {
        assert!(MixtureModel::new(
            ComponentKind::Exponential,
            vec![1.0],
            ComponentKind::Exponential,
            vec![1.0],
            Trend::Logarithmic,
            0.0,
        )
        .is_err());
        assert!(MixtureModel::new(
            ComponentKind::Exponential,
            vec![-1.0],
            ComponentKind::Exponential,
            vec![1.0],
            Trend::Logarithmic,
            0.5,
        )
        .is_err());
    }

    #[test]
    fn dips_then_recovers() {
        let m = wei_exp();
        let early = m.predict(0.0);
        let trough_region: f64 = (5..25)
            .map(|i| m.predict(i as f64))
            .fold(f64::INFINITY, f64::min);
        let late = m.predict(47.0);
        assert!(trough_region < early, "curve must dip below nominal");
        assert!(late > trough_region, "curve must recover from the trough");
    }

    #[test]
    fn terms_decompose() {
        let m = wei_exp();
        for &t in &[0.0, 5.0, 20.0, 47.0] {
            let sum = m.degradation_term(t) + m.recovery_term(t);
            assert!((m.predict(t) - sum).abs() < 1e-14);
        }
    }

    #[test]
    fn params_order_and_count() {
        let m = wei_exp();
        assert_eq!(m.params(), vec![2.0, 15.0, 0.08, 0.30]);
        assert_eq!(m.n_params(), 4);
        assert_eq!(m.name(), "Wei-Exp");
    }

    #[test]
    fn family_dimensions() {
        for fam in MixtureFamily::paper_combinations() {
            let want = match fam.name() {
                "Exp-Exp" => 3,
                "Wei-Exp" | "Exp-Wei" => 4,
                "Wei-Wei" => 5,
                other => panic!("unexpected combo {other}"),
            };
            assert_eq!(fam.n_params(), want, "{}", fam.name());
        }
    }

    #[test]
    fn family_roundtrip() {
        let fam = MixtureFamily {
            f1: ComponentKind::Weibull,
            f2: ComponentKind::Exponential,
            trend: Trend::Logarithmic,
        };
        let params = vec![1.7, 12.0, 0.05, 0.25];
        let internal = fam.params_to_internal(&params).unwrap();
        let back = fam.internal_to_params(&internal);
        for (a, b) in params.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn lognormal_mu_is_unbounded() {
        let fam = MixtureFamily {
            f1: ComponentKind::LogNormal,
            f2: ComponentKind::Exponential,
            trend: Trend::Linear,
        };
        // μ = −1 is feasible for LogNormal.
        let params = vec![-1.0, 0.5, 0.1, 0.01];
        let internal = fam.params_to_internal(&params).unwrap();
        let back = fam.internal_to_params(&internal);
        assert!((back[0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn family_build_validates() {
        let fam = MixtureFamily {
            f1: ComponentKind::Exponential,
            f2: ComponentKind::Exponential,
            trend: Trend::Logarithmic,
        };
        assert!(fam.build(&[1.0, 1.0, 0.5]).is_ok());
        assert!(fam.build(&[1.0, 1.0]).is_err());
        assert!(fam.build(&[1.0, -1.0, 0.5]).is_err());
    }

    #[test]
    fn initial_guesses_buildable() {
        let s = resilience_data::recessions::Recession::R1990_93.payroll_index();
        for fam in MixtureFamily::paper_combinations() {
            let guesses = fam.initial_guesses(&s);
            assert!(!guesses.is_empty(), "{}", fam.name());
            for g in &guesses {
                assert!(
                    fam.build(g).is_ok(),
                    "{}: infeasible guess {g:?}",
                    fam.name()
                );
            }
        }
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let fam = MixtureFamily {
            f1: ComponentKind::Weibull,
            f2: ComponentKind::Exponential,
            trend: Trend::Logarithmic,
        };
        let internal = fam.params_to_internal(&[1.7, 12.0, 0.05, 0.25]).unwrap();
        let mut params = [0.0; 4];
        fam.internal_to_params_into(&internal, &mut params);
        assert_eq!(params.to_vec(), fam.internal_to_params(&internal));

        let ts = [0.0, 4.0, 15.0, 40.0];
        let mut out = [f64::NAN; 4];
        assert!(fam.predict_params_into(&params, &ts, &mut out));
        let model = fam.build(&params).unwrap();
        assert_eq!(out.to_vec(), model.predict_many(&ts));

        // Infeasible: negative Weibull shape, and bad β.
        assert!(!fam.predict_params_into(&[-1.7, 12.0, 0.05, 0.25], &ts, &mut out));
        assert!(!fam.predict_params_into(&[1.7, 12.0, 0.05, 0.0], &ts, &mut out));
        assert!(!fam.predict_params_into(&[1.7, 12.0, 0.05], &ts, &mut out));
    }

    #[test]
    fn paper_combination_names() {
        let names: Vec<&str> = MixtureFamily::paper_combinations()
            .iter()
            .map(|f| f.name())
            .collect();
        assert_eq!(names, vec!["Exp-Exp", "Wei-Exp", "Exp-Wei", "Wei-Wei"]);
    }

    #[test]
    fn mixture_finite_and_continuous_across_t_one_for_all_trends() {
        // Regression for the log-trend t ≤ 1 clamp: the mixture P(t)
        // must stay finite everywhere and continuous across t = 1 for
        // every trend form (the clamp kinks the derivative, never the
        // value).
        for trend in Trend::ALL {
            let m = MixtureModel::new(
                ComponentKind::Weibull,
                vec![2.0, 15.0],
                ComponentKind::Exponential,
                vec![0.08],
                trend,
                0.30,
            )
            .unwrap();
            // Dense sweep over [0, 47] including fractional times.
            for i in 0..=470 {
                let t = i as f64 * 0.1;
                let v = m.predict(t);
                assert!(v.is_finite(), "{trend} at t = {t}: {v}");
            }
            // Continuity at t = 1: values an ε apart must be close.
            let eps = 1e-7;
            let below = m.predict(1.0 - eps);
            let at = m.predict(1.0);
            let above = m.predict(1.0 + eps);
            assert!(
                (at - below).abs() < 1e-5 && (above - at).abs() < 1e-5,
                "{trend}: P jumps across t = 1 ({below} / {at} / {above})"
            );
        }
    }

    #[test]
    fn exponential_trend_is_one_at_origin() {
        // With the exponential trend, P(0) = 1 + F₂(0) = 1 (F₂(0) = 0).
        let m = MixtureModel::new(
            ComponentKind::Exponential,
            vec![0.1],
            ComponentKind::Exponential,
            vec![0.05],
            Trend::Exponential,
            0.001,
        )
        .unwrap();
        assert!((m.predict(0.0) - 1.0).abs() < 1e-12);
    }
}
