//! Mixture component distributions.

use crate::CoreError;
use resilience_stats::{ContinuousDistribution, Exponential, Gamma, LogNormal, Weibull};

/// Which distribution family a mixture component uses.
///
/// The paper evaluates Exponential and Weibull (its Eq. 23); Gamma and
/// LogNormal are workspace extensions (DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// Exponential(rate) — 1 parameter.
    Exponential,
    /// Weibull(shape, scale) — 2 parameters.
    Weibull,
    /// Gamma(shape, rate) — 2 parameters (extension).
    Gamma,
    /// LogNormal(μ, σ) — 2 parameters (extension).
    LogNormal,
}

impl ComponentKind {
    /// Number of parameters for this component.
    #[must_use]
    pub fn n_params(&self) -> usize {
        match self {
            ComponentKind::Exponential => 1,
            ComponentKind::Weibull | ComponentKind::Gamma | ComponentKind::LogNormal => 2,
        }
    }

    /// Short label used in the paper's tables (`Exp`, `Wei`) and the
    /// extension labels (`Gam`, `LogN`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ComponentKind::Exponential => "Exp",
            ComponentKind::Weibull => "Wei",
            ComponentKind::Gamma => "Gam",
            ComponentKind::LogNormal => "LogN",
        }
    }

    /// Builds the concrete distribution from its parameter slice.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] for the wrong parameter
    /// count or infeasible values.
    pub fn build(&self, params: &[f64]) -> Result<BuiltComponent, CoreError> {
        if params.len() != self.n_params() {
            return Err(CoreError::params(
                "MixtureComponent",
                format!(
                    "{} takes {} parameters, got {}",
                    self.label(),
                    self.n_params(),
                    params.len()
                ),
            ));
        }
        let built = match self {
            ComponentKind::Exponential => BuiltComponent::Exponential(Exponential::new(params[0])?),
            ComponentKind::Weibull => BuiltComponent::Weibull(Weibull::new(params[0], params[1])?),
            ComponentKind::Gamma => BuiltComponent::Gamma(Gamma::new(params[0], params[1])?),
            ComponentKind::LogNormal => {
                BuiltComponent::LogNormal(LogNormal::new(params[0], params[1])?)
            }
        };
        Ok(built)
    }

    /// Allocation-free variant of [`ComponentKind::build`] for the
    /// fitting hot path: returns `None` instead of constructing an error
    /// for the wrong parameter count or infeasible values.
    #[must_use]
    pub fn try_build(&self, params: &[f64]) -> Option<BuiltComponent> {
        if params.len() != self.n_params() {
            return None;
        }
        // The distribution constructors carry static-str errors, so even
        // the failure path here allocates nothing.
        Some(match self {
            ComponentKind::Exponential => {
                BuiltComponent::Exponential(Exponential::new(params[0]).ok()?)
            }
            ComponentKind::Weibull => {
                BuiltComponent::Weibull(Weibull::new(params[0], params[1]).ok()?)
            }
            ComponentKind::Gamma => BuiltComponent::Gamma(Gamma::new(params[0], params[1]).ok()?),
            ComponentKind::LogNormal => {
                BuiltComponent::LogNormal(LogNormal::new(params[0], params[1]).ok()?)
            }
        })
    }

    /// Whether [`BuiltComponent::cdf_gradient`] has a closed form for
    /// this kind (the paper's Exponential and Weibull components; the
    /// Gamma and LogNormal extensions go through incomplete-function
    /// series and fall back to finite differences).
    #[must_use]
    pub fn has_cdf_gradient(&self) -> bool {
        matches!(self, ComponentKind::Exponential | ComponentKind::Weibull)
    }

    /// Whether parameter `i` must be positive (`true` for every parameter
    /// except LogNormal's location μ).
    #[must_use]
    pub fn param_positive(&self, i: usize) -> bool {
        !(matches!(self, ComponentKind::LogNormal) && i == 0)
    }

    /// Data-driven candidate parameter sets for a component expected to
    /// transition around time `t_scale`.
    #[must_use]
    pub fn candidate_params(&self, t_scale: f64) -> Vec<Vec<f64>> {
        let t = t_scale.max(1.0);
        match self {
            ComponentKind::Exponential => vec![vec![1.0 / t], vec![2.0 / t], vec![0.5 / t]],
            ComponentKind::Weibull => vec![vec![1.5, t], vec![2.5, t], vec![1.0, 2.0 * t]],
            ComponentKind::Gamma => vec![vec![2.0, 2.0 / t], vec![1.0, 1.0 / t]],
            ComponentKind::LogNormal => vec![vec![t.ln(), 0.5], vec![t.ln(), 1.0]],
        }
    }
}

impl std::fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A constructed mixture component, dispatching CDF evaluation to the
/// concrete distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BuiltComponent {
    /// Exponential component.
    Exponential(Exponential),
    /// Weibull component.
    Weibull(Weibull),
    /// Gamma component (extension).
    Gamma(Gamma),
    /// LogNormal component (extension).
    LogNormal(LogNormal),
}

impl BuiltComponent {
    /// CDF at `t`.
    #[must_use]
    pub fn cdf(&self, t: f64) -> f64 {
        match self {
            BuiltComponent::Exponential(d) => d.cdf(t),
            BuiltComponent::Weibull(d) => d.cdf(t),
            BuiltComponent::Gamma(d) => d.cdf(t),
            BuiltComponent::LogNormal(d) => d.cdf(t),
        }
    }

    /// Survival at `t`.
    #[must_use]
    pub fn survival(&self, t: f64) -> f64 {
        match self {
            BuiltComponent::Exponential(d) => d.survival(t),
            BuiltComponent::Weibull(d) => d.survival(t),
            BuiltComponent::Gamma(d) => d.survival(t),
            BuiltComponent::LogNormal(d) => d.survival(t),
        }
    }

    /// Partials of the CDF with respect to the component's *external*
    /// parameters, written into `out[..n_params]`; returns `false` for
    /// kinds without a closed form (see
    /// [`ComponentKind::has_cdf_gradient`]).
    ///
    /// Closed forms:
    ///
    /// * Exponential(λ): `F = 1 − e^{−λt}` on `t ≥ 0`, so
    ///   `∂F/∂λ = t·e^{−λt}` (0 for `t < 0`).
    /// * Weibull(k, λ): `F = 1 − e^{−z}` with `z = (t/λ)^k` on `t > 0`,
    ///   so `∂F/∂k = e^{−z}·z·ln(t/λ)` and `∂F/∂λ = −e^{−z}·k·z/λ`
    ///   (both 0 for `t ≤ 0`, guarding the `0·(−∞)` NaN at `t = 0`).
    pub fn cdf_gradient(&self, t: f64, out: &mut [f64]) -> bool {
        match self {
            BuiltComponent::Exponential(d) => {
                out[0] = if t >= 0.0 {
                    t * (-d.rate() * t).exp()
                } else {
                    0.0
                };
                true
            }
            BuiltComponent::Weibull(d) => {
                if t > 0.0 {
                    let (k, lambda) = (d.shape(), d.scale());
                    let r = t / lambda;
                    let z = r.powf(k);
                    let damp = (-z).exp();
                    out[0] = damp * z * r.ln();
                    out[1] = -damp * k * z / lambda;
                } else {
                    out[0] = 0.0;
                    out[1] = 0.0;
                }
                true
            }
            BuiltComponent::Gamma(_) | BuiltComponent::LogNormal(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts() {
        assert_eq!(ComponentKind::Exponential.n_params(), 1);
        assert_eq!(ComponentKind::Weibull.n_params(), 2);
        assert_eq!(ComponentKind::Gamma.n_params(), 2);
        assert_eq!(ComponentKind::LogNormal.n_params(), 2);
    }

    #[test]
    fn build_validates_count_and_values() {
        assert!(ComponentKind::Exponential.build(&[1.0, 2.0]).is_err());
        assert!(ComponentKind::Exponential.build(&[-1.0]).is_err());
        assert!(ComponentKind::Weibull.build(&[1.0]).is_err());
        assert!(ComponentKind::Weibull.build(&[2.0, 3.0]).is_ok());
    }

    #[test]
    fn built_cdf_dispatch() {
        let e = ComponentKind::Exponential.build(&[0.5]).unwrap();
        assert!((e.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-14);
        let w = ComponentKind::Weibull.build(&[2.0, 5.0]).unwrap();
        assert!((w.cdf(5.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-14);
        assert!((e.survival(2.0) + e.cdf(2.0) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn try_build_agrees_with_build() {
        for kind in [
            ComponentKind::Exponential,
            ComponentKind::Weibull,
            ComponentKind::Gamma,
            ComponentKind::LogNormal,
        ] {
            for params in kind.candidate_params(8.0) {
                assert_eq!(kind.try_build(&params), Some(kind.build(&params).unwrap()));
            }
        }
        assert_eq!(ComponentKind::Exponential.try_build(&[1.0, 2.0]), None);
        assert_eq!(ComponentKind::Exponential.try_build(&[-1.0]), None);
        assert_eq!(ComponentKind::Weibull.try_build(&[f64::NAN, 1.0]), None);
    }

    #[test]
    fn positivity_flags() {
        assert!(ComponentKind::Exponential.param_positive(0));
        assert!(ComponentKind::Weibull.param_positive(0));
        assert!(ComponentKind::Weibull.param_positive(1));
        assert!(!ComponentKind::LogNormal.param_positive(0)); // μ unbounded
        assert!(ComponentKind::LogNormal.param_positive(1));
    }

    #[test]
    fn candidates_are_buildable() {
        for kind in [
            ComponentKind::Exponential,
            ComponentKind::Weibull,
            ComponentKind::Gamma,
            ComponentKind::LogNormal,
        ] {
            for params in kind.candidate_params(12.0) {
                assert!(kind.build(&params).is_ok(), "{kind}: {params:?}");
            }
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ComponentKind::Exponential.label(), "Exp");
        assert_eq!(ComponentKind::Weibull.label(), "Wei");
    }
}
