//! Validation and statistical inference (paper §III).
//!
//! Goodness-of-fit measures: SSE (Eq. 9), predictive mean squared error
//! on a held-out suffix (Eq. 10), adjusted R² (Eq. 11); inference:
//! the residual variance (Eq. 12), confidence intervals (Eq. 13), and
//! empirical coverage.

use crate::guard;
use crate::model::ResilienceModel;
use crate::CoreError;
use resilience_data::{PerformanceSeries, TrainTestSplit};
use resilience_math::sum::sum_squared_diff;
use resilience_stats::describe::centered_sum_of_squares;
use resilience_stats::inference::{normal_interval, ConfidenceInterval};

/// Sum of squared errors of `model` against `series` (paper Eq. 9).
#[must_use]
pub fn sse(model: &dyn ResilienceModel, series: &PerformanceSeries) -> f64 {
    let predicted = model.predict_many(series.times());
    sum_squared_diff(series.values(), &predicted)
}

/// Predictive mean squared error on held-out observations (paper
/// Eq. 10): the mean squared prediction residual over the test suffix.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for an empty test set (cannot
/// happen via [`TrainTestSplit`], defensive for direct callers), and
/// [`CoreError::Numerical`] when the result is non-finite.
pub fn pmse(model: &dyn ResilienceModel, test: &PerformanceSeries) -> Result<f64, CoreError> {
    pmse_at(model, test.times(), test.values())
}

/// [`pmse`] over explicit time/value slices — the slice-level core that
/// the series form delegates to. Unlike a [`PerformanceSeries`] (which
/// guarantees ≥ 2 points at construction), raw slices can be empty or
/// mismatched, so this entry point checks both.
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] for an empty test set or slices of
///   different lengths.
/// * [`CoreError::Numerical`] when the model's predictions make the
///   result non-finite (guard layer, DESIGN.md §8).
pub fn pmse_at(
    model: &dyn ResilienceModel,
    times: &[f64],
    values: &[f64],
) -> Result<f64, CoreError> {
    if times.is_empty() {
        return Err(CoreError::arg("pmse", "empty test set"));
    }
    if times.len() != values.len() {
        return Err(CoreError::arg(
            "pmse",
            format!("{} times vs {} values", times.len(), values.len()),
        ));
    }
    let mut acc = 0.0;
    for (&t, &y) in times.iter().zip(values) {
        let d = y - model.predict(t);
        acc += d * d;
    }
    guard::finite_output("pmse", acc / times.len() as f64)
}

/// Adjusted coefficient of determination (paper Eq. 11):
/// `r²_adj = 1 − (SSE/SSY)·(n−1)/(n−m−1)` with `m` model parameters.
///
/// Can be negative when the model explains less variance than the naive
/// mean predictor — exactly what the paper reports for the quadratic
/// model on the W-shaped 1980 recession.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] when `n ≤ m + 1` (the
/// correction factor's denominator vanishes) or the data are constant
/// (SSY = 0).
pub fn r2_adjusted(
    model: &dyn ResilienceModel,
    series: &PerformanceSeries,
    n_params: usize,
) -> Result<f64, CoreError> {
    let n = series.len();
    if n <= n_params + 1 {
        return Err(CoreError::arg(
            "r2_adjusted",
            format!("need n > m + 1, got n = {n}, m = {n_params}"),
        ));
    }
    let ssy = centered_sum_of_squares(series.values())?;
    if ssy == 0.0 {
        return Err(CoreError::arg(
            "r2_adjusted",
            "series is constant (SSY = 0)",
        ));
    }
    let sse_val = sse(model, series);
    let ratio = sse_val / ssy;
    Ok(1.0 - ratio * (n as f64 - 1.0) / (n as f64 - n_params as f64 - 1.0))
}

/// Residual standard deviation `σ = √(SSE/(n−2))` (paper Eq. 12).
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] when `n ≤ 2` or `sse < 0`.
pub fn residual_sigma(sse_value: f64, n: usize) -> Result<f64, CoreError> {
    if n <= 2 {
        return Err(CoreError::arg(
            "residual_sigma",
            format!("need n > 2, got {n}"),
        ));
    }
    if !(sse_value >= 0.0) {
        return Err(CoreError::arg(
            "residual_sigma",
            format!("SSE must be non-negative, got {sse_value}"),
        ));
    }
    Ok((sse_value / (n as f64 - 2.0)).sqrt())
}

/// Confidence band around the model's predictions: one interval
/// `P(tᵢ) ± z_{1−α/2}·σ` per time point. This is the grey band of the
/// paper's Figs. 3–6.
///
/// # Errors
///
/// Propagates invalid `alpha`/`sigma` from the inference layer.
pub fn confidence_band(
    model: &dyn ResilienceModel,
    times: &[f64],
    sigma: f64,
    alpha: f64,
) -> Result<Vec<ConfidenceInterval>, CoreError> {
    times
        .iter()
        .map(|&t| Ok(normal_interval(model.predict(t), sigma, alpha)?))
        .collect()
}

/// Confidence intervals for the *changes* in performance
/// `ΔP(tᵢ) = P(tᵢ) − P(tᵢ₋₁)` (the literal form of the paper's Eq. 13).
///
/// Returns one interval per change, i.e. `times.len() − 1` intervals.
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] for fewer than two time points.
/// * Propagates invalid `alpha`/`sigma`.
pub fn change_intervals(
    model: &dyn ResilienceModel,
    times: &[f64],
    sigma: f64,
    alpha: f64,
) -> Result<Vec<ConfidenceInterval>, CoreError> {
    if times.len() < 2 {
        return Err(CoreError::arg(
            "change_intervals",
            "need at least two time points",
        ));
    }
    times
        .windows(2)
        .map(|w| {
            let delta = model.predict(w[1]) - model.predict(w[0]);
            Ok(normal_interval(delta, sigma, alpha)?)
        })
        .collect()
}

/// Empirical coverage: fraction of observations inside their band
/// interval (the paper's EC column).
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] when lengths differ.
pub fn empirical_coverage(
    series: &PerformanceSeries,
    band: &[ConfidenceInterval],
) -> Result<f64, CoreError> {
    if series.len() != band.len() {
        return Err(CoreError::arg(
            "empirical_coverage",
            format!("{} observations vs {} intervals", series.len(), band.len()),
        ));
    }
    Ok(resilience_stats::inference::empirical_coverage(
        series.values(),
        band,
    )?)
}

/// The goodness-of-fit summary reported per model per data set — one row
/// of the paper's Tables I and III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GofReport {
    /// SSE on the training prefix (Eq. 9).
    pub sse: f64,
    /// PMSE on the held-out suffix (Eq. 10).
    pub pmse: f64,
    /// Adjusted R² on the training prefix (Eq. 11).
    pub r2_adj: f64,
    /// Empirical coverage of the 95 % band over all observations.
    pub ec: f64,
    /// Residual σ (Eq. 12) used for the band.
    pub sigma: f64,
}

/// Computes the full [`GofReport`] for a fitted model against a
/// train/test split, with the confidence band evaluated over the *whole*
/// series as in the paper's figures.
///
/// # Errors
///
/// Propagates the component computations' errors.
pub fn gof_report(
    model: &dyn ResilienceModel,
    split: &TrainTestSplit,
    full: &PerformanceSeries,
    alpha: f64,
) -> Result<GofReport, CoreError> {
    let sse_train = sse(model, &split.train);
    let pmse_test = pmse(model, &split.test)?;
    let r2 = r2_adjusted(model, &split.train, model.n_params())?;
    let sigma = residual_sigma(sse_train, split.train.len())?;
    let band = confidence_band(model, full.times(), sigma, alpha)?;
    let ec = empirical_coverage(full, &band)?;
    Ok(GofReport {
        sse: sse_train,
        pmse: pmse_test,
        r2_adj: r2,
        ec,
        sigma,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bathtub::QuadraticModel;

    fn truth() -> QuadraticModel {
        QuadraticModel::new(1.0, -0.012, 0.0004).unwrap()
    }

    fn exact_series(n: usize) -> PerformanceSeries {
        let m = truth();
        let values: Vec<f64> = (0..n).map(|i| m.predict(i as f64)).collect();
        PerformanceSeries::monthly("exact", values).unwrap()
    }

    fn noisy_series(n: usize, amp: f64) -> PerformanceSeries {
        let m = truth();
        let mut w = 0.37_f64;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                w = (w * 131.0).fract();
                m.predict(i as f64) + amp * (w - 0.5)
            })
            .collect();
        PerformanceSeries::monthly("noisy", values).unwrap()
    }

    #[test]
    fn sse_zero_on_exact_fit() {
        let s = exact_series(48);
        assert!(sse(&truth(), &s) < 1e-28);
    }

    #[test]
    fn sse_positive_with_noise() {
        let s = noisy_series(48, 0.002);
        let v = sse(&truth(), &s);
        assert!(v > 0.0);
        // Each residual ≤ 0.001, so SSE ≤ 48e-6.
        assert!(v < 48.0 * 1e-6);
    }

    #[test]
    fn pmse_is_mean_of_squared_prediction_errors() {
        let s = noisy_series(48, 0.002);
        let split = s.split_at(43).unwrap();
        let p = pmse(&truth(), &split.test).unwrap();
        assert!((p - sse(&truth(), &split.test) / 5.0).abs() < 1e-18);
    }

    #[test]
    fn r2_adjusted_near_one_for_good_fit() {
        let s = noisy_series(48, 0.001);
        let r2 = r2_adjusted(&truth(), &s, 3).unwrap();
        assert!(r2 > 0.99, "r2 = {r2}");
    }

    #[test]
    fn r2_adjusted_negative_for_bad_fit() {
        // A flat model on strongly trending data explains nothing; with
        // the (n−1)/(n−m−1) correction the value can go negative.
        struct Flat;
        impl ResilienceModel for Flat {
            fn name(&self) -> &'static str {
                "Flat"
            }
            fn params(&self) -> Vec<f64> {
                vec![0.9, 0.0, 0.0]
            }
            fn predict(&self, _t: f64) -> f64 {
                0.9
            }
        }
        let s = exact_series(48);
        let r2 = r2_adjusted(&Flat, &s, 3).unwrap();
        assert!(r2 < 0.0, "r2 = {r2}");
    }

    #[test]
    fn r2_adjusted_penalizes_parameters() {
        let s = noisy_series(20, 0.004);
        let few = r2_adjusted(&truth(), &s, 1).unwrap();
        let many = r2_adjusted(&truth(), &s, 10).unwrap();
        assert!(few > many);
    }

    #[test]
    fn r2_adjusted_rejects_degenerate() {
        let s = exact_series(4);
        assert!(r2_adjusted(&truth(), &s, 3).is_err());
        let flat = PerformanceSeries::monthly("c", vec![1.0; 10]).unwrap();
        assert!(r2_adjusted(&truth(), &flat, 3).is_err());
    }

    #[test]
    fn pmse_rejects_empty_test_set() {
        let e = pmse_at(&truth(), &[], &[]).unwrap_err();
        assert!(e.to_string().contains("empty test set"), "{e}");
        // Mismatched slice lengths are rejected too.
        assert!(pmse_at(&truth(), &[0.0, 1.0], &[1.0]).is_err());
        // The slice form agrees with the series form on valid input.
        let s = noisy_series(48, 0.002);
        let split = s.split_at(43).unwrap();
        let via_series = pmse(&truth(), &split.test).unwrap();
        let via_slices = pmse_at(&truth(), split.test.times(), split.test.values()).unwrap();
        assert!((via_series - via_slices).abs() < 1e-18);
    }

    #[test]
    fn r2_adjusted_rejects_constant_series_with_zero_ssy() {
        // SSY = 0: the r² denominator vanishes; must be a typed error,
        // not a NaN or ±∞ ratio. (0.5 keeps the mean exactly
        // representable so the centered sum is exactly zero.)
        let flat = PerformanceSeries::monthly("flat", vec![0.5; 12]).unwrap();
        let e = r2_adjusted(&truth(), &flat, 3).unwrap_err();
        assert!(e.to_string().contains("SSY"), "{e}");
    }

    #[test]
    fn r2_adjusted_rejects_too_few_observations() {
        // n ≤ m + 1: the (n−1)/(n−m−1) correction divides by ≤ 0.
        let s = exact_series(4);
        let e = r2_adjusted(&truth(), &s, 3).unwrap_err();
        assert!(e.to_string().contains("n > m + 1"), "{e}");
        // Boundary: n = m + 2 is the smallest legal size.
        let s5 = exact_series(5);
        assert!(r2_adjusted(&truth(), &s5, 3).is_ok());
    }

    #[test]
    fn residual_sigma_eq12() {
        assert!((residual_sigma(0.46, 48).unwrap() - (0.46f64 / 46.0).sqrt()).abs() < 1e-15);
        assert!(residual_sigma(1.0, 2).is_err());
        assert!(residual_sigma(-1.0, 10).is_err());
    }

    #[test]
    fn band_covers_exact_data_fully() {
        let s = exact_series(48);
        let band = confidence_band(&truth(), s.times(), 0.001, 0.05).unwrap();
        assert_eq!(empirical_coverage(&s, &band).unwrap(), 1.0);
    }

    #[test]
    fn band_coverage_near_nominal_for_gaussian_like_noise() {
        // Uniform(−amp/2, amp/2) noise with σ chosen from SSE: coverage
        // should be high but typically below 1 for tight alpha... here we
        // just check the mechanics: wider alpha ⇒ wider band ⇒ coverage
        // monotone.
        let s = noisy_series(48, 0.004);
        let sse_v = sse(&truth(), &s);
        let sigma = residual_sigma(sse_v, 48).unwrap();
        let band95 = confidence_band(&truth(), s.times(), sigma, 0.05).unwrap();
        let band50 = confidence_band(&truth(), s.times(), sigma, 0.50).unwrap();
        let ec95 = empirical_coverage(&s, &band95).unwrap();
        let ec50 = empirical_coverage(&s, &band50).unwrap();
        assert!(ec95 >= ec50);
        assert!(ec95 > 0.9);
    }

    #[test]
    fn change_intervals_count_and_center() {
        let s = exact_series(10);
        let m = truth();
        let cis = change_intervals(&m, s.times(), 0.001, 0.05).unwrap();
        assert_eq!(cis.len(), 9);
        // Centers are the model's increments.
        let want = m.predict(1.0) - m.predict(0.0);
        assert!((cis[0].center - want).abs() < 1e-15);
        assert!(change_intervals(&m, &[0.0], 0.001, 0.05).is_err());
    }

    #[test]
    fn coverage_length_mismatch_rejected() {
        let s = exact_series(10);
        let band = confidence_band(&truth(), &s.times()[..5], 0.001, 0.05).unwrap();
        assert!(empirical_coverage(&s, &band).is_err());
    }

    #[test]
    fn gof_report_end_to_end() {
        let s = noisy_series(48, 0.002);
        let split = s.split_at(43).unwrap();
        let report = gof_report(&truth(), &split, &s, 0.05).unwrap();
        assert!(report.sse > 0.0);
        assert!(report.pmse > 0.0);
        assert!(report.r2_adj > 0.95);
        assert!(report.ec > 0.9);
        assert!(report.sigma > 0.0);
    }
}
