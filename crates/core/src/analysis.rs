//! High-level drivers that reproduce the paper's experiments.
//!
//! Each function corresponds to a table/figure of the paper:
//!
//! * [`evaluate_model`] — fit + goodness-of-fit row (Tables I and III).
//! * [`evaluate_models`] — several families on one data set.
//! * [`metrics_comparison`] — the actual/predicted/relative-error rows of
//!   Tables II and IV.
//! * [`band_series`] — fit + confidence band traces (Figs. 3–6).

use crate::fit::{fit_least_squares, FitConfig, FittedModel};
use crate::guard;
use crate::metrics::{actual_metric, predicted_metric, relative_error, MetricContext, MetricKind};
use crate::model::ModelFamily;
use crate::validate::{gof_report, GofReport};
use crate::CoreError;
use resilience_data::PerformanceSeries;
use resilience_stats::inference::ConfidenceInterval;

/// The result of fitting and validating one family on one data set: a
/// row of the paper's Table I / Table III.
pub struct ModelEvaluation {
    /// Family name.
    pub family_name: &'static str,
    /// The fitted model and diagnostics.
    pub fit: FittedModel,
    /// Goodness-of-fit measures.
    pub gof: GofReport,
    /// Number of training observations.
    pub n_train: usize,
    /// Number of held-out observations (the paper's ℓ).
    pub horizon: usize,
}

impl std::fmt::Debug for ModelEvaluation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEvaluation")
            .field("family", &self.family_name)
            .field("gof", &self.gof)
            .field("n_train", &self.n_train)
            .field("horizon", &self.horizon)
            .finish()
    }
}

/// Fits `family` to all but the last `holdout` observations of `series`
/// and reports goodness of fit (train SSE, test PMSE, train adjusted R²,
/// EC of the `1−alpha` band over all observations).
///
/// # Errors
///
/// Propagates split, fit, and validation failures.
pub fn evaluate_model(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    holdout: usize,
    alpha: f64,
) -> Result<ModelEvaluation, CoreError> {
    evaluate_model_with(family, series, holdout, alpha, &FitConfig::default())
}

/// [`evaluate_model`] with an explicit fit configuration.
///
/// # Errors
///
/// Propagates split, fit, and validation failures.
pub fn evaluate_model_with(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    holdout: usize,
    alpha: f64,
    config: &FitConfig,
) -> Result<ModelEvaluation, CoreError> {
    if holdout == 0 || holdout + 2 > series.len() {
        return Err(CoreError::arg(
            "evaluate_model",
            format!(
                "holdout {holdout} leaves no usable training prefix of series with {} points",
                series.len()
            ),
        ));
    }
    let split = series.split_at(series.len() - holdout)?;
    let fit = fit_least_squares(family, &split.train, config)?;
    let gof = gof_report(fit.model.as_ref(), &split, series, alpha)?;
    // Guard layer (DESIGN.md §8): no evaluation row leaves this driver
    // with a silent NaN — every table the paper reports is built on
    // these five numbers.
    guard::finite_outputs(
        "evaluate_model",
        &[gof.sse, gof.pmse, gof.r2_adj, gof.ec, gof.sigma],
    )?;
    Ok(ModelEvaluation {
        family_name: family.name(),
        n_train: split.train.len(),
        horizon: holdout,
        fit,
        gof,
    })
}

/// Evaluates several families on the same series (one table column per
/// family). Families that fail to fit are reported as errors in place.
pub fn evaluate_models(
    families: &[&dyn ModelFamily],
    series: &PerformanceSeries,
    holdout: usize,
    alpha: f64,
) -> Vec<Result<ModelEvaluation, CoreError>> {
    families
        .iter()
        .map(|f| evaluate_model(*f, series, holdout, alpha))
        .collect()
}

/// One metric row of the paper's Tables II / IV: the actual value plus
/// each model's prediction and relative error.
#[derive(Debug, Clone)]
pub struct MetricComparison {
    /// Which metric.
    pub kind: MetricKind,
    /// Value computed from the observed curve.
    pub actual: f64,
    /// Per-model `(family name, predicted, relative error)` triples, in
    /// the order the evaluations were supplied.
    pub predictions: Vec<(&'static str, f64, f64)>,
}

/// Computes all eight interval-based metrics in predictive mode for each
/// fitted model (the paper's Tables II and IV), with Eq. 21's weight `α
/// = weight`.
///
/// # Errors
///
/// Propagates metric computation failures.
pub fn metrics_comparison(
    evaluations: &[ModelEvaluation],
    series: &PerformanceSeries,
    weight: f64,
) -> Result<Vec<MetricComparison>, CoreError> {
    if evaluations.is_empty() {
        return Err(CoreError::arg("metrics_comparison", "no evaluations given"));
    }
    let holdout = evaluations[0].horizon;
    if evaluations.iter().any(|e| e.horizon != holdout) {
        return Err(CoreError::arg(
            "metrics_comparison",
            "evaluations use different holdout horizons",
        ));
    }
    let split = series.split_at(series.len() - holdout)?;
    let mut rows = Vec::with_capacity(MetricKind::ALL.len());
    for kind in MetricKind::ALL {
        let mut actual_value: Option<f64> = None;
        let mut predictions = Vec::with_capacity(evaluations.len());
        for eval in evaluations {
            let ctx = MetricContext::predictive(&split, series, eval.fit.model.as_ref(), weight)?;
            let actual = actual_metric(series, kind, &ctx)?;
            let predicted = predicted_metric(eval.fit.model.as_ref(), kind, &ctx)?;
            let delta = relative_error(actual, predicted)?;
            // The actual value may differ microscopically across models
            // when t_min comes from the model; report the first.
            actual_value.get_or_insert(actual);
            predictions.push((eval.family_name, predicted, delta));
        }
        rows.push(MetricComparison {
            kind,
            actual: actual_value.expect("at least one evaluation"),
            predictions,
        });
    }
    Ok(rows)
}

/// Fit trace for a figure: times, observed values, model predictions,
/// and the `1−alpha` confidence band (paper Figs. 3–6).
#[derive(Debug, Clone)]
pub struct BandSeries {
    /// Observation times.
    pub times: Vec<f64>,
    /// Observed values.
    pub observed: Vec<f64>,
    /// Model predictions at the observation times.
    pub predicted: Vec<f64>,
    /// Confidence band intervals.
    pub band: Vec<ConfidenceInterval>,
}

/// Builds the plotted series of the paper's fit figures from an
/// evaluation.
///
/// # Errors
///
/// Propagates band-construction failures.
pub fn band_series(
    eval: &ModelEvaluation,
    series: &PerformanceSeries,
    alpha: f64,
) -> Result<BandSeries, CoreError> {
    let model = eval.fit.model.as_ref();
    let band = crate::validate::confidence_band(model, series.times(), eval.gof.sigma, alpha)?;
    Ok(BandSeries {
        times: series.times().to_vec(),
        observed: series.values().to_vec(),
        predicted: model.predict_many(series.times()),
        band,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bathtub::{CompetingRisksFamily, QuadraticFamily};
    use resilience_data::recessions::Recession;

    #[test]
    fn evaluate_quadratic_on_u_shaped_recession() {
        let s = Recession::R1990_93.payroll_index();
        let eval = evaluate_model(&QuadraticFamily, &s, 5, 0.05).unwrap();
        assert_eq!(eval.n_train, 43);
        assert_eq!(eval.horizon, 5);
        assert!(eval.gof.r2_adj > 0.85, "r2 = {}", eval.gof.r2_adj);
        assert!(eval.gof.ec > 0.85, "ec = {}", eval.gof.ec);
    }

    #[test]
    fn evaluate_rejects_bad_holdout() {
        let s = Recession::R1990_93.payroll_index();
        assert!(evaluate_model(&QuadraticFamily, &s, 0, 0.05).is_err());
        assert!(evaluate_model(&QuadraticFamily, &s, 47, 0.05).is_err());
    }

    #[test]
    fn evaluate_models_runs_both_bathtubs() {
        let s = Recession::R1990_93.payroll_index();
        let fams: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &CompetingRisksFamily];
        let evals = evaluate_models(&fams, &s, 5, 0.05);
        assert_eq!(evals.len(), 2);
        for e in evals {
            let e = e.unwrap();
            assert!(e.gof.r2_adj > 0.8, "{}: {}", e.family_name, e.gof.r2_adj);
        }
    }

    #[test]
    fn metrics_comparison_shape() {
        let s = Recession::R1990_93.payroll_index();
        let evals: Vec<ModelEvaluation> = vec![
            evaluate_model(&QuadraticFamily, &s, 5, 0.05).unwrap(),
            evaluate_model(&CompetingRisksFamily, &s, 5, 0.05).unwrap(),
        ];
        let rows = metrics_comparison(&evals, &s, 0.5).unwrap();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert_eq!(row.predictions.len(), 2);
            assert!(row.actual.is_finite());
            for (name, pred, delta) in &row.predictions {
                assert!(pred.is_finite(), "{name} {}", row.kind);
                assert!(delta.is_finite() && *delta >= 0.0);
            }
        }
    }

    #[test]
    fn metrics_predictions_close_on_well_fit_data() {
        // For the U-shaped 1990-93 curve the paper reports relative
        // errors below 0.01 on most metrics; assert a loose version.
        // The "lost" metrics divide by near-zero actual losses on this
        // recovered curve, so — as the paper observes for its normalized
        // loss metric — their relative errors blow up. Assert on the
        // five preserved-type metrics instead.
        let s = Recession::R1990_93.payroll_index();
        let evals = vec![evaluate_model(&CompetingRisksFamily, &s, 5, 0.05).unwrap()];
        let rows = metrics_comparison(&evals, &s, 0.5).unwrap();
        let preserved_kinds = [
            MetricKind::PerformancePreserved,
            MetricKind::NormalizedAveragePreserved,
            MetricKind::PreservedFromMinimum,
            MetricKind::AveragePreserved,
            MetricKind::WeightedBeforeAfterMinimum,
        ];
        let small_delta_count = rows
            .iter()
            .filter(|r| preserved_kinds.contains(&r.kind) && r.predictions[0].2 < 0.2)
            .count();
        assert!(
            small_delta_count >= 4,
            "expected most preserved metrics to predict well, got {small_delta_count}/5"
        );
    }

    #[test]
    fn metrics_comparison_validates_input() {
        let s = Recession::R1990_93.payroll_index();
        assert!(metrics_comparison(&[], &s, 0.5).is_err());
        let mut evals = vec![
            evaluate_model(&QuadraticFamily, &s, 5, 0.05).unwrap(),
            evaluate_model(&CompetingRisksFamily, &s, 3, 0.05).unwrap(),
        ];
        assert!(metrics_comparison(&evals, &s, 0.5).is_err());
        evals.truncate(1);
        assert!(metrics_comparison(&evals, &s, 0.5).is_ok());
    }

    #[test]
    fn band_series_dimensions() {
        let s = Recession::R2001_05.payroll_index();
        let eval = evaluate_model(&QuadraticFamily, &s, 5, 0.05).unwrap();
        let b = band_series(&eval, &s, 0.05).unwrap();
        assert_eq!(b.times.len(), 48);
        assert_eq!(b.observed.len(), 48);
        assert_eq!(b.predicted.len(), 48);
        assert_eq!(b.band.len(), 48);
        // The band brackets the prediction.
        for (p, ci) in b.predicted.iter().zip(&b.band) {
            assert!(ci.contains(*p));
        }
    }

    #[test]
    fn debug_output_mentions_family() {
        let s = Recession::R1990_93.payroll_index();
        let eval = evaluate_model(&QuadraticFamily, &s, 5, 0.05).unwrap();
        assert!(format!("{eval:?}").contains("Quadratic"));
    }
}
