//! Domain guards: finite-in/finite-out checks for every model
//! evaluation and pipeline boundary.
//!
//! The optimizer explores the internal parameter space freely, and an
//! off-domain point can turn a prediction, an SSE, or a metric into NaN
//! or ±∞. IEEE semantics then propagate that NaN silently through every
//! downstream computation. This module stops the propagation at the
//! boundaries: each guard converts a non-finite value into a structured
//! [`CoreError::Numerical`] naming the routine and the kind of
//! [`Violation`], so callers see a typed error instead of garbage.
//!
//! Guards sit at **per-fit and per-call boundaries**, never inside the
//! SSE objective or the Nelder–Mead iteration loop — the hot path keeps
//! its zero-allocation contract (DESIGN.md §7) because the success path
//! of every guard allocates nothing; only the (cold) error path formats
//! a message. The policy is documented in DESIGN.md §8.
//!
//! # Examples
//!
//! ```
//! use resilience_core::guard;
//!
//! assert_eq!(guard::finite_input("demo", 1.5)?, 1.5);
//! assert!(guard::finite_output("demo", f64::NAN).is_err());
//! # Ok::<(), resilience_core::CoreError>(())
//! ```

use crate::model::{ModelFamily, ResilienceModel};
use crate::CoreError;

/// The kinds of numerical-domain violation the guard layer detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Violation {
    /// An input (time, observation, parameter) was NaN or infinite.
    NonFiniteInput,
    /// A computed result (prediction, SSE, metric) was NaN or infinite.
    NonFiniteOutput,
    /// Parameters were finite but outside the family's validity domain.
    ParameterDomain,
}

impl Violation {
    /// Short label for error messages.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Violation::NonFiniteInput => "non-finite input",
            Violation::NonFiniteOutput => "non-finite output",
            Violation::ParameterDomain => "parameter outside domain",
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Checks that a scalar input is finite, passing it through unchanged.
///
/// # Errors
///
/// Returns [`CoreError::Numerical`] with [`Violation::NonFiniteInput`]
/// when `value` is NaN or infinite.
pub fn finite_input(what: &'static str, value: f64) -> Result<f64, CoreError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(CoreError::guard(
            what,
            Violation::NonFiniteInput,
            format!("got {value}"),
        ))
    }
}

/// Checks that every element of an input slice is finite.
///
/// # Errors
///
/// Returns [`CoreError::Numerical`] with [`Violation::NonFiniteInput`]
/// naming the first offending index.
pub fn finite_inputs(what: &'static str, values: &[f64]) -> Result<(), CoreError> {
    match values.iter().position(|v| !v.is_finite()) {
        None => Ok(()),
        Some(i) => Err(CoreError::guard(
            what,
            Violation::NonFiniteInput,
            format!("element {i} is {}", values[i]),
        )),
    }
}

/// Checks that a computed scalar is finite, passing it through unchanged.
///
/// # Errors
///
/// Returns [`CoreError::Numerical`] with [`Violation::NonFiniteOutput`]
/// when `value` is NaN or infinite.
pub fn finite_output(what: &'static str, value: f64) -> Result<f64, CoreError> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(CoreError::guard(
            what,
            Violation::NonFiniteOutput,
            format!("got {value}"),
        ))
    }
}

/// Checks that every element of a computed slice is finite.
///
/// # Errors
///
/// Returns [`CoreError::Numerical`] with [`Violation::NonFiniteOutput`]
/// naming the first offending index.
pub fn finite_outputs(what: &'static str, values: &[f64]) -> Result<(), CoreError> {
    match values.iter().position(|v| !v.is_finite()) {
        None => Ok(()),
        Some(i) => Err(CoreError::guard(
            what,
            Violation::NonFiniteOutput,
            format!("element {i} is {}", values[i]),
        )),
    }
}

/// Domain-checked model evaluation: finite time in, finite prediction
/// out.
///
/// # Errors
///
/// Returns [`CoreError::Numerical`] when `t` is non-finite
/// ([`Violation::NonFiniteInput`]) or `P(t)` is non-finite
/// ([`Violation::NonFiniteOutput`]).
pub fn guarded_predict(model: &dyn ResilienceModel, t: f64) -> Result<f64, CoreError> {
    finite_input(model.name(), t)?;
    let p = model.predict(t);
    if p.is_finite() {
        Ok(p)
    } else {
        Err(CoreError::guard(
            model.name(),
            Violation::NonFiniteOutput,
            format!("P({t}) = {p}"),
        ))
    }
}

/// Checks an external parameter vector against a family's domain: every
/// entry finite, and the family's own predicate (`params_to_internal`)
/// accepts it.
///
/// # Errors
///
/// Returns [`CoreError::Numerical`] with [`Violation::NonFiniteInput`]
/// for NaN/∞ entries or [`Violation::ParameterDomain`] for finite but
/// infeasible parameters.
pub fn check_params(family: &dyn ModelFamily, params: &[f64]) -> Result<(), CoreError> {
    finite_inputs(family.name(), params)?;
    if let Err(e) = family.params_to_internal(params) {
        return Err(CoreError::guard(
            family.name(),
            Violation::ParameterDomain,
            e.to_string(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bathtub::{QuadraticFamily, QuadraticModel};

    #[test]
    fn scalar_guards_pass_and_fail() {
        assert_eq!(finite_input("t", 2.0).unwrap(), 2.0);
        assert_eq!(finite_output("t", -3.5).unwrap(), -3.5);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(finite_input("t", bad).is_err());
            assert!(finite_output("t", bad).is_err());
        }
    }

    #[test]
    fn slice_guards_name_offending_index() {
        assert!(finite_inputs("v", &[1.0, 2.0]).is_ok());
        let e = finite_outputs("v", &[1.0, f64::NAN, 3.0]).unwrap_err();
        assert!(e.to_string().contains("element 1"), "{e}");
        assert!(e.to_string().contains("non-finite output"), "{e}");
    }

    #[test]
    fn guarded_predict_checks_both_directions() {
        let m = QuadraticModel::new(1.0, -0.012, 0.0004).unwrap();
        assert!((guarded_predict(&m, 5.0).unwrap() - m.predict(5.0)).abs() < 1e-15);
        assert!(guarded_predict(&m, f64::NAN).is_err());

        struct NanModel;
        impl ResilienceModel for NanModel {
            fn name(&self) -> &'static str {
                "NanModel"
            }
            fn params(&self) -> Vec<f64> {
                vec![]
            }
            fn predict(&self, _t: f64) -> f64 {
                f64::NAN
            }
        }
        let e = guarded_predict(&NanModel, 1.0).unwrap_err();
        assert!(matches!(
            e,
            CoreError::Numerical {
                violation: Violation::NonFiniteOutput,
                ..
            }
        ));
    }

    #[test]
    fn check_params_separates_violation_kinds() {
        // Feasible quadratic bathtub parameters.
        assert!(check_params(&QuadraticFamily, &[1.0, -0.012, 0.0004]).is_ok());
        // NaN entry: non-finite input.
        let e = check_params(&QuadraticFamily, &[1.0, f64::NAN, 0.0004]).unwrap_err();
        assert!(matches!(
            e,
            CoreError::Numerical {
                violation: Violation::NonFiniteInput,
                ..
            }
        ));
        // Finite but infeasible (β > 0): parameter-domain violation.
        let e = check_params(&QuadraticFamily, &[1.0, 0.5, 0.0004]).unwrap_err();
        assert!(matches!(
            e,
            CoreError::Numerical {
                violation: Violation::ParameterDomain,
                ..
            }
        ));
        assert!(e.to_string().contains("Quadratic"), "{e}");
    }

    #[test]
    fn violation_labels_unique() {
        let labels: std::collections::HashSet<_> = [
            Violation::NonFiniteInput,
            Violation::NonFiniteOutput,
            Violation::ParameterDomain,
        ]
        .iter()
        .map(Violation::label)
        .collect();
        assert_eq!(labels.len(), 3);
    }
}
