//! Model selection: information criteria and forward-chaining cross
//! validation.
//!
//! The paper notes that "model selection is ultimately a subjective
//! choice… a primary consideration is the tradeoff between model
//! complexity and predictive accuracy" (§III-B). This module makes that
//! tradeoff quantitative with the standard tools: AIC/AICc/BIC computed
//! from the Gaussian least-squares likelihood, and expanding-window
//! (forward-chaining) cross validation that scores each family purely on
//! out-of-sample prediction — the criterion the paper's PMSE gestures at,
//! averaged over many split points instead of one.

use crate::fit::{fit_least_squares, FitConfig};
use crate::guard::Violation;
use crate::model::ModelFamily;
use crate::validate;
use crate::CoreError;
use resilience_data::PerformanceSeries;

/// Information criteria for a least-squares fit under the Gaussian
/// likelihood: `AIC = n·ln(SSE/n) + 2k`, the small-sample `AICc`, and
/// `BIC = n·ln(SSE/n) + k·ln n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InformationCriteria {
    /// Akaike information criterion.
    pub aic: f64,
    /// Small-sample corrected AIC.
    pub aicc: f64,
    /// Bayesian (Schwarz) information criterion.
    pub bic: f64,
}

/// Computes [`InformationCriteria`] from a fit's SSE.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] when `n ≤ k + 2` (AICc
/// denominator) or `sse ≤ 0` (a perfect fit has −∞ criteria; callers
/// should treat that case separately).
pub fn information_criteria(
    sse: f64,
    n: usize,
    n_params: usize,
) -> Result<InformationCriteria, CoreError> {
    if !(sse > 0.0) || !sse.is_finite() {
        return Err(CoreError::arg(
            "information_criteria",
            format!("need finite SSE > 0, got {sse}"),
        ));
    }
    if n <= n_params + 2 {
        return Err(CoreError::arg(
            "information_criteria",
            format!("need n > k + 2, got n = {n}, k = {n_params}"),
        ));
    }
    let nf = n as f64;
    let k = n_params as f64;
    let base = nf * (sse / nf).ln();
    let aic = base + 2.0 * k;
    let aicc = aic + 2.0 * k * (k + 1.0) / (nf - k - 1.0);
    let bic = base + k * nf.ln();
    Ok(InformationCriteria { aic, aicc, bic })
}

/// Result of forward-chaining cross validation for one family.
#[derive(Debug, Clone, PartialEq)]
pub struct CvScore {
    /// Family name.
    pub family_name: &'static str,
    /// Mean squared one-step-block prediction error across folds.
    pub mean_pmse: f64,
    /// Per-fold PMSE values (one per split point).
    pub fold_pmse: Vec<f64>,
    /// Number of folds that failed to fit (excluded from the mean).
    pub failed_folds: usize,
}

/// Expanding-window cross validation: fit on `[0, split)`, score squared
/// prediction error on the next `horizon` observations, for every split
/// in `min_train ..= n − horizon` stepping by `step`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for degenerate geometry or when
/// every fold fails.
pub fn forward_chain_cv(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    min_train: usize,
    horizon: usize,
    step: usize,
    config: &FitConfig,
) -> Result<CvScore, CoreError> {
    let n = series.len();
    if horizon == 0 || step == 0 {
        return Err(CoreError::arg(
            "forward_chain_cv",
            "horizon and step must be positive",
        ));
    }
    if min_train < 4 || min_train + horizon > n {
        return Err(CoreError::arg(
            "forward_chain_cv",
            format!("need 4 <= min_train and min_train + horizon <= n, got {min_train} + {horizon} vs {n}"),
        ));
    }
    let mut fold_pmse = Vec::new();
    let mut failed = 0usize;
    let mut split = min_train;
    while split + horizon <= n {
        match series.split_at(split) {
            Ok(parts) => match fit_least_squares(family, &parts.train, config) {
                Ok(fit) => {
                    // Score only the next `horizon` points.
                    let times = &parts.test.times()[..horizon];
                    let values = &parts.test.values()[..horizon];
                    let mut acc = 0.0;
                    for (&t, &y) in times.iter().zip(values) {
                        let d = y - fit.model.predict(t);
                        acc += d * d;
                    }
                    let p = acc / horizon as f64;
                    if p.is_finite() {
                        fold_pmse.push(p);
                    } else {
                        failed += 1;
                    }
                }
                Err(_) => failed += 1,
            },
            Err(_) => failed += 1,
        }
        split += step;
    }
    if fold_pmse.is_empty() {
        return Err(CoreError::arg(
            "forward_chain_cv",
            format!("all {failed} folds failed"),
        ));
    }
    let mean = fold_pmse.iter().sum::<f64>() / fold_pmse.len() as f64;
    Ok(CvScore {
        family_name: family.name(),
        mean_pmse: mean,
        fold_pmse,
        failed_folds: failed,
    })
}

/// One ranked row of a model-selection table.
#[derive(Debug, Clone)]
pub struct SelectionRow {
    /// Family name.
    pub family_name: &'static str,
    /// Number of parameters.
    pub n_params: usize,
    /// Training SSE.
    pub sse: f64,
    /// Adjusted R² on the training data.
    pub r2_adj: f64,
    /// Information criteria (None for an exactly-zero SSE fit).
    pub criteria: Option<InformationCriteria>,
}

/// Machine-readable classification of why a family was excluded from a
/// ranking. Callers branching on degradation (dashboards, alerting)
/// should match on this rather than parse [`FamilyFailure::reason`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Fitting or scoring returned a genuine error.
    Error,
    /// The family exceeded its time budget (see
    /// [`crate::runtime::ExecPolicy::family_budget`]).
    TimedOut,
    /// The run was cancelled via a
    /// [`CancelToken`](resilience_optim::CancelToken).
    Cancelled,
    /// The family's fit panicked; the panic was isolated to this family.
    Panicked,
    /// The fit was never attempted: the family's circuit breaker was open
    /// when the job was scheduled
    /// (see [`crate::runtime::BreakerPolicy`]).
    Skipped,
}

impl FailureKind {
    /// The telemetry classification for this failure
    /// ([`resilience_obs::Event::FitFailed`]).
    pub fn code(self) -> resilience_obs::FailureCode {
        match self {
            FailureKind::Error => resilience_obs::FailureCode::Error,
            FailureKind::TimedOut => resilience_obs::FailureCode::TimedOut,
            FailureKind::Cancelled => resilience_obs::FailureCode::Cancelled,
            FailureKind::Panicked => resilience_obs::FailureCode::Panicked,
            FailureKind::Skipped => resilience_obs::FailureCode::Skipped,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Error => write!(f, "error"),
            FailureKind::TimedOut => write!(f, "timed out"),
            FailureKind::Cancelled => write!(f, "cancelled"),
            FailureKind::Panicked => write!(f, "panicked"),
            FailureKind::Skipped => write!(f, "skipped"),
        }
    }
}

/// A family that could not be ranked, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyFailure {
    /// Family name.
    pub family_name: &'static str,
    /// Human-readable reason the family was excluded from the ranking.
    pub reason: String,
    /// Machine-readable failure classification.
    pub kind: FailureKind,
}

/// The full outcome of [`rank_models`]: ranked rows plus an explicit
/// record of every family that failed, so a selection table can show
/// "failed: …" rows instead of silently shrinking.
#[derive(Debug, Clone)]
pub struct Ranking {
    /// Successfully fitted families, ranked by AICc (ascending; ties and
    /// zero-SSE fits sort first).
    pub rows: Vec<SelectionRow>,
    /// Families that failed to fit or score, in input order.
    pub failures: Vec<FamilyFailure>,
    /// `true` when at least one family failed — the ranking is usable but
    /// incomplete (graceful degradation; see `DESIGN.md` §9). Always
    /// equals `!failures.is_empty()`; carried explicitly so report layers
    /// can surface the flag without re-deriving it.
    pub degraded: bool,
}

/// Scores one successfully fitted family into a [`SelectionRow`]: the
/// non-finite-SSE guard, adjusted R², and information criteria.
///
/// Shared by [`rank_models`] and
/// [`crate::runtime::rank_models_supervised`], which own the fan-out and
/// failure handling around it.
pub(crate) fn score_family(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    fit: &crate::fit::FittedModel,
) -> Result<SelectionRow, FamilyFailure> {
    let fail = |stage: &str, e: CoreError| FamilyFailure {
        family_name: family.name(),
        reason: format!("{stage}: {e}"),
        kind: FailureKind::Error,
    };
    // Guard layer (DESIGN.md §8): a family whose winning SSE is
    // non-finite must land in `failures` with a structured error, never
    // be ranked with NaN (NaN-keyed sorts are arbitrary and silently
    // poison the table).
    if !fit.sse.is_finite() {
        return Err(fail(
            "guard",
            CoreError::guard(
                "rank_models",
                Violation::NonFiniteOutput,
                format!("final SSE is {}", fit.sse),
            ),
        ));
    }
    let r2 = validate::r2_adjusted(fit.model.as_ref(), series, family.n_params())
        .map_err(|e| fail("adjusted R²", e))?;
    if !r2.is_finite() {
        return Err(fail(
            "guard",
            CoreError::guard(
                "rank_models",
                Violation::NonFiniteOutput,
                format!("adjusted R² is {r2}"),
            ),
        ));
    }
    let criteria = information_criteria(fit.sse, series.len(), family.n_params()).ok();
    Ok(SelectionRow {
        family_name: family.name(),
        n_params: family.n_params(),
        sse: fit.sse,
        r2_adj: r2,
        criteria,
    })
}

/// Sorts ranked rows by AICc (ascending; zero-SSE fits, whose criteria
/// are `None`, sort first).
pub(crate) fn sort_rows(rows: &mut [SelectionRow]) {
    rows.sort_by(|a, b| {
        let ka = a.criteria.map(|c| c.aicc).unwrap_or(f64::NEG_INFINITY);
        let kb = b.criteria.map(|c| c.aicc).unwrap_or(f64::NEG_INFINITY);
        ka.total_cmp(&kb)
    });
}

/// Fits each family to the full series and ranks them by AICc (ascending;
/// ties and zero-SSE fits sort first).
///
/// Families fit in parallel according to `config.parallelism` (the
/// per-family multi-start runs serially so the two levels do not
/// oversubscribe); results are identical for every thread count. Families
/// that fail — including by panicking, which is isolated per family —
/// are reported in [`Ranking::failures`] with the underlying error, not
/// silently omitted.
///
/// This is [`crate::runtime::rank_models_supervised`] with no time
/// budget, no retry policy, and an unbounded control.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] when *no* family fits.
pub fn rank_models(
    families: &[&dyn ModelFamily],
    series: &PerformanceSeries,
    config: &FitConfig,
) -> Result<Ranking, CoreError> {
    crate::runtime::rank_models_supervised(
        families,
        series,
        config,
        &crate::runtime::ExecPolicy::default(),
        &resilience_optim::Control::unbounded(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bathtub::{CompetingRisksFamily, QuadraticFamily, QuarticFamily};
    use resilience_data::recessions::Recession;

    #[test]
    fn criteria_formulas() {
        let ic = information_criteria(0.01, 48, 3).unwrap();
        let base = 48.0 * (0.01f64 / 48.0).ln();
        assert!((ic.aic - (base + 6.0)).abs() < 1e-12);
        assert!((ic.bic - (base + 3.0 * 48f64.ln())).abs() < 1e-12);
        assert!(ic.aicc > ic.aic);
    }

    #[test]
    fn criteria_reject_degenerate() {
        assert!(information_criteria(0.0, 48, 3).is_err());
        assert!(information_criteria(1.0, 5, 3).is_err());
        assert!(information_criteria(f64::NAN, 48, 3).is_err());
    }

    #[test]
    fn bic_penalizes_parameters_harder_for_large_n() {
        let few = information_criteria(0.01, 100, 2).unwrap();
        let many = information_criteria(0.01, 100, 6).unwrap();
        assert!((many.bic - few.bic) > (many.aic - few.aic));
    }

    #[test]
    fn rank_models_prefers_parsimony_on_simple_data() {
        // Noiseless quadratic truth: both quadratic (3 params) and quartic
        // (5 params) fit essentially exactly; AICc should rank by SSE and
        // parameter count such that the quartic does not beat the
        // quadratic purely by overfitting.
        use crate::model::ResilienceModel;
        let truth = crate::bathtub::QuadraticModel::new(1.0, -0.012, 0.0004).unwrap();
        let mut w = 0.7_f64;
        let values: Vec<f64> = (0..48)
            .map(|i| {
                w = (w * 113.0).fract();
                truth.predict(i as f64) + 0.002 * (w - 0.5)
            })
            .collect();
        let series = PerformanceSeries::monthly("q", values).unwrap();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &QuarticFamily];
        let ranking = rank_models(&families, &series, &FitConfig::default()).unwrap();
        assert_eq!(ranking.rows.len(), 2);
        assert!(ranking.failures.is_empty());
        assert!(!ranking.degraded);
        assert_eq!(
            ranking.rows[0].family_name, "Quadratic",
            "parsimony should win on quadratic truth: {:?}",
            ranking.rows
        );
    }

    #[test]
    fn rank_models_reports_failures_with_reasons() {
        // A family whose every start is infeasible: params_to_internal
        // always errors, so fitting has no starts and fails.
        struct Hopeless;
        impl ModelFamily for Hopeless {
            fn name(&self) -> &'static str {
                "Hopeless"
            }
            fn n_params(&self) -> usize {
                3
            }
            fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
                internal.to_vec()
            }
            fn params_to_internal(&self, _params: &[f64]) -> Result<Vec<f64>, CoreError> {
                Err(CoreError::arg("Hopeless", "never feasible"))
            }
            fn build(
                &self,
                _params: &[f64],
            ) -> Result<Box<dyn crate::model::ResilienceModel>, CoreError> {
                Err(CoreError::arg("Hopeless", "never feasible"))
            }
            fn initial_guesses(&self, _series: &PerformanceSeries) -> Vec<Vec<f64>> {
                vec![vec![1.0, 1.0, 1.0]]
            }
        }
        let series = Recession::R1990_93.payroll_index();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &Hopeless];
        let ranking = rank_models(&families, &series, &FitConfig::default()).unwrap();
        assert_eq!(ranking.rows.len(), 1);
        assert_eq!(ranking.failures.len(), 1);
        assert_eq!(ranking.failures[0].family_name, "Hopeless");
        assert_eq!(ranking.failures[0].kind, FailureKind::Error);
        assert!(ranking.degraded);
        assert!(
            ranking.failures[0].reason.starts_with("fit: "),
            "reason should name the failing stage: {}",
            ranking.failures[0].reason
        );
        // With *only* failing families the call errors outright.
        let none: Vec<&dyn ModelFamily> = vec![&Hopeless];
        assert!(rank_models(&none, &series, &FitConfig::default()).is_err());
    }

    #[test]
    fn rank_models_reports_nan_objective_family_as_failure() {
        // A family whose predictions are always NaN: the SSE objective
        // sees a NaN curve at every start, so the fit must fail and the
        // family must land in `failures` — never be ranked with a NaN
        // SSE.
        struct NanObjective;
        impl ModelFamily for NanObjective {
            fn name(&self) -> &'static str {
                "NaN-objective"
            }
            fn n_params(&self) -> usize {
                2
            }
            fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
                internal.to_vec()
            }
            fn internal_to_params_into(&self, internal: &[f64], out: &mut [f64]) {
                out.copy_from_slice(internal);
            }
            fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
                Ok(params.to_vec())
            }
            fn predict_params_into(&self, _params: &[f64], _ts: &[f64], out: &mut [f64]) -> bool {
                out.fill(f64::NAN);
                true
            }
            fn build(
                &self,
                _params: &[f64],
            ) -> Result<Box<dyn crate::model::ResilienceModel>, CoreError> {
                struct NanModel;
                impl crate::model::ResilienceModel for NanModel {
                    fn name(&self) -> &'static str {
                        "NaN-objective"
                    }
                    fn params(&self) -> Vec<f64> {
                        vec![f64::NAN, f64::NAN]
                    }
                    fn predict(&self, _t: f64) -> f64 {
                        f64::NAN
                    }
                }
                Ok(Box::new(NanModel))
            }
            fn initial_guesses(&self, _series: &PerformanceSeries) -> Vec<Vec<f64>> {
                vec![vec![0.5, 0.5], vec![1.0, 1.0]]
            }
        }
        let series = Recession::R1990_93.payroll_index();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &NanObjective];
        let ranking = rank_models(&families, &series, &FitConfig::default()).unwrap();
        assert_eq!(ranking.rows.len(), 1);
        assert_eq!(ranking.rows[0].family_name, "Quadratic");
        assert!(ranking.rows[0].sse.is_finite());
        assert_eq!(ranking.failures.len(), 1);
        assert_eq!(ranking.failures[0].family_name, "NaN-objective");
        assert!(
            !ranking.failures[0].reason.is_empty(),
            "failure must carry a reason"
        );
    }

    #[test]
    fn rank_models_parallelism_is_bit_identical() {
        use resilience_optim::Parallelism;
        let series = Recession::R1990_93.payroll_index();
        let families: Vec<&dyn ModelFamily> =
            vec![&QuadraticFamily, &QuarticFamily, &CompetingRisksFamily];
        let run = |p: Parallelism| {
            rank_models(
                &families,
                &series,
                &FitConfig {
                    parallelism: p,
                    ..FitConfig::default()
                },
            )
            .unwrap()
        };
        let serial = run(Parallelism::Serial);
        for p in [
            Parallelism::Fixed(1),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let par = run(p);
            assert_eq!(par.rows.len(), serial.rows.len(), "{p:?}");
            for (a, b) in par.rows.iter().zip(&serial.rows) {
                assert_eq!(a.family_name, b.family_name, "{p:?}");
                assert_eq!(a.sse, b.sse, "{p:?}");
                assert_eq!(a.r2_adj, b.r2_adj, "{p:?}");
                assert_eq!(a.criteria, b.criteria, "{p:?}");
            }
        }
    }

    #[test]
    fn forward_chain_cv_runs_and_averages() {
        let series = Recession::R1990_93.payroll_index();
        let cv =
            forward_chain_cv(&QuadraticFamily, &series, 30, 3, 5, &FitConfig::default()).unwrap();
        assert!(!cv.fold_pmse.is_empty());
        assert!(cv.mean_pmse > 0.0);
        let mean = cv.fold_pmse.iter().sum::<f64>() / cv.fold_pmse.len() as f64;
        assert!((mean - cv.mean_pmse).abs() < 1e-15);
    }

    #[test]
    fn forward_chain_cv_validates_geometry() {
        let series = Recession::R1990_93.payroll_index();
        let cfg = FitConfig::default();
        assert!(forward_chain_cv(&QuadraticFamily, &series, 30, 0, 5, &cfg).is_err());
        assert!(forward_chain_cv(&QuadraticFamily, &series, 2, 3, 5, &cfg).is_err());
        assert!(forward_chain_cv(&QuadraticFamily, &series, 47, 3, 5, &cfg).is_err());
    }

    #[test]
    fn cv_separates_families_on_u_shape() {
        // On the smooth 1990-93 curve both bathtub families should CV
        // reasonably; the test checks the machinery orders finite scores.
        let series = Recession::R1990_93.payroll_index();
        let cfg = FitConfig::default();
        let q = forward_chain_cv(&QuadraticFamily, &series, 36, 3, 4, &cfg).unwrap();
        let cr = forward_chain_cv(&CompetingRisksFamily, &series, 36, 3, 4, &cfg).unwrap();
        assert!(q.mean_pmse.is_finite());
        assert!(cr.mean_pmse.is_finite());
    }
}
