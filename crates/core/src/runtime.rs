//! Supervised execution: deadlines, retry-with-backoff, panic isolation,
//! and graceful degradation (DESIGN.md §9).
//!
//! The fitting pipeline is deterministic but not immune to pathological
//! inputs: a family whose SSE surface traps the simplex can burn its full
//! iteration budget, a buggy family implementation can panic, and a
//! multi-series sweep can blow through a caller's latency budget. This
//! module layers *policies* over the raw fitting entry points:
//!
//! * [`fit_with_retry`] — re-runs a non-converged fit from jittered
//!   starting points with deterministically growing jitter (the
//!   parameter-space analogue of exponential backoff).
//! * [`rank_models_supervised`] — [`crate::selection::rank_models`] under
//!   an [`ExecPolicy`]: per-family time budgets, optional retry, and
//!   per-family panic isolation. Failures degrade the
//!   [`Ranking`](crate::selection::Ranking) (`degraded: true`, typed
//!   [`FailureKind`](crate::selection::FailureKind) reasons) instead of
//!   poisoning it.
//!
//! Everything here preserves the workspace's determinism contract: retry
//! jitter comes from counter-derived RNG streams (never wall-clock), so a
//! retried fit is a pure function of the data, the config, and the
//! policy. Deadlines are the only nondeterministic input, and they only
//! select *which* typed outcome you get (a result, or a
//! `TimedOut`/`Cancelled` failure row) — never the numeric content of a
//! successful result.

use crate::chaos::{ChaosFault, ChaosPlan};
use crate::fit::{fit_least_squares_with, FitConfig, FittedModel, WarmStart};
use crate::model::{ModelFamily, ResilienceModel};
use crate::selection::{score_family, sort_rows, FailureKind, FamilyFailure, Ranking};
use crate::CoreError;
use resilience_data::PerformanceSeries;
use resilience_obs::{replay, CounterId, Event, FailureCode, HistogramId, RecordingObserver};
use resilience_optim::parallel::{run_indexed_catch, JobPanic};
use resilience_optim::{Parallelism, StopCause};
use resilience_stats::XorShift64;
use std::sync::Arc;
use std::time::Duration;

pub use resilience_optim::{CancelToken, Control};

/// Deterministic retry for non-converged fits.
///
/// Attempt 1 uses the family's own starting points. Each later attempt
/// perturbs every starting point with zero-mean jitter whose amplitude
/// grows geometrically — exponential backoff in parameter space — so
/// retries explore progressively wider basins. The jitter for attempt
/// `k` is drawn from the counter-derived stream
/// `XorShift64::stream(base_seed, k)`, so the whole retry schedule is a
/// pure function of this policy: no wall-clock, no global RNG state.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (≥ 1; 1 disables retry).
    pub max_attempts: usize,
    /// Seed for the jitter streams.
    pub base_seed: u64,
    /// Relative jitter amplitude on the first retry (attempt 2).
    pub initial_jitter: f64,
    /// Geometric growth factor of the amplitude per further attempt.
    pub growth: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_seed: 0x5EED,
            initial_jitter: 0.05,
            growth: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Jitter amplitude for 1-based `attempt` (attempt 1 is unjittered).
    fn amplitude(&self, attempt: usize) -> f64 {
        debug_assert!(attempt >= 2);
        self.initial_jitter * self.growth.powi(attempt as i32 - 2)
    }
}

/// Execution policy for a supervised multi-family run.
///
/// The default is fully permissive — no budget, no retry — so
/// [`rank_models_supervised`] under `ExecPolicy::default()` and an
/// unbounded [`Control`] behaves exactly like the plain
/// [`rank_models`](crate::selection::rank_models) (which delegates here).
#[derive(Debug, Clone, Default)]
pub struct ExecPolicy {
    /// Wall-clock budget for each family's fit. The clock starts when the
    /// family's job starts (not when the ranking call starts), and is
    /// capped by the caller's overall [`Control`] deadline, never
    /// extending it. `None` means no per-family limit.
    pub family_budget: Option<Duration>,
    /// Retry schedule for non-converged fits. `None` means single-shot.
    pub retry: Option<RetryPolicy>,
    /// Per-family circuit breaker for fleet runs
    /// ([`rank_fleet_supervised`]). `None` disables breaking: every job
    /// always runs.
    pub breaker: Option<BreakerPolicy>,
    /// Deterministic fault-injection plan (chaos testing, DESIGN.md §14).
    /// `None` injects nothing.
    pub chaos: Option<ChaosPlan>,
}

/// Per-family circuit breaker for fleet runs (DESIGN.md §14).
///
/// The breaker is the classic Closed → Open → HalfOpen machine, made
/// deterministic: fleet cells execute in fixed-size *waves*, skip
/// decisions for a wave are frozen from the state at wave start, and all
/// state transitions happen in the serial post-wave reduction in input
/// order on a logical clock (the flattened job index) — no wall-clock
/// anywhere, so breaker behavior is bit-identical across thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failures (per family) that trip Closed → Open.
    pub threshold: u32,
    /// Skipped jobs an Open breaker waits before probing (Open →
    /// HalfOpen). Logical cooldown: it ticks once per job the breaker
    /// skips, never on wall-clock.
    pub cooldown: u32,
    /// Cells per execution wave. Smaller waves react faster (a breaker
    /// tripped in one wave protects the next) at the cost of more
    /// scheduling barriers.
    pub wave: usize,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            threshold: 3,
            cooldown: 4,
            wave: 8,
        }
    }
}

/// Outcome of [`fit_with_retry`]: the winning fit plus how many attempts
/// it took.
#[derive(Debug)]
pub struct SupervisedFit {
    /// The best fit found across all attempts (lowest SSE; the first
    /// converged attempt wins outright and stops the schedule).
    pub fit: FittedModel,
    /// Number of attempts actually made (1 when the first fit converged).
    pub attempts: usize,
}

/// Number of jittered starting points generated around a best-so-far
/// optimum on warm retries (attempts ≥ 2 that already have a fit). Far
/// fewer than the cold grids (up to 24 starts): the center is already in
/// the right basin, the jitter only has to escape a simplex stall.
const WARM_RETRY_STARTS: usize = 8;

/// A family adapter that perturbs starting points with deterministic
/// zero-mean jitter; everything else forwards. With a `center` (the best
/// fit so far), guesses are jittered copies of that optimum instead of
/// the family's cold grid — resampling the basin we already found rather
/// than re-exploring from scratch.
struct JitteredFamily<'a> {
    inner: &'a dyn ModelFamily,
    seed: u64,
    attempt: u64,
    amplitude: f64,
    center: Option<Vec<f64>>,
}

impl ModelFamily for JitteredFamily<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn n_params(&self) -> usize {
        self.inner.n_params()
    }

    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        self.inner.internal_to_params(internal)
    }

    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        self.inner.params_to_internal(params)
    }

    fn build(&self, params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        self.inner.build(params)
    }

    fn initial_guesses(&self, series: &PerformanceSeries) -> Vec<Vec<f64>> {
        // A fresh stream per (seed, attempt) keeps every call — and every
        // retry schedule — a pure function of the policy. Jitter is
        // relative (`1 + |g|`) so parameters spanning orders of magnitude
        // are all perturbed proportionally; infeasible perturbed guesses
        // are dropped later by `params_to_internal`, exactly like
        // infeasible data-driven guesses.
        let mut rng = XorShift64::stream(self.seed, self.attempt);
        let mut jitter = |guess: &mut Vec<f64>| {
            for g in guess.iter_mut() {
                *g += self.amplitude * (2.0 * rng.next_f64() - 1.0) * (1.0 + g.abs());
            }
        };
        match &self.center {
            Some(center) => (0..WARM_RETRY_STARTS)
                .map(|_| {
                    let mut guess = center.clone();
                    jitter(&mut guess);
                    guess
                })
                .collect(),
            None => self
                .inner
                .initial_guesses(series)
                .into_iter()
                .map(|mut guess| {
                    jitter(&mut guess);
                    guess
                })
                .collect(),
        }
    }

    // Forward the allocation-free hot-path hooks so retried fits keep the
    // wrapped family's specialized implementations — including the
    // analytic Jacobian and the batched SSE kernel, without which a
    // retried fit would silently fall back to the slow paths.
    fn internal_to_params_into(&self, internal: &[f64], out: &mut [f64]) {
        self.inner.internal_to_params_into(internal, out);
    }

    fn predict_params_into(&self, params: &[f64], ts: &[f64], out: &mut [f64]) -> bool {
        self.inner.predict_params_into(params, ts, out)
    }

    fn predict_jacobian_into(
        &self,
        internal: &[f64],
        params: &[f64],
        ts: &[f64],
        out: &mut resilience_math::linalg::Matrix,
    ) -> bool {
        self.inner.predict_jacobian_into(internal, params, ts, out)
    }

    fn sse_batch_into(&self, internals: &[f64], ts: &[f64], ys: &[f64], out: &mut [f64]) -> bool {
        self.inner.sse_batch_into(internals, ts, ys, out)
    }

    fn nm_iteration_scale(&self) -> usize {
        self.inner.nm_iteration_scale()
    }
}

/// Fits `family` to `series`, retrying from jittered starting points when
/// the fit fails or does not converge.
///
/// The schedule keeps the best successful fit by SSE across attempts and
/// stops early at the first converged one. Deadline/cancellation stops
/// ([`CoreError::is_stop`]) abort the schedule immediately and propagate
/// — a stop is a property of the whole run, not of one attempt.
///
/// # Errors
///
/// * [`CoreError::TimedOut`] / [`CoreError::Cancelled`] when `control`
///   stops an attempt.
/// * The last attempt's error when every attempt fails.
///
/// # Examples
///
/// ```
/// use resilience_core::bathtub::QuadraticFamily;
/// use resilience_core::fit::FitConfig;
/// use resilience_core::runtime::{fit_with_retry, Control, RetryPolicy};
/// use resilience_data::PerformanceSeries;
///
/// let values: Vec<f64> = (0..40)
///     .map(|i| {
///         let t = i as f64;
///         1.0 - 0.012 * t + 0.0004 * t * t
///     })
///     .collect();
/// let series = PerformanceSeries::monthly("demo", values)?;
/// let sup = fit_with_retry(
///     &QuadraticFamily,
///     &series,
///     &FitConfig::default(),
///     &RetryPolicy::default(),
///     &Control::unbounded(),
/// )?;
/// assert_eq!(sup.attempts, 1); // clean data converges first try
/// assert!(sup.fit.converged);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fit_with_retry(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    config: &FitConfig,
    policy: &RetryPolicy,
    control: &Control,
) -> Result<SupervisedFit, CoreError> {
    fit_with_retry_impl(family, series, config, policy, control, None)
}

/// Chaos context threaded into the retry loop by the supervised jobs:
/// which plan governs this job, which fleet cell it belongs to, and
/// whether a job-boundary exhaustion fault is in force.
struct ChaosCtx<'a> {
    plan: &'a ChaosPlan,
    cell: u32,
    exhaust: bool,
}

impl ChaosCtx<'_> {
    /// The typed error a chaos-failed attempt produces. A plain
    /// deterministic error (not a stop): the retry schedule treats it
    /// like any other failed attempt.
    fn attempt_error(&self, what: &'static str) -> CoreError {
        CoreError::arg(what, "chaos: injected fault")
    }
}

fn fit_with_retry_impl(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    config: &FitConfig,
    policy: &RetryPolicy,
    control: &Control,
    chaos: Option<&ChaosCtx<'_>>,
) -> Result<SupervisedFit, CoreError> {
    if policy.max_attempts == 0 {
        return Err(CoreError::arg(
            "fit_with_retry",
            "max_attempts must be >= 1",
        ));
    }
    let mut best: Option<FittedModel> = None;
    let mut last_err: Option<CoreError> = None;
    let mut attempts = 0usize;
    for attempt in 1..=policy.max_attempts {
        if attempt > 1 {
            // A stopped run exits *before* charging the retry: the
            // attempt would be dead on arrival, and a cancellation (or an
            // expired deadline) is a property of the whole run, not a
            // failure this family should burn budget on. Polling here —
            // ahead of the retry event/counter — keeps the telemetry
            // honest: no `retry_scheduled` is ever logged for an attempt
            // that cannot run.
            if let Some(cause) = control.stop_cause() {
                return Err(match cause {
                    StopCause::DeadlineExceeded => CoreError::timed_out("fit_with_retry"),
                    StopCause::Cancelled => CoreError::cancelled("fit_with_retry"),
                });
            }
        }
        attempts = attempt;
        if let Some(ctx) = chaos {
            if ctx.exhaust {
                // Job-boundary exhaustion fault: every attempt fails, so
                // the schedule runs (and is charged) to its policy bound.
                if attempt > 1 {
                    control.emit(Event::RetryScheduled {
                        family: family.name(),
                        attempt: attempt as u32,
                    });
                    control.count(CounterId::Retries, 1);
                }
                last_err = Some(ctx.attempt_error("fit_with_retry"));
                continue;
            }
            if ctx.plan.transient(ctx.cell, family.name(), attempt as u32) {
                // Transient per-attempt fault: this attempt fails
                // retryably; the next attempt draws its own stream and
                // may succeed.
                if attempt > 1 {
                    control.emit(Event::RetryScheduled {
                        family: family.name(),
                        attempt: attempt as u32,
                    });
                    control.count(CounterId::Retries, 1);
                }
                control.emit(Event::ChaosInjected {
                    kind: resilience_obs::ChaosKind::Transient,
                    cell: ctx.cell,
                    family: family.name(),
                });
                control.count(CounterId::ChaosInjected, 1);
                last_err = Some(ctx.attempt_error("fit_with_retry"));
                continue;
            }
        }
        let outcome = if attempt == 1 {
            fit_least_squares_with(family, series, config, control)
        } else {
            control.emit(Event::RetryScheduled {
                family: family.name(),
                attempt: attempt as u32,
            });
            control.count(CounterId::Retries, 1);
            // With a best-so-far fit, retries warm-start from its optimum
            // (the probe usually short-circuits the whole cold phase) and
            // jitter *around* it; without one, the cold grid is all there
            // is. Either way the schedule stays a pure function of the
            // policy — the warm center is itself deterministic.
            let mut retry_config = config.clone();
            if let Some(fit) = &best {
                retry_config.warm_start = Some(WarmStart::new(fit.params.clone()));
            }
            let jittered = JitteredFamily {
                inner: family,
                seed: policy.base_seed,
                attempt: attempt as u64,
                amplitude: policy.amplitude(attempt),
                center: best.as_ref().map(|fit| fit.params.clone()),
            };
            fit_least_squares_with(&jittered, series, &retry_config, control)
        };
        match outcome {
            Ok(fit) => {
                let done = fit.converged;
                let better = best.as_ref().is_none_or(|b| fit.sse < b.sse);
                if better {
                    best = Some(fit);
                }
                if done {
                    break;
                }
            }
            Err(e) if e.is_stop() => return Err(e),
            Err(e) => last_err = Some(e),
        }
    }
    match best {
        Some(fit) => {
            control.emit(Event::Hist {
                id: HistogramId::AttemptsPerFit,
                value: attempts as u64,
            });
            Ok(SupervisedFit { fit, attempts })
        }
        // All attempts errored; `last_err` is necessarily set.
        None => Err(last_err
            .unwrap_or_else(|| CoreError::arg("fit_with_retry", "no attempt produced a fit"))),
    }
}

/// [`rank_models`](crate::selection::rank_models) under an [`ExecPolicy`]
/// and an execution [`Control`].
///
/// Each family fits in its own supervised job:
///
/// * a panic inside the family is caught at the job boundary and becomes
///   a [`FailureKind::Panicked`] failure row;
/// * `policy.family_budget` narrows the caller's control to a per-family
///   deadline, so one runaway family costs at most its budget and
///   surfaces as [`FailureKind::TimedOut`];
/// * `policy.retry` re-runs non-converged fits from jittered starts.
///
/// Failures never abort the ranking: surviving families are ranked as
/// usual and the result carries `degraded: true` plus one typed failure
/// row per lost family (graceful degradation, DESIGN.md §9).
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] when *no* family fits.
/// * [`CoreError::TimedOut`] / [`CoreError::Cancelled`] when the
///   *caller's* control stopped the run and nothing survived.
pub fn rank_models_supervised(
    families: &[&dyn ModelFamily],
    series: &PerformanceSeries,
    config: &FitConfig,
    policy: &ExecPolicy,
    control: &Control,
) -> Result<Ranking, CoreError> {
    // Parallelize across families; the inner multi-start goes serial so
    // the fan-out happens at exactly one level.
    let mut inner = config.clone();
    inner.parallelism = Parallelism::Serial;
    // Per-family event buffers, replayed into the caller's sink in input
    // order below so the merged log is independent of worker scheduling.
    // Created outside the jobs: a panicking family keeps the events it
    // buffered before dying.
    let recorders: Option<Vec<Arc<RecordingObserver>>> = control.observed().then(|| {
        (0..families.len())
            .map(|_| Arc::new(RecordingObserver::new()))
            .collect()
    });
    let outcomes = run_indexed_catch(config.parallelism, families.len(), |i| {
        supervised_family_job(
            families[i],
            series,
            &inner,
            policy,
            control,
            recorders.as_ref().map(|recs| &recs[i]),
            0,
        )
    });
    reduce_series_outcomes(families, outcomes, recorders.as_deref(), control)
}

/// One supervised series × family job: narrows the caller's control to
/// the per-family budget (the clock starts here, on the worker, so
/// queueing behind other jobs does not consume a family's budget),
/// attaches the job's event buffer, fits — with retry when the policy
/// asks for it — and scores.
fn supervised_family_job(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    inner: &FitConfig,
    policy: &ExecPolicy,
    control: &Control,
    recorder: Option<&Arc<RecordingObserver>>,
    cell: u32,
) -> Result<crate::selection::SelectionRow, FamilyFailure> {
    let family_control = match policy.family_budget {
        Some(budget) => control.narrowed(budget),
        None => control.clone(),
    };
    let family_control = match recorder {
        Some(rec) => family_control.observe(rec.clone()),
        None => family_control,
    };
    // Chaos injection (DESIGN.md §14). The accounting event goes into the
    // job's recorder *before* the fault takes effect, so even a forced
    // panic or an observer loss leaves the injection on the record — the
    // smoke gate reconciles injected faults against these events.
    let fault = policy
        .chaos
        .as_ref()
        .and_then(|plan| plan.job_fault(cell, family.name()));
    let mut exhaust = false;
    let fit_control = match fault {
        None => family_control.clone(),
        Some(fault) => {
            family_control.emit(Event::ChaosInjected {
                kind: fault.kind(),
                cell,
                family: family.name(),
            });
            family_control.count(CounterId::ChaosInjected, 1);
            match fault {
                ChaosFault::ForcedPanic => {
                    panic!("chaos: forced panic in {}", family.name())
                }
                // Zero budget makes the solver's *first* cancellation
                // point fire — the timeout travels through the real stop
                // machinery, deterministically, with no wall-clock in any
                // stored value.
                ChaosFault::DeadlineBlowout => family_control.narrowed(Duration::ZERO),
                // The fit proceeds untraced: result paths must survive
                // losing their telemetry sink.
                ChaosFault::ObserverLoss => family_control.unobserved(),
                ChaosFault::RetryExhaustion => {
                    exhaust = true;
                    family_control.clone()
                }
            }
        }
    };
    let chaos_ctx = policy.chaos.as_ref().map(|plan| ChaosCtx {
        plan,
        cell,
        exhaust,
    });
    let fit_outcome = match &policy.retry {
        Some(retry) => fit_with_retry_impl(
            family,
            series,
            inner,
            retry,
            &fit_control,
            chaos_ctx.as_ref(),
        )
        .map(|s| s.fit),
        None => match chaos_ctx {
            // Single-shot under chaos: an exhaustion fault or a transient
            // hit on the only attempt fails the job outright.
            Some(ctx) if ctx.exhaust => Err(ctx.attempt_error("fit")),
            Some(ctx) if ctx.plan.transient(cell, family.name(), 1) => {
                fit_control.emit(Event::ChaosInjected {
                    kind: resilience_obs::ChaosKind::Transient,
                    cell,
                    family: family.name(),
                });
                fit_control.count(CounterId::ChaosInjected, 1);
                Err(ctx.attempt_error("fit"))
            }
            _ => fit_least_squares_with(family, series, inner, &fit_control),
        },
    };
    let fit = fit_outcome.map_err(|e| {
        let kind = match e {
            CoreError::TimedOut { .. } => FailureKind::TimedOut,
            CoreError::Cancelled { .. } => FailureKind::Cancelled,
            _ => FailureKind::Error,
        };
        FamilyFailure {
            family_name: family.name(),
            reason: format!("fit: {e}"),
            kind,
        }
    })?;
    score_family(family, series, &fit)
}

/// Reduces one series' per-family job outcomes into a [`Ranking`],
/// replaying each job's event buffer into the caller's sink in family
/// order (so the merged log is independent of worker scheduling) and
/// converting panics into degraded failure rows.
fn reduce_series_outcomes(
    families: &[&dyn ModelFamily],
    outcomes: Vec<Result<Result<crate::selection::SelectionRow, FamilyFailure>, JobPanic>>,
    recorders: Option<&[Arc<RecordingObserver>]>,
    control: &Control,
) -> Result<Ranking, CoreError> {
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for (i, outcome) in outcomes.into_iter().enumerate() {
        if let (Some(recs), Some(sink)) = (recorders, control.observer()) {
            replay(&recs[i].take(), sink.as_ref());
        }
        match outcome {
            Ok(Ok(row)) => rows.push(row),
            Ok(Err(failure)) => {
                control.emit(Event::FitFailed {
                    family: failure.family_name,
                    kind: failure.kind.code(),
                });
                failures.push(failure);
            }
            Err(panic) => {
                control.emit(Event::WorkerPanic {
                    scope: families[i].name(),
                    index: i as u32,
                });
                control.emit(Event::FitFailed {
                    family: families[i].name(),
                    kind: FailureCode::Panicked,
                });
                failures.push(FamilyFailure {
                    family_name: families[i].name(),
                    reason: format!("fit: {}", panic.message),
                    kind: FailureKind::Panicked,
                });
            }
        }
    }
    if rows.is_empty() {
        // Distinguish "the caller stopped us" from "nothing could fit":
        // a stopped run with no survivors propagates the stop.
        return Err(match control.stop_cause() {
            Some(StopCause::DeadlineExceeded) => CoreError::timed_out("rank_models"),
            Some(StopCause::Cancelled) => CoreError::cancelled("rank_models"),
            None => CoreError::arg("rank_models", "no family produced a fit"),
        });
    }
    sort_rows(&mut rows);
    let degraded = !failures.is_empty();
    Ok(Ranking {
        rows,
        failures,
        degraded,
    })
}

/// Batch entry point for fleet runs: ranks every series in `series_list`
/// under the same policy, with work-stealing over the *flattened*
/// series × family job list (DESIGN.md §13).
///
/// Flattening matters for fleet-scale throughput: a series whose families
/// are all cheap does not leave workers idle while one expensive
/// series × family pair finishes, because jobs are handed out one at a
/// time from a shared atomic counter ([`run_indexed_catch`]) at the
/// finest useful granularity. The inner multi-start runs serial, exactly
/// like [`rank_models_supervised`].
///
/// Returns one outcome per series, in input order. Each outcome — the
/// ranked rows, the typed failures, every SSE bit, and (when observed)
/// the replayed event stream — is **bit-identical** to what a standalone
/// [`rank_models_supervised`] call on that series would produce, for any
/// `config.parallelism`: jobs are pure functions of their (series,
/// family) pair and both reduction and event replay happen in input
/// order.
///
/// Per-series errors (a stop with no survivors, or no family fitting)
/// land in that series' slot; other series still rank — one poisoned cell
/// must not abort a fleet.
pub fn rank_many_supervised(
    families: &[&dyn ModelFamily],
    series_list: &[PerformanceSeries],
    config: &FitConfig,
    policy: &ExecPolicy,
    control: &Control,
) -> Vec<Result<Ranking, CoreError>> {
    rank_fleet_supervised(families, series_list, config, policy, control)
        .into_iter()
        .map(CellOutcome::into_result)
        .collect()
}

/// Outcome of one fleet cell under [`rank_fleet_supervised`].
#[derive(Debug)]
pub enum CellOutcome {
    /// At least one family ranked (possibly degraded).
    Ranked(Ranking),
    /// Every family failed, but the run itself was not stopped: the cell
    /// is quarantined. Fleet stores park quarantined cells in a sentinel
    /// column instead of retrying them.
    Quarantined {
        /// The typed per-family failures, in input order.
        failures: Vec<FamilyFailure>,
    },
    /// The caller's control stopped the run and nothing survived.
    Stopped(CoreError),
}

impl CellOutcome {
    /// Collapses to the legacy [`rank_many_supervised`] result shape: a
    /// quarantined cell maps to the same `InvalidArgument` a no-survivor
    /// ranking always produced.
    pub fn into_result(self) -> Result<Ranking, CoreError> {
        match self {
            CellOutcome::Ranked(ranking) => Ok(ranking),
            CellOutcome::Quarantined { .. } => {
                Err(CoreError::arg("rank_models", "no family produced a fit"))
            }
            CellOutcome::Stopped(e) => Err(e),
        }
    }

    /// The quarantined failures, if this cell was quarantined.
    pub fn quarantined(&self) -> Option<&[FamilyFailure]> {
        match self {
            CellOutcome::Quarantined { failures } => Some(failures),
            _ => None,
        }
    }
}

/// Circuit-breaker state for one family (DESIGN.md §14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { cooldown: u32 },
    HalfOpen,
}

#[derive(Debug, Clone)]
struct Breaker {
    state: BreakerState,
    consecutive: u32,
}

impl Breaker {
    fn closed() -> Self {
        Breaker {
            state: BreakerState::Closed,
            consecutive: 0,
        }
    }

    /// A successful fit: reset the failure streak; a HalfOpen probe
    /// success recloses the breaker.
    fn on_success(&mut self, family: &'static str, clock: u64, control: &Control) {
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            control.emit(Event::BreakerClosed { family, clock });
        }
        self.consecutive = 0;
    }

    /// A failed fit: extend the streak; trip Closed → Open at the
    /// threshold, and reopen on a failed HalfOpen probe. Cancellation is
    /// excluded by the caller — a stopped run is not the family's fault.
    fn on_failure(
        &mut self,
        policy: &BreakerPolicy,
        family: &'static str,
        clock: u64,
        control: &Control,
    ) {
        self.consecutive += 1;
        let trip = match self.state {
            BreakerState::Closed => self.consecutive >= policy.threshold,
            BreakerState::HalfOpen => true,
            BreakerState::Open { .. } => false,
        };
        if trip {
            self.state = BreakerState::Open {
                cooldown: policy.cooldown.max(1),
            };
            control.emit(Event::BreakerOpened {
                family,
                consecutive: self.consecutive,
                clock,
            });
            control.count(CounterId::BreakerOpened, 1);
        }
    }

    /// A skipped job while Open ticks the logical cooldown; at zero the
    /// breaker half-opens (the next wave runs one probe).
    fn on_skip(&mut self, family: &'static str, clock: u64, control: &Control) {
        if let BreakerState::Open { cooldown } = self.state {
            let cooldown = cooldown - 1;
            if cooldown == 0 {
                self.state = BreakerState::HalfOpen;
                control.emit(Event::BreakerHalfOpen { family, clock });
                control.count(CounterId::BreakerHalfOpen, 1);
            } else {
                self.state = BreakerState::Open { cooldown };
            }
        }
    }
}

/// Fleet entry point with full supervision: work-stealing over flattened
/// series × family jobs (like [`rank_many_supervised`], which delegates
/// here), plus per-family circuit breaking, cell quarantine, and chaos
/// injection when the policy asks for them (DESIGN.md §14).
///
/// Cells execute in fixed-size waves (`policy.breaker.wave`; one single
/// wave when no breaker is configured). Within a wave, jobs run under
/// work-stealing exactly as before; skip decisions are frozen from the
/// breaker state at wave start, and every state transition happens in the
/// serial post-wave reduction, in flattened input order, on a logical
/// clock (the flattened job index). Result: rankings, event logs, and
/// breaker behavior are all bit-identical across reruns and thread
/// counts.
///
/// A cell none of whose families produced a row is **quarantined** (or
/// [`CellOutcome::Stopped`] when the caller's control stopped the run):
/// downstream stores park it in a sentinel column instead of burning
/// retry budget on it. With `policy.breaker` and `policy.chaos` both
/// `None` this is behaviorally identical to the pre-breaker fleet path.
pub fn rank_fleet_supervised(
    families: &[&dyn ModelFamily],
    series_list: &[PerformanceSeries],
    config: &FitConfig,
    policy: &ExecPolicy,
    control: &Control,
) -> Vec<CellOutcome> {
    let mut inner = config.clone();
    inner.parallelism = Parallelism::Serial;
    let nf = families.len();
    let supervised = policy.breaker.is_some() || policy.chaos.is_some();
    let wave_cells = policy
        .breaker
        .as_ref()
        .map_or(usize::MAX, |b| b.wave.max(1));
    let mut breakers: Vec<Breaker> = vec![Breaker::closed(); nf];
    let mut cells: Vec<CellOutcome> = Vec::with_capacity(series_list.len());

    let mut wave_start = 0usize;
    while wave_start < series_list.len() {
        let wave_end = wave_start.saturating_add(wave_cells).min(series_list.len());
        let wave_jobs = (wave_end - wave_start) * nf;
        // Skip mask frozen from the state at wave start. A HalfOpen
        // breaker lets exactly one probe job (the first of its family in
        // flattened order) through; everything else of that family waits
        // on the probe's verdict.
        let mut probed = vec![false; nf];
        let skip: Vec<bool> = (0..wave_jobs)
            .map(|j| {
                let f = j % nf;
                match breakers[f].state {
                    BreakerState::Closed => false,
                    BreakerState::Open { .. } => true,
                    BreakerState::HalfOpen => {
                        if probed[f] {
                            true
                        } else {
                            probed[f] = true;
                            false
                        }
                    }
                }
            })
            .collect();
        let recorders: Option<Vec<Arc<RecordingObserver>>> = control.observed().then(|| {
            (0..wave_jobs)
                .map(|_| Arc::new(RecordingObserver::new()))
                .collect()
        });
        let outcomes = run_indexed_catch(config.parallelism, wave_jobs, |j| {
            if skip[j] {
                return Err(FamilyFailure {
                    family_name: families[j % nf].name(),
                    reason: "breaker open: fit skipped".into(),
                    kind: FailureKind::Skipped,
                });
            }
            supervised_family_job(
                families[j % nf],
                &series_list[wave_start + j / nf],
                &inner,
                policy,
                control,
                recorders.as_ref().map(|recs| &recs[j]),
                (wave_start + j / nf) as u32,
            )
        });

        // Serial reduction in flattened input order: replay each job's
        // event buffer, update the breaker machine, and assemble cells.
        let mut outcomes = outcomes.into_iter();
        for (w, cell) in (wave_start..wave_end).enumerate() {
            let mut rows = Vec::new();
            let mut failures = Vec::new();
            for f in 0..nf {
                let j = w * nf + f;
                let clock = (cell * nf + f) as u64;
                let family = families[f].name();
                if let (Some(recs), Some(sink)) = (recorders.as_ref(), control.observer()) {
                    replay(&recs[j].take(), sink.as_ref());
                }
                let outcome = outcomes.next().expect("one outcome per wave job");
                match outcome {
                    Ok(Ok(row)) => {
                        breakers[f].on_success(family, clock, control);
                        rows.push(row);
                    }
                    Ok(Err(failure)) => {
                        control.emit(Event::FitFailed {
                            family: failure.family_name,
                            kind: failure.kind.code(),
                        });
                        match failure.kind {
                            FailureKind::Skipped => breakers[f].on_skip(family, clock, control),
                            // A cancelled run is a property of the whole
                            // fleet, not evidence against this family.
                            FailureKind::Cancelled => {}
                            _ => {
                                if let Some(bp) = &policy.breaker {
                                    breakers[f].on_failure(bp, family, clock, control);
                                }
                            }
                        }
                        failures.push(failure);
                    }
                    Err(panic) => {
                        control.emit(Event::WorkerPanic {
                            scope: family,
                            index: f as u32,
                        });
                        control.emit(Event::FitFailed {
                            family,
                            kind: FailureCode::Panicked,
                        });
                        if let Some(bp) = &policy.breaker {
                            breakers[f].on_failure(bp, family, clock, control);
                        }
                        failures.push(FamilyFailure {
                            family_name: family,
                            reason: format!("fit: {}", panic.message),
                            kind: FailureKind::Panicked,
                        });
                    }
                }
            }
            if rows.is_empty() {
                // Same precedence as the single-series reduce: a stopped
                // run with no survivors propagates the stop; otherwise
                // the cell is quarantined.
                match control.stop_cause() {
                    Some(StopCause::DeadlineExceeded) => {
                        cells.push(CellOutcome::Stopped(CoreError::timed_out("rank_models")));
                    }
                    Some(StopCause::Cancelled) => {
                        cells.push(CellOutcome::Stopped(CoreError::cancelled("rank_models")));
                    }
                    None => {
                        if supervised && !failures.is_empty() {
                            control.emit(Event::CellQuarantined {
                                cell: cell as u32,
                                failures: failures.len() as u32,
                            });
                            control.count(CounterId::CellsQuarantined, 1);
                        }
                        cells.push(CellOutcome::Quarantined { failures });
                    }
                }
            } else {
                sort_rows(&mut rows);
                let degraded = !failures.is_empty();
                cells.push(CellOutcome::Ranked(Ranking {
                    rows,
                    failures,
                    degraded,
                }));
            }
        }
        wave_start = wave_end;
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bathtub::{QuadraticFamily, QuarticFamily};

    fn quadratic_series() -> PerformanceSeries {
        let mut wiggle = 0.41_f64;
        let values: Vec<f64> = (0..48)
            .map(|i| {
                let t = i as f64;
                wiggle = (wiggle * 137.0).fract();
                1.0 - 0.012 * t + 0.0004 * t * t + 0.002 * (wiggle - 0.5)
            })
            .collect();
        PerformanceSeries::monthly("quad", values).unwrap()
    }

    #[test]
    fn retry_is_a_no_op_for_converging_fits() {
        let s = quadratic_series();
        let sup = fit_with_retry(
            &QuadraticFamily,
            &s,
            &FitConfig::default(),
            &RetryPolicy::default(),
            &Control::unbounded(),
        )
        .unwrap();
        assert_eq!(sup.attempts, 1);
        assert!(sup.fit.converged);
        // ... and bit-identical to the plain fit.
        let plain =
            crate::fit::fit_least_squares(&QuadraticFamily, &s, &FitConfig::default()).unwrap();
        assert_eq!(sup.fit.params, plain.params);
        assert_eq!(sup.fit.sse, plain.sse);
    }

    #[test]
    fn retry_recovers_from_a_starved_iteration_budget() {
        // A tiny iteration budget leaves the first attempt non-converged;
        // the schedule must keep trying (from jittered starts) and return
        // the best SSE seen, with attempts > 1.
        let s = quadratic_series();
        let mut config = FitConfig::default();
        config.nelder_mead.max_iterations = 3;
        config.lm_polish = false;
        let sup = fit_with_retry(
            &QuadraticFamily,
            &s,
            &config,
            &RetryPolicy::default(),
            &Control::unbounded(),
        )
        .unwrap();
        assert_eq!(sup.attempts, RetryPolicy::default().max_attempts);
        assert!(!sup.fit.converged);
        // Best-by-SSE: never worse than the single-shot fit.
        let single = crate::fit::fit_least_squares(&QuadraticFamily, &s, &config).unwrap();
        assert!(sup.fit.sse <= single.sse);
    }

    #[test]
    fn retry_schedule_is_deterministic() {
        let s = quadratic_series();
        let mut config = FitConfig::default();
        config.nelder_mead.max_iterations = 3;
        config.lm_polish = false;
        let run = || {
            fit_with_retry(
                &QuadraticFamily,
                &s,
                &config,
                &RetryPolicy::default(),
                &Control::unbounded(),
            )
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.fit.params, b.fit.params);
        assert_eq!(a.fit.sse, b.fit.sse);
    }

    #[test]
    fn retry_rejects_zero_attempts_and_propagates_stops() {
        let s = quadratic_series();
        let zero = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert!(fit_with_retry(
            &QuadraticFamily,
            &s,
            &FitConfig::default(),
            &zero,
            &Control::unbounded()
        )
        .is_err());
        // An expired deadline aborts the schedule instead of retrying
        // through it.
        let err = fit_with_retry(
            &QuadraticFamily,
            &s,
            &FitConfig::default(),
            &RetryPolicy::default(),
            &Control::with_deadline(Duration::ZERO),
        )
        .unwrap_err();
        assert!(err.is_stop(), "{err}");
    }

    #[test]
    fn supervised_ranking_with_default_policy_matches_rank_models() {
        let s = quadratic_series();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &QuarticFamily];
        let plain = crate::selection::rank_models(&families, &s, &FitConfig::default()).unwrap();
        let supervised = rank_models_supervised(
            &families,
            &s,
            &FitConfig::default(),
            &ExecPolicy::default(),
            &Control::unbounded(),
        )
        .unwrap();
        assert_eq!(plain.rows.len(), supervised.rows.len());
        for (a, b) in plain.rows.iter().zip(&supervised.rows) {
            assert_eq!(a.family_name, b.family_name);
            assert_eq!(a.sse, b.sse);
        }
        assert!(!supervised.degraded);
    }

    #[test]
    fn supervised_ranking_event_log_is_invariant_to_thread_count() {
        use resilience_obs::RecordingObserver;
        use std::sync::Arc;
        let s = quadratic_series();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &QuarticFamily];
        let trace = |p: Parallelism| {
            let rec = Arc::new(RecordingObserver::new());
            let config = FitConfig {
                parallelism: p,
                ..FitConfig::default()
            };
            rank_models_supervised(
                &families,
                &s,
                &config,
                &ExecPolicy::default(),
                &Control::unbounded().observe(rec.clone()),
            )
            .unwrap();
            rec.take()
        };
        let serial = trace(Parallelism::Serial);
        assert!(!serial.is_empty());
        for p in [Parallelism::Fixed(2), Parallelism::Fixed(4)] {
            assert_eq!(trace(p), serial, "{p:?}");
        }
    }

    fn batch_series() -> Vec<PerformanceSeries> {
        // Three distinct recovery stories so the flattened job list mixes
        // cheap and expensive cells.
        [
            ("a", 0.009, 0.00030),
            ("b", 0.014, 0.00045),
            ("c", 0.006, 0.00020),
        ]
        .iter()
        .map(|&(name, drift, curve)| {
            let mut wiggle = 0.17_f64;
            let values: Vec<f64> = (0..40)
                .map(|i| {
                    let t = i as f64;
                    wiggle = (wiggle * 193.0).fract();
                    1.0 - drift * t + curve * t * t + 0.002 * (wiggle - 0.5)
                })
                .collect();
            PerformanceSeries::monthly(name, values).unwrap()
        })
        .collect()
    }

    #[test]
    fn rank_many_matches_standalone_supervised_calls_bit_for_bit() {
        let series_list = batch_series();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &QuarticFamily];
        let batch = rank_many_supervised(
            &families,
            &series_list,
            &FitConfig::default(),
            &ExecPolicy::default(),
            &Control::unbounded(),
        );
        assert_eq!(batch.len(), series_list.len());
        for (series, outcome) in series_list.iter().zip(&batch) {
            let standalone = rank_models_supervised(
                &families,
                series,
                &FitConfig::default(),
                &ExecPolicy::default(),
                &Control::unbounded(),
            )
            .unwrap();
            let ranking = outcome.as_ref().unwrap();
            assert_eq!(ranking.rows.len(), standalone.rows.len());
            for (a, b) in ranking.rows.iter().zip(&standalone.rows) {
                assert_eq!(a.family_name, b.family_name);
                assert_eq!(a.sse.to_bits(), b.sse.to_bits());
                assert_eq!(a.r2_adj.to_bits(), b.r2_adj.to_bits());
            }
        }
    }

    #[test]
    fn rank_many_results_and_events_are_invariant_to_thread_count() {
        use resilience_obs::RecordingObserver;
        let series_list = batch_series();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &QuarticFamily];
        let run = |p: Parallelism| {
            let rec = Arc::new(RecordingObserver::new());
            let config = FitConfig {
                parallelism: p,
                ..FitConfig::default()
            };
            let rankings = rank_many_supervised(
                &families,
                &series_list,
                &config,
                &ExecPolicy::default(),
                &Control::unbounded().observe(rec.clone()),
            );
            let bits: Vec<Vec<(&'static str, u64)>> = rankings
                .into_iter()
                .map(|r| {
                    r.unwrap()
                        .rows
                        .into_iter()
                        .map(|row| (row.family_name, row.sse.to_bits()))
                        .collect()
                })
                .collect();
            (bits, rec.take())
        };
        let (serial_bits, serial_events) = run(Parallelism::Serial);
        assert!(!serial_events.is_empty());
        for p in [Parallelism::Fixed(2), Parallelism::Fixed(3)] {
            let (bits, events) = run(p);
            assert_eq!(bits, serial_bits, "{p:?}");
            assert_eq!(events, serial_events, "{p:?}");
        }
    }

    #[test]
    fn rank_many_degrades_per_series_instead_of_aborting_the_batch() {
        // No families at all: every series fails on its own, in its own
        // slot — the batch call itself still returns one outcome per
        // series.
        let series_list = batch_series();
        let batch = rank_many_supervised(
            &[],
            &series_list,
            &FitConfig::default(),
            &ExecPolicy::default(),
            &Control::unbounded(),
        );
        assert_eq!(batch.len(), series_list.len());
        for outcome in &batch {
            assert!(matches!(outcome, Err(CoreError::InvalidArgument { .. })));
        }
        // And an empty fleet is an empty result, not an error.
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily];
        assert!(rank_many_supervised(
            &families,
            &[],
            &FitConfig::default(),
            &ExecPolicy::default(),
            &Control::unbounded(),
        )
        .is_empty());
    }

    #[test]
    fn retry_telemetry_reports_schedule_and_attempts() {
        use resilience_obs::{CounterId, Event, HistogramId, RecordingObserver};
        use std::sync::Arc;
        let s = quadratic_series();
        let mut config = FitConfig::default();
        config.nelder_mead.max_iterations = 3;
        config.lm_polish = false;
        let rec = Arc::new(RecordingObserver::new());
        let control = Control::unbounded().observe(rec.clone());
        let sup = fit_with_retry(
            &QuadraticFamily,
            &s,
            &config,
            &RetryPolicy::default(),
            &control,
        )
        .unwrap();
        assert_eq!(sup.attempts, 3);
        let events = rec.take();
        let retries: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                Event::RetryScheduled { attempt, .. } => Some(*attempt),
                _ => None,
            })
            .collect();
        assert_eq!(retries, vec![2, 3]);
        let retry_count: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Counter {
                    id: CounterId::Retries,
                    delta,
                } => Some(*delta),
                _ => None,
            })
            .sum();
        assert_eq!(retry_count, 2);
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Hist {
                id: HistogramId::AttemptsPerFit,
                value: 3,
            }
        )));
    }

    /// Delegates everything to [`QuadraticFamily`] but cancels `token`
    /// inside `initial_guesses` and returns no guesses, so the attempt
    /// fails with a plain (non-stop) error while the run is now
    /// cancelled — the exact state the retry loop must not charge.
    struct CancelInsideFit {
        token: CancelToken,
    }

    impl ModelFamily for CancelInsideFit {
        fn name(&self) -> &'static str {
            "CancelInsideFit"
        }
        fn n_params(&self) -> usize {
            QuadraticFamily.n_params()
        }
        fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
            QuadraticFamily.internal_to_params(internal)
        }
        fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
            QuadraticFamily.params_to_internal(params)
        }
        fn build(&self, params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
            QuadraticFamily.build(params)
        }
        fn initial_guesses(&self, _series: &PerformanceSeries) -> Vec<Vec<f64>> {
            self.token.cancel();
            Vec::new()
        }
    }

    #[test]
    fn cancellation_exits_the_retry_schedule_without_charging_an_attempt() {
        use resilience_obs::RecordingObserver;
        // Regression: the retry loop used to emit `retry_scheduled` and
        // charge the Retries counter at the top of every attempt >= 2,
        // even when the run was already cancelled — a dead-on-arrival
        // attempt billed to the family. Cancellation must exit the
        // schedule immediately, with zero retry telemetry.
        let s = quadratic_series();
        let token = CancelToken::new();
        let rec = Arc::new(RecordingObserver::new());
        let control = Control::with_token(&token).observe(rec.clone());
        let err = fit_with_retry(
            &CancelInsideFit {
                token: token.clone(),
            },
            &s,
            &FitConfig::default(),
            &RetryPolicy::default(),
            &control,
        )
        .unwrap_err();
        assert!(
            matches!(err, CoreError::Cancelled { .. }),
            "expected Cancelled, got {err}"
        );
        let events = rec.take();
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, Event::RetryScheduled { .. })),
            "cancelled run must not schedule retries: {events:?}"
        );
        assert!(
            !events.iter().any(|e| matches!(
                e,
                Event::Counter {
                    id: CounterId::Retries,
                    ..
                }
            )),
            "cancelled run must not charge the Retries counter: {events:?}"
        );
    }

    /// Delegates to [`QuadraticFamily`] but refuses to fit any series
    /// whose name starts with `bad` (empty guess pool → a plain error),
    /// so failures are a pure function of the cell.
    struct FailsOnBadCells;

    impl ModelFamily for FailsOnBadCells {
        fn name(&self) -> &'static str {
            "FailsOnBadCells"
        }
        fn n_params(&self) -> usize {
            QuadraticFamily.n_params()
        }
        fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
            QuadraticFamily.internal_to_params(internal)
        }
        fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
            QuadraticFamily.params_to_internal(params)
        }
        fn build(&self, params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
            QuadraticFamily.build(params)
        }
        fn initial_guesses(&self, series: &PerformanceSeries) -> Vec<Vec<f64>> {
            if series.name().starts_with("bad") {
                Vec::new()
            } else {
                QuadraticFamily.initial_guesses(series)
            }
        }
    }

    fn breaker_series(n_bad_then_good: (usize, usize)) -> Vec<PerformanceSeries> {
        let (bad, good) = n_bad_then_good;
        (0..bad + good)
            .map(|i| {
                let name = if i < bad {
                    format!("bad{i}")
                } else {
                    format!("good{i}")
                };
                let values: Vec<f64> = (0..40)
                    .map(|t| {
                        let t = t as f64;
                        1.0 - 0.011 * t + 0.00035 * t * t
                    })
                    .collect();
                PerformanceSeries::monthly(name, values).unwrap()
            })
            .collect()
    }

    #[test]
    fn breaker_trips_cools_down_probes_and_recloses() {
        use resilience_obs::RecordingObserver;
        // 8 failing cells then 8 healthy ones, wave = 2, threshold = 2,
        // cooldown = 2: the flaky family must trip Open, skip (saving its
        // budget), half-open, fail its probe while cells stay bad, and
        // reclose once a probe lands on a healthy cell. The healthy
        // family keeps every cell ranked throughout.
        let series_list = breaker_series((8, 8));
        let families: Vec<&dyn ModelFamily> = vec![&FailsOnBadCells, &QuadraticFamily];
        let policy = ExecPolicy {
            breaker: Some(BreakerPolicy {
                threshold: 2,
                cooldown: 2,
                wave: 2,
            }),
            ..ExecPolicy::default()
        };
        let run = |p: Parallelism| {
            let rec = Arc::new(RecordingObserver::new());
            let config = FitConfig {
                parallelism: p,
                ..FitConfig::default()
            };
            let outcomes = rank_fleet_supervised(
                &families,
                &series_list,
                &config,
                &policy,
                &Control::unbounded().observe(rec.clone()),
            );
            (outcomes, rec.take())
        };
        let (outcomes, events) = run(Parallelism::Serial);
        assert_eq!(outcomes.len(), 16);
        // Every cell ranks (the healthy family always fits); bad cells
        // are degraded by a failure or a breaker skip.
        let mut skips = 0;
        for (i, outcome) in outcomes.iter().enumerate() {
            match outcome {
                CellOutcome::Ranked(r) => {
                    assert!(!r.rows.is_empty(), "cell {i} has no rows");
                    skips += r
                        .failures
                        .iter()
                        .filter(|f| f.kind == FailureKind::Skipped)
                        .count();
                }
                other => panic!("cell {i}: unexpected {other:?}"),
            }
        }
        assert!(skips > 0, "breaker never skipped a job");
        let opened = events
            .iter()
            .filter(|e| matches!(e, Event::BreakerOpened { .. }))
            .count();
        let half_open = events
            .iter()
            .filter(|e| matches!(e, Event::BreakerHalfOpen { .. }))
            .count();
        let closed = events
            .iter()
            .filter(|e| matches!(e, Event::BreakerClosed { .. }))
            .count();
        assert!(opened >= 2, "expected trip + failed-probe reopen: {opened}");
        assert!(half_open >= 2, "expected repeated cooldowns: {half_open}");
        assert_eq!(closed, 1, "exactly one successful probe recloses");
        // Skipped failures carry the typed kind end to end.
        assert!(events.iter().any(|e| matches!(
            e,
            Event::FitFailed {
                kind: FailureCode::Skipped,
                ..
            }
        )));
        // The whole schedule — results, events, breaker transitions — is
        // invariant to thread count.
        for p in [Parallelism::Fixed(2), Parallelism::Fixed(3)] {
            let (other, other_events) = run(p);
            assert_eq!(other_events, events, "{p:?}");
            for (a, b) in outcomes.iter().zip(&other) {
                match (a, b) {
                    (CellOutcome::Ranked(x), CellOutcome::Ranked(y)) => {
                        assert_eq!(x.rows.len(), y.rows.len());
                        for (ra, rb) in x.rows.iter().zip(&y.rows) {
                            assert_eq!(ra.sse.to_bits(), rb.sse.to_bits());
                        }
                        assert_eq!(x.failures.len(), y.failures.len());
                    }
                    _ => panic!("outcome shape diverged under {p:?}"),
                }
            }
        }
    }

    #[test]
    fn all_family_failure_quarantines_the_cell() {
        use resilience_obs::RecordingObserver;
        // Only the flaky family, all cells bad: every cell quarantines
        // (bad fits and, once the breaker trips, skips).
        let series_list = breaker_series((6, 0));
        let families: Vec<&dyn ModelFamily> = vec![&FailsOnBadCells];
        let policy = ExecPolicy {
            breaker: Some(BreakerPolicy {
                threshold: 2,
                cooldown: 2,
                wave: 2,
            }),
            ..ExecPolicy::default()
        };
        let rec = Arc::new(RecordingObserver::new());
        let outcomes = rank_fleet_supervised(
            &families,
            &series_list,
            &FitConfig::default(),
            &policy,
            &Control::unbounded().observe(rec.clone()),
        );
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, CellOutcome::Quarantined { .. })));
        let events = rec.take();
        let quarantines = events
            .iter()
            .filter(|e| matches!(e, Event::CellQuarantined { .. }))
            .count();
        assert_eq!(quarantines, series_list.len());
        let counted: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Counter {
                    id: CounterId::CellsQuarantined,
                    delta,
                } => Some(*delta),
                _ => None,
            })
            .sum();
        assert_eq!(counted, series_list.len() as u64);
        // The legacy wrapper collapses quarantine to the historical
        // no-survivor error.
        let legacy = rank_many_supervised(
            &families,
            &series_list,
            &FitConfig::default(),
            &policy,
            &Control::unbounded(),
        );
        assert!(legacy
            .iter()
            .all(|r| matches!(r, Err(CoreError::InvalidArgument { .. }))));
    }

    #[test]
    fn chaos_runs_are_bit_identical_and_fully_accounted() {
        use crate::chaos::ChaosPlan;
        use resilience_obs::RecordingObserver;
        let series_list = batch_series();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &QuarticFamily];
        let policy = ExecPolicy {
            retry: Some(RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            }),
            breaker: Some(BreakerPolicy {
                threshold: 2,
                cooldown: 2,
                wave: 2,
            }),
            chaos: Some(ChaosPlan {
                seed: 11,
                panic_per_mille: 250,
                deadline_per_mille: 250,
                exhaustion_per_mille: 150,
                observer_loss_per_mille: 150,
                transient_per_mille: 200,
            }),
            ..ExecPolicy::default()
        };
        let run = |p: Parallelism| {
            let rec = Arc::new(RecordingObserver::new());
            let config = FitConfig {
                parallelism: p,
                ..FitConfig::default()
            };
            let outcomes = rank_fleet_supervised(
                &families,
                &series_list,
                &config,
                &policy,
                &Control::unbounded().observe(rec.clone()),
            );
            (outcomes, rec.take())
        };
        let (outcomes, events) = run(Parallelism::Serial);
        assert_eq!(outcomes.len(), series_list.len());
        // Every injected fault is accounted: one ChaosInjected counter
        // increment per ChaosInjected event, no more, no fewer.
        let injected_events = events
            .iter()
            .filter(|e| matches!(e, Event::ChaosInjected { .. }))
            .count() as u64;
        let injected_counted: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Counter {
                    id: CounterId::ChaosInjected,
                    delta,
                } => Some(*delta),
                _ => None,
            })
            .sum();
        assert!(injected_events > 0, "plan injected nothing — dead test");
        assert_eq!(injected_counted, injected_events);
        // Chaos is deterministic: reruns and thread counts change nothing.
        let (rerun, rerun_events) = run(Parallelism::Serial);
        assert_eq!(rerun_events, events);
        assert_eq!(format!("{rerun:?}"), format!("{outcomes:?}"));
        for p in [Parallelism::Fixed(2), Parallelism::Fixed(3)] {
            let (par, par_events) = run(p);
            assert_eq!(par_events, events, "{p:?}");
            assert_eq!(format!("{par:?}"), format!("{outcomes:?}"), "{p:?}");
        }
    }

    #[test]
    fn whole_run_stop_with_no_survivors_propagates_the_stop() {
        let s = quadratic_series();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &QuarticFamily];
        let err = rank_models_supervised(
            &families,
            &s,
            &FitConfig::default(),
            &ExecPolicy::default(),
            &Control::with_deadline(Duration::ZERO),
        )
        .unwrap_err();
        assert!(
            matches!(err, CoreError::TimedOut { what } if what == "rank_models"),
            "{err}"
        );
    }
}
