//! Supervised execution: deadlines, retry-with-backoff, panic isolation,
//! and graceful degradation (DESIGN.md §9).
//!
//! The fitting pipeline is deterministic but not immune to pathological
//! inputs: a family whose SSE surface traps the simplex can burn its full
//! iteration budget, a buggy family implementation can panic, and a
//! multi-series sweep can blow through a caller's latency budget. This
//! module layers *policies* over the raw fitting entry points:
//!
//! * [`fit_with_retry`] — re-runs a non-converged fit from jittered
//!   starting points with deterministically growing jitter (the
//!   parameter-space analogue of exponential backoff).
//! * [`rank_models_supervised`] — [`crate::selection::rank_models`] under
//!   an [`ExecPolicy`]: per-family time budgets, optional retry, and
//!   per-family panic isolation. Failures degrade the
//!   [`Ranking`](crate::selection::Ranking) (`degraded: true`, typed
//!   [`FailureKind`](crate::selection::FailureKind) reasons) instead of
//!   poisoning it.
//!
//! Everything here preserves the workspace's determinism contract: retry
//! jitter comes from counter-derived RNG streams (never wall-clock), so a
//! retried fit is a pure function of the data, the config, and the
//! policy. Deadlines are the only nondeterministic input, and they only
//! select *which* typed outcome you get (a result, or a
//! `TimedOut`/`Cancelled` failure row) — never the numeric content of a
//! successful result.

use crate::fit::{fit_least_squares_with, FitConfig, FittedModel, WarmStart};
use crate::model::{ModelFamily, ResilienceModel};
use crate::selection::{score_family, sort_rows, FailureKind, FamilyFailure, Ranking};
use crate::CoreError;
use resilience_data::PerformanceSeries;
use resilience_obs::{replay, CounterId, Event, FailureCode, HistogramId, RecordingObserver};
use resilience_optim::parallel::{run_indexed_catch, JobPanic};
use resilience_optim::{Parallelism, StopCause};
use resilience_stats::XorShift64;
use std::sync::Arc;
use std::time::Duration;

pub use resilience_optim::{CancelToken, Control};

/// Deterministic retry for non-converged fits.
///
/// Attempt 1 uses the family's own starting points. Each later attempt
/// perturbs every starting point with zero-mean jitter whose amplitude
/// grows geometrically — exponential backoff in parameter space — so
/// retries explore progressively wider basins. The jitter for attempt
/// `k` is drawn from the counter-derived stream
/// `XorShift64::stream(base_seed, k)`, so the whole retry schedule is a
/// pure function of this policy: no wall-clock, no global RNG state.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (≥ 1; 1 disables retry).
    pub max_attempts: usize,
    /// Seed for the jitter streams.
    pub base_seed: u64,
    /// Relative jitter amplitude on the first retry (attempt 2).
    pub initial_jitter: f64,
    /// Geometric growth factor of the amplitude per further attempt.
    pub growth: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_seed: 0x5EED,
            initial_jitter: 0.05,
            growth: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Jitter amplitude for 1-based `attempt` (attempt 1 is unjittered).
    fn amplitude(&self, attempt: usize) -> f64 {
        debug_assert!(attempt >= 2);
        self.initial_jitter * self.growth.powi(attempt as i32 - 2)
    }
}

/// Execution policy for a supervised multi-family run.
///
/// The default is fully permissive — no budget, no retry — so
/// [`rank_models_supervised`] under `ExecPolicy::default()` and an
/// unbounded [`Control`] behaves exactly like the plain
/// [`rank_models`](crate::selection::rank_models) (which delegates here).
#[derive(Debug, Clone, Default)]
pub struct ExecPolicy {
    /// Wall-clock budget for each family's fit. The clock starts when the
    /// family's job starts (not when the ranking call starts), and is
    /// capped by the caller's overall [`Control`] deadline, never
    /// extending it. `None` means no per-family limit.
    pub family_budget: Option<Duration>,
    /// Retry schedule for non-converged fits. `None` means single-shot.
    pub retry: Option<RetryPolicy>,
}

/// Outcome of [`fit_with_retry`]: the winning fit plus how many attempts
/// it took.
#[derive(Debug)]
pub struct SupervisedFit {
    /// The best fit found across all attempts (lowest SSE; the first
    /// converged attempt wins outright and stops the schedule).
    pub fit: FittedModel,
    /// Number of attempts actually made (1 when the first fit converged).
    pub attempts: usize,
}

/// Number of jittered starting points generated around a best-so-far
/// optimum on warm retries (attempts ≥ 2 that already have a fit). Far
/// fewer than the cold grids (up to 24 starts): the center is already in
/// the right basin, the jitter only has to escape a simplex stall.
const WARM_RETRY_STARTS: usize = 8;

/// A family adapter that perturbs starting points with deterministic
/// zero-mean jitter; everything else forwards. With a `center` (the best
/// fit so far), guesses are jittered copies of that optimum instead of
/// the family's cold grid — resampling the basin we already found rather
/// than re-exploring from scratch.
struct JitteredFamily<'a> {
    inner: &'a dyn ModelFamily,
    seed: u64,
    attempt: u64,
    amplitude: f64,
    center: Option<Vec<f64>>,
}

impl ModelFamily for JitteredFamily<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn n_params(&self) -> usize {
        self.inner.n_params()
    }

    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        self.inner.internal_to_params(internal)
    }

    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        self.inner.params_to_internal(params)
    }

    fn build(&self, params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        self.inner.build(params)
    }

    fn initial_guesses(&self, series: &PerformanceSeries) -> Vec<Vec<f64>> {
        // A fresh stream per (seed, attempt) keeps every call — and every
        // retry schedule — a pure function of the policy. Jitter is
        // relative (`1 + |g|`) so parameters spanning orders of magnitude
        // are all perturbed proportionally; infeasible perturbed guesses
        // are dropped later by `params_to_internal`, exactly like
        // infeasible data-driven guesses.
        let mut rng = XorShift64::stream(self.seed, self.attempt);
        let mut jitter = |guess: &mut Vec<f64>| {
            for g in guess.iter_mut() {
                *g += self.amplitude * (2.0 * rng.next_f64() - 1.0) * (1.0 + g.abs());
            }
        };
        match &self.center {
            Some(center) => (0..WARM_RETRY_STARTS)
                .map(|_| {
                    let mut guess = center.clone();
                    jitter(&mut guess);
                    guess
                })
                .collect(),
            None => self
                .inner
                .initial_guesses(series)
                .into_iter()
                .map(|mut guess| {
                    jitter(&mut guess);
                    guess
                })
                .collect(),
        }
    }

    // Forward the allocation-free hot-path hooks so retried fits keep the
    // wrapped family's specialized implementations — including the
    // analytic Jacobian and the batched SSE kernel, without which a
    // retried fit would silently fall back to the slow paths.
    fn internal_to_params_into(&self, internal: &[f64], out: &mut [f64]) {
        self.inner.internal_to_params_into(internal, out);
    }

    fn predict_params_into(&self, params: &[f64], ts: &[f64], out: &mut [f64]) -> bool {
        self.inner.predict_params_into(params, ts, out)
    }

    fn predict_jacobian_into(
        &self,
        internal: &[f64],
        params: &[f64],
        ts: &[f64],
        out: &mut resilience_math::linalg::Matrix,
    ) -> bool {
        self.inner.predict_jacobian_into(internal, params, ts, out)
    }

    fn sse_batch_into(&self, internals: &[f64], ts: &[f64], ys: &[f64], out: &mut [f64]) -> bool {
        self.inner.sse_batch_into(internals, ts, ys, out)
    }

    fn nm_iteration_scale(&self) -> usize {
        self.inner.nm_iteration_scale()
    }
}

/// Fits `family` to `series`, retrying from jittered starting points when
/// the fit fails or does not converge.
///
/// The schedule keeps the best successful fit by SSE across attempts and
/// stops early at the first converged one. Deadline/cancellation stops
/// ([`CoreError::is_stop`]) abort the schedule immediately and propagate
/// — a stop is a property of the whole run, not of one attempt.
///
/// # Errors
///
/// * [`CoreError::TimedOut`] / [`CoreError::Cancelled`] when `control`
///   stops an attempt.
/// * The last attempt's error when every attempt fails.
///
/// # Examples
///
/// ```
/// use resilience_core::bathtub::QuadraticFamily;
/// use resilience_core::fit::FitConfig;
/// use resilience_core::runtime::{fit_with_retry, Control, RetryPolicy};
/// use resilience_data::PerformanceSeries;
///
/// let values: Vec<f64> = (0..40)
///     .map(|i| {
///         let t = i as f64;
///         1.0 - 0.012 * t + 0.0004 * t * t
///     })
///     .collect();
/// let series = PerformanceSeries::monthly("demo", values)?;
/// let sup = fit_with_retry(
///     &QuadraticFamily,
///     &series,
///     &FitConfig::default(),
///     &RetryPolicy::default(),
///     &Control::unbounded(),
/// )?;
/// assert_eq!(sup.attempts, 1); // clean data converges first try
/// assert!(sup.fit.converged);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fit_with_retry(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    config: &FitConfig,
    policy: &RetryPolicy,
    control: &Control,
) -> Result<SupervisedFit, CoreError> {
    if policy.max_attempts == 0 {
        return Err(CoreError::arg(
            "fit_with_retry",
            "max_attempts must be >= 1",
        ));
    }
    let mut best: Option<FittedModel> = None;
    let mut last_err: Option<CoreError> = None;
    let mut attempts = 0usize;
    for attempt in 1..=policy.max_attempts {
        attempts = attempt;
        let outcome = if attempt == 1 {
            fit_least_squares_with(family, series, config, control)
        } else {
            control.emit(Event::RetryScheduled {
                family: family.name(),
                attempt: attempt as u32,
            });
            control.count(CounterId::Retries, 1);
            // With a best-so-far fit, retries warm-start from its optimum
            // (the probe usually short-circuits the whole cold phase) and
            // jitter *around* it; without one, the cold grid is all there
            // is. Either way the schedule stays a pure function of the
            // policy — the warm center is itself deterministic.
            let mut retry_config = config.clone();
            if let Some(fit) = &best {
                retry_config.warm_start = Some(WarmStart::new(fit.params.clone()));
            }
            let jittered = JitteredFamily {
                inner: family,
                seed: policy.base_seed,
                attempt: attempt as u64,
                amplitude: policy.amplitude(attempt),
                center: best.as_ref().map(|fit| fit.params.clone()),
            };
            fit_least_squares_with(&jittered, series, &retry_config, control)
        };
        match outcome {
            Ok(fit) => {
                let done = fit.converged;
                let better = best.as_ref().is_none_or(|b| fit.sse < b.sse);
                if better {
                    best = Some(fit);
                }
                if done {
                    break;
                }
            }
            Err(e) if e.is_stop() => return Err(e),
            Err(e) => last_err = Some(e),
        }
    }
    match best {
        Some(fit) => {
            control.emit(Event::Hist {
                id: HistogramId::AttemptsPerFit,
                value: attempts as u64,
            });
            Ok(SupervisedFit { fit, attempts })
        }
        // All attempts errored; `last_err` is necessarily set.
        None => Err(last_err
            .unwrap_or_else(|| CoreError::arg("fit_with_retry", "no attempt produced a fit"))),
    }
}

/// [`rank_models`](crate::selection::rank_models) under an [`ExecPolicy`]
/// and an execution [`Control`].
///
/// Each family fits in its own supervised job:
///
/// * a panic inside the family is caught at the job boundary and becomes
///   a [`FailureKind::Panicked`] failure row;
/// * `policy.family_budget` narrows the caller's control to a per-family
///   deadline, so one runaway family costs at most its budget and
///   surfaces as [`FailureKind::TimedOut`];
/// * `policy.retry` re-runs non-converged fits from jittered starts.
///
/// Failures never abort the ranking: surviving families are ranked as
/// usual and the result carries `degraded: true` plus one typed failure
/// row per lost family (graceful degradation, DESIGN.md §9).
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] when *no* family fits.
/// * [`CoreError::TimedOut`] / [`CoreError::Cancelled`] when the
///   *caller's* control stopped the run and nothing survived.
pub fn rank_models_supervised(
    families: &[&dyn ModelFamily],
    series: &PerformanceSeries,
    config: &FitConfig,
    policy: &ExecPolicy,
    control: &Control,
) -> Result<Ranking, CoreError> {
    // Parallelize across families; the inner multi-start goes serial so
    // the fan-out happens at exactly one level.
    let mut inner = config.clone();
    inner.parallelism = Parallelism::Serial;
    // Per-family event buffers, replayed into the caller's sink in input
    // order below so the merged log is independent of worker scheduling.
    // Created outside the jobs: a panicking family keeps the events it
    // buffered before dying.
    let recorders: Option<Vec<Arc<RecordingObserver>>> = control.observed().then(|| {
        (0..families.len())
            .map(|_| Arc::new(RecordingObserver::new()))
            .collect()
    });
    let outcomes = run_indexed_catch(config.parallelism, families.len(), |i| {
        supervised_family_job(
            families[i],
            series,
            &inner,
            policy,
            control,
            recorders.as_ref().map(|recs| &recs[i]),
        )
    });
    reduce_series_outcomes(families, outcomes, recorders.as_deref(), control)
}

/// One supervised series × family job: narrows the caller's control to
/// the per-family budget (the clock starts here, on the worker, so
/// queueing behind other jobs does not consume a family's budget),
/// attaches the job's event buffer, fits — with retry when the policy
/// asks for it — and scores.
fn supervised_family_job(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    inner: &FitConfig,
    policy: &ExecPolicy,
    control: &Control,
    recorder: Option<&Arc<RecordingObserver>>,
) -> Result<crate::selection::SelectionRow, FamilyFailure> {
    let family_control = match policy.family_budget {
        Some(budget) => control.narrowed(budget),
        None => control.clone(),
    };
    let family_control = match recorder {
        Some(rec) => family_control.observe(rec.clone()),
        None => family_control,
    };
    let fit_outcome = match &policy.retry {
        Some(retry) => fit_with_retry(family, series, inner, retry, &family_control).map(|s| s.fit),
        None => fit_least_squares_with(family, series, inner, &family_control),
    };
    let fit = fit_outcome.map_err(|e| {
        let kind = match e {
            CoreError::TimedOut { .. } => FailureKind::TimedOut,
            CoreError::Cancelled { .. } => FailureKind::Cancelled,
            _ => FailureKind::Error,
        };
        FamilyFailure {
            family_name: family.name(),
            reason: format!("fit: {e}"),
            kind,
        }
    })?;
    score_family(family, series, &fit)
}

/// Reduces one series' per-family job outcomes into a [`Ranking`],
/// replaying each job's event buffer into the caller's sink in family
/// order (so the merged log is independent of worker scheduling) and
/// converting panics into degraded failure rows.
fn reduce_series_outcomes(
    families: &[&dyn ModelFamily],
    outcomes: Vec<Result<Result<crate::selection::SelectionRow, FamilyFailure>, JobPanic>>,
    recorders: Option<&[Arc<RecordingObserver>]>,
    control: &Control,
) -> Result<Ranking, CoreError> {
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for (i, outcome) in outcomes.into_iter().enumerate() {
        if let (Some(recs), Some(sink)) = (recorders, control.observer()) {
            replay(&recs[i].take(), sink.as_ref());
        }
        match outcome {
            Ok(Ok(row)) => rows.push(row),
            Ok(Err(failure)) => {
                control.emit(Event::FitFailed {
                    family: failure.family_name,
                    kind: failure.kind.code(),
                });
                failures.push(failure);
            }
            Err(panic) => {
                control.emit(Event::WorkerPanic {
                    scope: families[i].name(),
                    index: i as u32,
                });
                control.emit(Event::FitFailed {
                    family: families[i].name(),
                    kind: FailureCode::Panicked,
                });
                failures.push(FamilyFailure {
                    family_name: families[i].name(),
                    reason: format!("fit: {}", panic.message),
                    kind: FailureKind::Panicked,
                });
            }
        }
    }
    if rows.is_empty() {
        // Distinguish "the caller stopped us" from "nothing could fit":
        // a stopped run with no survivors propagates the stop.
        return Err(match control.stop_cause() {
            Some(StopCause::DeadlineExceeded) => CoreError::timed_out("rank_models"),
            Some(StopCause::Cancelled) => CoreError::cancelled("rank_models"),
            None => CoreError::arg("rank_models", "no family produced a fit"),
        });
    }
    sort_rows(&mut rows);
    let degraded = !failures.is_empty();
    Ok(Ranking {
        rows,
        failures,
        degraded,
    })
}

/// Batch entry point for fleet runs: ranks every series in `series_list`
/// under the same policy, with work-stealing over the *flattened*
/// series × family job list (DESIGN.md §13).
///
/// Flattening matters for fleet-scale throughput: a series whose families
/// are all cheap does not leave workers idle while one expensive
/// series × family pair finishes, because jobs are handed out one at a
/// time from a shared atomic counter ([`run_indexed_catch`]) at the
/// finest useful granularity. The inner multi-start runs serial, exactly
/// like [`rank_models_supervised`].
///
/// Returns one outcome per series, in input order. Each outcome — the
/// ranked rows, the typed failures, every SSE bit, and (when observed)
/// the replayed event stream — is **bit-identical** to what a standalone
/// [`rank_models_supervised`] call on that series would produce, for any
/// `config.parallelism`: jobs are pure functions of their (series,
/// family) pair and both reduction and event replay happen in input
/// order.
///
/// Per-series errors (a stop with no survivors, or no family fitting)
/// land in that series' slot; other series still rank — one poisoned cell
/// must not abort a fleet.
pub fn rank_many_supervised(
    families: &[&dyn ModelFamily],
    series_list: &[PerformanceSeries],
    config: &FitConfig,
    policy: &ExecPolicy,
    control: &Control,
) -> Vec<Result<Ranking, CoreError>> {
    let mut inner = config.clone();
    inner.parallelism = Parallelism::Serial;
    let nf = families.len();
    let jobs = series_list.len() * nf;
    let recorders: Option<Vec<Arc<RecordingObserver>>> = control.observed().then(|| {
        (0..jobs)
            .map(|_| Arc::new(RecordingObserver::new()))
            .collect()
    });
    let outcomes = run_indexed_catch(config.parallelism, jobs, |i| {
        supervised_family_job(
            families[i % nf],
            &series_list[i / nf],
            &inner,
            policy,
            control,
            recorders.as_ref().map(|recs| &recs[i]),
        )
    });
    let mut outcomes = outcomes.into_iter();
    (0..series_list.len())
        .map(|s| {
            let chunk: Vec<_> = outcomes.by_ref().take(nf).collect();
            let recs = recorders.as_ref().map(|recs| &recs[s * nf..(s + 1) * nf]);
            reduce_series_outcomes(families, chunk, recs, control)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bathtub::{QuadraticFamily, QuarticFamily};

    fn quadratic_series() -> PerformanceSeries {
        let mut wiggle = 0.41_f64;
        let values: Vec<f64> = (0..48)
            .map(|i| {
                let t = i as f64;
                wiggle = (wiggle * 137.0).fract();
                1.0 - 0.012 * t + 0.0004 * t * t + 0.002 * (wiggle - 0.5)
            })
            .collect();
        PerformanceSeries::monthly("quad", values).unwrap()
    }

    #[test]
    fn retry_is_a_no_op_for_converging_fits() {
        let s = quadratic_series();
        let sup = fit_with_retry(
            &QuadraticFamily,
            &s,
            &FitConfig::default(),
            &RetryPolicy::default(),
            &Control::unbounded(),
        )
        .unwrap();
        assert_eq!(sup.attempts, 1);
        assert!(sup.fit.converged);
        // ... and bit-identical to the plain fit.
        let plain =
            crate::fit::fit_least_squares(&QuadraticFamily, &s, &FitConfig::default()).unwrap();
        assert_eq!(sup.fit.params, plain.params);
        assert_eq!(sup.fit.sse, plain.sse);
    }

    #[test]
    fn retry_recovers_from_a_starved_iteration_budget() {
        // A tiny iteration budget leaves the first attempt non-converged;
        // the schedule must keep trying (from jittered starts) and return
        // the best SSE seen, with attempts > 1.
        let s = quadratic_series();
        let mut config = FitConfig::default();
        config.nelder_mead.max_iterations = 3;
        config.lm_polish = false;
        let sup = fit_with_retry(
            &QuadraticFamily,
            &s,
            &config,
            &RetryPolicy::default(),
            &Control::unbounded(),
        )
        .unwrap();
        assert_eq!(sup.attempts, RetryPolicy::default().max_attempts);
        assert!(!sup.fit.converged);
        // Best-by-SSE: never worse than the single-shot fit.
        let single = crate::fit::fit_least_squares(&QuadraticFamily, &s, &config).unwrap();
        assert!(sup.fit.sse <= single.sse);
    }

    #[test]
    fn retry_schedule_is_deterministic() {
        let s = quadratic_series();
        let mut config = FitConfig::default();
        config.nelder_mead.max_iterations = 3;
        config.lm_polish = false;
        let run = || {
            fit_with_retry(
                &QuadraticFamily,
                &s,
                &config,
                &RetryPolicy::default(),
                &Control::unbounded(),
            )
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.fit.params, b.fit.params);
        assert_eq!(a.fit.sse, b.fit.sse);
    }

    #[test]
    fn retry_rejects_zero_attempts_and_propagates_stops() {
        let s = quadratic_series();
        let zero = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert!(fit_with_retry(
            &QuadraticFamily,
            &s,
            &FitConfig::default(),
            &zero,
            &Control::unbounded()
        )
        .is_err());
        // An expired deadline aborts the schedule instead of retrying
        // through it.
        let err = fit_with_retry(
            &QuadraticFamily,
            &s,
            &FitConfig::default(),
            &RetryPolicy::default(),
            &Control::with_deadline(Duration::ZERO),
        )
        .unwrap_err();
        assert!(err.is_stop(), "{err}");
    }

    #[test]
    fn supervised_ranking_with_default_policy_matches_rank_models() {
        let s = quadratic_series();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &QuarticFamily];
        let plain = crate::selection::rank_models(&families, &s, &FitConfig::default()).unwrap();
        let supervised = rank_models_supervised(
            &families,
            &s,
            &FitConfig::default(),
            &ExecPolicy::default(),
            &Control::unbounded(),
        )
        .unwrap();
        assert_eq!(plain.rows.len(), supervised.rows.len());
        for (a, b) in plain.rows.iter().zip(&supervised.rows) {
            assert_eq!(a.family_name, b.family_name);
            assert_eq!(a.sse, b.sse);
        }
        assert!(!supervised.degraded);
    }

    #[test]
    fn supervised_ranking_event_log_is_invariant_to_thread_count() {
        use resilience_obs::RecordingObserver;
        use std::sync::Arc;
        let s = quadratic_series();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &QuarticFamily];
        let trace = |p: Parallelism| {
            let rec = Arc::new(RecordingObserver::new());
            let config = FitConfig {
                parallelism: p,
                ..FitConfig::default()
            };
            rank_models_supervised(
                &families,
                &s,
                &config,
                &ExecPolicy::default(),
                &Control::unbounded().observe(rec.clone()),
            )
            .unwrap();
            rec.take()
        };
        let serial = trace(Parallelism::Serial);
        assert!(!serial.is_empty());
        for p in [Parallelism::Fixed(2), Parallelism::Fixed(4)] {
            assert_eq!(trace(p), serial, "{p:?}");
        }
    }

    fn batch_series() -> Vec<PerformanceSeries> {
        // Three distinct recovery stories so the flattened job list mixes
        // cheap and expensive cells.
        [
            ("a", 0.009, 0.00030),
            ("b", 0.014, 0.00045),
            ("c", 0.006, 0.00020),
        ]
        .iter()
        .map(|&(name, drift, curve)| {
            let mut wiggle = 0.17_f64;
            let values: Vec<f64> = (0..40)
                .map(|i| {
                    let t = i as f64;
                    wiggle = (wiggle * 193.0).fract();
                    1.0 - drift * t + curve * t * t + 0.002 * (wiggle - 0.5)
                })
                .collect();
            PerformanceSeries::monthly(name, values).unwrap()
        })
        .collect()
    }

    #[test]
    fn rank_many_matches_standalone_supervised_calls_bit_for_bit() {
        let series_list = batch_series();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &QuarticFamily];
        let batch = rank_many_supervised(
            &families,
            &series_list,
            &FitConfig::default(),
            &ExecPolicy::default(),
            &Control::unbounded(),
        );
        assert_eq!(batch.len(), series_list.len());
        for (series, outcome) in series_list.iter().zip(&batch) {
            let standalone = rank_models_supervised(
                &families,
                series,
                &FitConfig::default(),
                &ExecPolicy::default(),
                &Control::unbounded(),
            )
            .unwrap();
            let ranking = outcome.as_ref().unwrap();
            assert_eq!(ranking.rows.len(), standalone.rows.len());
            for (a, b) in ranking.rows.iter().zip(&standalone.rows) {
                assert_eq!(a.family_name, b.family_name);
                assert_eq!(a.sse.to_bits(), b.sse.to_bits());
                assert_eq!(a.r2_adj.to_bits(), b.r2_adj.to_bits());
            }
        }
    }

    #[test]
    fn rank_many_results_and_events_are_invariant_to_thread_count() {
        use resilience_obs::RecordingObserver;
        let series_list = batch_series();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &QuarticFamily];
        let run = |p: Parallelism| {
            let rec = Arc::new(RecordingObserver::new());
            let config = FitConfig {
                parallelism: p,
                ..FitConfig::default()
            };
            let rankings = rank_many_supervised(
                &families,
                &series_list,
                &config,
                &ExecPolicy::default(),
                &Control::unbounded().observe(rec.clone()),
            );
            let bits: Vec<Vec<(&'static str, u64)>> = rankings
                .into_iter()
                .map(|r| {
                    r.unwrap()
                        .rows
                        .into_iter()
                        .map(|row| (row.family_name, row.sse.to_bits()))
                        .collect()
                })
                .collect();
            (bits, rec.take())
        };
        let (serial_bits, serial_events) = run(Parallelism::Serial);
        assert!(!serial_events.is_empty());
        for p in [Parallelism::Fixed(2), Parallelism::Fixed(3)] {
            let (bits, events) = run(p);
            assert_eq!(bits, serial_bits, "{p:?}");
            assert_eq!(events, serial_events, "{p:?}");
        }
    }

    #[test]
    fn rank_many_degrades_per_series_instead_of_aborting_the_batch() {
        // No families at all: every series fails on its own, in its own
        // slot — the batch call itself still returns one outcome per
        // series.
        let series_list = batch_series();
        let batch = rank_many_supervised(
            &[],
            &series_list,
            &FitConfig::default(),
            &ExecPolicy::default(),
            &Control::unbounded(),
        );
        assert_eq!(batch.len(), series_list.len());
        for outcome in &batch {
            assert!(matches!(outcome, Err(CoreError::InvalidArgument { .. })));
        }
        // And an empty fleet is an empty result, not an error.
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily];
        assert!(rank_many_supervised(
            &families,
            &[],
            &FitConfig::default(),
            &ExecPolicy::default(),
            &Control::unbounded(),
        )
        .is_empty());
    }

    #[test]
    fn retry_telemetry_reports_schedule_and_attempts() {
        use resilience_obs::{CounterId, Event, HistogramId, RecordingObserver};
        use std::sync::Arc;
        let s = quadratic_series();
        let mut config = FitConfig::default();
        config.nelder_mead.max_iterations = 3;
        config.lm_polish = false;
        let rec = Arc::new(RecordingObserver::new());
        let control = Control::unbounded().observe(rec.clone());
        let sup = fit_with_retry(
            &QuadraticFamily,
            &s,
            &config,
            &RetryPolicy::default(),
            &control,
        )
        .unwrap();
        assert_eq!(sup.attempts, 3);
        let events = rec.take();
        let retries: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                Event::RetryScheduled { attempt, .. } => Some(*attempt),
                _ => None,
            })
            .collect();
        assert_eq!(retries, vec![2, 3]);
        let retry_count: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Counter {
                    id: CounterId::Retries,
                    delta,
                } => Some(*delta),
                _ => None,
            })
            .sum();
        assert_eq!(retry_count, 2);
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Hist {
                id: HistogramId::AttemptsPerFit,
                value: 3,
            }
        )));
    }

    #[test]
    fn whole_run_stop_with_no_survivors_propagates_the_stop() {
        let s = quadratic_series();
        let families: Vec<&dyn ModelFamily> = vec![&QuadraticFamily, &QuarticFamily];
        let err = rank_models_supervised(
            &families,
            &s,
            &FitConfig::default(),
            &ExecPolicy::default(),
            &Control::with_deadline(Duration::ZERO),
        )
        .unwrap_err();
        assert!(
            matches!(err, CoreError::TimedOut { what } if what == "rank_models"),
            "{err}"
        );
    }
}
