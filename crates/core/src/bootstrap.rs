//! Residual-bootstrap confidence bands — a nonparametric alternative to
//! the paper's Eq. 12–13 normal-theory band (listed as future work in
//! DESIGN.md §5).
//!
//! The Eq. 13 band assumes homoscedastic Gaussian residuals and ignores
//! parameter uncertainty; the residual bootstrap instead refits the model
//! on `B` synthetic series (fitted curve + resampled residuals) and reads
//! the band off the percentiles of the replicate predictions. It is wider
//! where the fit constrains the curve weakly (extrapolation beyond the
//! training window) — exactly the region the predictive metrics use.

use crate::fit::{fit_least_squares, fit_least_squares_with, FitConfig};
use crate::model::ModelFamily;
use crate::CoreError;
use resilience_data::noise::XorShift64;
use resilience_data::PerformanceSeries;
use resilience_obs::{CounterId, Event};
use resilience_optim::parallel::run_indexed_catch;
use resilience_optim::{Control, Parallelism};
use resilience_stats::describe::quantile;

/// A pointwise bootstrap *prediction* band: each limit reflects both
/// parameter uncertainty (replicate refits) and observation noise (a
/// residual draw), so — like the paper's Eq. 13 band — it targets where
/// observations fall, not just the mean curve.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapBand {
    /// Evaluation times.
    pub times: Vec<f64>,
    /// Point predictions of the base fit.
    pub center: Vec<f64>,
    /// Lower band limits (`α/2` percentile of replicates).
    pub lower: Vec<f64>,
    /// Upper band limits (`1 − α/2` percentile of replicates).
    pub upper: Vec<f64>,
    /// Number of successful replicates.
    pub replicates: usize,
    /// Number of replicates whose refit failed (excluded).
    pub failed: usize,
}

impl BootstrapBand {
    /// Whether the observation `y` at index `i` falls inside the band.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn contains(&self, i: usize, y: f64) -> bool {
        y >= self.lower[i] && y <= self.upper[i]
    }

    /// Empirical coverage of a series by this band.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] when the band is empty or
    /// the lengths differ.
    pub fn coverage(&self, series: &PerformanceSeries) -> Result<f64, CoreError> {
        if self.times.is_empty() {
            return Err(CoreError::arg(
                "BootstrapBand::coverage",
                "band is empty: no evaluation times",
            ));
        }
        if series.len() != self.times.len() {
            return Err(CoreError::arg(
                "BootstrapBand::coverage",
                format!(
                    "{} observations vs {} band points",
                    series.len(),
                    self.times.len()
                ),
            ));
        }
        let inside = series
            .values()
            .iter()
            .enumerate()
            .filter(|(i, y)| self.contains(*i, **y))
            .count();
        Ok(inside as f64 / series.len() as f64)
    }
}

/// Configuration for [`bootstrap_band`].
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// Number of bootstrap replicates.
    pub replicates: usize,
    /// Significance level (0.05 → 95 % band).
    pub alpha: f64,
    /// Deterministic seed for the residual resampling. Replicate `i`
    /// draws from its own counter-derived stream
    /// ([`XorShift64::stream`]`(seed, i)`), so the band depends only on
    /// the seed — never on scheduling or thread count.
    pub seed: u64,
    /// Fit configuration for the replicate refits. Defaults to a single
    /// start at the base fit's optimum with a reduced iteration budget —
    /// replicate surfaces are small perturbations of the original.
    pub refit: FitConfig,
    /// Thread fan-out across replicates. Every setting produces
    /// bit-identical bands; the replicate refits themselves run serially
    /// so the fan-out happens at exactly one level.
    pub parallelism: Parallelism,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        let mut refit = FitConfig::default();
        refit.nelder_mead.max_iterations = 800;
        refit.max_starts = 1;
        BootstrapConfig {
            replicates: 200,
            alpha: 0.05,
            seed: 0x0B007,
            refit,
            parallelism: Parallelism::Auto,
        }
    }
}

/// Computes a residual-bootstrap band for `family` fit to `series`,
/// evaluated at every observation time.
///
/// This is [`bootstrap_band_checkpointed`] with an unbounded control: it
/// always runs to completion in one call. A replicate whose refit panics
/// counts as a failed replicate (isolated at the job boundary), like one
/// whose refit errors.
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] for a bad configuration or when too
///   few replicates succeed (< 20 or < half of the requested number).
/// * Propagates the base fit's errors.
pub fn bootstrap_band(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    base_config: &FitConfig,
    config: &BootstrapConfig,
) -> Result<BootstrapBand, CoreError> {
    bootstrap_band_with(family, series, base_config, config, &Control::unbounded())
}

/// [`bootstrap_band`] under a [`Control`]'s telemetry sink.
///
/// Only the control's observer is used: the run always completes in one
/// call (deadline and cancellation are stripped — use
/// [`bootstrap_band_checkpointed`] for pausable runs). The sink receives
/// the base fit's solver trace, a [`Event::BootstrapChunkDone`] progress
/// event after each replicate chunk, and ok/failed replicate counters.
/// Replicate refits themselves run unobserved — hundreds of near-identical
/// solver traces would drown the log without adding information.
///
/// # Errors
///
/// Same as [`bootstrap_band`].
pub fn bootstrap_band_with(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    base_config: &FitConfig,
    config: &BootstrapConfig,
    control: &Control,
) -> Result<BootstrapBand, CoreError> {
    let mut checkpoint = None;
    bootstrap_band_checkpointed(
        family,
        series,
        base_config,
        config,
        &mut checkpoint,
        &control.observer_only(),
    )?
    // An unbounded control can never pause the run, so the engine always
    // returns a finished band here; defensive rather than `unwrap`.
    .ok_or_else(|| CoreError::arg("bootstrap_band", "unbounded run returned no band"))
}

/// Resumable state of an interrupted [`bootstrap_band_checkpointed`] run:
/// the base fit's curve and residuals plus every replicate prediction
/// accumulated so far.
///
/// Opaque by design — callers only thread it back into the next call.
/// Because each replicate is a pure function of `(seed, replicate
/// index)`, a run resumed from a checkpoint is **bit-identical** to an
/// uninterrupted one.
#[derive(Debug, Clone)]
pub struct BootstrapCheckpoint {
    next_rep: usize,
    failed: usize,
    times: Vec<f64>,
    fitted: Vec<f64>,
    residuals: Vec<f64>,
    seed_params: Vec<f64>,
    per_time: Vec<Vec<f64>>,
}

impl BootstrapCheckpoint {
    /// Number of replicates already processed (successful or failed).
    #[must_use]
    pub fn replicates_done(&self) -> usize {
        self.next_rep
    }
}

/// [`bootstrap_band`] that can pause at a deadline and resume later.
///
/// On the first call pass `&mut None`: the base fit runs (always to
/// completion — it is the minimum unit of progress) and replicates are
/// processed in chunks. After each chunk the `control` is polled; if it
/// signals a stop, the accumulated state is saved into `checkpoint` and
/// the call returns `Ok(None)`. Calling again with the same arguments and
/// the saved checkpoint resumes exactly where the run left off. Every
/// call completes at least one chunk, so a caller looping on an expired
/// deadline still terminates.
///
/// The finished band is bit-identical to an uninterrupted
/// [`bootstrap_band`] run regardless of how many times the run was
/// paused, because each replicate's draws come from its own
/// counter-derived stream ([`XorShift64::stream`]`(seed, rep)`). On
/// completion the checkpoint is cleared back to `None`.
///
/// A replicate whose refit panics is isolated at the job boundary and
/// counted as failed, exactly like a replicate whose refit errors.
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] for a bad configuration, a checkpoint
///   inconsistent with `series`/`config`, or (on the final chunk) too few
///   successful replicates.
/// * Propagates the base fit's errors.
pub fn bootstrap_band_checkpointed(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    base_config: &FitConfig,
    config: &BootstrapConfig,
    checkpoint: &mut Option<BootstrapCheckpoint>,
    control: &Control,
) -> Result<Option<BootstrapBand>, CoreError> {
    if config.replicates < 20 {
        return Err(CoreError::arg(
            "bootstrap_band",
            format!("need at least 20 replicates, got {}", config.replicates),
        ));
    }
    if !(config.alpha > 0.0 && config.alpha < 1.0) {
        return Err(CoreError::arg(
            "bootstrap_band",
            format!("alpha must be in (0, 1), got {}", config.alpha),
        ));
    }
    let n = series.len();
    if checkpoint.is_none() {
        // The base fit is observed (its solver trace anchors the log) but
        // never deadline-stopped: it is the minimum unit of progress.
        let base = fit_least_squares_with(family, series, base_config, &control.observer_only())?;
        let times = series.times().to_vec();
        let fitted = base.model.predict_many(&times);
        let residuals: Vec<f64> = series
            .values()
            .iter()
            .zip(&fitted)
            .map(|(y, f)| y - f)
            .collect();
        *checkpoint = Some(BootstrapCheckpoint {
            next_rep: 0,
            failed: 0,
            times,
            fitted,
            residuals,
            seed_params: base.params,
            per_time: vec![Vec::new(); n],
        });
    }
    let cp = checkpoint.as_mut().expect("checkpoint initialized above");
    if cp.per_time.len() != n || cp.next_rep > config.replicates {
        return Err(CoreError::arg(
            "bootstrap_band",
            format!(
                "checkpoint does not match this run: {} band points for {} observations, \
                 {} of {} replicates done",
                cp.per_time.len(),
                n,
                cp.next_rep,
                config.replicates
            ),
        ));
    }

    // Replicate refits always start at the base optimum, and run
    // serially — the fan-out happens across replicates, not inside them.
    let mut refit_config = config.refit.clone();
    refit_config.max_starts = refit_config.max_starts.max(1);
    refit_config.parallelism = Parallelism::Serial;

    // Start from the base optimum: wrap the family so initial_guesses
    // returns only the base parameters.
    let wrapped = SeededFamily {
        inner: family,
        seed_params: cp.seed_params.clone(),
    };

    while cp.next_rep < config.replicates {
        let remaining = config.replicates - cp.next_rep;
        // Unbounded runs take everything in one chunk (no reason to pay
        // per-chunk pool setup); bounded runs use chunks large enough to
        // keep every worker busy but small enough that the deadline check
        // between chunks is responsive.
        let chunk = if control.is_unbounded() {
            remaining
        } else {
            let threads = config.parallelism.threads_for(remaining);
            remaining.min((threads * 8).max(32))
        };
        let start = cp.next_rep;
        let (times, fitted, residuals) = (&cp.times, &cp.fitted, &cp.residuals);
        // Each replicate owns a counter-derived RNG stream, so its draws
        // are a pure function of (seed, replicate index): replicates can
        // run on any thread, in any order, across any pause/resume split,
        // and still produce the same band.
        let replicate_preds =
            run_indexed_catch(config.parallelism, chunk, |j| -> Option<Vec<f64>> {
                let rep = start + j;
                let mut rng = XorShift64::stream(config.seed, rep as u64);
                let synth_values: Vec<f64> = (0..n)
                    .map(|i| fitted[i] + residuals[rng.next_index(n)])
                    .collect();
                let synth =
                    PerformanceSeries::new(series.name(), times.clone(), synth_values).ok()?;
                let fit = fit_least_squares(&wrapped, &synth, &refit_config).ok()?;
                let mut preds = vec![0.0; n];
                fit.model.predict_into(times, &mut preds);
                for p in &mut preds {
                    // Prediction band: parameter uncertainty (the refit) plus
                    // observation noise (one more residual draw) — the bootstrap
                    // analogue of the paper's Eq. 13 band, which also targets
                    // observations rather than the mean curve.
                    *p += residuals[rng.next_index(n)];
                }
                // Guard layer (DESIGN.md §8): a replicate whose refit
                // produced a non-finite prediction counts as failed — it
                // must not reach the quantile computation, which would
                // otherwise reject the entire band over one bad replicate.
                if preds.iter().any(|p| !p.is_finite()) {
                    return None;
                }
                Some(preds)
            });
        let failed_before = cp.failed;
        for outcome in replicate_preds {
            match outcome {
                Ok(Some(preds)) => {
                    for (slot, p) in cp.per_time.iter_mut().zip(preds) {
                        slot.push(p);
                    }
                }
                // Refit failure and replicate panic degrade identically:
                // one failed replicate, never a lost band.
                Ok(None) | Err(_) => cp.failed += 1,
            }
        }
        cp.next_rep += chunk;
        let chunk_failed = cp.failed - failed_before;
        control.count(
            CounterId::BootstrapReplicatesOk,
            (chunk - chunk_failed) as u64,
        );
        control.count(CounterId::BootstrapReplicatesFailed, chunk_failed as u64);
        control.emit(Event::BootstrapChunkDone {
            done: cp.next_rep as u32,
            total: config.replicates as u32,
            failed: cp.failed as u32,
        });
        // The stop check runs *after* the chunk: every call makes at
        // least one chunk of progress even under an expired deadline.
        if cp.next_rep < config.replicates && control.stop_cause().is_some() {
            return Ok(None);
        }
    }

    let ok = config.replicates - cp.failed;
    if ok < 20 || ok * 2 < config.replicates {
        return Err(CoreError::arg(
            "bootstrap_band",
            format!(
                "only {ok}/{} replicates refit successfully",
                config.replicates
            ),
        ));
    }
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    for values in &cp.per_time {
        lower.push(quantile(values, config.alpha / 2.0)?);
        upper.push(quantile(values, 1.0 - config.alpha / 2.0)?);
    }
    let finished = checkpoint.take().expect("checkpoint present");
    Ok(Some(BootstrapBand {
        times: finished.times,
        center: finished.fitted,
        lower,
        upper,
        replicates: ok,
        failed: finished.failed,
    }))
}

/// A family adapter that replaces the data-driven starting points with a
/// fixed seed (the base fit's optimum).
struct SeededFamily<'a> {
    inner: &'a dyn ModelFamily,
    seed_params: Vec<f64>,
}

impl ModelFamily for SeededFamily<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn n_params(&self) -> usize {
        self.inner.n_params()
    }

    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        self.inner.internal_to_params(internal)
    }

    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        self.inner.params_to_internal(params)
    }

    fn build(&self, params: &[f64]) -> Result<Box<dyn crate::model::ResilienceModel>, CoreError> {
        self.inner.build(params)
    }

    fn initial_guesses(&self, _series: &PerformanceSeries) -> Vec<Vec<f64>> {
        vec![self.seed_params.clone()]
    }

    // Forward the allocation-free hot-path hooks so replicate refits keep
    // the wrapped family's specialized implementations — including the
    // analytic Jacobian and the batched SSE kernel.
    fn internal_to_params_into(&self, internal: &[f64], out: &mut [f64]) {
        self.inner.internal_to_params_into(internal, out);
    }

    fn predict_params_into(&self, params: &[f64], ts: &[f64], out: &mut [f64]) -> bool {
        self.inner.predict_params_into(params, ts, out)
    }

    fn predict_jacobian_into(
        &self,
        internal: &[f64],
        params: &[f64],
        ts: &[f64],
        out: &mut resilience_math::linalg::Matrix,
    ) -> bool {
        self.inner.predict_jacobian_into(internal, params, ts, out)
    }

    fn sse_batch_into(&self, internals: &[f64], ts: &[f64], ys: &[f64], out: &mut [f64]) -> bool {
        self.inner.sse_batch_into(internals, ts, ys, out)
    }

    fn nm_iteration_scale(&self) -> usize {
        self.inner.nm_iteration_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bathtub::QuadraticFamily;
    use resilience_data::recessions::Recession;

    fn quick_config() -> BootstrapConfig {
        BootstrapConfig {
            replicates: 60,
            ..BootstrapConfig::default()
        }
    }

    #[test]
    fn band_brackets_center_and_covers_data() {
        let series = Recession::R1990_93.payroll_index();
        let band = bootstrap_band(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &quick_config(),
        )
        .unwrap();
        assert_eq!(band.times.len(), series.len());
        for i in 0..band.times.len() {
            assert!(band.lower[i] <= band.upper[i]);
            // Center generally inside, allowing percentile wiggle.
            assert!(band.center[i] >= band.lower[i] - 0.01);
            assert!(band.center[i] <= band.upper[i] + 0.01);
        }
        let coverage = band.coverage(&series).unwrap();
        assert!(coverage > 0.5, "coverage = {coverage}");
    }

    #[test]
    fn band_is_deterministic_under_seed() {
        let series = Recession::R1990_93.payroll_index();
        let a = bootstrap_band(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &quick_config(),
        )
        .unwrap();
        let b = bootstrap_band(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &quick_config(),
        )
        .unwrap();
        assert_eq!(a.lower, b.lower);
        assert_eq!(a.upper, b.upper);
    }

    #[test]
    fn band_is_invariant_to_thread_count() {
        let series = Recession::R1990_93.payroll_index();
        let run = |p: Parallelism| {
            bootstrap_band(
                &QuadraticFamily,
                &series,
                &FitConfig::default(),
                &BootstrapConfig {
                    parallelism: p,
                    ..quick_config()
                },
            )
            .unwrap()
        };
        let serial = run(Parallelism::Serial);
        for p in [
            Parallelism::Fixed(1),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let par = run(p);
            assert_eq!(par.lower, serial.lower, "{p:?}");
            assert_eq!(par.upper, serial.upper, "{p:?}");
            assert_eq!(par.replicates, serial.replicates, "{p:?}");
        }
    }

    #[test]
    fn rejects_bad_configuration() {
        let series = Recession::R1990_93.payroll_index();
        let mut cfg = quick_config();
        cfg.replicates = 5;
        assert!(bootstrap_band(&QuadraticFamily, &series, &FitConfig::default(), &cfg).is_err());
        let mut cfg = quick_config();
        cfg.alpha = 0.0;
        assert!(bootstrap_band(&QuadraticFamily, &series, &FitConfig::default(), &cfg).is_err());
    }

    #[test]
    fn coverage_validates_length() {
        let series = Recession::R1990_93.payroll_index();
        let band = bootstrap_band(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &quick_config(),
        )
        .unwrap();
        let short = Recession::R2020_21.payroll_index();
        assert!(band.coverage(&short).is_err());
    }

    #[test]
    fn coverage_rejects_an_empty_band() {
        let empty = BootstrapBand {
            times: vec![],
            center: vec![],
            lower: vec![],
            upper: vec![],
            replicates: 0,
            failed: 0,
        };
        let series = Recession::R1990_93.payroll_index();
        let err = empty.coverage(&series).unwrap_err();
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn checkpointed_resume_is_bit_identical_to_uninterrupted() {
        use std::time::Duration;
        let series = Recession::R1990_93.payroll_index();
        // Fixed(2) workers → 32-replicate chunks, so 64 replicates take
        // exactly two chunked calls under an always-expired deadline.
        let cfg = BootstrapConfig {
            replicates: 64,
            parallelism: Parallelism::Fixed(2),
            ..BootstrapConfig::default()
        };
        let uninterrupted =
            bootstrap_band(&QuadraticFamily, &series, &FitConfig::default(), &cfg).unwrap();

        let expired = Control::with_deadline(Duration::ZERO);
        let mut checkpoint = None;
        // First call: base fit + one chunk, then pauses.
        let first = bootstrap_band_checkpointed(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &cfg,
            &mut checkpoint,
            &expired,
        )
        .unwrap();
        assert!(first.is_none(), "expired deadline must pause the run");
        let cp = checkpoint.as_ref().expect("pause must leave a checkpoint");
        assert_eq!(cp.replicates_done(), 32);

        // Resume until done; minimum-progress guarantees termination.
        let mut resumed = None;
        for _ in 0..10 {
            if let Some(band) = bootstrap_band_checkpointed(
                &QuadraticFamily,
                &series,
                &FitConfig::default(),
                &cfg,
                &mut checkpoint,
                &expired,
            )
            .unwrap()
            {
                resumed = Some(band);
                break;
            }
        }
        let resumed = resumed.expect("run must finish within 10 chunked calls");
        assert!(checkpoint.is_none(), "completion must clear the checkpoint");
        assert_eq!(resumed, uninterrupted);
    }

    #[test]
    fn telemetry_reports_chunk_progress_and_replicate_counters() {
        use resilience_obs::{CounterId, Event, RecordingObserver};
        use std::sync::Arc;
        let series = Recession::R1990_93.payroll_index();
        let rec = Arc::new(RecordingObserver::new());
        let control = Control::unbounded().observe(rec.clone());
        let band = bootstrap_band_with(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &quick_config(),
            &control,
        )
        .unwrap();
        let events = rec.take();
        // The base fit's span anchors the log.
        assert!(events.iter().any(|e| matches!(e, Event::FitStarted { .. })));
        // An unbounded run takes all replicates in one chunk.
        let chunks: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::BootstrapChunkDone {
                    done,
                    total,
                    failed,
                } => Some((*done, *total, *failed)),
                _ => None,
            })
            .collect();
        assert_eq!(chunks, vec![(60, 60, band.failed as u32)]);
        // Ok + failed counters account for every replicate.
        let total_counted: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Counter {
                    id: CounterId::BootstrapReplicatesOk | CounterId::BootstrapReplicatesFailed,
                    delta,
                } => Some(*delta),
                _ => None,
            })
            .sum();
        assert_eq!(total_counted, 60);
    }

    #[test]
    fn observed_band_is_identical_to_unobserved() {
        use resilience_obs::RecordingObserver;
        use std::sync::Arc;
        let series = Recession::R1990_93.payroll_index();
        let plain = bootstrap_band(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &quick_config(),
        )
        .unwrap();
        let control = Control::unbounded().observe(Arc::new(RecordingObserver::new()));
        let traced = bootstrap_band_with(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &quick_config(),
            &control,
        )
        .unwrap();
        assert_eq!(traced, plain);
    }

    #[test]
    fn checkpoint_from_a_different_series_is_rejected() {
        use std::time::Duration;
        let series = Recession::R1990_93.payroll_index();
        let cfg = BootstrapConfig {
            replicates: 64,
            parallelism: Parallelism::Fixed(2),
            ..BootstrapConfig::default()
        };
        let mut checkpoint = None;
        let paused = bootstrap_band_checkpointed(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &cfg,
            &mut checkpoint,
            &Control::with_deadline(Duration::ZERO),
        )
        .unwrap();
        assert!(paused.is_none());
        // Resuming against a series of a different length must error, not
        // silently mix two runs.
        let other = Recession::R2020_21.payroll_index();
        assert_ne!(other.len(), series.len());
        assert!(bootstrap_band_checkpointed(
            &QuadraticFamily,
            &other,
            &FitConfig::default(),
            &cfg,
            &mut checkpoint,
            &Control::unbounded(),
        )
        .is_err());
    }
}
