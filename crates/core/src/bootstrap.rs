//! Residual-bootstrap confidence bands — a nonparametric alternative to
//! the paper's Eq. 12–13 normal-theory band (listed as future work in
//! DESIGN.md §5).
//!
//! The Eq. 13 band assumes homoscedastic Gaussian residuals and ignores
//! parameter uncertainty; the residual bootstrap instead refits the model
//! on `B` synthetic series (fitted curve + resampled residuals) and reads
//! the band off the percentiles of the replicate predictions. It is wider
//! where the fit constrains the curve weakly (extrapolation beyond the
//! training window) — exactly the region the predictive metrics use.

use crate::fit::{fit_least_squares, FitConfig};
use crate::model::ModelFamily;
use crate::CoreError;
use resilience_data::noise::XorShift64;
use resilience_data::PerformanceSeries;
use resilience_optim::parallel::run_indexed;
use resilience_optim::Parallelism;
use resilience_stats::describe::quantile;

/// A pointwise bootstrap *prediction* band: each limit reflects both
/// parameter uncertainty (replicate refits) and observation noise (a
/// residual draw), so — like the paper's Eq. 13 band — it targets where
/// observations fall, not just the mean curve.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapBand {
    /// Evaluation times.
    pub times: Vec<f64>,
    /// Point predictions of the base fit.
    pub center: Vec<f64>,
    /// Lower band limits (`α/2` percentile of replicates).
    pub lower: Vec<f64>,
    /// Upper band limits (`1 − α/2` percentile of replicates).
    pub upper: Vec<f64>,
    /// Number of successful replicates.
    pub replicates: usize,
    /// Number of replicates whose refit failed (excluded).
    pub failed: usize,
}

impl BootstrapBand {
    /// Whether the observation `y` at index `i` falls inside the band.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn contains(&self, i: usize, y: f64) -> bool {
        y >= self.lower[i] && y <= self.upper[i]
    }

    /// Empirical coverage of a series by this band.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] when lengths differ.
    pub fn coverage(&self, series: &PerformanceSeries) -> Result<f64, CoreError> {
        if series.len() != self.times.len() {
            return Err(CoreError::arg(
                "BootstrapBand::coverage",
                format!(
                    "{} observations vs {} band points",
                    series.len(),
                    self.times.len()
                ),
            ));
        }
        let inside = series
            .values()
            .iter()
            .enumerate()
            .filter(|(i, y)| self.contains(*i, **y))
            .count();
        Ok(inside as f64 / series.len() as f64)
    }
}

/// Configuration for [`bootstrap_band`].
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// Number of bootstrap replicates.
    pub replicates: usize,
    /// Significance level (0.05 → 95 % band).
    pub alpha: f64,
    /// Deterministic seed for the residual resampling. Replicate `i`
    /// draws from its own counter-derived stream
    /// ([`XorShift64::stream`]`(seed, i)`), so the band depends only on
    /// the seed — never on scheduling or thread count.
    pub seed: u64,
    /// Fit configuration for the replicate refits. Defaults to a single
    /// start at the base fit's optimum with a reduced iteration budget —
    /// replicate surfaces are small perturbations of the original.
    pub refit: FitConfig,
    /// Thread fan-out across replicates. Every setting produces
    /// bit-identical bands; the replicate refits themselves run serially
    /// so the fan-out happens at exactly one level.
    pub parallelism: Parallelism,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        let mut refit = FitConfig::default();
        refit.nelder_mead.max_iterations = 800;
        refit.max_starts = 1;
        BootstrapConfig {
            replicates: 200,
            alpha: 0.05,
            seed: 0x0B007,
            refit,
            parallelism: Parallelism::Auto,
        }
    }
}

/// Computes a residual-bootstrap band for `family` fit to `series`,
/// evaluated at every observation time.
///
/// # Errors
///
/// * [`CoreError::InvalidArgument`] for a bad configuration or when too
///   few replicates succeed (< 20 or < half of the requested number).
/// * Propagates the base fit's errors.
pub fn bootstrap_band(
    family: &dyn ModelFamily,
    series: &PerformanceSeries,
    base_config: &FitConfig,
    config: &BootstrapConfig,
) -> Result<BootstrapBand, CoreError> {
    if config.replicates < 20 {
        return Err(CoreError::arg(
            "bootstrap_band",
            format!("need at least 20 replicates, got {}", config.replicates),
        ));
    }
    if !(config.alpha > 0.0 && config.alpha < 1.0) {
        return Err(CoreError::arg(
            "bootstrap_band",
            format!("alpha must be in (0, 1), got {}", config.alpha),
        ));
    }
    let base = fit_least_squares(family, series, base_config)?;
    let times = series.times().to_vec();
    let fitted = base.model.predict_many(&times);
    let residuals: Vec<f64> = series
        .values()
        .iter()
        .zip(&fitted)
        .map(|(y, f)| y - f)
        .collect();

    // Replicate refits always start at the base optimum, and run
    // serially — the fan-out happens across replicates, not inside them.
    let mut refit_config = config.refit.clone();
    refit_config.max_starts = refit_config.max_starts.max(1);
    refit_config.parallelism = Parallelism::Serial;

    // Start from the base optimum: wrap the family so initial_guesses
    // returns only the base parameters.
    let wrapped = SeededFamily {
        inner: family,
        seed_params: base.params.clone(),
    };

    let n = series.len();
    // Each replicate owns a counter-derived RNG stream, so its draws are
    // a pure function of (seed, replicate index): replicates can run on
    // any thread in any order and still produce the same band.
    let replicate_preds = run_indexed(
        config.parallelism,
        config.replicates,
        |rep| -> Option<Vec<f64>> {
            let mut rng = XorShift64::stream(config.seed, rep as u64);
            let synth_values: Vec<f64> = (0..n)
                .map(|i| fitted[i] + residuals[rng.next_index(n)])
                .collect();
            let synth = PerformanceSeries::new(series.name(), times.clone(), synth_values).ok()?;
            let fit = fit_least_squares(&wrapped, &synth, &refit_config).ok()?;
            let mut preds = vec![0.0; n];
            fit.model.predict_into(&times, &mut preds);
            for p in &mut preds {
                // Prediction band: parameter uncertainty (the refit) plus
                // observation noise (one more residual draw) — the bootstrap
                // analogue of the paper's Eq. 13 band, which also targets
                // observations rather than the mean curve.
                *p += residuals[rng.next_index(n)];
            }
            // Guard layer (DESIGN.md §8): a replicate whose refit
            // produced a non-finite prediction counts as failed — it
            // must not reach the quantile computation, which would
            // otherwise reject the entire band over one bad replicate.
            if preds.iter().any(|p| !p.is_finite()) {
                return None;
            }
            Some(preds)
        },
    );

    let mut per_time: Vec<Vec<f64>> = vec![Vec::with_capacity(config.replicates); n];
    let mut failed = 0usize;
    for preds in replicate_preds {
        match preds {
            Some(preds) => {
                for (slot, p) in per_time.iter_mut().zip(preds) {
                    slot.push(p);
                }
            }
            None => failed += 1,
        }
    }
    let ok = config.replicates - failed;
    if ok < 20 || ok * 2 < config.replicates {
        return Err(CoreError::arg(
            "bootstrap_band",
            format!(
                "only {ok}/{} replicates refit successfully",
                config.replicates
            ),
        ));
    }
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    for values in &per_time {
        lower.push(quantile(values, config.alpha / 2.0)?);
        upper.push(quantile(values, 1.0 - config.alpha / 2.0)?);
    }
    Ok(BootstrapBand {
        times,
        center: fitted,
        lower,
        upper,
        replicates: ok,
        failed,
    })
}

/// A family adapter that replaces the data-driven starting points with a
/// fixed seed (the base fit's optimum).
struct SeededFamily<'a> {
    inner: &'a dyn ModelFamily,
    seed_params: Vec<f64>,
}

impl ModelFamily for SeededFamily<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn n_params(&self) -> usize {
        self.inner.n_params()
    }

    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        self.inner.internal_to_params(internal)
    }

    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        self.inner.params_to_internal(params)
    }

    fn build(&self, params: &[f64]) -> Result<Box<dyn crate::model::ResilienceModel>, CoreError> {
        self.inner.build(params)
    }

    fn initial_guesses(&self, _series: &PerformanceSeries) -> Vec<Vec<f64>> {
        vec![self.seed_params.clone()]
    }

    // Forward the allocation-free hot-path hooks so replicate refits keep
    // the wrapped family's specialized implementations.
    fn internal_to_params_into(&self, internal: &[f64], out: &mut [f64]) {
        self.inner.internal_to_params_into(internal, out);
    }

    fn predict_params_into(&self, params: &[f64], ts: &[f64], out: &mut [f64]) -> bool {
        self.inner.predict_params_into(params, ts, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bathtub::QuadraticFamily;
    use resilience_data::recessions::Recession;

    fn quick_config() -> BootstrapConfig {
        BootstrapConfig {
            replicates: 60,
            ..BootstrapConfig::default()
        }
    }

    #[test]
    fn band_brackets_center_and_covers_data() {
        let series = Recession::R1990_93.payroll_index();
        let band = bootstrap_band(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &quick_config(),
        )
        .unwrap();
        assert_eq!(band.times.len(), series.len());
        for i in 0..band.times.len() {
            assert!(band.lower[i] <= band.upper[i]);
            // Center generally inside, allowing percentile wiggle.
            assert!(band.center[i] >= band.lower[i] - 0.01);
            assert!(band.center[i] <= band.upper[i] + 0.01);
        }
        let coverage = band.coverage(&series).unwrap();
        assert!(coverage > 0.5, "coverage = {coverage}");
    }

    #[test]
    fn band_is_deterministic_under_seed() {
        let series = Recession::R1990_93.payroll_index();
        let a = bootstrap_band(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &quick_config(),
        )
        .unwrap();
        let b = bootstrap_band(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &quick_config(),
        )
        .unwrap();
        assert_eq!(a.lower, b.lower);
        assert_eq!(a.upper, b.upper);
    }

    #[test]
    fn band_is_invariant_to_thread_count() {
        let series = Recession::R1990_93.payroll_index();
        let run = |p: Parallelism| {
            bootstrap_band(
                &QuadraticFamily,
                &series,
                &FitConfig::default(),
                &BootstrapConfig {
                    parallelism: p,
                    ..quick_config()
                },
            )
            .unwrap()
        };
        let serial = run(Parallelism::Serial);
        for p in [
            Parallelism::Fixed(1),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let par = run(p);
            assert_eq!(par.lower, serial.lower, "{p:?}");
            assert_eq!(par.upper, serial.upper, "{p:?}");
            assert_eq!(par.replicates, serial.replicates, "{p:?}");
        }
    }

    #[test]
    fn rejects_bad_configuration() {
        let series = Recession::R1990_93.payroll_index();
        let mut cfg = quick_config();
        cfg.replicates = 5;
        assert!(bootstrap_band(&QuadraticFamily, &series, &FitConfig::default(), &cfg).is_err());
        let mut cfg = quick_config();
        cfg.alpha = 0.0;
        assert!(bootstrap_band(&QuadraticFamily, &series, &FitConfig::default(), &cfg).is_err());
    }

    #[test]
    fn coverage_validates_length() {
        let series = Recession::R1990_93.payroll_index();
        let band = bootstrap_band(
            &QuadraticFamily,
            &series,
            &FitConfig::default(),
            &quick_config(),
        )
        .unwrap();
        let short = Recession::R2020_21.payroll_index();
        assert!(band.coverage(&short).is_err());
    }
}
