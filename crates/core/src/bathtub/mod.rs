//! Bathtub-shaped resilience models (paper §II-A).
//!
//! In reliability engineering a bathtub-shaped hazard first decreases
//! (infant mortality), bottoms out, then increases (wear-out). The paper
//! reuses that *shape* directly as a resilience curve: performance falls
//! from the nominal level, troughs, and recovers. Two parameterizations
//! are evaluated:
//!
//! * [`QuadraticModel`] — `P(t) = α + βt + γt²` (paper Eq. 1), bathtub-
//!   shaped iff `α, γ > 0` and `−2√(αγ) < β < 0`; recovery time and area
//!   under the curve have closed forms (Eq. 2–3).
//! * [`CompetingRisksModel`] — `P(t) = 2γt + α/(1+βt)` (the Hjorth
//!   competing-risks form behind Eq. 4), able to express increasing,
//!   decreasing, constant, and bathtub shapes; Eq. 5–6 give its recovery
//!   time and area.
//!
//! [`QuarticModel`] is a workspace extension (DESIGN.md §5): a degree-4
//! polynomial that *can* express the W-shaped double dips both paper
//! families fail on (its Table I, 1980 data).

mod competing_risks;
mod quadratic;
mod quartic;

pub use competing_risks::{CompetingRisksFamily, CompetingRisksModel};
pub use quadratic::{QuadraticFamily, QuadraticModel};
pub use quartic::{QuarticFamily, QuarticModel};

use resilience_data::PerformanceSeries;
use resilience_math::linalg::Matrix;

/// Fits a polynomial of the given degree to a series by ordinary least
/// squares (normal equations). Returns ascending coefficients.
///
/// Used to seed the bathtub fits: the unconstrained polynomial optimum is
/// an excellent starting point for the constrained search.
pub(crate) fn polynomial_ols(series: &PerformanceSeries, degree: usize) -> Option<Vec<f64>> {
    let n = series.len();
    let p = degree + 1;
    if n < p {
        return None;
    }
    // Fit in the scaled variable u = t/T to keep the normal equations
    // well conditioned (raw powers up to t⁸ in the Gram matrix would lose
    // all precision for t ~ 48), then rescale the coefficients back.
    let t_scale = series
        .times()
        .iter()
        .fold(0.0f64, |acc, t| acc.max(t.abs()))
        .max(1.0);
    let mut design = Matrix::zeros(n, p);
    for (i, (t, _)) in series.iter().enumerate() {
        let u = t / t_scale;
        let mut pow = 1.0;
        for j in 0..p {
            design[(i, j)] = pow;
            pow *= u;
        }
    }
    let gram = design.gram();
    let rhs = design.transpose_matvec(series.values()).ok()?;
    let scaled = gram.solve(&rhs).ok()?;
    Some(
        scaled
            .into_iter()
            .enumerate()
            .map(|(k, c)| c / t_scale.powi(k as i32))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_ols_recovers_exact_coefficients() {
        let values: Vec<f64> = (0..20)
            .map(|i| {
                let t = i as f64;
                1.0 - 0.02 * t + 0.001 * t * t
            })
            .collect();
        let s = PerformanceSeries::monthly("p", values).unwrap();
        let c = polynomial_ols(&s, 2).unwrap();
        assert!((c[0] - 1.0).abs() < 1e-9);
        assert!((c[1] + 0.02).abs() < 1e-9);
        assert!((c[2] - 0.001).abs() < 1e-10);
    }

    #[test]
    fn polynomial_ols_underdetermined_is_none() {
        let s = PerformanceSeries::monthly("p", vec![1.0, 0.9, 1.0]).unwrap();
        assert!(polynomial_ols(&s, 4).is_none());
    }
}
