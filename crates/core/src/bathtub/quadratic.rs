//! The quadratic bathtub model (paper Eq. 1–3).

use crate::model::{ModelFamily, ResilienceModel, SSE_BATCH_WIDTH};
use crate::CoreError;
use resilience_data::PerformanceSeries;
use resilience_math::linalg::Matrix;
use resilience_math::poly::{quadratic_roots, Polynomial};
use resilience_math::sum::CompensatedSum;

/// Quadratic bathtub resilience curve `P(t) = α + βt + γt²`
/// (paper Eq. 1).
///
/// Bathtub-shaped exactly when `α, γ > 0` and `−2√(αγ) < β < 0`; this
/// type enforces those constraints at construction, which is what the
/// paper's Eq. 1 requires for a degradation-then-recovery interpretation.
///
/// # Examples
///
/// ```
/// use resilience_core::bathtub::QuadraticModel;
/// use resilience_core::ResilienceModel;
///
/// // Trough at t = 10 with value 0.95: α = 1, β = −0.01, γ = 0.0005.
/// let m = QuadraticModel::new(1.0, -0.01, 0.0005)?;
/// assert!((m.predict(0.0) - 1.0).abs() < 1e-12);
/// assert!((m.trough() - 10.0).abs() < 1e-12);
/// assert!(m.predict(10.0) < 1.0);
/// # Ok::<(), resilience_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadraticModel {
    alpha: f64,
    beta: f64,
    gamma: f64,
}

impl QuadraticModel {
    /// Creates a quadratic bathtub model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] unless `α > 0`, `γ > 0`,
    /// and `−2√(αγ) < β < 0` (the bathtub validity region of Eq. 1).
    pub fn new(alpha: f64, beta: f64, gamma: f64) -> Result<Self, CoreError> {
        if !(alpha > 0.0) || !alpha.is_finite() {
            return Err(CoreError::params(
                "Quadratic",
                format!("need α > 0, got {alpha}"),
            ));
        }
        if !(gamma > 0.0) || !gamma.is_finite() {
            return Err(CoreError::params(
                "Quadratic",
                format!("need γ > 0, got {gamma}"),
            ));
        }
        let lower = -2.0 * (alpha * gamma).sqrt();
        if !(beta > lower && beta < 0.0) {
            return Err(CoreError::params(
                "Quadratic",
                format!("need −2√(αγ) = {lower} < β < 0, got {beta}"),
            ));
        }
        Ok(QuadraticModel { alpha, beta, gamma })
    }

    /// The intercept `α` (performance at `t = 0`).
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The linear coefficient `β` (< 0).
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The quadratic coefficient `γ` (> 0).
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Closed-form trough location `t_d = −β/(2γ)`.
    #[must_use]
    pub fn trough(&self) -> f64 {
        -self.beta / (2.0 * self.gamma)
    }

    /// Minimum performance `P(t_d) = α − β²/(4γ)`.
    #[must_use]
    pub fn minimum(&self) -> f64 {
        self.alpha - self.beta * self.beta / (4.0 * self.gamma)
    }

    /// Closed-form recovery time (paper Eq. 2): the post-trough time at
    /// which `P(t) = level`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSolution`] when `level` is below the curve
    /// minimum (never reached).
    pub fn recovery_time(&self, level: f64) -> Result<f64, CoreError> {
        let roots = quadratic_roots(self.gamma, self.beta, self.alpha - level)?;
        let trough = self.trough();
        roots.into_iter().find(|&t| t >= trough).ok_or_else(|| {
            CoreError::no_solution(
                "QuadraticModel::recovery_time",
                format!(
                    "level {level} is below the curve minimum {}",
                    self.minimum()
                ),
            )
        })
    }

    fn polynomial(&self) -> Polynomial {
        Polynomial::new(vec![self.alpha, self.beta, self.gamma])
    }

    /// Allocation-free mirror of the `new` constraints, used by the
    /// fitting hot path (`new` reports the same conditions with
    /// diagnostics, which costs a `String`).
    fn feasible(alpha: f64, beta: f64, gamma: f64) -> bool {
        alpha > 0.0
            && alpha.is_finite()
            && gamma > 0.0
            && gamma.is_finite()
            && beta > -2.0 * (alpha * gamma).sqrt()
            && beta < 0.0
    }
}

impl ResilienceModel for QuadraticModel {
    fn name(&self) -> &'static str {
        "Quadratic"
    }

    fn params(&self) -> Vec<f64> {
        vec![self.alpha, self.beta, self.gamma]
    }

    fn predict(&self, t: f64) -> f64 {
        self.alpha + self.beta * t + self.gamma * t * t
    }

    fn predict_into(&self, ts: &[f64], out: &mut [f64]) {
        assert_eq!(
            ts.len(),
            out.len(),
            "predict_into requires ts and out of equal length"
        );
        for (o, &t) in out.iter_mut().zip(ts) {
            *o = self.alpha + self.beta * t + self.gamma * t * t;
        }
    }

    /// Closed-form area (paper Eq. 3): `αt + βt²/2 + γt³/3` evaluated
    /// between the endpoints.
    fn area(&self, a: f64, b: f64) -> Result<f64, CoreError> {
        if !(a <= b) || !a.is_finite() || !b.is_finite() {
            return Err(CoreError::arg(
                "QuadraticModel::area",
                format!("need finite a <= b, got [{a}, {b}]"),
            ));
        }
        Ok(self.polynomial().integral(a, b))
    }

    fn trough_time(&self, a: f64, b: f64) -> Result<f64, CoreError> {
        if !(a < b) {
            return Err(CoreError::arg(
                "QuadraticModel::trough_time",
                format!("need a < b, got [{a}, {b}]"),
            ));
        }
        Ok(self.trough().clamp(a, b))
    }

    fn time_to_recover(&self, level: f64, from: f64, horizon: f64) -> Result<f64, CoreError> {
        let t = self.recovery_time(level)?;
        if t < from {
            // Already recovered before the window.
            return Ok(from);
        }
        if t > horizon {
            return Err(CoreError::no_solution(
                "QuadraticModel::time_to_recover",
                format!("recovery at t = {t} is beyond horizon {horizon}"),
            ));
        }
        Ok(t)
    }
}

/// The [`ModelFamily`] for [`QuadraticModel`].
///
/// Internal parameterization: `[ln α, logit s, ln γ]` with
/// `β = −2√(αγ)·s`, which maps all of ℝ³ onto the bathtub validity
/// region.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuadraticFamily;

impl QuadraticFamily {
    fn external(alpha: f64, s: f64, gamma: f64) -> Vec<f64> {
        let beta = -2.0 * (alpha * gamma).sqrt() * s;
        vec![alpha, beta, gamma]
    }
}

impl ModelFamily for QuadraticFamily {
    fn name(&self) -> &'static str {
        "Quadratic"
    }

    fn n_params(&self) -> usize {
        3
    }

    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        assert_eq!(
            internal.len(),
            3,
            "QuadraticFamily expects 3 internal params"
        );
        let alpha = internal[0].exp();
        // Numerically safe logistic clamped strictly inside (0, 1).
        let s = (1.0 / (1.0 + (-internal[1]).exp())).clamp(1e-9, 1.0 - 1e-9);
        let gamma = internal[2].exp();
        QuadraticFamily::external(alpha, s, gamma)
    }

    fn internal_to_params_into(&self, internal: &[f64], out: &mut [f64]) {
        assert_eq!(
            internal.len(),
            3,
            "QuadraticFamily expects 3 internal params"
        );
        assert_eq!(out.len(), 3, "QuadraticFamily writes 3 external params");
        let alpha = internal[0].exp();
        let s = (1.0 / (1.0 + (-internal[1]).exp())).clamp(1e-9, 1.0 - 1e-9);
        let gamma = internal[2].exp();
        out[0] = alpha;
        out[1] = -2.0 * (alpha * gamma).sqrt() * s;
        out[2] = gamma;
    }

    fn predict_params_into(&self, params: &[f64], ts: &[f64], out: &mut [f64]) -> bool {
        if params.len() != 3 || !QuadraticModel::feasible(params[0], params[1], params[2]) {
            return false;
        }
        let model = QuadraticModel {
            alpha: params[0],
            beta: params[1],
            gamma: params[2],
        };
        model.predict_into(ts, out);
        true
    }

    /// Hand-derived partials through the internal map `α = e^{u₀}`,
    /// `s = σ(u₁)` (clamped), `γ = e^{u₂}`, `β = −2√(αγ)·s`:
    ///
    /// * `∂P/∂u₀ = α + (β/2)·t` — both `α` and `√α` scale with `e^{u₀}`,
    ///   and `∂β/∂u₀ = β/2`.
    /// * `∂P/∂u₁ = −2√(αγ)·s(1−s)·t` — the logistic derivative, zero
    ///   where the clamp is active (the map is flat there).
    /// * `∂P/∂u₂ = (β/2)·t + γt²` — mirror of `u₀` plus the quadratic
    ///   term.
    fn predict_jacobian_into(
        &self,
        internal: &[f64],
        params: &[f64],
        ts: &[f64],
        out: &mut Matrix,
    ) -> bool {
        if internal.len() != 3
            || params.len() != 3
            || !QuadraticModel::feasible(params[0], params[1], params[2])
        {
            return false;
        }
        let (alpha, beta, gamma) = (params[0], params[1], params[2]);
        let s = (1.0 / (1.0 + (-internal[1]).exp())).clamp(1e-9, 1.0 - 1e-9);
        let ds = if s > 1e-9 && s < 1.0 - 1e-9 {
            s * (1.0 - s)
        } else {
            0.0
        };
        let slope_u1 = -2.0 * (alpha * gamma).sqrt() * ds;
        let half_beta = 0.5 * beta;
        for (i, &t) in ts.iter().enumerate() {
            out[(i, 0)] = alpha + half_beta * t;
            out[(i, 1)] = slope_u1 * t;
            out[(i, 2)] = half_beta * t + gamma * t * t;
        }
        true
    }

    fn sse_batch_into(&self, internals: &[f64], ts: &[f64], ys: &[f64], out: &mut [f64]) -> bool {
        const W: usize = SSE_BATCH_WIDTH;
        assert_eq!(
            internals.len(),
            3 * out.len(),
            "QuadraticFamily::sse_batch_into: internals.len() must be 3 * out.len()"
        );
        assert_eq!(ts.len(), ys.len(), "sse_batch_into: ts/ys length mismatch");
        for (chunk_idx, chunk) in out.chunks_mut(W).enumerate() {
            let base = chunk_idx * W;
            let k = chunk.len();
            // SoA lanes: one stack array per parameter so the t-loop below
            // reads contiguous lanes the autovectorizer can keep in registers.
            let mut alphas = [0.0; W];
            let mut betas = [0.0; W];
            let mut gammas = [0.0; W];
            let mut live = [false; W];
            for i in 0..k {
                let u = &internals[(base + i) * 3..(base + i) * 3 + 3];
                // Identical arithmetic to `internal_to_params_into`.
                let alpha = u[0].exp();
                let s = (1.0 / (1.0 + (-u[1]).exp())).clamp(1e-9, 1.0 - 1e-9);
                let gamma = u[2].exp();
                let beta = -2.0 * (alpha * gamma).sqrt() * s;
                alphas[i] = alpha;
                betas[i] = beta;
                gammas[i] = gamma;
                live[i] = QuadraticModel::feasible(alpha, beta, gamma);
            }
            let mut sums = [CompensatedSum::new(); W];
            let mut finite = [true; W];
            for (&t, &y) in ts.iter().zip(ys) {
                for i in 0..k {
                    // Same association as the scalar `predict_into`.
                    let pred = alphas[i] + betas[i] * t + gammas[i] * t * t;
                    if !pred.is_finite() {
                        finite[i] = false;
                    }
                    let d = y - pred;
                    sums[i].add(d * d);
                }
            }
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = if live[i] && finite[i] {
                    sums[i].value()
                } else {
                    f64::INFINITY
                };
            }
        }
        true
    }

    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        if params.len() != 3 {
            return Err(CoreError::params("Quadratic", "expected 3 parameters"));
        }
        let (alpha, beta, gamma) = (params[0], params[1], params[2]);
        // Validate via the constructor.
        QuadraticModel::new(alpha, beta, gamma)?;
        let s = -beta / (2.0 * (alpha * gamma).sqrt());
        let s = s.clamp(1e-9, 1.0 - 1e-9);
        Ok(vec![alpha.ln(), (s / (1.0 - s)).ln(), gamma.ln()])
    }

    fn build(&self, params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        if params.len() != 3 {
            return Err(CoreError::params("Quadratic", "expected 3 parameters"));
        }
        Ok(Box::new(QuadraticModel::new(
            params[0], params[1], params[2],
        )?))
    }

    fn initial_guesses(&self, series: &PerformanceSeries) -> Vec<Vec<f64>> {
        let mut guesses = Vec::new();
        let nominal = series.nominal().max(1e-6);
        // Guess 1: unconstrained polynomial OLS projected into the region.
        if let Some(c) = super::polynomial_ols(series, 2) {
            let alpha = c[0].max(1e-6);
            let gamma = c[2].max(1e-9);
            let s = (-c[1] / (2.0 * (alpha * gamma).sqrt())).clamp(0.05, 0.95);
            guesses.push(QuadraticFamily::external(alpha, s, gamma));
        }
        // Guess 2: trough geometry. P(t) ≈ P_d + γ(t − t_d)² ⇒
        // γ = (P(0) − P_d)/t_d², β = −2γt_d, α = P(0).
        if let Some((t_d, p_d)) = series.trough() {
            if t_d > 0.0 && p_d < nominal {
                let gamma = ((nominal - p_d) / (t_d * t_d)).max(1e-9);
                let s = (t_d * (gamma / nominal).sqrt()).clamp(0.05, 0.95);
                guesses.push(QuadraticFamily::external(nominal, s, gamma));
            }
        }
        // Guess 3: a generic shallow bathtub.
        let t_end = series.times()[series.len() - 1].max(1.0);
        let gamma = 0.02 * nominal / (t_end * t_end);
        guesses.push(QuadraticFamily::external(nominal, 0.5, gamma));
        guesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> QuadraticModel {
        QuadraticModel::new(1.0, -0.01, 0.0005).unwrap()
    }

    #[test]
    fn constructor_enforces_bathtub_region() {
        assert!(QuadraticModel::new(0.0, -0.01, 0.1).is_err()); // α = 0
        assert!(QuadraticModel::new(1.0, -0.01, 0.0).is_err()); // γ = 0
        assert!(QuadraticModel::new(1.0, 0.01, 0.1).is_err()); // β > 0
        assert!(QuadraticModel::new(1.0, 0.0, 0.1).is_err()); // β = 0
                                                              // β below −2√(αγ): −2√(0.1) ≈ −0.632.
        assert!(QuadraticModel::new(1.0, -0.7, 0.1).is_err());
        assert!(QuadraticModel::new(1.0, -0.6, 0.1).is_ok());
    }

    #[test]
    fn predict_matches_polynomial() {
        let m = model();
        for &t in &[0.0, 5.0, 10.0, 20.0, 47.0] {
            let want = 1.0 - 0.01 * t + 0.0005 * t * t;
            assert!((m.predict(t) - want).abs() < 1e-15);
        }
    }

    #[test]
    fn trough_and_minimum_closed_forms() {
        let m = model();
        assert!((m.trough() - 10.0).abs() < 1e-12);
        assert!((m.minimum() - (1.0 - 0.0001 / 0.002)).abs() < 1e-12);
        // The trough really is a minimum.
        assert!(m.predict(10.0) < m.predict(9.0));
        assert!(m.predict(10.0) < m.predict(11.0));
    }

    #[test]
    fn recovery_time_closed_form_eq2() {
        let m = model();
        // Recovery back to the nominal level 1: γt² + βt = 0 ⇒ t = −β/γ = 20.
        let t = m.recovery_time(1.0).unwrap();
        assert!((t - 20.0).abs() < 1e-9);
        assert!((m.predict(t) - 1.0).abs() < 1e-12);
        // Below the minimum: unreachable.
        assert!(m.recovery_time(0.9).is_err());
    }

    #[test]
    fn area_closed_form_eq3_matches_quadrature() {
        let m = model();
        let analytic = m.area(0.0, 47.0).unwrap();
        let numeric =
            resilience_math::quad::adaptive_simpson(|t| m.predict(t), 0.0, 47.0, 1e-12, 40)
                .unwrap();
        assert!((analytic - numeric).abs() < 1e-9);
        assert!(m.area(5.0, 1.0).is_err());
    }

    #[test]
    fn time_to_recover_respects_window() {
        let m = model();
        assert!((m.time_to_recover(1.0, 10.0, 48.0).unwrap() - 20.0).abs() < 1e-9);
        // Window starts after recovery: clamps to `from`.
        assert_eq!(m.time_to_recover(1.0, 30.0, 48.0).unwrap(), 30.0);
        // Horizon before recovery: error.
        assert!(m.time_to_recover(1.0, 0.0, 15.0).is_err());
    }

    #[test]
    fn family_roundtrip_internal_external() {
        let fam = QuadraticFamily;
        let params = vec![1.02, -0.013, 0.0004];
        let internal = fam.params_to_internal(&params).unwrap();
        let back = fam.internal_to_params(&internal);
        for (a, b) in params.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9, "{params:?} vs {back:?}");
        }
    }

    #[test]
    fn family_internal_always_feasible() {
        let fam = QuadraticFamily;
        for &a in &[-5.0, 0.0, 3.0] {
            for &b in &[-20.0, 0.0, 20.0] {
                for &c in &[-10.0, 0.0, 2.0] {
                    let p = fam.internal_to_params(&[a, b, c]);
                    assert!(
                        QuadraticModel::new(p[0], p[1], p[2]).is_ok(),
                        "infeasible from internal [{a}, {b}, {c}]: {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn family_rejects_infeasible_external() {
        let fam = QuadraticFamily;
        assert!(fam.params_to_internal(&[1.0, 0.5, 0.1]).is_err());
        assert!(fam.params_to_internal(&[1.0, -0.1]).is_err());
        assert!(fam.build(&[1.0, 0.5, 0.1]).is_err());
    }

    #[test]
    fn initial_guesses_are_feasible_and_nonempty() {
        let values: Vec<f64> = (0..48)
            .map(|i| {
                let t = i as f64;
                1.0 - 0.012 * t + 0.0004 * t * t
            })
            .collect();
        let s = PerformanceSeries::monthly("q", values).unwrap();
        let fam = QuadraticFamily;
        let guesses = fam.initial_guesses(&s);
        assert!(!guesses.is_empty());
        for g in &guesses {
            assert!(
                QuadraticModel::new(g[0], g[1], g[2]).is_ok(),
                "infeasible guess {g:?}"
            );
        }
        // The OLS guess should be essentially exact on noiseless data.
        let g0 = &guesses[0];
        assert!((g0[0] - 1.0).abs() < 1e-6);
        assert!((g0[1] + 0.012).abs() < 1e-6);
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let fam = QuadraticFamily;
        let internal = [0.02, -0.3, -7.5];
        let mut params = [0.0; 3];
        fam.internal_to_params_into(&internal, &mut params);
        assert_eq!(params.to_vec(), fam.internal_to_params(&internal));

        let ts = [0.0, 5.0, 10.0, 20.0];
        let mut out = [f64::NAN; 4];
        assert!(fam.predict_params_into(&params, &ts, &mut out));
        let model = fam.build(&params).unwrap();
        assert_eq!(out.to_vec(), model.predict_many(&ts));

        // Infeasible params: β > 0.
        assert!(!fam.predict_params_into(&[1.0, 0.5, 0.1], &ts, &mut out));
        assert!(!fam.predict_params_into(&[1.0, -0.01], &ts, &mut out));
    }

    #[test]
    fn model_trait_object_usable() {
        let fam = QuadraticFamily;
        let m = fam.build(&[1.0, -0.01, 0.0005]).unwrap();
        assert_eq!(m.name(), "Quadratic");
        assert_eq!(m.n_params(), 3);
        assert!((m.predict(0.0) - 1.0).abs() < 1e-12);
    }
}
