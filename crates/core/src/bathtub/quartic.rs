//! Quartic polynomial model — a workspace extension for W-shaped curves.
//!
//! The paper's Table I shows both bathtub families failing on the 1980
//! W-shaped recession (low or negative adjusted R²): a single
//! degradation-and-recovery episode cannot express two troughs. A quartic
//! polynomial can (it allows two local minima separated by a local
//! maximum), making it the natural minimal extension — exactly the
//! "additional modeling efforts that can capture these more general
//! scenarios" the paper's abstract calls for. DESIGN.md §5 tracks this as
//! an extension experiment.

use crate::model::{ModelFamily, ResilienceModel};
use crate::CoreError;
use resilience_data::PerformanceSeries;
use resilience_math::poly::Polynomial;

/// Unconstrained quartic resilience curve
/// `P(t) = c₀ + c₁t + c₂t² + c₃t³ + c₄t⁴`.
///
/// # Examples
///
/// ```
/// use resilience_core::bathtub::QuarticModel;
/// use resilience_core::ResilienceModel;
///
/// let m = QuarticModel::new([1.0, -0.02, 0.001, 0.0, 0.0])?;
/// assert!((m.predict(0.0) - 1.0).abs() < 1e-12);
/// # Ok::<(), resilience_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarticModel {
    coeffs: [f64; 5],
}

impl QuarticModel {
    /// Creates a quartic model from ascending coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] when any coefficient is
    /// non-finite.
    pub fn new(coeffs: [f64; 5]) -> Result<Self, CoreError> {
        if coeffs.iter().any(|c| !c.is_finite()) {
            return Err(CoreError::params("Quartic", "coefficients must be finite"));
        }
        Ok(QuarticModel { coeffs })
    }

    /// Ascending coefficients `[c₀, c₁, c₂, c₃, c₄]`.
    #[must_use]
    pub fn coeffs(&self) -> [f64; 5] {
        self.coeffs
    }

    fn polynomial(&self) -> Polynomial {
        Polynomial::new(self.coeffs.to_vec())
    }
}

impl ResilienceModel for QuarticModel {
    fn name(&self) -> &'static str {
        "Quartic"
    }

    fn params(&self) -> Vec<f64> {
        self.coeffs.to_vec()
    }

    fn predict(&self, t: f64) -> f64 {
        // Horner.
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * t + c)
    }

    fn predict_into(&self, ts: &[f64], out: &mut [f64]) {
        assert_eq!(
            ts.len(),
            out.len(),
            "predict_into requires ts and out of equal length"
        );
        for (o, &t) in out.iter_mut().zip(ts) {
            *o = self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * t + c);
        }
    }

    fn area(&self, a: f64, b: f64) -> Result<f64, CoreError> {
        if !(a <= b) || !a.is_finite() || !b.is_finite() {
            return Err(CoreError::arg(
                "QuarticModel::area",
                format!("need finite a <= b, got [{a}, {b}]"),
            ));
        }
        Ok(self.polynomial().integral(a, b))
    }
}

/// The [`ModelFamily`] for [`QuarticModel`]: unconstrained, seeded by
/// polynomial OLS (which is already the global least-squares optimum —
/// the optimizer then has nothing left to do, making this family
/// essentially a linear fit in the same pipeline).
#[derive(Debug, Clone, Copy, Default)]
pub struct QuarticFamily;

impl ModelFamily for QuarticFamily {
    fn name(&self) -> &'static str {
        "Quartic"
    }

    fn n_params(&self) -> usize {
        5
    }

    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        assert_eq!(internal.len(), 5, "QuarticFamily expects 5 internal params");
        internal.to_vec()
    }

    fn internal_to_params_into(&self, internal: &[f64], out: &mut [f64]) {
        assert_eq!(internal.len(), 5, "QuarticFamily expects 5 internal params");
        out.copy_from_slice(internal);
    }

    fn predict_params_into(&self, params: &[f64], ts: &[f64], out: &mut [f64]) -> bool {
        assert_eq!(
            ts.len(),
            out.len(),
            "predict_params_into requires ts and out of equal length"
        );
        if params.len() != 5 || params.iter().any(|c| !c.is_finite()) {
            return false;
        }
        for (o, &t) in out.iter_mut().zip(ts) {
            *o = params.iter().rev().fold(0.0, |acc, &c| acc * t + c);
        }
        true
    }

    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        if params.len() != 5 {
            return Err(CoreError::params("Quartic", "expected 5 parameters"));
        }
        Ok(params.to_vec())
    }

    fn build(&self, params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        if params.len() != 5 {
            return Err(CoreError::params("Quartic", "expected 5 parameters"));
        }
        Ok(Box::new(QuarticModel::new([
            params[0], params[1], params[2], params[3], params[4],
        ])?))
    }

    fn initial_guesses(&self, series: &PerformanceSeries) -> Vec<Vec<f64>> {
        let mut guesses = Vec::new();
        if let Some(c) = super::polynomial_ols(series, 4) {
            guesses.push(c);
        }
        // Flat fallback.
        guesses.push(vec![series.nominal(), 0.0, 0.0, 0.0, 0.0]);
        guesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_finite() {
        assert!(QuarticModel::new([1.0, f64::NAN, 0.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn horner_matches_naive() {
        let m = QuarticModel::new([1.0, -0.5, 0.25, -0.125, 0.0625]).unwrap();
        for &t in &[-1.0_f64, 0.0, 0.5, 2.0] {
            let naive = 1.0 - 0.5 * t + 0.25 * t * t - 0.125 * t.powi(3) + 0.0625 * t.powi(4);
            assert!((m.predict(t) - naive).abs() < 1e-12);
        }
    }

    #[test]
    fn area_matches_quadrature() {
        let m = QuarticModel::new([1.0, -0.02, 0.002, -5e-5, 4e-7]).unwrap();
        let analytic = m.area(0.0, 40.0).unwrap();
        let numeric =
            resilience_math::quad::adaptive_simpson(|t| m.predict(t), 0.0, 40.0, 1e-12, 40)
                .unwrap();
        assert!((analytic - numeric).abs() < 1e-8);
    }

    #[test]
    fn can_express_two_troughs() {
        // P(t) with minima near t = 1 and t = 3: derivative ∝ (t−1)(t−2)(t−3).
        // ∫ 4(t−1)(t−2)(t−3) dt = t⁴ − 8t³ + 22t² − 24t (+ c).
        let m = QuarticModel::new([1.0, -0.24, 0.22, -0.08, 0.01]).unwrap();
        let p1 = m.predict(1.0);
        let p2 = m.predict(2.0);
        let p3 = m.predict(3.0);
        assert!(p1 < p2 && p3 < p2, "W shape: {p1}, {p2}, {p3}");
    }

    #[test]
    fn family_ols_seed_is_global_optimum() {
        // Noiseless quartic data: the OLS guess reproduces it exactly.
        let coeffs = [1.0, -0.04, 0.003, -6e-5, 4e-7];
        let truth = QuarticModel::new(coeffs).unwrap();
        let values: Vec<f64> = (0..48).map(|i| truth.predict(i as f64)).collect();
        let s = PerformanceSeries::monthly("w", values).unwrap();
        let guesses = QuarticFamily.initial_guesses(&s);
        let g = &guesses[0];
        for (got, want) in g.iter().zip(coeffs) {
            assert!((got - want).abs() < 1e-6, "{g:?}");
        }
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let fam = QuarticFamily;
        let internal = [1.0, -0.24, 0.22, -0.08, 0.01];
        let mut params = [0.0; 5];
        fam.internal_to_params_into(&internal, &mut params);
        assert_eq!(params.to_vec(), fam.internal_to_params(&internal));

        let ts = [0.0, 1.0, 2.5, 4.0];
        let mut out = [f64::NAN; 4];
        assert!(fam.predict_params_into(&params, &ts, &mut out));
        let model = fam.build(&params).unwrap();
        assert_eq!(out.to_vec(), model.predict_many(&ts));

        assert!(!fam.predict_params_into(&[1.0, f64::NAN, 0.0, 0.0, 0.0], &ts, &mut out));
    }

    #[test]
    fn family_identity_transform() {
        let fam = QuarticFamily;
        let p = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(fam.internal_to_params(&p), p);
        assert_eq!(fam.params_to_internal(&p).unwrap(), p);
        assert!(fam.params_to_internal(&[1.0]).is_err());
    }
}
