//! The competing-risks bathtub model (paper Eq. 4–6).

use crate::model::{ModelFamily, ResilienceModel, SSE_BATCH_WIDTH};
use crate::CoreError;
use resilience_data::PerformanceSeries;
use resilience_math::linalg::Matrix;
use resilience_math::sum::CompensatedSum;

/// Competing-risks resilience curve `P(t) = 2γt + α/(1 + βt)` with
/// `α, β, γ > 0` — the Hjorth (1980) bathtub hazard adopted by the
/// paper's Eq. 4.
///
/// The decreasing Pareto-like term `α/(1+βt)` models degradation easing
/// off while the linear term `2γt` models recovery taking over; the sum
/// can express increasing, decreasing, near-constant, and bathtub shapes,
/// which is why the paper finds it the more flexible of its two bathtub
/// forms.
///
/// # Examples
///
/// ```
/// use resilience_core::bathtub::CompetingRisksModel;
/// use resilience_core::ResilienceModel;
///
/// let m = CompetingRisksModel::new(1.0, 0.2, 0.005)?;
/// assert!((m.predict(0.0) - 1.0).abs() < 1e-12);   // P(0) = α
/// assert!(m.is_bathtub());
/// # Ok::<(), resilience_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompetingRisksModel {
    alpha: f64,
    beta: f64,
    gamma: f64,
}

impl CompetingRisksModel {
    /// Creates a competing-risks model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameters`] unless all three
    /// parameters are finite and positive.
    pub fn new(alpha: f64, beta: f64, gamma: f64) -> Result<Self, CoreError> {
        for (name, v) in [("α", alpha), ("β", beta), ("γ", gamma)] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(CoreError::params(
                    "CompetingRisks",
                    format!("need {name} > 0 and finite, got {v}"),
                ));
            }
        }
        Ok(CompetingRisksModel { alpha, beta, gamma })
    }

    /// The initial level `α = P(0)`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The degradation decay rate `β`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Half the recovery slope `γ` (the linear term is `2γt`).
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Whether the curve is bathtub-shaped (initially decreasing):
    /// `P'(0) = 2γ − αβ < 0`.
    #[must_use]
    pub fn is_bathtub(&self) -> bool {
        2.0 * self.gamma < self.alpha * self.beta
    }

    /// Closed-form trough location: `P'(t) = 2γ − αβ/(1+βt)² = 0` gives
    /// `t_d = (√(αβ/(2γ)) − 1)/β`, or 0 when the curve is monotone
    /// increasing.
    #[must_use]
    pub fn trough(&self) -> f64 {
        if !self.is_bathtub() {
            return 0.0;
        }
        ((self.alpha * self.beta / (2.0 * self.gamma)).sqrt() - 1.0) / self.beta
    }

    /// Minimum performance `P(t_d)`.
    #[must_use]
    pub fn minimum(&self) -> f64 {
        self.predict_inner(self.trough())
    }

    /// Closed-form recovery time (paper Eq. 5): the post-trough time at
    /// which `P(t) = level`, i.e. the larger root of
    /// `2βγ·t² + (2γ − level·β)·t + (α − level) = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoSolution`] when `level` is below the curve
    /// minimum.
    pub fn recovery_time(&self, level: f64) -> Result<f64, CoreError> {
        let (a, b, g) = (self.alpha, self.beta, self.gamma);
        // Discriminant of the quadratic above — identical to Eq. 5's
        // β²L² + 4βγL − 8αβγ + 4γ².
        let disc = b * b * level * level + 4.0 * b * g * level - 8.0 * a * b * g + 4.0 * g * g;
        if disc < 0.0 {
            return Err(CoreError::no_solution(
                "CompetingRisksModel::recovery_time",
                format!(
                    "level {level} is below the curve minimum {}",
                    self.minimum()
                ),
            ));
        }
        let t = (level * b - 2.0 * g + disc.sqrt()) / (4.0 * b * g);
        if t < 0.0 {
            return Err(CoreError::no_solution(
                "CompetingRisksModel::recovery_time",
                format!("recovery root {t} is negative"),
            ));
        }
        Ok(t)
    }

    fn predict_inner(&self, t: f64) -> f64 {
        2.0 * self.gamma * t + self.alpha / (1.0 + self.beta * t)
    }

    /// Allocation-free mirror of the `new` constraints, used by the
    /// fitting hot path.
    fn feasible(alpha: f64, beta: f64, gamma: f64) -> bool {
        alpha > 0.0
            && alpha.is_finite()
            && beta > 0.0
            && beta.is_finite()
            && gamma > 0.0
            && gamma.is_finite()
    }

    /// Antiderivative (paper Eq. 6): `γt² + (α/β)·ln(1+βt)`.
    fn antiderivative(&self, t: f64) -> f64 {
        self.gamma * t * t + (self.alpha / self.beta) * (1.0 + self.beta * t).ln()
    }
}

impl ResilienceModel for CompetingRisksModel {
    fn name(&self) -> &'static str {
        "Competing Risks"
    }

    fn params(&self) -> Vec<f64> {
        vec![self.alpha, self.beta, self.gamma]
    }

    fn predict(&self, t: f64) -> f64 {
        self.predict_inner(t)
    }

    fn predict_into(&self, ts: &[f64], out: &mut [f64]) {
        assert_eq!(
            ts.len(),
            out.len(),
            "predict_into requires ts and out of equal length"
        );
        for (o, &t) in out.iter_mut().zip(ts) {
            *o = 2.0 * self.gamma * t + self.alpha / (1.0 + self.beta * t);
        }
    }

    /// Closed-form area (paper Eq. 6) between the endpoints.
    fn area(&self, a: f64, b: f64) -> Result<f64, CoreError> {
        if !(a <= b) || !a.is_finite() || !b.is_finite() {
            return Err(CoreError::arg(
                "CompetingRisksModel::area",
                format!("need finite a <= b, got [{a}, {b}]"),
            ));
        }
        if 1.0 + self.beta * a <= 0.0 {
            return Err(CoreError::arg(
                "CompetingRisksModel::area",
                format!("lower endpoint {a} is outside the model domain t > −1/β"),
            ));
        }
        Ok(self.antiderivative(b) - self.antiderivative(a))
    }

    fn trough_time(&self, a: f64, b: f64) -> Result<f64, CoreError> {
        if !(a < b) {
            return Err(CoreError::arg(
                "CompetingRisksModel::trough_time",
                format!("need a < b, got [{a}, {b}]"),
            ));
        }
        Ok(self.trough().clamp(a, b))
    }

    fn time_to_recover(&self, level: f64, from: f64, horizon: f64) -> Result<f64, CoreError> {
        let t = self.recovery_time(level)?;
        if t < from {
            return Ok(from);
        }
        if t > horizon {
            return Err(CoreError::no_solution(
                "CompetingRisksModel::time_to_recover",
                format!("recovery at t = {t} is beyond horizon {horizon}"),
            ));
        }
        Ok(t)
    }
}

/// The [`ModelFamily`] for [`CompetingRisksModel`].
///
/// Internal parameterization: `[ln α, ln β, ln γ]` (all-positive region).
#[derive(Debug, Clone, Copy, Default)]
pub struct CompetingRisksFamily;

impl ModelFamily for CompetingRisksFamily {
    fn name(&self) -> &'static str {
        "Competing Risks"
    }

    fn n_params(&self) -> usize {
        3
    }

    fn internal_to_params(&self, internal: &[f64]) -> Vec<f64> {
        assert_eq!(
            internal.len(),
            3,
            "CompetingRisksFamily expects 3 internal params"
        );
        internal.iter().map(|v| v.exp()).collect()
    }

    fn internal_to_params_into(&self, internal: &[f64], out: &mut [f64]) {
        assert_eq!(
            internal.len(),
            3,
            "CompetingRisksFamily expects 3 internal params"
        );
        assert_eq!(
            out.len(),
            3,
            "CompetingRisksFamily writes 3 external params"
        );
        for (o, v) in out.iter_mut().zip(internal) {
            *o = v.exp();
        }
    }

    fn predict_params_into(&self, params: &[f64], ts: &[f64], out: &mut [f64]) -> bool {
        if params.len() != 3 || !CompetingRisksModel::feasible(params[0], params[1], params[2]) {
            return false;
        }
        let model = CompetingRisksModel {
            alpha: params[0],
            beta: params[1],
            gamma: params[2],
        };
        model.predict_into(ts, out);
        true
    }

    /// Hand-derived partials through the all-log internal map
    /// `θ_j = e^{u_j}` (so `∂θ_j/∂u_j = θ_j`):
    ///
    /// * `∂P/∂u₀ = α/(1+βt)`
    /// * `∂P/∂u₁ = −αβt/(1+βt)²`
    /// * `∂P/∂u₂ = 2γt`
    fn predict_jacobian_into(
        &self,
        internal: &[f64],
        params: &[f64],
        ts: &[f64],
        out: &mut Matrix,
    ) -> bool {
        if internal.len() != 3
            || params.len() != 3
            || !CompetingRisksModel::feasible(params[0], params[1], params[2])
        {
            return false;
        }
        let (alpha, beta, gamma) = (params[0], params[1], params[2]);
        let two_gamma = 2.0 * gamma;
        for (i, &t) in ts.iter().enumerate() {
            let denom = 1.0 + beta * t;
            out[(i, 0)] = alpha / denom;
            out[(i, 1)] = -alpha * beta * t / (denom * denom);
            out[(i, 2)] = two_gamma * t;
        }
        true
    }

    fn sse_batch_into(&self, internals: &[f64], ts: &[f64], ys: &[f64], out: &mut [f64]) -> bool {
        const W: usize = SSE_BATCH_WIDTH;
        assert_eq!(
            internals.len(),
            3 * out.len(),
            "CompetingRisksFamily::sse_batch_into: internals.len() must be 3 * out.len()"
        );
        assert_eq!(ts.len(), ys.len(), "sse_batch_into: ts/ys length mismatch");
        for (chunk_idx, chunk) in out.chunks_mut(W).enumerate() {
            let base = chunk_idx * W;
            let k = chunk.len();
            // SoA lanes (see QuadraticFamily::sse_batch_into).
            let mut alphas = [0.0; W];
            let mut betas = [0.0; W];
            let mut gammas = [0.0; W];
            let mut live = [false; W];
            for i in 0..k {
                let u = &internals[(base + i) * 3..(base + i) * 3 + 3];
                // Identical arithmetic to `internal_to_params_into`.
                let (alpha, beta, gamma) = (u[0].exp(), u[1].exp(), u[2].exp());
                alphas[i] = alpha;
                betas[i] = beta;
                gammas[i] = gamma;
                live[i] = CompetingRisksModel::feasible(alpha, beta, gamma);
            }
            let mut sums = [CompensatedSum::new(); W];
            let mut finite = [true; W];
            for (&t, &y) in ts.iter().zip(ys) {
                for i in 0..k {
                    // Same association as the scalar `predict_into`.
                    let pred = 2.0 * gammas[i] * t + alphas[i] / (1.0 + betas[i] * t);
                    if !pred.is_finite() {
                        finite[i] = false;
                    }
                    let d = y - pred;
                    sums[i].add(d * d);
                }
            }
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = if live[i] && finite[i] {
                    sums[i].value()
                } else {
                    f64::INFINITY
                };
            }
        }
        true
    }

    fn params_to_internal(&self, params: &[f64]) -> Result<Vec<f64>, CoreError> {
        if params.len() != 3 {
            return Err(CoreError::params("CompetingRisks", "expected 3 parameters"));
        }
        CompetingRisksModel::new(params[0], params[1], params[2])?;
        Ok(params.iter().map(|v| v.ln()).collect())
    }

    fn build(&self, params: &[f64]) -> Result<Box<dyn ResilienceModel>, CoreError> {
        if params.len() != 3 {
            return Err(CoreError::params("CompetingRisks", "expected 3 parameters"));
        }
        Ok(Box::new(CompetingRisksModel::new(
            params[0], params[1], params[2],
        )?))
    }

    fn initial_guesses(&self, series: &PerformanceSeries) -> Vec<Vec<f64>> {
        let nominal = series.nominal().max(1e-6);
        let t_end = series.times()[series.len() - 1].max(1.0);
        let mut guesses = Vec::new();
        if let Some((t_d, p_d)) = series.trough() {
            // Recovery slope from trough to the end of the data.
            let end_val = series.values()[series.len() - 1];
            let slope = ((end_val - p_d) / (t_end - t_d).max(1.0)).max(1e-6);
            let gamma = 0.5 * slope;
            // β from the trough equation (1+βt_d)² = αβ/(2γ), solved on a
            // coarse grid (closed form is messy; the optimizer refines).
            for beta in [0.02, 0.05, 0.1, 0.2, 0.5, 1.0] {
                guesses.push(vec![nominal, beta, gamma.max(1e-8)]);
            }
        }
        // Generic fallbacks spanning decay scales.
        guesses.push(vec![nominal, 0.1, 0.1 * nominal / t_end]);
        guesses.push(vec![nominal, 1.0, 0.01 * nominal / t_end]);
        guesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CompetingRisksModel {
        // Bathtub: αβ = 0.2 > 2γ = 0.01.
        CompetingRisksModel::new(1.0, 0.2, 0.005).unwrap()
    }

    #[test]
    fn constructor_requires_positive_parameters() {
        assert!(CompetingRisksModel::new(0.0, 0.1, 0.1).is_err());
        assert!(CompetingRisksModel::new(1.0, -0.1, 0.1).is_err());
        assert!(CompetingRisksModel::new(1.0, 0.1, 0.0).is_err());
        assert!(CompetingRisksModel::new(f64::NAN, 0.1, 0.1).is_err());
    }

    #[test]
    fn predict_form() {
        let m = model();
        for &t in &[0.0, 1.0, 10.0, 47.0] {
            let want = 2.0 * 0.005 * t + 1.0 / (1.0 + 0.2 * t);
            assert!((m.predict(t) - want).abs() < 1e-15);
        }
        assert_eq!(m.predict(0.0), 1.0);
    }

    #[test]
    fn bathtub_detection_and_trough() {
        let m = model();
        assert!(m.is_bathtub());
        // t_d = (√(αβ/2γ) − 1)/β = (√20 − 1)/0.2.
        let want = (20f64.sqrt() - 1.0) / 0.2;
        assert!((m.trough() - want).abs() < 1e-10);
        // Verify it's a genuine minimum.
        let td = m.trough();
        assert!(m.predict(td) < m.predict(td - 1.0));
        assert!(m.predict(td) < m.predict(td + 1.0));
        // Monotone case: 2γ >= αβ.
        let mono = CompetingRisksModel::new(1.0, 0.01, 0.1).unwrap();
        assert!(!mono.is_bathtub());
        assert_eq!(mono.trough(), 0.0);
    }

    #[test]
    fn recovery_time_closed_form_eq5() {
        let m = model();
        let level = 0.9;
        let t = m.recovery_time(level).unwrap();
        assert!(t > m.trough(), "recovery is after the trough");
        assert!(
            (m.predict(t) - level).abs() < 1e-10,
            "P({t}) = {}",
            m.predict(t)
        );
        // Unreachable level.
        assert!(m.recovery_time(0.1).is_err());
    }

    #[test]
    fn area_closed_form_eq6_matches_quadrature() {
        let m = model();
        let analytic = m.area(0.0, 47.0).unwrap();
        let numeric =
            resilience_math::quad::adaptive_simpson(|t| m.predict(t), 0.0, 47.0, 1e-12, 40)
                .unwrap();
        assert!((analytic - numeric).abs() < 1e-8);
        assert!(m.area(5.0, 1.0).is_err());
    }

    #[test]
    fn time_to_recover_window_logic() {
        let m = model();
        let t = m.recovery_time(0.95).unwrap();
        assert!((m.time_to_recover(0.95, 0.0, 100.0).unwrap() - t).abs() < 1e-12);
        assert_eq!(m.time_to_recover(0.95, t + 5.0, 100.0).unwrap(), t + 5.0);
        assert!(m.time_to_recover(0.95, 0.0, t - 1.0).is_err());
    }

    #[test]
    fn family_roundtrip() {
        let fam = CompetingRisksFamily;
        let params = vec![1.03, 0.17, 0.0042];
        let internal = fam.params_to_internal(&params).unwrap();
        let back = fam.internal_to_params(&internal);
        for (a, b) in params.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(fam.params_to_internal(&[1.0, -0.1, 0.1]).is_err());
    }

    #[test]
    fn family_internal_always_feasible() {
        let fam = CompetingRisksFamily;
        for &a in &[-10.0, 0.0, 5.0] {
            let p = fam.internal_to_params(&[a, -a, a / 2.0]);
            assert!(CompetingRisksModel::new(p[0], p[1], p[2]).is_ok());
        }
    }

    #[test]
    fn initial_guesses_feasible() {
        let s = resilience_data::recessions::Recession::R1990_93.payroll_index();
        let fam = CompetingRisksFamily;
        let guesses = fam.initial_guesses(&s);
        assert!(guesses.len() >= 3);
        for g in &guesses {
            assert!(
                CompetingRisksModel::new(g[0], g[1], g[2]).is_ok(),
                "infeasible guess {g:?}"
            );
        }
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let fam = CompetingRisksFamily;
        let internal = [0.01_f64, -1.6, -5.3];
        let mut params = [0.0; 3];
        fam.internal_to_params_into(&internal, &mut params);
        assert_eq!(params.to_vec(), fam.internal_to_params(&internal));

        let ts = [0.0, 3.0, 11.0, 40.0];
        let mut out = [f64::NAN; 4];
        assert!(fam.predict_params_into(&params, &ts, &mut out));
        let model = fam.build(&params).unwrap();
        assert_eq!(out.to_vec(), model.predict_many(&ts));

        assert!(!fam.predict_params_into(&[1.0, -0.1, 0.1], &ts, &mut out));
        assert!(!fam.predict_params_into(&[1.0, 0.1], &ts, &mut out));
    }

    #[test]
    fn name_and_params() {
        let m = model();
        assert_eq!(m.name(), "Competing Risks");
        assert_eq!(m.params(), vec![1.0, 0.2, 0.005]);
    }
}
