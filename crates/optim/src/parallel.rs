//! Deterministic fan-out over OS threads.
//!
//! The fitting pipeline parallelizes three embarrassingly parallel loops:
//! multi-start optimization (over starts), model ranking (over families)
//! and bootstrap bands (over replicates). All three go through
//! [`run_indexed`], which runs a job-per-index closure on a scoped thread
//! pool and returns results **in index order** — so any reduction over
//! the output is independent of scheduling, and parallel results are
//! bit-identical to serial ones.
//!
//! The pool is `std`-only (`std::thread::scope`), keeping the workspace
//! hermetic: no rayon, no crates.io.

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads a parallel loop may use.
///
/// Every parallel entry point in the workspace takes one of these;
/// `Serial` is guaranteed to produce bit-identical results to `Auto` and
/// `Fixed(n)` for any `n`, because each job is independent and the
/// reduction happens in index order after all jobs finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use [`std::thread::available_parallelism`] threads (falling back
    /// to 1 when it is unavailable).
    #[default]
    Auto,
    /// Use exactly `n` worker threads. `Fixed(0)` is a degenerate request
    /// ("zero workers") and normalizes to [`Parallelism::Serial`]; see
    /// [`Parallelism::normalized`].
    Fixed(usize),
    /// Run on the calling thread without spawning.
    Serial,
}

impl Parallelism {
    /// Canonicalizes degenerate values: `Fixed(0)` — a request for zero
    /// worker threads — becomes `Serial` (run on the calling thread);
    /// everything else is returned unchanged. Every consumer in the
    /// workspace goes through this, so `Fixed(0)` can never reach a
    /// thread-count computation as a raw zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use resilience_optim::Parallelism;
    /// assert_eq!(Parallelism::Fixed(0).normalized(), Parallelism::Serial);
    /// assert_eq!(Parallelism::Fixed(3).normalized(), Parallelism::Fixed(3));
    /// assert_eq!(Parallelism::Auto.normalized(), Parallelism::Auto);
    /// ```
    #[must_use]
    pub fn normalized(self) -> Parallelism {
        match self {
            Parallelism::Fixed(0) => Parallelism::Serial,
            other => other,
        }
    }

    /// Number of worker threads to use for `jobs` independent jobs.
    ///
    /// Never exceeds `jobs` and never returns 0.
    ///
    /// # Examples
    ///
    /// ```
    /// use resilience_optim::Parallelism;
    /// assert_eq!(Parallelism::Serial.threads_for(8), 1);
    /// assert_eq!(Parallelism::Fixed(4).threads_for(8), 4);
    /// assert_eq!(Parallelism::Fixed(4).threads_for(2), 2);
    /// assert!(Parallelism::Auto.threads_for(8) >= 1);
    /// ```
    #[must_use]
    pub fn threads_for(&self, jobs: usize) -> usize {
        let cap = match self.normalized() {
            Parallelism::Serial => 1,
            Parallelism::Fixed(n) => n,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        };
        cap.min(jobs).max(1)
    }
}

/// Runs `job(0..jobs)` and returns the results in index order.
///
/// Jobs are dispatched to a scoped thread pool via an atomic work
/// counter, so heterogeneous job costs balance automatically; the output
/// ordering (and therefore any deterministic reduction over it) does not
/// depend on the thread count or scheduling. With one thread (or one
/// job) everything runs on the calling thread.
///
/// Panics in `job` propagate to the caller once the scope joins. Use
/// [`run_indexed_catch`] to isolate panics per job instead.
pub fn run_indexed<T, F>(parallelism: Parallelism, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = parallelism.threads_for(jobs);
    if threads <= 1 {
        return (0..jobs).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    // One slot per job: threads write disjoint slots, so the per-slot
    // mutexes are never contended.
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let value = job(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker pool ran every job")
        })
        .collect()
}

/// A job that panicked inside [`run_indexed_catch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the job that panicked.
    pub index: usize,
    /// The panic payload, if it was a string (the common case for
    /// `panic!`/`assert!`); otherwise a fixed placeholder.
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`run_indexed`], but a panic in one job is confined to that job.
///
/// Each job runs under [`std::panic::catch_unwind`]; a panicking job
/// yields `Err(JobPanic)` in its slot while every other job still runs
/// and returns its result. Output stays in index order, so the
/// serial/parallel bit-identity guarantee of [`run_indexed`] carries
/// over — including which jobs fail.
///
/// The closure is wrapped in [`AssertUnwindSafe`]: jobs here are pure
/// functions of their index over shared *read-only* state, so there is no
/// partially-mutated state to observe after a panic.
pub fn run_indexed_catch<T, F>(
    parallelism: Parallelism,
    jobs: usize,
    job: F,
) -> Vec<Result<T, JobPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed(parallelism, jobs, |i| {
        catch_unwind(AssertUnwindSafe(|| job(i))).map_err(|payload| JobPanic {
            index: i,
            message: panic_message(payload),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_one_thread() {
        assert_eq!(Parallelism::Serial.threads_for(100), 1);
    }

    #[test]
    fn fixed_is_capped_by_jobs_and_floored_at_one() {
        assert_eq!(Parallelism::Fixed(8).threads_for(3), 3);
        assert_eq!(Parallelism::Fixed(0).threads_for(3), 1);
        assert_eq!(Parallelism::Fixed(2).threads_for(0), 1);
    }

    #[test]
    fn auto_is_at_least_one() {
        assert!(Parallelism::Auto.threads_for(16) >= 1);
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    fn results_are_in_index_order() {
        for p in [
            Parallelism::Serial,
            Parallelism::Fixed(2),
            Parallelism::Fixed(7),
            Parallelism::Auto,
        ] {
            let out = run_indexed(p, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<usize> = run_indexed(Parallelism::Auto, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // A job with uneven cost per index; every parallelism level must
        // produce the identical vector.
        let job = |i: usize| -> f64 {
            let mut acc = i as f64;
            for k in 0..(i % 13) * 100 {
                acc = (acc + k as f64).sin() + i as f64;
            }
            acc
        };
        let serial = run_indexed(Parallelism::Serial, 40, job);
        for threads in [1, 2, 3, 4, 8] {
            let parallel = run_indexed(Parallelism::Fixed(threads), 40, job);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn non_send_free_jobs_can_borrow_environment() {
        let data: Vec<u64> = (0..50).map(|i| i * 3).collect();
        let out = run_indexed(Parallelism::Fixed(4), data.len(), |i| data[i] + 1);
        assert_eq!(out[49], 49 * 3 + 1);
    }

    #[test]
    fn fixed_zero_normalizes_to_serial() {
        assert_eq!(Parallelism::Fixed(0).normalized(), Parallelism::Serial);
        assert_eq!(Parallelism::Fixed(1).normalized(), Parallelism::Fixed(1));
        assert_eq!(Parallelism::Serial.normalized(), Parallelism::Serial);
        assert_eq!(Parallelism::Auto.normalized(), Parallelism::Auto);
        // And the normalized form drives scheduling: zero workers means
        // "run on the calling thread", not a panic or a zero thread count.
        assert_eq!(Parallelism::Fixed(0).threads_for(10), 1);
        let out = run_indexed(Parallelism::Fixed(0), 5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    fn silence_panics<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn catch_isolates_panicking_jobs() {
        for p in [Parallelism::Serial, Parallelism::Fixed(3)] {
            let out = silence_panics(|| {
                run_indexed_catch(p, 6, |i| {
                    if i == 2 {
                        panic!("boom at {i}");
                    }
                    i * 10
                })
            });
            assert_eq!(out.len(), 6);
            for (i, r) in out.iter().enumerate() {
                if i == 2 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, 2);
                    assert_eq!(e.message, "boom at 2");
                    assert_eq!(e.to_string(), "job 2 panicked: boom at 2");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10);
                }
            }
        }
    }

    #[test]
    fn catch_reports_non_string_payloads() {
        let out = silence_panics(|| {
            run_indexed_catch(Parallelism::Serial, 1, |_| -> usize {
                std::panic::panic_any(42_i32)
            })
        });
        assert_eq!(
            out[0].as_ref().unwrap_err().message,
            "non-string panic payload"
        );
    }

    #[test]
    fn catch_matches_run_indexed_when_nothing_panics() {
        let plain = run_indexed(Parallelism::Fixed(2), 20, |i| i * i);
        let caught = run_indexed_catch(Parallelism::Fixed(2), 20, |i| i * i);
        let caught: Vec<usize> = caught.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(plain, caught);
    }
}
