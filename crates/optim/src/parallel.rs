//! Deterministic fan-out over OS threads.
//!
//! The fitting pipeline parallelizes three embarrassingly parallel loops:
//! multi-start optimization (over starts), model ranking (over families)
//! and bootstrap bands (over replicates). All three go through
//! [`run_indexed`], which runs a job-per-index closure on a scoped thread
//! pool and returns results **in index order** — so any reduction over
//! the output is independent of scheduling, and parallel results are
//! bit-identical to serial ones.
//!
//! The pool is `std`-only (`std::thread::scope`), keeping the workspace
//! hermetic: no rayon, no crates.io.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads a parallel loop may use.
///
/// Every parallel entry point in the workspace takes one of these;
/// `Serial` is guaranteed to produce bit-identical results to `Auto` and
/// `Fixed(n)` for any `n`, because each job is independent and the
/// reduction happens in index order after all jobs finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use [`std::thread::available_parallelism`] threads (falling back
    /// to 1 when it is unavailable).
    #[default]
    Auto,
    /// Use exactly `n` worker threads (`Fixed(0)` is treated as `Fixed(1)`).
    Fixed(usize),
    /// Run on the calling thread without spawning.
    Serial,
}

impl Parallelism {
    /// Number of worker threads to use for `jobs` independent jobs.
    ///
    /// Never exceeds `jobs` and never returns 0.
    ///
    /// # Examples
    ///
    /// ```
    /// use resilience_optim::Parallelism;
    /// assert_eq!(Parallelism::Serial.threads_for(8), 1);
    /// assert_eq!(Parallelism::Fixed(4).threads_for(8), 4);
    /// assert_eq!(Parallelism::Fixed(4).threads_for(2), 2);
    /// assert!(Parallelism::Auto.threads_for(8) >= 1);
    /// ```
    #[must_use]
    pub fn threads_for(&self, jobs: usize) -> usize {
        let cap = match self {
            Parallelism::Serial => 1,
            Parallelism::Fixed(n) => (*n).max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        };
        cap.min(jobs).max(1)
    }
}

/// Runs `job(0..jobs)` and returns the results in index order.
///
/// Jobs are dispatched to a scoped thread pool via an atomic work
/// counter, so heterogeneous job costs balance automatically; the output
/// ordering (and therefore any deterministic reduction over it) does not
/// depend on the thread count or scheduling. With one thread (or one
/// job) everything runs on the calling thread.
///
/// Panics in `job` propagate to the caller once the scope joins.
pub fn run_indexed<T, F>(parallelism: Parallelism, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = parallelism.threads_for(jobs);
    if threads <= 1 {
        return (0..jobs).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    // One slot per job: threads write disjoint slots, so the per-slot
    // mutexes are never contended.
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let value = job(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker pool ran every job")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_one_thread() {
        assert_eq!(Parallelism::Serial.threads_for(100), 1);
    }

    #[test]
    fn fixed_is_capped_by_jobs_and_floored_at_one() {
        assert_eq!(Parallelism::Fixed(8).threads_for(3), 3);
        assert_eq!(Parallelism::Fixed(0).threads_for(3), 1);
        assert_eq!(Parallelism::Fixed(2).threads_for(0), 1);
    }

    #[test]
    fn auto_is_at_least_one() {
        assert!(Parallelism::Auto.threads_for(16) >= 1);
    }

    #[test]
    fn default_is_auto() {
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    fn results_are_in_index_order() {
        for p in [
            Parallelism::Serial,
            Parallelism::Fixed(2),
            Parallelism::Fixed(7),
            Parallelism::Auto,
        ] {
            let out = run_indexed(p, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<usize> = run_indexed(Parallelism::Auto, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // A job with uneven cost per index; every parallelism level must
        // produce the identical vector.
        let job = |i: usize| -> f64 {
            let mut acc = i as f64;
            for k in 0..(i % 13) * 100 {
                acc = (acc + k as f64).sin() + i as f64;
            }
            acc
        };
        let serial = run_indexed(Parallelism::Serial, 40, job);
        for threads in [1, 2, 3, 4, 8] {
            let parallel = run_indexed(Parallelism::Fixed(threads), 40, job);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn non_send_free_jobs_can_borrow_environment() {
        let data: Vec<u64> = (0..50).map(|i| i * 3).collect();
        let out = run_indexed(Parallelism::Fixed(4), data.len(), |i| data[i] + 1);
        assert_eq!(out[49], 49 * 3 + 1);
    }
}
