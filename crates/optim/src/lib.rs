//! Derivative-free and least-squares optimizers for the
//! `predictive-resilience` workspace.
//!
//! The paper fits every resilience model by least-squares estimation (its
//! Eq. 8). The Rust ecosystem offers no batteries-included nonlinear LSE
//! stack, so this crate implements the required machinery from scratch:
//!
//! * [`problem`] — objective and least-squares problem traits plus
//!   numerical differentiation (forward/central gradients, Jacobians).
//! * [`nelder_mead`] — the Nelder–Mead downhill simplex, the workspace's
//!   robust derivative-free workhorse.
//! * [`levenberg_marquardt`] — damped Gauss–Newton for fast local
//!   refinement of least-squares fits.
//! * [`scalar`] — golden-section and Brent minimization for 1-D
//!   subproblems (e.g. profiling a single parameter).
//! * [`bounds`] — smooth parameter transforms (log / logistic) that turn
//!   box-constrained fitting into unconstrained fitting; this is how the
//!   quadratic bathtub validity region `−2√(αγ) < β < 0` is enforced.
//! * [`multi_start`] — grid seeding and multi-start drivers that make the
//!   nonconvex fits reproducible without hand-tuned initial guesses.
//! * [`parallel`] — a `std`-only scoped thread pool ([`Parallelism`],
//!   [`parallel::run_indexed`]) whose index-ordered results make parallel
//!   runs bit-identical to serial ones, plus a panic-isolating variant
//!   ([`parallel::run_indexed_catch`]) for supervised fan-out.
//! * [`control`] — cooperative execution control ([`Control`],
//!   [`CancelToken`]): per-call deadlines and cancellation tokens that
//!   every iterative solver polls between iterations, turning runaway
//!   fits into typed [`OptimError::TimedOut`] / [`OptimError::Cancelled`]
//!   errors instead of hangs.
//! * [`differential_evolution`] / [`annealing`] — global optimizers used
//!   as slow-but-sure fallbacks and in ablation benches.
//!
//! # Examples
//!
//! Fitting a 2-parameter exponential decay with Nelder–Mead:
//!
//! ```
//! use resilience_optim::nelder_mead::{NelderMead, NelderMeadConfig};
//!
//! let data: Vec<(f64, f64)> = (0..20)
//!     .map(|i| {
//!         let t = i as f64;
//!         (t, 3.0 * (-0.25 * t).exp())
//!     })
//!     .collect();
//! let sse = |p: &[f64]| -> f64 {
//!     data.iter()
//!         .map(|&(t, y)| {
//!             let pred = p[0] * (-p[1] * t).exp();
//!             (y - pred) * (y - pred)
//!         })
//!         .sum()
//! };
//! let report = NelderMead::new(NelderMeadConfig::default())
//!     .minimize(&sse, &[1.0, 0.1])?;
//! assert!((report.params[0] - 3.0).abs() < 1e-4);
//! assert!((report.params[1] - 0.25).abs() < 1e-4);
//! # Ok::<(), resilience_optim::OptimError>(())
//! ```

// `!(x > 0.0)`-style comparisons are used deliberately throughout this
// crate: unlike `x <= 0.0`, they also reject NaN, which is exactly the
// validation semantics parameter checks need.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod annealing;
pub mod bounds;
pub mod control;
pub mod differential_evolution;
pub mod error;
pub mod levenberg_marquardt;
pub mod multi_start;
pub mod nelder_mead;
pub mod objective;
pub mod parallel;
pub mod problem;
pub mod report;
pub mod scalar;

pub use bounds::{ParamSpace, Transform};
pub use control::{CancelToken, Control, StopCause};
pub use error::OptimError;
pub use objective::Objective;
pub use parallel::{JobPanic, Parallelism};
pub use report::{OptimReport, TerminationReason};
