//! Cooperative cancellation and deadlines for the iteration loops.
//!
//! Every solver in this crate exposes a `*_with_control` entry point that
//! threads an [`Control`] through its iteration loop. The loop polls
//! [`Control::stop_cause`] at well-defined cancellation points — once per
//! simplex iteration, LM outer/inner step, DE generation, annealing step,
//! and multi-start start — and returns a typed
//! [`OptimError::TimedOut`]/[`OptimError::Cancelled`] instead of running
//! to its full budget. The check is allocation-free (one atomic load plus
//! one `Instant::now()` read), so the zero-allocation hot path of the
//! fitting pipeline is preserved.
//!
//! Cancellation is **cooperative**: a single objective evaluation that
//! never returns cannot be interrupted. The guarantee is that the solver
//! stops within one iteration (a bounded number of objective evaluations)
//! of the deadline or cancel signal.

// This module is the workspace's one sanctioned home for deadline
// wall-clock (`clippy.toml` bans `std::time::Instant` everywhere else):
// deadlines *gate* execution, they never flow into stored results.
#![allow(clippy::disallowed_types)]

use crate::OptimError;
use resilience_obs::{CounterId, Event, Observer, StopKind};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared flag for cooperative cancellation.
///
/// Cloning the token shares the flag: cancelling any clone cancels them
/// all. Typical use: the caller keeps one clone and hands another to a
/// long-running fit via [`Control::with_token`].
///
/// # Examples
///
/// ```
/// use resilience_optim::control::CancelToken;
/// let token = CancelToken::new();
/// let shared = token.clone();
/// assert!(!shared.is_cancelled());
/// token.cancel();
/// assert!(shared.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Signals cancellation to every clone of this token.
    ///
    /// Idempotent; there is no way to un-cancel.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a supervised run was stopped before completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// A [`CancelToken`] fired.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
}

impl StopCause {
    /// The matching typed error, carrying the evaluations consumed so far.
    #[must_use]
    pub fn into_error(self, evaluations: usize) -> OptimError {
        match self {
            StopCause::Cancelled => OptimError::Cancelled { evaluations },
            StopCause::DeadlineExceeded => OptimError::TimedOut { evaluations },
        }
    }

    /// The matching telemetry stop kind.
    #[must_use]
    pub fn stop_kind(self) -> StopKind {
        match self {
            StopCause::Cancelled => StopKind::Cancelled,
            StopCause::DeadlineExceeded => StopKind::Deadline,
        }
    }
}

impl std::fmt::Display for StopCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopCause::Cancelled => write!(f, "cancelled"),
            StopCause::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// Execution control for one solver call: an optional cancel token plus
/// an optional wall-clock deadline.
///
/// The default ([`Control::unbounded`]) never stops anything, so legacy
/// entry points delegate to the `*_with_control` variants at zero cost.
///
/// # Examples
///
/// ```
/// use resilience_optim::control::{CancelToken, Control};
/// use std::time::Duration;
///
/// let token = CancelToken::new();
/// let control = Control::with_deadline(Duration::from_millis(50)).token(&token);
/// assert!(control.stop_cause().is_none());
/// token.cancel();
/// assert!(control.stop_cause().is_some());
/// ```
#[derive(Clone, Default)]
pub struct Control {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    /// Telemetry sink. `None` means unobserved — [`Control::observe`]
    /// stores `None` for disabled sinks (e.g. `NullObserver`), so the
    /// observed-with-a-null-sink path is byte-for-byte the unobserved one.
    observer: Option<Arc<dyn Observer>>,
}

impl std::fmt::Debug for Control {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Control")
            .field("cancel", &self.cancel)
            .field("deadline", &self.deadline)
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

impl Control {
    /// A control that never stops the run.
    #[must_use]
    pub fn unbounded() -> Self {
        Control::default()
    }

    /// A control whose deadline is `budget` from now.
    ///
    /// A budget so large that the deadline overflows `Instant` is treated
    /// as unbounded.
    #[must_use]
    pub fn with_deadline(budget: Duration) -> Self {
        Control::unbounded().deadline_in(budget)
    }

    /// A control driven by `token`.
    #[must_use]
    pub fn with_token(token: &CancelToken) -> Self {
        Control::unbounded().token(token)
    }

    /// Sets the deadline to `budget` from now (builder style).
    #[must_use]
    pub fn deadline_in(mut self, budget: Duration) -> Self {
        self.deadline = Instant::now().checked_add(budget);
        self
    }

    /// Attaches a cancel token (builder style).
    #[must_use]
    pub fn token(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// A copy of this control whose deadline is the *earlier* of the
    /// existing one and `budget` from now. The cancel token (if any) is
    /// shared. This is how a supervisor gives each sub-task its own time
    /// budget without ever extending the caller's overall deadline.
    #[must_use]
    pub fn narrowed(&self, budget: Duration) -> Control {
        let new = Instant::now().checked_add(budget);
        Control {
            cancel: self.cancel.clone(),
            deadline: match (self.deadline, new) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
            observer: self.observer.clone(),
        }
    }

    /// Whether this control can never stop a run.
    #[must_use]
    pub fn is_unbounded(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none()
    }

    /// Polls the stop condition: cancellation first, then the deadline.
    ///
    /// Allocation-free: one atomic load and one monotonic clock read.
    #[must_use]
    pub fn stop_cause(&self) -> Option<StopCause> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(StopCause::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopCause::DeadlineExceeded);
            }
        }
        None
    }

    /// Attaches a telemetry sink (builder style).
    ///
    /// A disabled sink (one whose [`Observer::enabled`] returns `false`,
    /// i.e. `NullObserver`) is stored as *no* sink, so instrumented code
    /// sees [`Control::observed`] `== false` and skips event construction
    /// and per-job buffering entirely — the null-observed hot path is the
    /// unobserved hot path.
    #[must_use]
    pub fn observe(mut self, observer: Arc<dyn Observer>) -> Self {
        self.observer = observer.enabled().then_some(observer);
        self
    }

    /// A copy of this control with its sink replaced by `observer` (same
    /// token and deadline). This is how parallel stages give each job its
    /// own recording buffer for index-ordered replay.
    #[must_use]
    pub fn with_observer(&self, observer: Arc<dyn Observer>) -> Control {
        self.clone().observe(observer)
    }

    /// A copy of this control that keeps only the sink: no token, no
    /// deadline. Used by pipeline stages that must run to completion (e.g.
    /// the bootstrap base fit) but should still be traced.
    #[must_use]
    pub fn observer_only(&self) -> Control {
        Control {
            cancel: None,
            deadline: None,
            observer: self.observer.clone(),
        }
    }

    /// A copy of this control that keeps the token and deadline but drops
    /// the sink: the dual of [`Control::observer_only`]. The chaos
    /// harness uses this to model observer write failures — the fit still
    /// runs (and still stops on deadline/cancel), but its telemetry is
    /// lost for the rest of the job.
    #[must_use]
    pub fn unobserved(&self) -> Control {
        Control {
            cancel: self.cancel.clone(),
            deadline: self.deadline,
            observer: None,
        }
    }

    /// Whether an enabled telemetry sink is attached.
    ///
    /// Instrumented code checks this once per span and skips telemetry
    /// work when `false`.
    #[must_use]
    pub fn observed(&self) -> bool {
        self.observer.is_some()
    }

    /// The attached sink, if any.
    #[must_use]
    pub fn observer(&self) -> Option<&Arc<dyn Observer>> {
        self.observer.as_ref()
    }

    /// Records `event` into the attached sink (no-op when unobserved).
    pub fn emit(&self, event: Event) {
        if let Some(observer) = &self.observer {
            observer.record(&event);
        }
    }

    /// Records a counter increment, skipping zero deltas (no-op when
    /// unobserved). Solvers batch counts in plain integer locals and flush
    /// them here at termination.
    pub fn count(&self, id: CounterId, delta: u64) {
        if delta > 0 {
            self.emit(Event::Counter { id, delta });
        }
    }

    /// Polls the stop condition and, on a stop, emits a telemetry stop
    /// event (tagged `deadline_exceeded` / `cancelled`, carrying the
    /// evaluations consumed so far as its logical clock) before returning
    /// the typed error.
    ///
    /// This is the solvers' cancellation point: allocation-free on the
    /// continue path.
    pub fn check_stop(&self, scope: &'static str, evaluations: usize) -> Result<(), OptimError> {
        match self.stop_cause() {
            None => Ok(()),
            Some(cause) => {
                self.emit(Event::Stop {
                    scope,
                    kind: cause.stop_kind(),
                    evaluations: evaluations as u64,
                });
                Err(cause.into_error(evaluations))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_stops() {
        let c = Control::unbounded();
        assert!(c.is_unbounded());
        assert!(c.stop_cause().is_none());
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let control = Control::with_token(&token);
        assert!(!control.is_unbounded());
        assert!(control.stop_cause().is_none());
        token.cancel();
        assert_eq!(control.stop_cause(), Some(StopCause::Cancelled));
        // Idempotent.
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn expired_deadline_stops() {
        let control = Control::with_deadline(Duration::ZERO);
        assert_eq!(control.stop_cause(), Some(StopCause::DeadlineExceeded));
    }

    #[test]
    fn generous_deadline_does_not_stop() {
        let control = Control::with_deadline(Duration::from_secs(3600));
        assert!(control.stop_cause().is_none());
    }

    #[test]
    fn cancellation_takes_precedence_over_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let control = Control::with_deadline(Duration::ZERO).token(&token);
        assert_eq!(control.stop_cause(), Some(StopCause::Cancelled));
    }

    #[test]
    fn huge_budget_saturates_to_unbounded_deadline() {
        let control = Control::with_deadline(Duration::MAX);
        // The deadline overflowed and was dropped; only the (absent)
        // token can stop this run.
        assert!(control.stop_cause().is_none());
    }

    #[test]
    fn narrowed_takes_the_earlier_deadline_and_keeps_the_token() {
        // Narrowing an unbounded control installs the budget.
        let c = Control::unbounded().narrowed(Duration::ZERO);
        assert_eq!(c.stop_cause(), Some(StopCause::DeadlineExceeded));
        // Narrowing cannot extend an already-expired deadline.
        let c = Control::with_deadline(Duration::ZERO).narrowed(Duration::from_secs(3600));
        assert_eq!(c.stop_cause(), Some(StopCause::DeadlineExceeded));
        // The token is shared, not copied by value.
        let token = CancelToken::new();
        let c = Control::with_token(&token).narrowed(Duration::from_secs(3600));
        assert!(c.stop_cause().is_none());
        token.cancel();
        assert_eq!(c.stop_cause(), Some(StopCause::Cancelled));
    }

    #[test]
    fn null_observer_is_stored_as_unobserved() {
        use resilience_obs::{NullObserver, RecordingObserver};
        let c = Control::unbounded().observe(Arc::new(NullObserver));
        assert!(!c.observed());
        let c = Control::unbounded().observe(Arc::new(RecordingObserver::new()));
        assert!(c.observed());
    }

    #[test]
    fn check_stop_emits_a_stop_event_with_the_logical_clock() {
        use resilience_obs::{Event, RecordingObserver, StopKind};
        let rec = Arc::new(RecordingObserver::new());
        let token = CancelToken::new();
        token.cancel();
        let c = Control::with_token(&token).observe(rec.clone());
        assert!(matches!(
            c.check_stop("unit_test", 42),
            Err(OptimError::Cancelled { evaluations: 42 })
        ));
        assert_eq!(
            rec.take(),
            vec![Event::Stop {
                scope: "unit_test",
                kind: StopKind::Cancelled,
                evaluations: 42
            }]
        );
        // The continue path emits nothing.
        let c = Control::unbounded().observe(rec.clone());
        assert!(c.check_stop("unit_test", 1).is_ok());
        assert!(rec.is_empty());
    }

    #[test]
    fn count_skips_zero_deltas() {
        use resilience_obs::{CounterId, RecordingObserver};
        let rec = Arc::new(RecordingObserver::new());
        let c = Control::unbounded().observe(rec.clone());
        c.count(CounterId::ObjectiveEvals, 0);
        assert!(rec.is_empty());
        c.count(CounterId::ObjectiveEvals, 5);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn observer_only_strips_token_and_deadline_but_keeps_the_sink() {
        use resilience_obs::RecordingObserver;
        let token = CancelToken::new();
        token.cancel();
        let c = Control::with_deadline(Duration::ZERO)
            .token(&token)
            .observe(Arc::new(RecordingObserver::new()));
        let inner = c.observer_only();
        assert!(inner.stop_cause().is_none());
        assert!(inner.observed());
    }

    #[test]
    fn narrowed_and_with_observer_carry_the_sink() {
        use resilience_obs::RecordingObserver;
        let rec = Arc::new(RecordingObserver::new());
        let c = Control::unbounded().observe(rec.clone());
        assert!(c.narrowed(Duration::from_secs(1)).observed());
        let swapped = c.with_observer(Arc::new(RecordingObserver::new()));
        swapped.emit(resilience_obs::Event::StartBegan { index: 0 });
        // The original sink did not receive the swapped control's event.
        assert!(rec.is_empty());
    }

    #[test]
    fn stop_cause_maps_to_typed_errors() {
        assert!(matches!(
            StopCause::DeadlineExceeded.into_error(7),
            OptimError::TimedOut { evaluations: 7 }
        ));
        assert!(matches!(
            StopCause::Cancelled.into_error(3),
            OptimError::Cancelled { evaluations: 3 }
        ));
    }
}
