//! Error type for the optimizers.

use resilience_math::MathError;
use std::fmt;

/// Errors produced by `resilience-optim`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimError {
    /// A configuration value was invalid (e.g. non-positive tolerance,
    /// empty parameter vector).
    InvalidConfig {
        /// The offending option.
        what: &'static str,
        /// Human-readable description.
        detail: String,
    },
    /// The objective returned NaN/∞ at the initial point, so no descent
    /// direction exists.
    BadStartingPoint {
        /// Objective value observed.
        value: f64,
    },
    /// The optimizer exhausted its evaluation budget before converging.
    /// The best point found so far is carried so callers can decide
    /// whether to accept it.
    BudgetExhausted {
        /// Best parameters at the time of failure.
        best_params: Vec<f64>,
        /// Best objective value at the time of failure.
        best_value: f64,
        /// Evaluations consumed.
        evaluations: usize,
    },
    /// Every restart of a multi-start run failed.
    AllStartsFailed {
        /// Number of starts attempted.
        attempts: usize,
    },
    /// A wall-clock deadline passed at a cooperative cancellation point
    /// (see [`crate::control`]) before the run finished.
    TimedOut {
        /// Objective evaluations consumed before the stop.
        evaluations: usize,
    },
    /// A [`crate::control::CancelToken`] fired at a cooperative
    /// cancellation point before the run finished.
    Cancelled {
        /// Objective evaluations consumed before the stop.
        evaluations: usize,
    },
    /// An underlying numerical routine failed (e.g. singular normal
    /// equations in Levenberg–Marquardt).
    Numerical(MathError),
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::InvalidConfig { what, detail } => {
                write!(f, "invalid configuration for {what}: {detail}")
            }
            OptimError::BadStartingPoint { value } => {
                write!(f, "objective is non-finite at the starting point ({value})")
            }
            OptimError::BudgetExhausted {
                best_value,
                evaluations,
                ..
            } => write!(
                f,
                "evaluation budget exhausted after {evaluations} evaluations (best value {best_value:e})"
            ),
            OptimError::AllStartsFailed { attempts } => {
                write!(f, "all {attempts} multi-start attempts failed")
            }
            OptimError::TimedOut { evaluations } => write!(
                f,
                "deadline exceeded after {evaluations} objective evaluations"
            ),
            OptimError::Cancelled { evaluations } => {
                write!(f, "cancelled after {evaluations} objective evaluations")
            }
            OptimError::Numerical(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for OptimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptimError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for OptimError {
    fn from(e: MathError) -> Self {
        OptimError::Numerical(e)
    }
}

impl OptimError {
    /// Convenience constructor for [`OptimError::InvalidConfig`].
    pub fn config(what: &'static str, detail: impl Into<String>) -> Self {
        OptimError::InvalidConfig {
            what,
            detail: detail.into(),
        }
    }

    /// Whether this error came from a cooperative stop (deadline or
    /// cancellation) rather than a genuine optimization failure.
    #[must_use]
    pub fn is_stop(&self) -> bool {
        matches!(
            self,
            OptimError::TimedOut { .. } | OptimError::Cancelled { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OptimError::config("tol", "must be positive")
            .to_string()
            .contains("tol"));
        assert!(OptimError::BadStartingPoint { value: f64::NAN }
            .to_string()
            .contains("non-finite"));
        assert!(OptimError::AllStartsFailed { attempts: 5 }
            .to_string()
            .contains('5'));
        assert!(OptimError::TimedOut { evaluations: 12 }
            .to_string()
            .contains("deadline"));
        assert!(OptimError::Cancelled { evaluations: 12 }
            .to_string()
            .contains("cancelled"));
    }

    #[test]
    fn stop_errors_are_classified() {
        assert!(OptimError::TimedOut { evaluations: 1 }.is_stop());
        assert!(OptimError::Cancelled { evaluations: 1 }.is_stop());
        assert!(!OptimError::AllStartsFailed { attempts: 1 }.is_stop());
        assert!(!OptimError::config("x", "y").is_stop());
    }

    #[test]
    fn budget_exhausted_carries_best() {
        let e = OptimError::BudgetExhausted {
            best_params: vec![1.0, 2.0],
            best_value: 0.5,
            evaluations: 100,
        };
        if let OptimError::BudgetExhausted { best_params, .. } = &e {
            assert_eq!(best_params.len(), 2);
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn from_math_error() {
        use std::error::Error;
        let e = OptimError::from(MathError::domain("f", "x"));
        assert!(e.source().is_some());
    }
}
