//! Differential evolution: a population-based global optimizer.
//!
//! Used as the slow-but-thorough fallback when local fits disagree across
//! starts, and in the ablation benches comparing global vs multi-start
//! local optimization on the resilience SSE surfaces.

use crate::control::Control;
use crate::objective::Objective;
use crate::report::{OptimReport, TerminationReason};
use crate::OptimError;
use resilience_obs::{CounterId, Event, SolverKind};
use resilience_stats::rng::RandomSource;
use std::cell::Cell;

/// Configuration for [`differential_evolution`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeConfig {
    /// Population size (≥ 4; default `10 × dims`, capped at 64, applied
    /// when left at 0).
    pub population: usize,
    /// Differential weight `F ∈ (0, 2]`.
    pub weight: f64,
    /// Crossover probability `CR ∈ [0, 1]`.
    pub crossover: f64,
    /// Maximum number of generations.
    pub max_generations: usize,
    /// Convergence tolerance on the population's objective spread.
    pub f_tol: f64,
}

impl Default for DeConfig {
    fn default() -> Self {
        DeConfig {
            population: 0,
            weight: 0.8,
            crossover: 0.9,
            max_generations: 300,
            f_tol: 1e-12,
        }
    }
}

/// Minimizes `f` over the box `bounds` (per-coordinate `(lo, hi)`) with
/// DE/rand/1/bin.
///
/// Non-finite objective values are treated as `+∞`.
///
/// # Errors
///
/// * [`OptimError::InvalidConfig`] for empty/invalid bounds or bad
///   configuration.
/// * [`OptimError::AllStartsFailed`] when the entire initial population is
///   infeasible (objective non-finite everywhere sampled).
///
/// # Examples
///
/// ```
/// use resilience_optim::differential_evolution::{differential_evolution, DeConfig};
/// use resilience_stats::XorShift64;
///
/// let mut rng = XorShift64::new(42);
/// let f = |p: &[f64]| (p[0] - 1.0).powi(2) + (p[1] + 2.0).powi(2);
/// let report = differential_evolution(
///     &f,
///     &[(-10.0, 10.0), (-10.0, 10.0)],
///     &DeConfig::default(),
///     &mut rng,
/// )?;
/// assert!((report.params[0] - 1.0).abs() < 1e-3);
/// assert!((report.params[1] + 2.0).abs() < 1e-3);
/// # Ok::<(), resilience_optim::OptimError>(())
/// ```
pub fn differential_evolution<F, R>(
    f: &F,
    bounds: &[(f64, f64)],
    config: &DeConfig,
    rng: &mut R,
) -> Result<OptimReport, OptimError>
where
    F: Objective,
    R: RandomSource + ?Sized,
{
    differential_evolution_with_control(f, bounds, config, rng, &Control::unbounded())
}

/// [`differential_evolution`] under an execution [`Control`].
///
/// Each generation (and each member of the initial population) is a
/// cooperative cancellation point.
///
/// # Errors
///
/// Everything [`differential_evolution`] returns, plus
/// [`OptimError::TimedOut`] / [`OptimError::Cancelled`] on a stop.
pub fn differential_evolution_with_control<F, R>(
    f: &F,
    bounds: &[(f64, f64)],
    config: &DeConfig,
    rng: &mut R,
    control: &Control,
) -> Result<OptimReport, OptimError>
where
    F: Objective,
    R: RandomSource + ?Sized,
{
    if bounds.is_empty() {
        return Err(OptimError::config(
            "differential_evolution",
            "no bounds given",
        ));
    }
    for (i, &(lo, hi)) in bounds.iter().enumerate() {
        if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(OptimError::config(
                "differential_evolution",
                format!("bound {i} is invalid: ({lo}, {hi})"),
            ));
        }
    }
    if !(config.weight > 0.0 && config.weight <= 2.0) {
        return Err(OptimError::config(
            "differential_evolution",
            "weight must be in (0, 2]",
        ));
    }
    if !(0.0..=1.0).contains(&config.crossover) {
        return Err(OptimError::config(
            "differential_evolution",
            "crossover must be in [0, 1]",
        ));
    }
    if config.max_generations == 0 {
        return Err(OptimError::config(
            "differential_evolution",
            "max_generations must be > 0",
        ));
    }
    let dims = bounds.len();
    let pop_size = if config.population == 0 {
        (10 * dims).clamp(8, 64)
    } else if config.population < 4 {
        return Err(OptimError::config(
            "differential_evolution",
            "population must be >= 4",
        ));
    } else {
        config.population
    };

    let clamp = |x: f64, i: usize| x.clamp(bounds[i].0, bounds[i].1);
    // Behind a Cell (not `mut`) so the cancellation points below can read
    // the count while `eval` is live.
    let evaluations = Cell::new(0usize);
    let eval = |x: &[f64]| -> f64 {
        evaluations.set(evaluations.get() + 1);
        let v = f.eval(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };

    // Initial population uniform over the box, evaluated in one batch so
    // objectives with a vectorized batch path are amortized.
    let mut population: Vec<Vec<f64>> = (0..pop_size)
        .map(|_| {
            bounds
                .iter()
                .map(|&(lo, hi)| lo + (hi - lo) * rng.next_f64())
                .collect()
        })
        .collect();
    control.check_stop("differential_evolution", evaluations.get())?;
    let mut packed = vec![0.0; pop_size * dims];
    for (chunk, p) in packed.chunks_exact_mut(dims).zip(&population) {
        chunk.copy_from_slice(p);
    }
    let mut fitness = vec![0.0; pop_size];
    evaluations.set(evaluations.get() + pop_size);
    f.eval_batch(&packed, dims, &mut fitness);
    for v in &mut fitness {
        if !v.is_finite() {
            *v = f64::INFINITY;
        }
    }
    if fitness.iter().all(|v| v.is_infinite()) {
        return Err(OptimError::AllStartsFailed { attempts: pop_size });
    }

    let observed = control.observed();
    let mut generations = 0usize;
    let mut termination = TerminationReason::MaxIterations;
    let mut trial = vec![0.0; dims];
    for _gen in 0..config.max_generations {
        control.check_stop("differential_evolution", evaluations.get())?;
        generations += 1;
        for i in 0..pop_size {
            // Pick three distinct indices != i.
            let mut pick = || loop {
                let k = rng.next_index(pop_size);
                if k != i {
                    return k;
                }
            };
            let (a, b, c) = {
                let a = pick();
                let mut b = pick();
                while b == a {
                    b = pick();
                }
                let mut c = pick();
                while c == a || c == b {
                    c = pick();
                }
                (a, b, c)
            };
            let forced = rng.next_index(dims);
            for j in 0..dims {
                trial[j] = if j == forced || rng.next_f64() < config.crossover {
                    clamp(
                        population[a][j] + config.weight * (population[b][j] - population[c][j]),
                        j,
                    )
                } else {
                    population[i][j]
                };
            }
            let ft = eval(&trial);
            if ft <= fitness[i] {
                population[i].copy_from_slice(&trial);
                fitness[i] = ft;
            }
        }
        let best = fitness.iter().cloned().fold(f64::INFINITY, f64::min);
        if observed {
            control.emit(Event::Iteration {
                solver: SolverKind::DifferentialEvolution,
                iteration: generations as u64,
                evaluations: evaluations.get() as u64,
                best,
            });
        }
        let worst_finite = fitness
            .iter()
            .cloned()
            .filter(|v| v.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        if worst_finite.is_finite()
            && (worst_finite - best).abs() <= config.f_tol * (1.0 + best.abs())
        {
            termination = TerminationReason::Converged;
            break;
        }
    }

    let (best_idx, &best_val) = fitness
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .expect("population is non-empty");
    if observed {
        control.emit(Event::Converged {
            solver: SolverKind::DifferentialEvolution,
            iterations: generations as u64,
            evaluations: evaluations.get() as u64,
            value: best_val,
            reason: termination.exit_reason(),
        });
        control.count(CounterId::ObjectiveEvals, evaluations.get() as u64);
    }
    Ok(OptimReport {
        params: population[best_idx].clone(),
        value: best_val,
        iterations: generations,
        evaluations: evaluations.get(),
        termination,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_stats::XorShift64;

    fn rng() -> XorShift64 {
        XorShift64::new(1234)
    }

    #[test]
    fn solves_sphere() {
        let f = |p: &[f64]| p.iter().map(|x| x * x).sum::<f64>();
        let r = differential_evolution(
            &f,
            &[(-5.0, 5.0), (-5.0, 5.0), (-5.0, 5.0)],
            &DeConfig::default(),
            &mut rng(),
        )
        .unwrap();
        assert!(r.value < 1e-6, "value = {}", r.value);
    }

    #[test]
    fn escapes_local_minima_of_rastrigin_like() {
        // 1-D Rastrigin on [-5.12, 5.12]: global min 0 at 0.
        let f = |p: &[f64]| {
            let x = p[0];
            10.0 + x * x - 10.0 * (2.0 * std::f64::consts::PI * x).cos()
        };
        let r = differential_evolution(
            &f,
            &[(-5.12, 5.12)],
            &DeConfig {
                population: 40,
                max_generations: 800,
                ..DeConfig::default()
            },
            &mut rng(),
        )
        .unwrap();
        assert!(r.params[0].abs() < 0.01, "x = {}", r.params[0]);
        assert!(r.value < 0.1);
    }

    #[test]
    fn respects_bounds() {
        // Minimum of (x−10)² over [−1, 1] is at the boundary x = 1.
        let f = |p: &[f64]| (p[0] - 10.0).powi(2);
        let r =
            differential_evolution(&f, &[(-1.0, 1.0)], &DeConfig::default(), &mut rng()).unwrap();
        assert!(r.params[0] <= 1.0 && r.params[0] >= -1.0);
        assert!((r.params[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let f = |p: &[f64]| p[0];
        let mut r = rng();
        assert!(differential_evolution(&f, &[], &DeConfig::default(), &mut r).is_err());
        assert!(differential_evolution(&f, &[(1.0, 0.0)], &DeConfig::default(), &mut r).is_err());
        let bad = DeConfig {
            weight: 3.0,
            ..DeConfig::default()
        };
        assert!(differential_evolution(&f, &[(0.0, 1.0)], &bad, &mut r).is_err());
        let bad2 = DeConfig {
            population: 2,
            ..DeConfig::default()
        };
        assert!(differential_evolution(&f, &[(0.0, 1.0)], &bad2, &mut r).is_err());
    }

    #[test]
    fn all_infeasible_population_errors() {
        let f = |_: &[f64]| f64::NAN;
        assert!(matches!(
            differential_evolution(&f, &[(0.0, 1.0)], &DeConfig::default(), &mut rng()),
            Err(OptimError::AllStartsFailed { .. })
        ));
    }

    #[test]
    fn expired_deadline_times_out() {
        use crate::control::Control;
        use std::time::Duration;
        let f = |p: &[f64]| (p[0] - 0.3).powi(2);
        assert!(matches!(
            differential_evolution_with_control(
                &f,
                &[(0.0, 1.0)],
                &DeConfig::default(),
                &mut rng(),
                &Control::with_deadline(Duration::ZERO)
            ),
            Err(OptimError::TimedOut { .. })
        ));
    }

    #[test]
    fn telemetry_traces_generations() {
        use resilience_obs::{Event, RecordingObserver, SolverKind};
        use std::sync::Arc;
        let f = |p: &[f64]| (p[0] - 0.3).powi(2);
        let rec = Arc::new(RecordingObserver::new());
        let control = Control::unbounded().observe(rec.clone());
        let report = differential_evolution_with_control(
            &f,
            &[(0.0, 1.0)],
            &DeConfig::default(),
            &mut rng(),
            &control,
        )
        .unwrap();
        let events = rec.take();
        let generations = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    Event::Iteration {
                        solver: SolverKind::DifferentialEvolution,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(generations, report.iterations);
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Converged {
                solver: SolverKind::DifferentialEvolution,
                ..
            }
        )));
    }

    #[test]
    fn deterministic_under_seed() {
        let f = |p: &[f64]| (p[0] - 0.3).powi(2);
        let r1 =
            differential_evolution(&f, &[(0.0, 1.0)], &DeConfig::default(), &mut rng()).unwrap();
        let r2 =
            differential_evolution(&f, &[(0.0, 1.0)], &DeConfig::default(), &mut rng()).unwrap();
        assert_eq!(r1.params, r2.params);
    }
}
