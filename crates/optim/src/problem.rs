//! Problem traits and numerical differentiation.

use crate::OptimError;
use resilience_math::linalg::Matrix;

/// A least-squares problem: a map from parameters to a residual vector
/// `r(θ)`, minimized as `‖r(θ)‖²`.
///
/// The resilience fitting layer implements this once per model: residuals
/// are `R(t_i) − P(t_i; θ)` exactly as in the paper's Eq. 8.
pub trait LeastSquares {
    /// Number of parameters.
    fn n_params(&self) -> usize;

    /// Number of residuals (observations).
    fn n_residuals(&self) -> usize;

    /// Writes the residual vector for `params` into `out`.
    ///
    /// Implementations may return non-finite entries to signal an invalid
    /// region; the optimizers treat such points as infinitely bad.
    fn residuals(&self, params: &[f64], out: &mut [f64]);

    /// Sum of squared residuals at `params`.
    fn sse(&self, params: &[f64]) -> f64 {
        let mut r = vec![0.0; self.n_residuals()];
        self.residuals(params, &mut r);
        r.iter().map(|v| v * v).sum()
    }

    /// Analytic Jacobian opt-in: writes `J[i][j] = ∂r_i/∂θ_j` into `out`
    /// and returns `Some(())`, or returns `None` when no closed form is
    /// available (the optimizers then fall back to [`forward_jacobian`]).
    ///
    /// `out` is an `n_residuals × n_params` matrix owned by the caller and
    /// reused across iterations; implementations must fill every entry.
    /// Entries may be non-finite to signal an invalid region — callers
    /// treat that exactly like a non-finite finite-difference probe.
    fn jacobian_into(&self, params: &[f64], out: &mut Matrix) -> Option<()> {
        let _ = (params, out);
        None
    }
}

/// A [`LeastSquares`] problem defined by closures, for quick construction
/// in examples and tests.
///
/// # Examples
///
/// ```
/// use resilience_optim::problem::{ClosureLeastSquares, LeastSquares};
/// let ts = vec![0.0, 1.0, 2.0];
/// let ys = vec![1.0, 0.5, 0.25];
/// let p = ClosureLeastSquares::new(1, ts.len(), move |params, out| {
///     for (i, (&t, &y)) in ts.iter().zip(&ys).enumerate() {
///         out[i] = y - (-params[0] * t).exp();
///     }
/// });
/// assert_eq!(p.n_params(), 1);
/// assert!(p.sse(&[std::f64::consts::LN_2]) < 1e-4);
/// ```
pub struct ClosureLeastSquares<F> {
    n_params: usize,
    n_residuals: usize,
    f: F,
}

impl<F: Fn(&[f64], &mut [f64])> ClosureLeastSquares<F> {
    /// Wraps a residual closure.
    pub fn new(n_params: usize, n_residuals: usize, f: F) -> Self {
        ClosureLeastSquares {
            n_params,
            n_residuals,
            f,
        }
    }
}

impl<F: Fn(&[f64], &mut [f64])> LeastSquares for ClosureLeastSquares<F> {
    fn n_params(&self) -> usize {
        self.n_params
    }

    fn n_residuals(&self) -> usize {
        self.n_residuals
    }

    fn residuals(&self, params: &[f64], out: &mut [f64]) {
        (self.f)(params, out);
    }
}

/// Central-difference gradient of a scalar objective.
///
/// Step size per coordinate is `ε·(1 + |x_i|)` with `ε = cbrt(machine ε)`,
/// the standard compromise between truncation and rounding error.
///
/// # Errors
///
/// Returns [`OptimError::BadStartingPoint`] when the objective is
/// non-finite at a probe point.
///
/// # Examples
///
/// ```
/// use resilience_optim::problem::central_gradient;
/// let f = |p: &[f64]| p[0] * p[0] + 3.0 * p[1];
/// let g = central_gradient(&f, &[2.0, 0.0])?;
/// assert!((g[0] - 4.0).abs() < 1e-6);
/// assert!((g[1] - 3.0).abs() < 1e-6);
/// # Ok::<(), resilience_optim::OptimError>(())
/// ```
pub fn central_gradient<F: Fn(&[f64]) -> f64>(f: &F, x: &[f64]) -> Result<Vec<f64>, OptimError> {
    let eps = f64::EPSILON.cbrt();
    let mut grad = vec![0.0; x.len()];
    let mut probe = x.to_vec();
    for i in 0..x.len() {
        let h = eps * (1.0 + x[i].abs());
        probe[i] = x[i] + h;
        let fp = f(&probe);
        probe[i] = x[i] - h;
        let fm = f(&probe);
        probe[i] = x[i];
        if !fp.is_finite() || !fm.is_finite() {
            return Err(OptimError::BadStartingPoint {
                value: if fp.is_finite() { fm } else { fp },
            });
        }
        grad[i] = (fp - fm) / (2.0 * h);
    }
    Ok(grad)
}

/// Forward-difference Jacobian of a least-squares problem: `J[i][j] =
/// ∂r_i/∂θ_j`.
///
/// Uses forward differences (one extra residual evaluation per parameter)
/// because LM re-evaluates the Jacobian every iteration and the fits here
/// are cheap but numerous.
///
/// # Errors
///
/// Returns [`OptimError::BadStartingPoint`] when residuals are non-finite
/// at the base point or a probe point.
pub fn forward_jacobian<P: LeastSquares + ?Sized>(
    problem: &P,
    params: &[f64],
) -> Result<Matrix, OptimError> {
    let m = problem.n_residuals();
    let n = problem.n_params();
    let mut base = vec![0.0; m];
    problem.residuals(params, &mut base);
    if base.iter().any(|v| !v.is_finite()) {
        return Err(OptimError::BadStartingPoint { value: f64::NAN });
    }
    let eps = f64::EPSILON.sqrt();
    let mut jac = Matrix::zeros(m, n);
    let mut probe_params = params.to_vec();
    let mut probe = vec![0.0; m];
    for j in 0..n {
        let h = eps * (1.0 + params[j].abs());
        probe_params[j] = params[j] + h;
        problem.residuals(&probe_params, &mut probe);
        probe_params[j] = params[j];
        if probe.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::BadStartingPoint { value: f64::NAN });
        }
        for i in 0..m {
            jac[(i, j)] = (probe[i] - base[i]) / h;
        }
    }
    Ok(jac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_problem_dimensions() {
        let p = ClosureLeastSquares::new(2, 3, |_, out| out.fill(1.0));
        assert_eq!(p.n_params(), 2);
        assert_eq!(p.n_residuals(), 3);
        assert_eq!(p.sse(&[0.0, 0.0]), 3.0);
    }

    #[test]
    fn gradient_of_quadratic_bowl() {
        let f = |p: &[f64]| (p[0] - 1.0).powi(2) + 2.0 * (p[1] + 3.0).powi(2);
        let g = central_gradient(&f, &[1.0, -3.0]).unwrap();
        assert!(g[0].abs() < 1e-7);
        assert!(g[1].abs() < 1e-7);
        let g2 = central_gradient(&f, &[2.0, -2.0]).unwrap();
        assert!((g2[0] - 2.0).abs() < 1e-6);
        assert!((g2[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_rejects_nan_objective() {
        let f = |p: &[f64]| if p[0] > 0.5 { f64::NAN } else { p[0] };
        assert!(central_gradient(&f, &[0.5]).is_err());
    }

    #[test]
    fn jacobian_of_linear_residuals_is_design_matrix() {
        // r_i = y_i − (a + b·t_i) ⇒ ∂r/∂a = −1, ∂r/∂b = −t_i.
        let ts = [0.0, 1.0, 2.0];
        let p = ClosureLeastSquares::new(2, 3, move |params, out| {
            for (i, &t) in ts.iter().enumerate() {
                out[i] = 5.0 - (params[0] + params[1] * t);
            }
        });
        let j = forward_jacobian(&p, &[0.0, 0.0]).unwrap();
        for i in 0..3 {
            assert!((j[(i, 0)] + 1.0).abs() < 1e-6);
            assert!((j[(i, 1)] + ts[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn jacobian_rejects_invalid_region() {
        let p = ClosureLeastSquares::new(1, 1, |params, out| {
            out[0] = if params[0] < 0.0 { f64::NAN } else { params[0] };
        });
        assert!(forward_jacobian(&p, &[-1.0]).is_err());
        assert!(forward_jacobian(&p, &[1.0]).is_ok());
    }

    #[test]
    fn sse_default_impl() {
        let p = ClosureLeastSquares::new(1, 2, |params, out| {
            out[0] = params[0];
            out[1] = 2.0 * params[0];
        });
        assert_eq!(p.sse(&[3.0]), 9.0 + 36.0);
    }
}
