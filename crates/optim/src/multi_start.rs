//! Grid seeding and multi-start drivers.
//!
//! The resilience fits are nonconvex (the mixture SSE surface in
//! particular has local minima corresponding to "all degradation" or "all
//! recovery" explanations). The paper does not describe its seeding; we
//! make fitting deterministic and robust by running the local optimizer
//! from a small grid or set of starts and keeping the best result.

use crate::control::Control;
use crate::nelder_mead::{NelderMead, NelderMeadConfig};
use crate::objective::Objective;
use crate::parallel::{run_indexed, Parallelism};
use crate::report::OptimReport;
use crate::OptimError;
use resilience_obs::{replay, Event, HistogramId, RecordingObserver};
use std::sync::Arc;

/// Generates a full-factorial grid of starting points.
///
/// `axes[i]` lists candidate values for coordinate `i`; the output is the
/// Cartesian product (row-major, first axis slowest).
///
/// # Errors
///
/// Returns [`OptimError::InvalidConfig`] when any axis is empty or the
/// grid would exceed `1_000_000` points.
///
/// # Examples
///
/// ```
/// use resilience_optim::multi_start::grid_points;
/// let grid = grid_points(&[vec![0.0, 1.0], vec![5.0, 6.0, 7.0]])?;
/// assert_eq!(grid.len(), 6);
/// assert_eq!(grid[0], vec![0.0, 5.0]);
/// assert_eq!(grid[5], vec![1.0, 7.0]);
/// # Ok::<(), resilience_optim::OptimError>(())
/// ```
pub fn grid_points(axes: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, OptimError> {
    if axes.is_empty() {
        return Err(OptimError::config("grid_points", "no axes given"));
    }
    let mut total = 1usize;
    for (i, axis) in axes.iter().enumerate() {
        if axis.is_empty() {
            return Err(OptimError::config(
                "grid_points",
                format!("axis {i} is empty"),
            ));
        }
        total = total.saturating_mul(axis.len());
        if total > 1_000_000 {
            return Err(OptimError::config(
                "grid_points",
                "grid exceeds 1,000,000 points",
            ));
        }
    }
    let mut out = Vec::with_capacity(total);
    let mut idx = vec![0usize; axes.len()];
    loop {
        out.push(idx.iter().zip(axes).map(|(&i, a)| a[i]).collect());
        // Odometer increment, last axis fastest.
        let mut k = axes.len();
        loop {
            if k == 0 {
                return Ok(out);
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < axes[k].len() {
                break;
            }
            idx[k] = 0;
        }
    }
}

/// Linearly spaced values, inclusive of both endpoints.
///
/// # Errors
///
/// Returns [`OptimError::InvalidConfig`] when `n == 0` or the endpoints
/// are not finite.
///
/// # Examples
///
/// ```
/// use resilience_optim::multi_start::linspace;
/// assert_eq!(linspace(0.0, 1.0, 3)?, vec![0.0, 0.5, 1.0]);
/// # Ok::<(), resilience_optim::OptimError>(())
/// ```
pub fn linspace(lo: f64, hi: f64, n: usize) -> Result<Vec<f64>, OptimError> {
    if n == 0 {
        return Err(OptimError::config("linspace", "n must be positive"));
    }
    if !lo.is_finite() || !hi.is_finite() {
        return Err(OptimError::config("linspace", "endpoints must be finite"));
    }
    if n == 1 {
        return Ok(vec![0.5 * (lo + hi)]);
    }
    let step = (hi - lo) / (n - 1) as f64;
    Ok((0..n).map(|i| lo + step * i as f64).collect())
}

/// Runs Nelder–Mead from every start and returns the best report.
///
/// Starts whose objective is non-finite are skipped; only if *every*
/// start fails does this error.
///
/// # Errors
///
/// * [`OptimError::InvalidConfig`] when `starts` is empty.
/// * [`OptimError::AllStartsFailed`] when no start produced a finite
///   optimum.
///
/// # Examples
///
/// ```
/// use resilience_optim::multi_start::multi_start_nelder_mead;
/// use resilience_optim::nelder_mead::NelderMeadConfig;
///
/// // Two-basin objective: global minimum at x = 3, local at x = -2.
/// let f = |p: &[f64]| {
///     let x = p[0];
///     ((x - 3.0) * (x + 2.0)).powi(2) + 0.1 * (x - 3.0).powi(2)
/// };
/// let starts = vec![vec![-3.0], vec![0.0], vec![4.0]];
/// let best = multi_start_nelder_mead(&f, &starts, &NelderMeadConfig::default())?;
/// assert!((best.params[0] - 3.0).abs() < 1e-4);
/// # Ok::<(), resilience_optim::OptimError>(())
/// ```
pub fn multi_start_nelder_mead<F: Objective>(
    f: &F,
    starts: &[Vec<f64>],
    config: &NelderMeadConfig,
) -> Result<OptimReport, OptimError> {
    if starts.is_empty() {
        return Err(OptimError::config(
            "multi_start_nelder_mead",
            "no starts given",
        ));
    }
    let optimizer = NelderMead::new(config.clone());
    let mut best: Option<OptimReport> = None;
    let mut failures = 0usize;
    for start in starts {
        match optimizer.minimize(f, start) {
            Ok(report) => {
                let better = match &best {
                    Some(b) => report.value < b.value,
                    None => true,
                };
                if better {
                    best = Some(report);
                }
            }
            Err(_) => failures += 1,
        }
    }
    best.ok_or(OptimError::AllStartsFailed { attempts: failures })
}

/// Parallel [`multi_start_nelder_mead`], bit-identical to the serial
/// driver for every thread count.
///
/// Because stateful objectives (e.g. ones carrying reusable scratch
/// buffers) are rarely `Sync`, this takes an objective *factory*: each
/// start invokes `make_objective()` for a private objective instance, so
/// the factory must be `Sync` but the objectives it makes need not be.
///
/// Every start is minimized independently; the winner is then reduced in
/// **start order** with a strict `value <` comparison, so ties keep the
/// earliest start — exactly the serial driver's first-best-wins rule —
/// and the result does not depend on scheduling.
///
/// # Errors
///
/// * [`OptimError::InvalidConfig`] when `starts` is empty.
/// * [`OptimError::AllStartsFailed`] when no start produced a finite
///   optimum.
///
/// # Examples
///
/// ```
/// use resilience_optim::multi_start::multi_start_nelder_mead_with;
/// use resilience_optim::nelder_mead::NelderMeadConfig;
/// use resilience_optim::Parallelism;
///
/// let make = || |p: &[f64]| (p[0] - 3.0_f64).powi(2);
/// let starts = vec![vec![-2.5], vec![0.5], vec![5.0]];
/// let best = multi_start_nelder_mead_with(
///     &make,
///     &starts,
///     &NelderMeadConfig::default(),
///     Parallelism::Auto,
/// )?;
/// assert!((best.params[0] - 3.0).abs() < 1e-4);
/// # Ok::<(), resilience_optim::OptimError>(())
/// ```
pub fn multi_start_nelder_mead_with<F, G>(
    make_objective: &G,
    starts: &[Vec<f64>],
    config: &NelderMeadConfig,
    parallelism: Parallelism,
) -> Result<OptimReport, OptimError>
where
    F: Objective,
    G: Fn() -> F + Sync,
{
    multi_start_nelder_mead_with_control(
        make_objective,
        starts,
        config,
        parallelism,
        &Control::unbounded(),
    )
}

/// [`multi_start_nelder_mead_with`] under an execution [`Control`].
///
/// The control is shared by every start: once the deadline passes or the
/// token fires, in-flight starts stop at their next iteration and pending
/// starts return immediately. A stopped run is reported as a typed error
/// — never as a silently partial "best of the starts that finished" — so
/// a timed-out fit is always distinguishable from a converged one.
///
/// # Errors
///
/// * [`OptimError::InvalidConfig`] when `starts` is empty.
/// * [`OptimError::TimedOut`] / [`OptimError::Cancelled`] when the
///   control stopped the run.
/// * [`OptimError::AllStartsFailed`] when no start produced a finite
///   optimum.
pub fn multi_start_nelder_mead_with_control<F, G>(
    make_objective: &G,
    starts: &[Vec<f64>],
    config: &NelderMeadConfig,
    parallelism: Parallelism,
    control: &Control,
) -> Result<OptimReport, OptimError>
where
    F: Objective,
    G: Fn() -> F + Sync,
{
    if starts.is_empty() {
        return Err(OptimError::config(
            "multi_start_nelder_mead",
            "no starts given",
        ));
    }
    let optimizer = NelderMead::new(config.clone());
    let observed = control.observed();
    // When observed, each start records into its own private buffer; the
    // buffers are replayed into the parent sink in start order below, so
    // the event log is byte-identical for every thread count.
    let results = run_indexed(parallelism, starts.len(), |i| {
        let f = make_objective();
        if observed {
            let rec = Arc::new(RecordingObserver::new());
            let sub = control.with_observer(rec.clone());
            sub.emit(Event::StartBegan { index: i as u32 });
            let result = optimizer.minimize_with_control(&f, &starts[i], &sub);
            if let Ok(report) = &result {
                sub.emit(Event::Hist {
                    id: HistogramId::EvalsPerStart,
                    value: report.evaluations as u64,
                });
                sub.emit(Event::Hist {
                    id: HistogramId::IterationsPerStart,
                    value: report.iterations as u64,
                });
            }
            (result, Some(rec.take()))
        } else {
            (
                optimizer.minimize_with_control(&f, &starts[i], control),
                None,
            )
        }
    });
    // Replay every buffer before the reduction: a stopped run propagates a
    // typed error below, and its trace (including the stop event) must
    // reach the sink first.
    if let Some(sink) = control.observer() {
        for (_, buffer) in &results {
            if let Some(events) = buffer {
                replay(events, sink.as_ref());
            }
        }
    }
    let mut best: Option<OptimReport> = None;
    let mut failures = 0usize;
    for (result, _) in results {
        match result {
            Ok(report) => {
                let better = match &best {
                    Some(b) => report.value < b.value,
                    None => true,
                };
                if better {
                    best = Some(report);
                }
            }
            // A stop is a property of the whole multi-start run, not of
            // one unlucky start: propagate it.
            Err(e) if e.is_stop() => return Err(e),
            Err(_) => failures += 1,
        }
    }
    best.ok_or(OptimError::AllStartsFailed { attempts: failures })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_cartesian_product() {
        let g = grid_points(&[vec![1.0, 2.0], vec![10.0]]).unwrap();
        assert_eq!(g, vec![vec![1.0, 10.0], vec![2.0, 10.0]]);
    }

    #[test]
    fn grid_rejects_bad_axes() {
        assert!(grid_points(&[]).is_err());
        assert!(grid_points(&[vec![], vec![1.0]]).is_err());
        // 101^3 > 1e6
        let big = vec![linspace(0.0, 1.0, 101).unwrap(); 3];
        assert!(grid_points(&big).is_err());
    }

    #[test]
    fn grid_three_axes_count_and_order() {
        let g = grid_points(&[vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0]]).unwrap();
        assert_eq!(g.len(), 8);
        assert_eq!(g[0], vec![0.0, 0.0, 0.0]);
        assert_eq!(g[1], vec![0.0, 0.0, 1.0]); // last axis fastest
        assert_eq!(g[7], vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn linspace_basics() {
        assert_eq!(
            linspace(0.0, 10.0, 5).unwrap(),
            vec![0.0, 2.5, 5.0, 7.5, 10.0]
        );
        assert_eq!(linspace(1.0, 3.0, 1).unwrap(), vec![2.0]);
        assert!(linspace(0.0, 1.0, 0).is_err());
        assert!(linspace(f64::NAN, 1.0, 2).is_err());
    }

    #[test]
    fn multi_start_escapes_local_minimum() {
        // f has a local min near x = -2 (value ≈ 2.5) and the global min
        // at x = 3 (value 0).
        let f = |p: &[f64]| {
            let x = p[0];
            ((x - 3.0) * (x + 2.0)).powi(2) + 0.1 * (x - 3.0).powi(2)
        };
        // A single start near the wrong basin converges locally…
        let local = NelderMead::new(NelderMeadConfig::default())
            .minimize(&f, &[-2.5])
            .unwrap();
        assert!((local.params[0] + 2.0).abs() < 0.2);
        // …but multi-start finds the global one.
        let starts = vec![vec![-2.5], vec![0.5], vec![5.0]];
        let best = multi_start_nelder_mead(&f, &starts, &NelderMeadConfig::default()).unwrap();
        assert!((best.params[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn multi_start_skips_bad_starts() {
        let f = |p: &[f64]| {
            if p[0] < 0.0 {
                f64::NAN
            } else {
                (p[0] - 1.0).powi(2)
            }
        };
        let starts = vec![vec![-5.0], vec![2.0]];
        let best = multi_start_nelder_mead(&f, &starts, &NelderMeadConfig::default()).unwrap();
        assert!((best.params[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn multi_start_all_failed() {
        let f = |_: &[f64]| f64::NAN;
        let starts = vec![vec![0.0], vec![1.0]];
        assert!(matches!(
            multi_start_nelder_mead(&f, &starts, &NelderMeadConfig::default()),
            Err(OptimError::AllStartsFailed { attempts: 2 })
        ));
    }

    #[test]
    fn multi_start_rejects_empty() {
        let f = |p: &[f64]| p[0];
        assert!(multi_start_nelder_mead(&f, &[], &NelderMeadConfig::default()).is_err());
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let f = |p: &[f64]| {
            let x = p[0];
            let y = p[1];
            (x - 3.0).powi(2) * (x + 2.0).powi(2) + (y + 1.0).powi(2) + 0.1 * x.sin()
        };
        let starts: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![f64::from(i) - 4.0, 0.3 * f64::from(i)])
            .collect();
        let cfg = NelderMeadConfig::default();
        let serial = multi_start_nelder_mead(&f, &starts, &cfg).unwrap();
        for p in [
            Parallelism::Serial,
            Parallelism::Fixed(1),
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            let par = multi_start_nelder_mead_with(&|| f, &starts, &cfg, p).unwrap();
            assert_eq!(par.params, serial.params, "{p:?}");
            assert_eq!(par.value, serial.value, "{p:?}");
            assert_eq!(par.evaluations, serial.evaluations, "{p:?}");
        }
    }

    #[test]
    fn parallel_tie_break_keeps_earliest_start() {
        // Both starts sit exactly at distinct global minima with the same
        // value; the earliest start must win regardless of thread count.
        let f = |p: &[f64]| (p[0] * p[0] - 1.0).powi(2);
        let starts = vec![vec![1.0], vec![-1.0]];
        for p in [
            Parallelism::Serial,
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
        ] {
            let best =
                multi_start_nelder_mead_with(&|| f, &starts, &NelderMeadConfig::default(), p)
                    .unwrap();
            assert!(best.params[0] > 0.0, "{p:?}: {:?}", best.params);
        }
    }

    #[test]
    fn parallel_all_failed_counts_attempts() {
        let make = || |_: &[f64]| f64::NAN;
        let starts = vec![vec![0.0], vec![1.0], vec![2.0]];
        assert!(matches!(
            multi_start_nelder_mead_with(
                &make,
                &starts,
                &NelderMeadConfig::default(),
                Parallelism::Fixed(2)
            ),
            Err(OptimError::AllStartsFailed { attempts: 3 })
        ));
    }

    #[test]
    fn stopped_multi_start_reports_timeout_not_all_starts_failed() {
        use crate::control::Control;
        use std::time::Duration;
        let make = || |p: &[f64]| (p[0] - 1.0).powi(2);
        let starts = vec![vec![0.0], vec![5.0], vec![-3.0]];
        let control = Control::with_deadline(Duration::ZERO);
        for p in [Parallelism::Serial, Parallelism::Fixed(2)] {
            assert!(matches!(
                multi_start_nelder_mead_with_control(
                    &make,
                    &starts,
                    &NelderMeadConfig::default(),
                    p,
                    &control
                ),
                Err(OptimError::TimedOut { .. })
            ));
        }
    }

    #[test]
    fn event_logs_are_identical_across_thread_counts() {
        use crate::control::Control;
        let make = || {
            |p: &[f64]| {
                let x = p[0];
                ((x - 3.0) * (x + 2.0)).powi(2) + 0.1 * (x - 3.0).powi(2)
            }
        };
        let starts: Vec<Vec<f64>> = (0..6).map(|i| vec![f64::from(i) - 3.0]).collect();
        let cfg = NelderMeadConfig::default();
        let trace = |parallelism: Parallelism| {
            let rec = Arc::new(RecordingObserver::new());
            let control = Control::unbounded().observe(rec.clone());
            multi_start_nelder_mead_with_control(&make, &starts, &cfg, parallelism, &control)
                .unwrap();
            rec.take()
        };
        let serial = trace(Parallelism::Serial);
        assert!(serial
            .iter()
            .any(|e| matches!(e, Event::StartBegan { index: 5 })));
        assert!(serial.iter().any(|e| matches!(
            e,
            Event::Hist {
                id: HistogramId::EvalsPerStart,
                ..
            }
        )));
        for p in [
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Auto,
        ] {
            assert_eq!(trace(p), serial, "{p:?}");
        }
    }

    #[test]
    fn stopped_run_still_replays_its_stop_events() {
        use crate::control::Control;
        use resilience_obs::StopKind;
        use std::time::Duration;
        let make = || |p: &[f64]| (p[0] - 1.0).powi(2);
        let starts = vec![vec![0.0], vec![5.0]];
        let rec = Arc::new(RecordingObserver::new());
        let control = Control::with_deadline(Duration::ZERO).observe(rec.clone());
        let result = multi_start_nelder_mead_with_control(
            &make,
            &starts,
            &NelderMeadConfig::default(),
            Parallelism::Fixed(2),
            &control,
        );
        assert!(matches!(result, Err(OptimError::TimedOut { .. })));
        let events = rec.take();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Stop {
                kind: StopKind::Deadline,
                ..
            }
        )));
    }

    #[test]
    fn parallel_objective_factories_may_carry_state() {
        // Each start gets a private, non-Sync objective (interior
        // mutability) — the pattern fit_least_squares uses for scratch
        // buffers.
        use std::cell::Cell;
        let make = || {
            let calls = Cell::new(0usize);
            move |p: &[f64]| {
                calls.set(calls.get() + 1);
                (p[0] - 2.0).powi(2)
            }
        };
        let starts = vec![vec![0.0], vec![4.0], vec![9.0]];
        let best = multi_start_nelder_mead_with(
            &make,
            &starts,
            &NelderMeadConfig::default(),
            Parallelism::Fixed(3),
        )
        .unwrap();
        assert!((best.params[0] - 2.0).abs() < 1e-5);
    }
}
