//! Nelder–Mead downhill simplex minimization.
//!
//! The derivative-free workhorse of the fitting pipeline: robust to the
//! noisy, occasionally non-finite objectives that arise when a resilience
//! model is probed near its validity boundary. Non-finite objective values
//! are treated as `+∞`, so the simplex simply contracts away from invalid
//! regions.

use crate::control::Control;
use crate::objective::Objective;
use crate::report::{OptimReport, TerminationReason};
use crate::OptimError;
use resilience_obs::{CounterId, Event, SolverKind};
use std::cell::Cell;

/// Configuration for [`NelderMead`].
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMeadConfig {
    /// Maximum number of iterations (each iteration is 1–`n+2`
    /// evaluations).
    pub max_iterations: usize,
    /// Convergence tolerance on the simplex's objective spread.
    pub f_tol: f64,
    /// Convergence tolerance on the simplex's coordinate spread.
    pub x_tol: f64,
    /// Relative size of the initial simplex around the starting point.
    pub initial_step: f64,
    /// Reflection coefficient (standard value 1).
    pub alpha: f64,
    /// Expansion coefficient (standard value 2).
    pub gamma: f64,
    /// Contraction coefficient (standard value 0.5).
    pub rho: f64,
    /// Shrink coefficient (standard value 0.5).
    pub sigma: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        NelderMeadConfig {
            max_iterations: 2000,
            f_tol: 1e-12,
            x_tol: 1e-10,
            initial_step: 0.1,
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
        }
    }
}

impl NelderMeadConfig {
    fn validate(&self) -> Result<(), OptimError> {
        if self.max_iterations == 0 {
            return Err(OptimError::config(
                "NelderMead",
                "max_iterations must be > 0",
            ));
        }
        if !(self.f_tol > 0.0) || !(self.x_tol > 0.0) {
            return Err(OptimError::config(
                "NelderMead",
                "tolerances must be positive",
            ));
        }
        if !(self.initial_step > 0.0) {
            return Err(OptimError::config(
                "NelderMead",
                "initial_step must be positive",
            ));
        }
        if !(self.alpha > 0.0)
            || !(self.gamma > 1.0)
            || !(0.0..1.0).contains(&self.rho)
            || !(0.0..1.0).contains(&self.sigma)
        {
            return Err(OptimError::config(
                "NelderMead",
                "need alpha > 0, gamma > 1, 0 < rho < 1, 0 < sigma < 1",
            ));
        }
        Ok(())
    }
}

/// The Nelder–Mead simplex optimizer.
///
/// # Examples
///
/// ```
/// use resilience_optim::nelder_mead::{NelderMead, NelderMeadConfig};
/// // Rosenbrock's banana.
/// let f = |p: &[f64]| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2);
/// let report = NelderMead::new(NelderMeadConfig {
///     max_iterations: 5000,
///     ..NelderMeadConfig::default()
/// })
/// .minimize(&f, &[-1.2, 1.0])?;
/// assert!((report.params[0] - 1.0).abs() < 1e-4);
/// # Ok::<(), resilience_optim::OptimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NelderMead {
    config: NelderMeadConfig,
}

impl NelderMead {
    /// Creates an optimizer with the given configuration.
    #[must_use]
    pub fn new(config: NelderMeadConfig) -> Self {
        NelderMead { config }
    }

    /// Minimizes `f` starting from `x0`.
    ///
    /// Non-finite objective values are treated as `+∞` (the simplex moves
    /// away from them); only a non-finite value at `x0` itself is an
    /// error. Multi-point evaluation sites (the initial simplex and the
    /// shrink step) go through [`Objective::eval_batch`], so objectives
    /// with a vectorized batch path are amortized automatically; plain
    /// closures work unchanged.
    ///
    /// # Errors
    ///
    /// * [`OptimError::InvalidConfig`] for bad configuration or empty `x0`.
    /// * [`OptimError::BadStartingPoint`] when `f(x0)` is non-finite.
    pub fn minimize<F: Objective>(&self, f: &F, x0: &[f64]) -> Result<OptimReport, OptimError> {
        self.minimize_with_control(f, x0, &Control::unbounded())
    }

    /// [`NelderMead::minimize`] under an execution [`Control`].
    ///
    /// The iteration loop (and each vertex of the initial simplex) is a
    /// cooperative cancellation point: when the control's deadline passes
    /// or its token fires, the run stops within one iteration and returns
    /// a typed error instead of its best-so-far point.
    ///
    /// # Errors
    ///
    /// Everything [`NelderMead::minimize`] returns, plus
    /// [`OptimError::TimedOut`] / [`OptimError::Cancelled`] on a stop.
    pub fn minimize_with_control<F: Objective>(
        &self,
        f: &F,
        x0: &[f64],
        control: &Control,
    ) -> Result<OptimReport, OptimError> {
        self.config.validate()?;
        if x0.is_empty() {
            return Err(OptimError::config("NelderMead", "empty starting point"));
        }
        let n = x0.len();
        // Behind a Cell (not `mut`) so the cancellation points below can
        // read the count while `eval` is live.
        let evaluations = Cell::new(0usize);
        let eval = |x: &[f64]| -> f64 {
            evaluations.set(evaluations.get() + 1);
            let v = f.eval(x);
            if v.is_finite() {
                v
            } else {
                f64::INFINITY
            }
        };
        // Batched counterpart: one call evaluates `out.len()` packed
        // points, with the same non-finite → +∞ mapping per point.
        let eval_batch = |points: &[f64], out: &mut [f64]| {
            evaluations.set(evaluations.get() + out.len());
            f.eval_batch(points, n, out);
            for v in out.iter_mut() {
                if !v.is_finite() {
                    *v = f64::INFINITY;
                }
            }
        };
        let f0 = eval(x0);
        if !f0.is_finite() {
            return Err(OptimError::BadStartingPoint { value: f0 });
        }
        // Scratch for the batched evaluation sites (initial simplex and
        // shrink), allocated once: n packed points plus their values.
        let mut batch_points = vec![0.0; n * n];
        let mut batch_values = vec![0.0; n];
        // Build the initial simplex: x0 plus a step along each axis, all n
        // off-origin vertices evaluated in one batch.
        control.check_stop("nelder_mead", evaluations.get())?;
        for i in 0..n {
            let vertex = &mut batch_points[i * n..(i + 1) * n];
            vertex.copy_from_slice(x0);
            vertex[i] += self.config.initial_step * (1.0 + x0[i].abs());
        }
        eval_batch(&batch_points, &mut batch_values);
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
        simplex.push((x0.to_vec(), f0));
        for i in 0..n {
            simplex.push((batch_points[i * n..(i + 1) * n].to_vec(), batch_values[i]));
        }
        let sort = |s: &mut Vec<(Vec<f64>, f64)>| {
            s.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN: mapped to +inf"));
        };
        sort(&mut simplex);

        let cfg = &self.config;
        let observed = control.observed();
        let mut iterations = 0usize;
        // Step-type tallies, batched as plain integer locals and flushed as
        // counter events only at termination — the iteration loop stays
        // allocation-free whether or not a sink is attached.
        let (mut reflections, mut expansions, mut contractions, mut shrinks) =
            (0u64, 0u64, 0u64, 0u64);
        // Work buffers reused across iterations — the simplex update loop
        // below performs no heap allocation (the stop poll is one atomic
        // load plus one clock read).
        let mut centroid = vec![0.0; n];
        let mut reflected = vec![0.0; n];
        let mut extra = vec![0.0; n];
        let termination = loop {
            control.check_stop("nelder_mead", evaluations.get())?;
            if iterations >= cfg.max_iterations {
                break TerminationReason::MaxIterations;
            }
            iterations += 1;
            let best = simplex[0].1;
            let worst = simplex[n].1;
            // Convergence: objective spread and coordinate spread.
            let f_spread = (worst - best).abs();
            let x_spread = (0..n)
                .map(|j| {
                    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                    for (v, _) in &simplex {
                        lo = lo.min(v[j]);
                        hi = hi.max(v[j]);
                    }
                    hi - lo
                })
                .fold(0.0f64, f64::max);
            if f_spread <= cfg.f_tol * (1.0 + best.abs()) && x_spread <= cfg.x_tol {
                break TerminationReason::Converged;
            }

            // Centroid of all but the worst vertex.
            centroid.fill(0.0);
            for (v, _) in simplex.iter().take(n) {
                for (c, x) in centroid.iter_mut().zip(v) {
                    *c += x;
                }
            }
            for c in &mut centroid {
                *c /= n as f64;
            }

            // Reflection: x_c + α(x_c − x_worst).
            for j in 0..n {
                reflected[j] = centroid[j] + cfg.alpha * (centroid[j] - simplex[n].0[j]);
            }
            let fr = eval(&reflected);
            if fr < simplex[0].1 {
                // Expansion.
                for j in 0..n {
                    extra[j] =
                        centroid[j] + cfg.alpha * cfg.gamma * (centroid[j] - simplex[n].0[j]);
                }
                let fe = eval(&extra);
                if fe < fr {
                    expansions += 1;
                    simplex[n].0.copy_from_slice(&extra);
                    simplex[n].1 = fe;
                } else {
                    reflections += 1;
                    simplex[n].0.copy_from_slice(&reflected);
                    simplex[n].1 = fr;
                }
            } else if fr < simplex[n - 1].1 {
                reflections += 1;
                simplex[n].0.copy_from_slice(&reflected);
                simplex[n].1 = fr;
            } else {
                // Contraction (outside if reflection helped at all, inside
                // otherwise).
                let t = if fr < simplex[n].1 {
                    cfg.alpha * cfg.rho
                } else {
                    -cfg.rho
                };
                for j in 0..n {
                    extra[j] = centroid[j] + t * (centroid[j] - simplex[n].0[j]);
                }
                let fc = eval(&extra);
                if fc < simplex[n].1.min(fr) {
                    contractions += 1;
                    simplex[n].0.copy_from_slice(&extra);
                    simplex[n].1 = fc;
                } else {
                    shrinks += 1;
                    // Shrink toward the best vertex (in place; each
                    // coordinate update only reads its own old value),
                    // then evaluate all n moved vertices in one batch.
                    let (best, rest) = simplex.split_first_mut().expect("simplex non-empty");
                    for (i, entry) in rest.iter_mut().enumerate() {
                        for (x, b) in entry.0.iter_mut().zip(&best.0) {
                            *x = b + cfg.sigma * (*x - b);
                        }
                        batch_points[i * n..(i + 1) * n].copy_from_slice(&entry.0);
                    }
                    eval_batch(&batch_points, &mut batch_values);
                    for (entry, &fv) in rest.iter_mut().zip(&batch_values) {
                        entry.1 = fv;
                    }
                }
            }
            sort(&mut simplex);
            if observed {
                control.emit(Event::Iteration {
                    solver: SolverKind::NelderMead,
                    iteration: iterations as u64,
                    evaluations: evaluations.get() as u64,
                    best: simplex[0].1,
                });
            }
        };

        let (params, value) = simplex.swap_remove(0);
        if observed {
            control.emit(Event::Converged {
                solver: SolverKind::NelderMead,
                iterations: iterations as u64,
                evaluations: evaluations.get() as u64,
                value,
                reason: termination.exit_reason(),
            });
            control.count(CounterId::ObjectiveEvals, evaluations.get() as u64);
            control.count(CounterId::NmReflections, reflections);
            control.count(CounterId::NmExpansions, expansions);
            control.count(CounterId::NmContractions, contractions);
            control.count(CounterId::NmShrinks, shrinks);
        }
        Ok(OptimReport {
            params,
            value,
            iterations,
            evaluations: evaluations.get(),
            termination,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(p: &[f64]) -> f64 {
        p.iter().map(|x| x * x).sum()
    }

    #[test]
    fn minimizes_sphere() {
        let r = NelderMead::new(NelderMeadConfig::default())
            .minimize(&sphere, &[3.0, -4.0, 5.0])
            .unwrap();
        assert!(r.converged());
        assert!(r.value < 1e-10);
        for p in &r.params {
            assert!(p.abs() < 1e-4);
        }
    }

    #[test]
    fn minimizes_rosenbrock() {
        let f = |p: &[f64]| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2);
        let r = NelderMead::new(NelderMeadConfig {
            max_iterations: 10_000,
            ..NelderMeadConfig::default()
        })
        .minimize(&f, &[-1.2, 1.0])
        .unwrap();
        assert!((r.params[0] - 1.0).abs() < 1e-4, "{:?}", r.params);
        assert!((r.params[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn one_dimensional_works() {
        let f = |p: &[f64]| (p[0] - 7.0).powi(2) + 2.0;
        let r = NelderMead::new(NelderMeadConfig::default())
            .minimize(&f, &[0.0])
            .unwrap();
        assert!((r.params[0] - 7.0).abs() < 1e-5);
        assert!((r.value - 2.0).abs() < 1e-9);
    }

    #[test]
    fn avoids_invalid_regions() {
        // Objective undefined (NaN) for x < 0; minimum at x = 1.
        let f = |p: &[f64]| {
            if p[0] < 0.0 {
                f64::NAN
            } else {
                (p[0] - 1.0).powi(2)
            }
        };
        let r = NelderMead::new(NelderMeadConfig::default())
            .minimize(&f, &[0.5])
            .unwrap();
        assert!((r.params[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn rejects_bad_start() {
        let f = |_: &[f64]| f64::NAN;
        assert!(matches!(
            NelderMead::new(NelderMeadConfig::default()).minimize(&f, &[0.0]),
            Err(OptimError::BadStartingPoint { .. })
        ));
    }

    #[test]
    fn rejects_empty_start_and_bad_config() {
        let f = sphere;
        assert!(NelderMead::new(NelderMeadConfig::default())
            .minimize(&f, &[])
            .is_err());
        let bad = NelderMeadConfig {
            f_tol: 0.0,
            ..NelderMeadConfig::default()
        };
        assert!(NelderMead::new(bad).minimize(&f, &[1.0]).is_err());
        let bad2 = NelderMeadConfig {
            max_iterations: 0,
            ..NelderMeadConfig::default()
        };
        assert!(NelderMead::new(bad2).minimize(&f, &[1.0]).is_err());
    }

    #[test]
    fn budget_exit_reports_max_iterations() {
        let f = |p: &[f64]| (p[0] - 1.0).powi(2);
        let r = NelderMead::new(NelderMeadConfig {
            max_iterations: 2,
            ..NelderMeadConfig::default()
        })
        .minimize(&f, &[100.0])
        .unwrap();
        assert_eq!(r.termination, TerminationReason::MaxIterations);
        assert_eq!(r.iterations, 2);
    }

    #[test]
    fn evaluation_count_is_tracked() {
        let r = NelderMead::new(NelderMeadConfig::default())
            .minimize(&sphere, &[1.0, 1.0])
            .unwrap();
        assert!(r.evaluations >= r.iterations);
    }

    #[test]
    fn flat_objective_converges_immediately() {
        let f = |_: &[f64]| 5.0;
        let r = NelderMead::new(NelderMeadConfig::default())
            .minimize(&f, &[1.0, 2.0])
            .unwrap();
        assert!(r.converged());
        assert_eq!(r.value, 5.0);
    }

    #[test]
    fn expired_deadline_times_out_instead_of_iterating() {
        use crate::control::Control;
        use std::time::Duration;
        // A slow objective (~50 µs/eval) with a huge budget: an already
        // expired deadline must cut the run off almost immediately.
        let f = |p: &[f64]| {
            let mut acc = p[0];
            for k in 0..2_000 {
                acc = (acc + f64::from(k)).sin();
            }
            (p[0] - 1.0).powi(2) + acc.abs() * 1e-12
        };
        let nm = NelderMead::new(NelderMeadConfig {
            max_iterations: 10_000_000,
            ..NelderMeadConfig::default()
        });
        let control = Control::with_deadline(Duration::ZERO);
        assert!(matches!(
            nm.minimize_with_control(&f, &[100.0], &control),
            Err(OptimError::TimedOut { .. })
        ));
    }

    #[test]
    fn cancel_token_stops_the_run() {
        use crate::control::{CancelToken, Control};
        let token = CancelToken::new();
        token.cancel();
        let control = Control::with_token(&token);
        assert!(matches!(
            NelderMead::new(NelderMeadConfig::default()).minimize_with_control(
                &sphere,
                &[3.0, -4.0],
                &control
            ),
            Err(OptimError::Cancelled { .. })
        ));
    }

    #[test]
    fn unbounded_control_is_bit_identical_to_plain_minimize() {
        use crate::control::Control;
        let plain = NelderMead::new(NelderMeadConfig::default())
            .minimize(&sphere, &[3.0, -4.0, 5.0])
            .unwrap();
        let controlled = NelderMead::new(NelderMeadConfig::default())
            .minimize_with_control(&sphere, &[3.0, -4.0, 5.0], &Control::unbounded())
            .unwrap();
        assert_eq!(plain.params, controlled.params);
        assert_eq!(plain.value, controlled.value);
        assert_eq!(plain.evaluations, controlled.evaluations);
    }

    #[test]
    fn telemetry_traces_iterations_and_flushes_counters() {
        use resilience_obs::{CounterId, Event, RecordingObserver, SolverKind};
        use std::sync::Arc;
        let rec = Arc::new(RecordingObserver::new());
        let control = Control::unbounded().observe(rec.clone());
        let report = NelderMead::new(NelderMeadConfig::default())
            .minimize_with_control(&sphere, &[3.0, -4.0], &control)
            .unwrap();
        let events = rec.take();

        // The final pass that only *detects* convergence increments the
        // iteration count but performs no simplex step, so it emits no
        // Iteration event.
        let iterations = events
            .iter()
            .filter(|e| matches!(e, Event::Iteration { .. }))
            .count();
        assert!(
            iterations == report.iterations || iterations + 1 == report.iterations,
            "{iterations} events vs {} iterations",
            report.iterations
        );
        // Exactly one terminal event, carrying the report's totals.
        let terminal: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Converged {
                    solver,
                    iterations,
                    evaluations,
                    ..
                } => Some((*solver, *iterations, *evaluations)),
                _ => None,
            })
            .collect();
        assert_eq!(
            terminal,
            vec![(
                SolverKind::NelderMead,
                report.iterations as u64,
                report.evaluations as u64
            )]
        );
        // The flushed eval counter matches the report.
        let evals: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Counter {
                    id: CounterId::ObjectiveEvals,
                    delta,
                } => Some(*delta),
                _ => None,
            })
            .sum();
        assert_eq!(evals, report.evaluations as u64);
        // Step-type counters account for every stepped iteration.
        let steps: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Counter {
                    id:
                        CounterId::NmReflections
                        | CounterId::NmExpansions
                        | CounterId::NmContractions
                        | CounterId::NmShrinks,
                    delta,
                } => Some(*delta),
                _ => None,
            })
            .sum();
        assert_eq!(steps, iterations as u64);
    }

    #[test]
    fn telemetry_is_identical_to_untraced_run() {
        use resilience_obs::RecordingObserver;
        use std::sync::Arc;
        let plain = NelderMead::new(NelderMeadConfig::default())
            .minimize(&sphere, &[3.0, -4.0])
            .unwrap();
        let control = Control::unbounded().observe(Arc::new(RecordingObserver::new()));
        let traced = NelderMead::new(NelderMeadConfig::default())
            .minimize_with_control(&sphere, &[3.0, -4.0], &control)
            .unwrap();
        assert_eq!(plain, traced);
    }

    #[test]
    fn handles_badly_scaled_problems() {
        // Coordinates at very different scales.
        let f = |p: &[f64]| (p[0] - 1e4).powi(2) / 1e8 + (p[1] - 1e-4).powi(2) * 1e8;
        let r = NelderMead::new(NelderMeadConfig {
            max_iterations: 20_000,
            ..NelderMeadConfig::default()
        })
        .minimize(&f, &[9e3, 2e-4])
        .unwrap();
        assert!(r.value < 1e-6, "value = {}", r.value);
    }
}
