//! One-dimensional minimization: golden-section and Brent's parabolic
//! method.
//!
//! Used to profile single parameters (e.g. sweeping the mixture trend
//! coefficient β with other parameters fixed) and to locate curve troughs
//! when the analytic minimum is unavailable.

use crate::OptimError;

/// Result of a scalar minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarMinimum {
    /// Abscissa of the minimum.
    pub x: f64,
    /// Function value at the minimum.
    pub f_x: f64,
    /// Iterations used.
    pub iterations: usize,
}

const GOLDEN_RATIO_CONJUGATE: f64 = 0.618_033_988_749_894_9;

/// Golden-section search on a unimodal function over `[lo, hi]`.
///
/// Linear convergence but completely derivative-free and robust.
///
/// # Errors
///
/// * [`OptimError::InvalidConfig`] for a bad interval/tolerance.
/// * [`OptimError::BudgetExhausted`] if `max_iter` is hit (the best point
///   so far is carried in the error).
///
/// # Examples
///
/// ```
/// use resilience_optim::scalar::golden_section;
/// let m = golden_section(|x| (x - 2.5) * (x - 2.5), 0.0, 10.0, 1e-10, 200)?;
/// assert!((m.x - 2.5).abs() < 1e-8);
/// # Ok::<(), resilience_optim::OptimError>(())
/// ```
pub fn golden_section<F: Fn(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<ScalarMinimum, OptimError> {
    if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
        return Err(OptimError::config(
            "golden_section",
            format!("need finite lo < hi, got [{lo}, {hi}]"),
        ));
    }
    if !(tol > 0.0) {
        return Err(OptimError::config(
            "golden_section",
            "tolerance must be positive",
        ));
    }
    let mut a = lo;
    let mut b = hi;
    let mut x1 = b - GOLDEN_RATIO_CONJUGATE * (b - a);
    let mut x2 = a + GOLDEN_RATIO_CONJUGATE * (b - a);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    for i in 1..=max_iter {
        if (b - a).abs() < tol * (1.0 + a.abs() + b.abs()) {
            let (x, f_x) = if f1 < f2 { (x1, f1) } else { (x2, f2) };
            return Ok(ScalarMinimum {
                x,
                f_x,
                iterations: i,
            });
        }
        if f1 < f2 {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - GOLDEN_RATIO_CONJUGATE * (b - a);
            f1 = f(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + GOLDEN_RATIO_CONJUGATE * (b - a);
            f2 = f(x2);
        }
    }
    let (x, f_x) = if f1 < f2 { (x1, f1) } else { (x2, f2) };
    Err(OptimError::BudgetExhausted {
        best_params: vec![x],
        best_value: f_x,
        evaluations: max_iter + 2,
    })
}

/// Brent's parabolic-interpolation minimizer on `[lo, hi]`.
///
/// Superlinear on smooth functions, falling back to golden-section steps
/// when the parabola misbehaves. This is the recommended scalar minimizer.
///
/// # Errors
///
/// Same conditions as [`golden_section`].
///
/// # Examples
///
/// ```
/// use resilience_optim::scalar::brent_min;
/// // Trough of a resilience-like dip curve.
/// let m = brent_min(|t: f64| -(-((t - 12.0) / 5.0).powi(2)).exp(), 0.0, 40.0, 1e-10, 200)?;
/// assert!((m.x - 12.0).abs() < 1e-6);
/// # Ok::<(), resilience_optim::OptimError>(())
/// ```
pub fn brent_min<F: Fn(f64) -> f64>(
    f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<ScalarMinimum, OptimError> {
    if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
        return Err(OptimError::config(
            "brent_min",
            format!("need finite lo < hi, got [{lo}, {hi}]"),
        ));
    }
    if !(tol > 0.0) {
        return Err(OptimError::config(
            "brent_min",
            "tolerance must be positive",
        ));
    }
    const CGOLD: f64 = 0.381_966_011_250_105;
    let mut a = lo;
    let mut b = hi;
    let mut x = a + CGOLD * (b - a);
    let mut w = x;
    let mut v = x;
    let mut fx = f(x);
    let mut fw = fx;
    let mut fv = fx;
    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;
    for i in 1..=max_iter {
        let m = 0.5 * (a + b);
        let tol1 = tol * x.abs() + 1e-15;
        let tol2 = 2.0 * tol1;
        if (x - m).abs() <= tol2 - 0.5 * (b - a) {
            return Ok(ScalarMinimum {
                x,
                f_x: fx,
                iterations: i,
            });
        }
        let mut use_golden = true;
        if e.abs() > tol1 {
            // Try parabolic interpolation through (v, w, x).
            let r = (x - w) * (fx - fv);
            let mut q = (x - v) * (fx - fw);
            let mut p = (x - v) * q - (x - w) * r;
            q = 2.0 * (q - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let e_old = e;
            e = d;
            if p.abs() < (0.5 * q * e_old).abs() && p > q * (a - x) && p < q * (b - x) {
                d = p / q;
                let u = x + d;
                if u - a < tol2 || b - u < tol2 {
                    d = if m > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x < m { b - x } else { a - x };
            d = CGOLD * e;
        }
        let u = if d.abs() >= tol1 {
            x + d
        } else if d > 0.0 {
            x + tol1
        } else {
            x - tol1
        };
        let fu = f(u);
        if fu <= fx {
            if u < x {
                b = x;
            } else {
                a = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                a = u;
            } else {
                b = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }
    Err(OptimError::BudgetExhausted {
        best_params: vec![x],
        best_value: fx,
        evaluations: max_iter + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_finds_quadratic_minimum() {
        let m = golden_section(|x| (x - 3.0).powi(2) + 1.0, -10.0, 10.0, 1e-10, 200).unwrap();
        assert!((m.x - 3.0).abs() < 1e-7);
        assert!((m.f_x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn golden_rejects_bad_interval() {
        assert!(golden_section(|x| x, 1.0, 0.0, 1e-8, 100).is_err());
        assert!(golden_section(|x| x, 0.0, 1.0, -1.0, 100).is_err());
    }

    #[test]
    fn golden_budget_carries_best() {
        let r = golden_section(|x| (x - 3.0).powi(2), -1e6, 1e6, 1e-15, 3);
        match r {
            Err(OptimError::BudgetExhausted { best_params, .. }) => {
                assert_eq!(best_params.len(), 1);
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn brent_matches_golden_with_fewer_iterations() {
        let f = |x: f64| (x - 1.7).powi(2) + 0.5 * (3.0 * x).sin().powi(2) * 0.0 + 2.0;
        let g = golden_section(f, -5.0, 5.0, 1e-10, 500).unwrap();
        let b = brent_min(f, -5.0, 5.0, 1e-10, 500).unwrap();
        assert!((g.x - b.x).abs() < 1e-5);
        assert!(b.iterations <= g.iterations);
    }

    #[test]
    fn brent_on_asymmetric_function() {
        // Minimum of x·ln(x) at x = 1/e.
        let m = brent_min(|x: f64| x * x.ln(), 0.01, 2.0, 1e-12, 200).unwrap();
        assert!((m.x - (-1.0f64).exp()).abs() < 1e-7);
    }

    #[test]
    fn brent_endpoint_minimum() {
        // Monotone increasing: minimum at the left endpoint.
        let m = brent_min(|x| x, 2.0, 5.0, 1e-10, 200).unwrap();
        assert!((m.x - 2.0).abs() < 1e-4);
    }

    #[test]
    fn brent_rejects_bad_input() {
        assert!(brent_min(|x| x, 5.0, 2.0, 1e-8, 100).is_err());
        assert!(brent_min(|x| x, 0.0, 1.0, 0.0, 100).is_err());
    }
}
