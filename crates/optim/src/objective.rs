//! Scalar objectives with an optional batched evaluation path.
//!
//! The derivative-free optimizers only ever need `f(x)`, but several of
//! their evaluation sites are naturally *batched*: the initial Nelder–Mead
//! simplex (`n + 1` vertices), its shrink step (`n` vertices), and the
//! differential-evolution initial population. [`Objective::eval_batch`]
//! lets a problem evaluate all of those points in one pass over its data
//! (structure-of-arrays scratch, autovectorizable inner loops) while the
//! default keeps plain closures working unchanged.

/// A scalar objective `f(x)` to minimize.
///
/// Implemented for every `Fn(&[f64]) -> f64` closure, so existing callers
/// keep passing closures; problems that can amortize work across points
/// implement [`Objective::eval_batch`] too.
pub trait Objective {
    /// Evaluates the objective at a single point.
    fn eval(&self, x: &[f64]) -> f64;

    /// Evaluates the objective at `out.len()` points packed contiguously
    /// into `points` (point `i` occupies
    /// `points[i * n_dims .. (i + 1) * n_dims]`), writing `out[i] = f(xᵢ)`.
    ///
    /// The default loops over [`Objective::eval`]; overrides may share one
    /// pass over the underlying data but must return results bit-identical
    /// to the scalar path (the optimizers' serial/parallel determinism
    /// contract depends on it).
    ///
    /// # Panics
    ///
    /// Panics when `points.len() != n_dims * out.len()`.
    fn eval_batch(&self, points: &[f64], n_dims: usize, out: &mut [f64]) {
        assert_eq!(
            points.len(),
            n_dims * out.len(),
            "eval_batch requires points.len() == n_dims * out.len()"
        );
        for (o, x) in out.iter_mut().zip(points.chunks_exact(n_dims)) {
            *o = self.eval(x);
        }
    }
}

impl<F: Fn(&[f64]) -> f64> Objective for F {
    fn eval(&self, x: &[f64]) -> f64 {
        self(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_objectives() {
        let f = |x: &[f64]| x[0] * x[0] + x[1];
        assert_eq!(f.eval(&[2.0, 1.0]), 5.0);
    }

    #[test]
    fn default_batch_matches_scalar() {
        let f = |x: &[f64]| x.iter().sum::<f64>();
        let points = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = [0.0; 3];
        f.eval_batch(&points, 2, &mut out);
        assert_eq!(out, [3.0, 7.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "eval_batch requires")]
    fn batch_rejects_ragged_input() {
        let f = |x: &[f64]| x[0];
        let mut out = [0.0; 2];
        f.eval_batch(&[1.0, 2.0, 3.0], 2, &mut out);
    }
}
