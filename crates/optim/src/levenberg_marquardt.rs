//! Levenberg–Marquardt damped least squares.
//!
//! Fast local refinement for the paper's Eq. 8 once Nelder–Mead (or a grid
//! seed) has placed the iterate in the right basin. Uses the Marquardt
//! scaling `(JᵀJ + λ·diag(JᵀJ))·δ = Jᵀr` with multiplicative damping
//! adaptation, and a forward-difference Jacobian from
//! [`crate::problem::forward_jacobian`].

use crate::control::Control;
use crate::problem::{forward_jacobian, LeastSquares};
use crate::report::{OptimReport, TerminationReason};
use crate::OptimError;
use resilience_math::linalg::{norm2, Matrix};
use resilience_obs::{CounterId, Event, SolverKind};

/// Configuration for [`LevenbergMarquardt`].
#[derive(Debug, Clone, PartialEq)]
pub struct LmConfig {
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the relative SSE decrease.
    pub f_tol: f64,
    /// Convergence tolerance on the step norm.
    pub x_tol: f64,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Multiplicative damping adaptation factor (> 1).
    pub lambda_factor: f64,
    /// Upper bound on λ before declaring stagnation.
    pub max_lambda: f64,
}

impl Default for LmConfig {
    fn default() -> Self {
        LmConfig {
            max_iterations: 200,
            f_tol: 1e-14,
            x_tol: 1e-12,
            initial_lambda: 1e-3,
            lambda_factor: 8.0,
            max_lambda: 1e12,
        }
    }
}

impl LmConfig {
    fn validate(&self) -> Result<(), OptimError> {
        if self.max_iterations == 0 {
            return Err(OptimError::config(
                "LevenbergMarquardt",
                "max_iterations must be > 0",
            ));
        }
        if !(self.f_tol > 0.0) || !(self.x_tol > 0.0) {
            return Err(OptimError::config(
                "LevenbergMarquardt",
                "tolerances must be positive",
            ));
        }
        if !(self.initial_lambda > 0.0)
            || !(self.lambda_factor > 1.0)
            || !(self.max_lambda > self.initial_lambda)
        {
            return Err(OptimError::config(
                "LevenbergMarquardt",
                "need initial_lambda > 0, lambda_factor > 1, max_lambda > initial_lambda",
            ));
        }
        Ok(())
    }
}

/// The Levenberg–Marquardt optimizer for [`LeastSquares`] problems.
///
/// # Examples
///
/// ```
/// use resilience_optim::levenberg_marquardt::{LevenbergMarquardt, LmConfig};
/// use resilience_optim::problem::ClosureLeastSquares;
///
/// // Fit y = a·e^{−b·t} to noiseless data (a = 2, b = 0.3).
/// let data: Vec<(f64, f64)> = (0..25)
///     .map(|i| (i as f64, 2.0 * (-0.3 * i as f64).exp()))
///     .collect();
/// let n = data.len();
/// let problem = ClosureLeastSquares::new(2, n, move |p, out| {
///     for (i, &(t, y)) in data.iter().enumerate() {
///         out[i] = y - p[0] * (-p[1] * t).exp();
///     }
/// });
/// let report = LevenbergMarquardt::new(LmConfig::default())
///     .minimize(&problem, &[1.0, 0.1])?;
/// assert!((report.params[0] - 2.0).abs() < 1e-8);
/// assert!((report.params[1] - 0.3).abs() < 1e-8);
/// # Ok::<(), resilience_optim::OptimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LevenbergMarquardt {
    config: LmConfig,
}

impl LevenbergMarquardt {
    /// Creates an optimizer with the given configuration.
    #[must_use]
    pub fn new(config: LmConfig) -> Self {
        LevenbergMarquardt { config }
    }

    /// Minimizes `‖r(θ)‖²` from the starting point `x0`.
    ///
    /// # Errors
    ///
    /// * [`OptimError::InvalidConfig`] for bad configuration or dimension
    ///   mismatch.
    /// * [`OptimError::BadStartingPoint`] when residuals are non-finite at
    ///   `x0`.
    /// * [`OptimError::Numerical`] when the damped normal equations are
    ///   singular beyond recovery.
    pub fn minimize<P: LeastSquares + ?Sized>(
        &self,
        problem: &P,
        x0: &[f64],
    ) -> Result<OptimReport, OptimError> {
        self.minimize_with_control(problem, x0, &Control::unbounded())
    }

    /// [`LevenbergMarquardt::minimize`] under an execution [`Control`].
    ///
    /// Each outer iteration and each damped inner step is a cooperative
    /// cancellation point.
    ///
    /// # Errors
    ///
    /// Everything [`LevenbergMarquardt::minimize`] returns, plus
    /// [`OptimError::TimedOut`] / [`OptimError::Cancelled`] on a stop.
    pub fn minimize_with_control<P: LeastSquares + ?Sized>(
        &self,
        problem: &P,
        x0: &[f64],
        control: &Control,
    ) -> Result<OptimReport, OptimError> {
        self.config.validate()?;
        if x0.len() != problem.n_params() {
            return Err(OptimError::config(
                "LevenbergMarquardt",
                format!(
                    "problem has {} parameters, x0 has {}",
                    problem.n_params(),
                    x0.len()
                ),
            ));
        }
        let m = problem.n_residuals();
        let n = problem.n_params();
        if m < n {
            return Err(OptimError::config(
                "LevenbergMarquardt",
                format!("underdetermined: {m} residuals for {n} parameters"),
            ));
        }
        let mut x = x0.to_vec();
        let mut residuals = vec![0.0; m];
        problem.residuals(&x, &mut residuals);
        let mut evaluations = 1usize;
        if residuals.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::BadStartingPoint { value: f64::NAN });
        }
        let mut sse = norm2(&residuals).powi(2);
        let mut lambda = self.config.initial_lambda;
        let mut iterations = 0usize;
        let mut termination = TerminationReason::MaxIterations;
        let observed = control.observed();
        // Damping-adaptation tallies, flushed as counter events only at
        // termination so the solve/step loop stays allocation-free.
        let (mut damping_up, mut damping_down) = (0u64, 0u64);
        // Reused across iterations by the analytic-Jacobian path; the
        // finite-difference fallback replaces it wholesale.
        let mut analytic_jac = Matrix::zeros(m, n);

        while iterations < self.config.max_iterations {
            control.check_stop("levenberg_marquardt", evaluations)?;
            iterations += 1;
            // Analytic Jacobian when the problem provides one (free in
            // objective evaluations); otherwise forward differences at a
            // cost of n residual evaluations.
            let jac = if problem.jacobian_into(&x, &mut analytic_jac).is_some() {
                if !analytic_jac.is_finite() {
                    return Err(OptimError::BadStartingPoint { value: f64::NAN });
                }
                &analytic_jac
            } else {
                analytic_jac = forward_jacobian(problem, &x)?;
                evaluations += n;
                &analytic_jac
            };
            let jtj = jac.gram();
            // The Newton direction for ½‖r‖² is −(JᵀJ)⁻¹Jᵀr; fold the sign
            // into the right-hand side.
            let mut jtr = jac.transpose_matvec(&residuals)?;
            for v in &mut jtr {
                *v = -*v;
            }
            // Inner loop: increase λ until a step decreases the SSE.
            let mut stepped = false;
            while lambda <= self.config.max_lambda {
                control.check_stop("levenberg_marquardt", evaluations)?;
                // (JᵀJ + λ diag(JᵀJ)) δ = Jᵀr
                let mut damped = jtj.clone();
                for i in 0..n {
                    let d = jtj[(i, i)];
                    // Guard completely flat directions with an absolute floor.
                    damped[(i, i)] = d + lambda * if d > 0.0 { d } else { 1.0 };
                }
                let delta = match damped.solve(&jtr) {
                    Ok(d) => d,
                    Err(_) => {
                        lambda *= self.config.lambda_factor;
                        damping_up += 1;
                        continue;
                    }
                };
                let candidate: Vec<f64> = x.iter().zip(&delta).map(|(xi, di)| xi + di).collect();
                let mut cand_res = vec![0.0; m];
                problem.residuals(&candidate, &mut cand_res);
                evaluations += 1;
                let cand_sse = if cand_res.iter().all(|v| v.is_finite()) {
                    norm2(&cand_res).powi(2)
                } else {
                    f64::INFINITY
                };
                if cand_sse < sse {
                    // Accept and relax damping.
                    let step_norm = norm2(&delta);
                    let improvement = sse - cand_sse;
                    x = candidate;
                    residuals = cand_res;
                    sse = cand_sse;
                    lambda = (lambda / self.config.lambda_factor).max(1e-12);
                    damping_down += 1;
                    stepped = true;
                    if improvement <= self.config.f_tol * (1.0 + sse)
                        || step_norm <= self.config.x_tol * (1.0 + norm2(&x))
                    {
                        termination = TerminationReason::Converged;
                    }
                    break;
                }
                lambda *= self.config.lambda_factor;
                damping_up += 1;
            }
            if observed {
                control.emit(Event::Iteration {
                    solver: SolverKind::LevenbergMarquardt,
                    iteration: iterations as u64,
                    evaluations: evaluations as u64,
                    best: sse,
                });
            }
            if !stepped {
                // Damping maxed out without any acceptable step: the
                // iterate is at (or numerically at) a local minimum.
                termination = TerminationReason::Stalled;
                break;
            }
            if termination == TerminationReason::Converged {
                break;
            }
        }

        if observed {
            control.emit(Event::Converged {
                solver: SolverKind::LevenbergMarquardt,
                iterations: iterations as u64,
                evaluations: evaluations as u64,
                value: sse,
                reason: termination.exit_reason(),
            });
            control.count(CounterId::ObjectiveEvals, evaluations as u64);
            control.count(CounterId::LmDampingUp, damping_up);
            control.count(CounterId::LmDampingDown, damping_down);
        }
        Ok(OptimReport {
            params: x,
            value: sse,
            iterations,
            evaluations,
            termination,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ClosureLeastSquares;

    fn exp_decay_problem(
        a: f64,
        b: f64,
        n: usize,
    ) -> ClosureLeastSquares<impl Fn(&[f64], &mut [f64])> {
        let data: Vec<(f64, f64)> = (0..n)
            .map(|i| (i as f64, a * (-b * i as f64).exp()))
            .collect();
        ClosureLeastSquares::new(2, n, move |p, out| {
            for (i, &(t, y)) in data.iter().enumerate() {
                out[i] = y - p[0] * (-p[1] * t).exp();
            }
        })
    }

    #[test]
    fn fits_exponential_decay_exactly() {
        let p = exp_decay_problem(2.0, 0.3, 30);
        let r = LevenbergMarquardt::new(LmConfig::default())
            .minimize(&p, &[1.0, 0.1])
            .unwrap();
        assert!(r.value < 1e-20, "sse = {}", r.value);
        assert!((r.params[0] - 2.0).abs() < 1e-8);
        assert!((r.params[1] - 0.3).abs() < 1e-8);
    }

    #[test]
    fn linear_problem_one_step() {
        // Linear least squares should converge essentially immediately.
        let ts: Vec<f64> = (0..10).map(f64::from).collect();
        let p = ClosureLeastSquares::new(2, 10, move |params, out| {
            for (i, &t) in ts.iter().enumerate() {
                out[i] = (3.0 + 2.0 * t) - (params[0] + params[1] * t);
            }
        });
        let r = LevenbergMarquardt::new(LmConfig::default())
            .minimize(&p, &[0.0, 0.0])
            .unwrap();
        assert!(r.value < 1e-18);
        assert!(r.iterations <= 5);
        assert!((r.params[0] - 3.0).abs() < 1e-9);
        assert!((r.params[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_fit_recovers_parameters_approximately() {
        // Deterministic "noise" from a simple recurrence so the test is
        // reproducible without rand.
        let mut noise = 0.017_f64;
        let data: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                noise = (noise * 97.0).fract() * 0.02 - 0.01;
                let t = i as f64 * 0.2;
                (t, 1.5 * (-0.4 * t).exp() + noise)
            })
            .collect();
        let n = data.len();
        let p = ClosureLeastSquares::new(2, n, move |params, out| {
            for (i, &(t, y)) in data.iter().enumerate() {
                out[i] = y - params[0] * (-params[1] * t).exp();
            }
        });
        let r = LevenbergMarquardt::new(LmConfig::default())
            .minimize(&p, &[1.0, 0.1])
            .unwrap();
        assert!((r.params[0] - 1.5).abs() < 0.05, "{:?}", r.params);
        assert!((r.params[1] - 0.4).abs() < 0.05);
    }

    #[test]
    fn rejects_underdetermined_and_mismatched() {
        let p = ClosureLeastSquares::new(3, 2, |_, out| out.fill(0.0));
        let lm = LevenbergMarquardt::new(LmConfig::default());
        assert!(lm.minimize(&p, &[0.0, 0.0, 0.0]).is_err());
        let p2 = ClosureLeastSquares::new(2, 5, |_, out| out.fill(0.0));
        assert!(lm.minimize(&p2, &[0.0]).is_err());
    }

    #[test]
    fn rejects_non_finite_start() {
        let p = ClosureLeastSquares::new(1, 2, |params, out| {
            out.fill(if params[0] < 0.0 { f64::NAN } else { params[0] });
        });
        let lm = LevenbergMarquardt::new(LmConfig::default());
        assert!(matches!(
            lm.minimize(&p, &[-1.0]),
            Err(OptimError::BadStartingPoint { .. })
        ));
    }

    #[test]
    fn already_optimal_terminates_quickly() {
        let p = exp_decay_problem(2.0, 0.3, 20);
        let r = LevenbergMarquardt::new(LmConfig::default())
            .minimize(&p, &[2.0, 0.3])
            .unwrap();
        assert!(r.iterations <= 3);
        assert!(r.value < 1e-20);
    }

    #[test]
    fn stalls_gracefully_on_flat_residuals() {
        // Residuals independent of parameters: J = 0, no step improves.
        let p = ClosureLeastSquares::new(1, 3, |_, out| {
            out.copy_from_slice(&[1.0, -1.0, 0.5]);
        });
        let r = LevenbergMarquardt::new(LmConfig::default())
            .minimize(&p, &[0.0])
            .unwrap();
        assert_eq!(r.termination, TerminationReason::Stalled);
        assert!((r.value - 2.25).abs() < 1e-12);
    }

    #[test]
    fn expired_deadline_times_out() {
        use crate::control::Control;
        use std::time::Duration;
        let p = exp_decay_problem(2.0, 0.3, 30);
        let control = Control::with_deadline(Duration::ZERO);
        assert!(matches!(
            LevenbergMarquardt::new(LmConfig::default()).minimize_with_control(
                &p,
                &[1.0, 0.1],
                &control
            ),
            Err(OptimError::TimedOut { .. })
        ));
    }

    #[test]
    fn unbounded_control_matches_plain_minimize() {
        use crate::control::Control;
        let p = exp_decay_problem(2.0, 0.3, 30);
        let lm = LevenbergMarquardt::new(LmConfig::default());
        let a = lm.minimize(&p, &[1.0, 0.1]).unwrap();
        let b = lm
            .minimize_with_control(&p, &[1.0, 0.1], &Control::unbounded())
            .unwrap();
        assert_eq!(a.params, b.params);
        assert_eq!(a.value, b.value);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn telemetry_counts_damping_adjustments() {
        use resilience_obs::{CounterId, Event, RecordingObserver, SolverKind};
        use std::sync::Arc;
        let p = exp_decay_problem(2.0, 0.3, 30);
        let rec = Arc::new(RecordingObserver::new());
        let control = Control::unbounded().observe(rec.clone());
        let report = LevenbergMarquardt::new(LmConfig::default())
            .minimize_with_control(&p, &[1.0, 0.1], &control)
            .unwrap();
        let events = rec.take();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Converged {
                solver: SolverKind::LevenbergMarquardt,
                ..
            }
        )));
        // Every accepted outer step relaxes the damping exactly once.
        let down: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Counter {
                    id: CounterId::LmDampingDown,
                    delta,
                } => Some(*delta),
                _ => None,
            })
            .sum();
        assert!(down >= 1 && down <= report.iterations as u64);
        let evals: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Counter {
                    id: CounterId::ObjectiveEvals,
                    delta,
                } => Some(*delta),
                _ => None,
            })
            .sum();
        assert_eq!(evals, report.evaluations as u64);
    }

    #[test]
    fn invalid_config_rejected() {
        let bad = LmConfig {
            lambda_factor: 0.5,
            ..LmConfig::default()
        };
        let p = exp_decay_problem(1.0, 0.1, 5);
        assert!(LevenbergMarquardt::new(bad)
            .minimize(&p, &[1.0, 0.1])
            .is_err());
    }
}
