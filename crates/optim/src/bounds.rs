//! Smooth parameter transforms for box constraints.
//!
//! The bathtub models are only valid on parameter subsets (the paper's
//! quadratic model needs `α, γ > 0` and `−2√(αγ) < β < 0`). Rather than
//! teach every optimizer about constraints, each model fits in an
//! *internal* unconstrained space and maps through these transforms:
//!
//! * [`Transform::Unbounded`] — identity.
//! * [`Transform::Positive`] — `external = exp(internal)`, enforcing `> 0`.
//! * [`Transform::Bounded`] — scaled logistic onto `(lo, hi)`.

use crate::OptimError;

/// A smooth bijection from ℝ (internal) onto a parameter's feasible set
/// (external).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Transform {
    /// Identity: the parameter is unconstrained.
    Unbounded,
    /// `external = exp(internal)`: the parameter must be positive.
    Positive,
    /// Scaled logistic onto the open interval `(lo, hi)`.
    Bounded {
        /// Lower bound (exclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
}

impl Transform {
    /// Maps an internal (unconstrained) value to the external space.
    #[must_use]
    pub fn to_external(&self, internal: f64) -> f64 {
        match *self {
            Transform::Unbounded => internal,
            Transform::Positive => internal.exp(),
            Transform::Bounded { lo, hi } => {
                // Numerically safe logistic, clamped strictly inside (0, 1)
                // so the external value never touches the open endpoints.
                let s = if internal >= 0.0 {
                    1.0 / (1.0 + (-internal).exp())
                } else {
                    let e = internal.exp();
                    e / (1.0 + e)
                };
                let s = s.clamp(1e-12, 1.0 - 1e-12);
                lo + (hi - lo) * s
            }
        }
    }

    /// Maps an external (feasible) value back to the internal space.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidConfig`] when `external` is outside
    /// the feasible set (≤ 0 for [`Transform::Positive`], outside
    /// `(lo, hi)` for [`Transform::Bounded`]).
    pub fn to_internal(&self, external: f64) -> Result<f64, OptimError> {
        match *self {
            Transform::Unbounded => Ok(external),
            Transform::Positive => {
                if external > 0.0 {
                    Ok(external.ln())
                } else {
                    Err(OptimError::config(
                        "Transform::Positive",
                        format!("value {external} is not positive"),
                    ))
                }
            }
            Transform::Bounded { lo, hi } => {
                if external > lo && external < hi {
                    let s = (external - lo) / (hi - lo);
                    Ok((s / (1.0 - s)).ln())
                } else {
                    Err(OptimError::config(
                        "Transform::Bounded",
                        format!("value {external} outside ({lo}, {hi})"),
                    ))
                }
            }
        }
    }

    /// Validates the transform itself (bounded intervals must be proper).
    fn validate(&self) -> Result<(), OptimError> {
        if let Transform::Bounded { lo, hi } = *self {
            if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
                return Err(OptimError::config(
                    "Transform::Bounded",
                    format!("need finite lo < hi, got ({lo}, {hi})"),
                ));
            }
        }
        Ok(())
    }
}

/// An ordered set of per-parameter transforms.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpace {
    transforms: Vec<Transform>,
}

impl ParamSpace {
    /// Builds a parameter space from per-parameter transforms.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidConfig`] for an empty list or an
    /// improper bounded interval.
    ///
    /// # Examples
    ///
    /// ```
    /// use resilience_optim::{ParamSpace, Transform};
    /// let space = ParamSpace::new(vec![
    ///     Transform::Positive,
    ///     Transform::Bounded { lo: -1.0, hi: 0.0 },
    /// ])?;
    /// let external = space.to_external(&[0.0, 0.0]);
    /// assert_eq!(external[0], 1.0);          // exp(0)
    /// assert_eq!(external[1], -0.5);         // logistic midpoint
    /// # Ok::<(), resilience_optim::OptimError>(())
    /// ```
    pub fn new(transforms: Vec<Transform>) -> Result<Self, OptimError> {
        if transforms.is_empty() {
            return Err(OptimError::config("ParamSpace", "no transforms given"));
        }
        for t in &transforms {
            t.validate()?;
        }
        Ok(ParamSpace { transforms })
    }

    /// An all-unbounded space of dimension `n`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidConfig`] when `n == 0`.
    pub fn unbounded(n: usize) -> Result<Self, OptimError> {
        ParamSpace::new(vec![Transform::Unbounded; n])
    }

    /// Dimension of the space.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transforms.len()
    }

    /// Whether the space is empty (never true post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transforms.is_empty()
    }

    /// The per-parameter transforms.
    #[must_use]
    pub fn transforms(&self) -> &[Transform] {
        &self.transforms
    }

    /// Maps an internal vector to the external space.
    ///
    /// # Panics
    ///
    /// Panics when `internal.len()` does not match the space dimension.
    #[must_use]
    pub fn to_external(&self, internal: &[f64]) -> Vec<f64> {
        assert_eq!(internal.len(), self.transforms.len(), "dimension mismatch");
        internal
            .iter()
            .zip(&self.transforms)
            .map(|(&x, t)| t.to_external(x))
            .collect()
    }

    /// Maps an external vector to the internal space.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidConfig`] when any coordinate is
    /// infeasible or the dimensions disagree.
    pub fn to_internal(&self, external: &[f64]) -> Result<Vec<f64>, OptimError> {
        if external.len() != self.transforms.len() {
            return Err(OptimError::config(
                "ParamSpace::to_internal",
                format!(
                    "expected {} coordinates, got {}",
                    self.transforms.len(),
                    external.len()
                ),
            ));
        }
        external
            .iter()
            .zip(&self.transforms)
            .map(|(&x, t)| t.to_internal(x))
            .collect()
    }

    /// Wraps an external-space objective as an internal-space objective.
    ///
    /// This is the adapter every fit in `resilience-core` uses: the
    /// optimizer works on ℝⁿ while the model only ever sees feasible
    /// parameters.
    pub fn wrap<'a, F: Fn(&[f64]) -> f64 + 'a>(&'a self, f: F) -> impl Fn(&[f64]) -> f64 + 'a {
        move |internal: &[f64]| f(&self.to_external(internal))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_is_identity() {
        let t = Transform::Unbounded;
        assert_eq!(t.to_external(3.5), 3.5);
        assert_eq!(t.to_internal(-2.0).unwrap(), -2.0);
    }

    #[test]
    fn positive_roundtrip() {
        let t = Transform::Positive;
        for &v in &[1e-8, 0.5, 1.0, 42.0, 1e8] {
            let i = t.to_internal(v).unwrap();
            assert!((t.to_external(i) - v).abs() / v < 1e-12);
        }
        assert!(t.to_internal(0.0).is_err());
        assert!(t.to_internal(-1.0).is_err());
    }

    #[test]
    fn bounded_roundtrip_and_range() {
        let t = Transform::Bounded { lo: -2.0, hi: 3.0 };
        for &v in &[-1.999, -1.0, 0.0, 2.9] {
            let i = t.to_internal(v).unwrap();
            assert!((t.to_external(i) - v).abs() < 1e-10);
        }
        // Extreme internal values stay inside the open interval.
        assert!(t.to_external(1e3) < 3.0);
        assert!(t.to_external(-1e3) > -2.0);
        assert!(t.to_internal(-2.0).is_err());
        assert!(t.to_internal(5.0).is_err());
    }

    #[test]
    fn bounded_logistic_is_monotone() {
        let t = Transform::Bounded { lo: 0.0, hi: 1.0 };
        let mut prev = t.to_external(-10.0);
        for i in -9..=10 {
            let v = t.to_external(i as f64);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn param_space_validation() {
        assert!(ParamSpace::new(vec![]).is_err());
        assert!(ParamSpace::new(vec![Transform::Bounded { lo: 1.0, hi: 1.0 }]).is_err());
        assert!(ParamSpace::unbounded(0).is_err());
        let s = ParamSpace::unbounded(3).unwrap();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn space_roundtrip_mixed() {
        let s = ParamSpace::new(vec![
            Transform::Unbounded,
            Transform::Positive,
            Transform::Bounded { lo: -1.0, hi: 0.0 },
        ])
        .unwrap();
        let external = vec![2.0, 0.7, -0.3];
        let internal = s.to_internal(&external).unwrap();
        let back = s.to_external(&internal);
        for (a, b) in external.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn to_internal_rejects_dimension_mismatch() {
        let s = ParamSpace::unbounded(2).unwrap();
        assert!(s.to_internal(&[1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn to_external_panics_on_mismatch() {
        let s = ParamSpace::unbounded(2).unwrap();
        let _ = s.to_external(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn wrap_keeps_feasibility() {
        // Objective that would blow up for non-positive parameters.
        let s = ParamSpace::new(vec![Transform::Positive]).unwrap();
        let f = s.wrap(|p: &[f64]| {
            assert!(p[0] > 0.0, "objective must only see feasible points");
            (p[0] - 2.0).powi(2)
        });
        // Any internal value is fine, even very negative ones.
        let v = f(&[-50.0]);
        assert!(v.is_finite());
    }
}
