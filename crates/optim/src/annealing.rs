//! Simulated annealing.
//!
//! A second global optimizer, kept deliberately simple (Gaussian proposal,
//! geometric cooling). Included for the ablation benches in
//! `resilience-bench` comparing global optimizers on the mixture SSE
//! surface; differential evolution is usually the better default.

use crate::control::Control;
use crate::report::{OptimReport, TerminationReason};
use crate::OptimError;
use resilience_obs::{CounterId, Event, SolverKind};
use resilience_stats::rng::RandomSource;

/// Configuration for [`simulated_annealing`].
#[derive(Debug, Clone, PartialEq)]
pub struct SaConfig {
    /// Initial temperature.
    pub initial_temp: f64,
    /// Geometric cooling factor per step, in `(0, 1)`.
    pub cooling: f64,
    /// Number of proposal steps.
    pub steps: usize,
    /// Proposal standard deviation, relative to each coordinate's scale
    /// `(1 + |x|)`.
    pub step_scale: f64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig {
            initial_temp: 1.0,
            cooling: 0.995,
            steps: 5_000,
            step_scale: 0.1,
        }
    }
}

/// Minimizes `f` from `x0` by simulated annealing with Gaussian proposals
/// (Box–Muller) and Metropolis acceptance.
///
/// Non-finite objective values are rejected as proposals; a non-finite
/// start is an error.
///
/// # Errors
///
/// * [`OptimError::InvalidConfig`] for bad configuration or empty `x0`.
/// * [`OptimError::BadStartingPoint`] when `f(x0)` is non-finite.
///
/// # Examples
///
/// ```
/// use resilience_optim::annealing::{simulated_annealing, SaConfig};
/// use resilience_stats::XorShift64;
///
/// let mut rng = XorShift64::new(7);
/// let f = |p: &[f64]| (p[0] - 2.0).powi(2);
/// let report = simulated_annealing(&f, &[0.0], &SaConfig::default(), &mut rng)?;
/// assert!((report.params[0] - 2.0).abs() < 0.1);
/// # Ok::<(), resilience_optim::OptimError>(())
/// ```
pub fn simulated_annealing<F, R>(
    f: &F,
    x0: &[f64],
    config: &SaConfig,
    rng: &mut R,
) -> Result<OptimReport, OptimError>
where
    F: Fn(&[f64]) -> f64,
    R: RandomSource + ?Sized,
{
    simulated_annealing_with_control(f, x0, config, rng, &Control::unbounded())
}

/// [`simulated_annealing`] under an execution [`Control`].
///
/// Each proposal step is a cooperative cancellation point.
///
/// # Errors
///
/// Everything [`simulated_annealing`] returns, plus
/// [`OptimError::TimedOut`] / [`OptimError::Cancelled`] on a stop.
pub fn simulated_annealing_with_control<F, R>(
    f: &F,
    x0: &[f64],
    config: &SaConfig,
    rng: &mut R,
    control: &Control,
) -> Result<OptimReport, OptimError>
where
    F: Fn(&[f64]) -> f64,
    R: RandomSource + ?Sized,
{
    if x0.is_empty() {
        return Err(OptimError::config(
            "simulated_annealing",
            "empty starting point",
        ));
    }
    if !(config.initial_temp > 0.0) {
        return Err(OptimError::config(
            "simulated_annealing",
            "initial_temp must be positive",
        ));
    }
    if !(config.cooling > 0.0 && config.cooling < 1.0) {
        return Err(OptimError::config(
            "simulated_annealing",
            "cooling must be in (0, 1)",
        ));
    }
    if config.steps == 0 {
        return Err(OptimError::config(
            "simulated_annealing",
            "steps must be > 0",
        ));
    }
    if !(config.step_scale > 0.0) {
        return Err(OptimError::config(
            "simulated_annealing",
            "step_scale must be positive",
        ));
    }
    let mut current = x0.to_vec();
    let mut current_val = f(&current);
    let mut evaluations = 1usize;
    if !current_val.is_finite() {
        return Err(OptimError::BadStartingPoint { value: current_val });
    }
    let mut best = current.clone();
    let mut best_val = current_val;
    let mut temp = config.initial_temp;

    // Accepted-move tally, flushed as one counter event at termination (the
    // per-step loop is far too hot for per-event emission).
    let mut accepted = 0u64;
    let mut proposal = vec![0.0; current.len()];
    for _ in 0..config.steps {
        control.check_stop("simulated_annealing", evaluations)?;
        for (j, p) in proposal.iter_mut().enumerate() {
            *p = current[j] + config.step_scale * (1.0 + current[j].abs()) * rng.next_gaussian();
        }
        let val = f(&proposal);
        evaluations += 1;
        if val.is_finite() {
            let accept = val <= current_val || {
                let u: f64 = rng.next_f64();
                u < ((current_val - val) / temp).exp()
            };
            if accept {
                accepted += 1;
                current.copy_from_slice(&proposal);
                current_val = val;
                if val < best_val {
                    best.copy_from_slice(&proposal);
                    best_val = val;
                }
            }
        }
        temp *= config.cooling;
    }

    if control.observed() {
        control.emit(Event::Converged {
            solver: SolverKind::Annealing,
            iterations: config.steps as u64,
            evaluations: evaluations as u64,
            value: best_val,
            reason: TerminationReason::MaxIterations.exit_reason(),
        });
        control.count(CounterId::ObjectiveEvals, evaluations as u64);
        control.count(CounterId::SaAccepted, accepted);
    }
    Ok(OptimReport {
        params: best,
        value: best_val,
        iterations: config.steps,
        evaluations,
        termination: TerminationReason::MaxIterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use resilience_stats::XorShift64;

    fn rng() -> XorShift64 {
        XorShift64::new(99)
    }

    #[test]
    fn anneals_to_quadratic_minimum() {
        let f = |p: &[f64]| (p[0] - 3.0).powi(2) + (p[1] + 1.0).powi(2);
        let r = simulated_annealing(&f, &[0.0, 0.0], &SaConfig::default(), &mut rng()).unwrap();
        assert!((r.params[0] - 3.0).abs() < 0.2, "{:?}", r.params);
        assert!((r.params[1] + 1.0).abs() < 0.2);
    }

    #[test]
    fn escapes_shallow_local_minimum() {
        // Double well with the deeper well at x = 2.
        let f = |p: &[f64]| {
            let x = p[0];
            (x * x - 4.0).powi(2) / 16.0 + 0.3 * (x - 2.0).powi(2)
        };
        let r = simulated_annealing(
            &f,
            &[-2.0],
            &SaConfig {
                steps: 50_000,
                initial_temp: 3.0,
                cooling: 0.9998,
                step_scale: 0.3,
            },
            &mut rng(),
        )
        .unwrap();
        assert!(
            r.params[0] > 0.0,
            "should reach the deep well: {:?}",
            r.params
        );
    }

    #[test]
    fn best_value_never_worse_than_start() {
        let f = |p: &[f64]| p[0].powi(2);
        let r = simulated_annealing(&f, &[5.0], &SaConfig::default(), &mut rng()).unwrap();
        assert!(r.value <= 25.0);
    }

    #[test]
    fn rejects_invalid_config_and_start() {
        let f = |p: &[f64]| p[0];
        let mut r = rng();
        assert!(simulated_annealing(&f, &[], &SaConfig::default(), &mut r).is_err());
        let bad = SaConfig {
            cooling: 1.5,
            ..SaConfig::default()
        };
        assert!(simulated_annealing(&f, &[0.0], &bad, &mut r).is_err());
        let nan = |_: &[f64]| f64::NAN;
        assert!(matches!(
            simulated_annealing(&nan, &[0.0], &SaConfig::default(), &mut r),
            Err(OptimError::BadStartingPoint { .. })
        ));
    }

    #[test]
    fn proposals_avoid_nan_regions() {
        // NaN for x < 0; the chain should stay in the feasible half-line.
        let f = |p: &[f64]| {
            if p[0] < 0.0 {
                f64::NAN
            } else {
                (p[0] - 1.0).powi(2)
            }
        };
        let r = simulated_annealing(&f, &[0.5], &SaConfig::default(), &mut rng()).unwrap();
        assert!(r.params[0] >= 0.0);
        assert!((r.params[0] - 1.0).abs() < 0.2);
    }

    #[test]
    fn expired_deadline_times_out() {
        use crate::control::Control;
        use std::time::Duration;
        let f = |p: &[f64]| (p[0] - 2.0).powi(2);
        assert!(matches!(
            simulated_annealing_with_control(
                &f,
                &[0.0],
                &SaConfig::default(),
                &mut rng(),
                &Control::with_deadline(Duration::ZERO)
            ),
            Err(OptimError::TimedOut { .. })
        ));
    }

    #[test]
    fn telemetry_flushes_acceptance_and_eval_counters() {
        use resilience_obs::{CounterId, Event, RecordingObserver, SolverKind};
        use std::sync::Arc;
        let f = |p: &[f64]| (p[0] - 0.5).powi(2);
        let rec = Arc::new(RecordingObserver::new());
        let control = Control::unbounded().observe(rec.clone());
        let report = simulated_annealing_with_control(
            &f,
            &[0.0],
            &SaConfig::default(),
            &mut rng(),
            &control,
        )
        .unwrap();
        let events = rec.take();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Converged {
                solver: SolverKind::Annealing,
                ..
            }
        )));
        let accepted: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Counter {
                    id: CounterId::SaAccepted,
                    delta,
                } => Some(*delta),
                _ => None,
            })
            .sum();
        assert!(accepted >= 1 && accepted <= report.iterations as u64);
    }

    #[test]
    fn deterministic_under_seed() {
        let f = |p: &[f64]| (p[0] - 0.5).powi(2);
        let a = simulated_annealing(&f, &[0.0], &SaConfig::default(), &mut rng()).unwrap();
        let b = simulated_annealing(&f, &[0.0], &SaConfig::default(), &mut rng()).unwrap();
        assert_eq!(a.params, b.params);
    }
}
