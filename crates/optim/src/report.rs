//! Optimization result reporting.

/// Why an optimizer stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminationReason {
    /// The convergence tolerance on the objective (or simplex spread,
    /// step size, gradient norm — optimizer-specific) was met.
    Converged,
    /// The iteration/evaluation budget ran out but the best point was
    /// still improving slowly; the result is usable but not certified.
    MaxIterations,
    /// A stagnation heuristic fired (no improvement for many steps).
    Stalled,
}

impl TerminationReason {
    /// The matching telemetry exit reason.
    #[must_use]
    pub fn exit_reason(self) -> resilience_obs::ExitReason {
        match self {
            TerminationReason::Converged => resilience_obs::ExitReason::Converged,
            TerminationReason::MaxIterations => resilience_obs::ExitReason::MaxIterations,
            TerminationReason::Stalled => resilience_obs::ExitReason::Stalled,
        }
    }
}

impl std::fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TerminationReason::Converged => write!(f, "converged"),
            TerminationReason::MaxIterations => write!(f, "max iterations reached"),
            TerminationReason::Stalled => write!(f, "stalled"),
        }
    }
}

/// The outcome of an optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimReport {
    /// The best parameter vector found.
    pub params: Vec<f64>,
    /// Objective value at [`OptimReport::params`].
    pub value: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Number of objective evaluations consumed.
    pub evaluations: usize,
    /// Why the optimizer stopped.
    pub termination: TerminationReason,
}

impl OptimReport {
    /// Whether the run is a certified convergence (vs budget/stall exit).
    #[must_use]
    pub fn converged(&self) -> bool {
        self.termination == TerminationReason::Converged
    }
}

impl std::fmt::Display for OptimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "f = {:.6e} after {} iterations ({} evals, {})",
            self.value, self.iterations, self.evaluations, self.termination
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converged_flag() {
        let mut r = OptimReport {
            params: vec![0.0],
            value: 1.0,
            iterations: 3,
            evaluations: 10,
            termination: TerminationReason::Converged,
        };
        assert!(r.converged());
        r.termination = TerminationReason::MaxIterations;
        assert!(!r.converged());
    }

    #[test]
    fn display_mentions_everything() {
        let r = OptimReport {
            params: vec![1.0, 2.0],
            value: 0.125,
            iterations: 42,
            evaluations: 99,
            termination: TerminationReason::Stalled,
        };
        let s = r.to_string();
        assert!(s.contains("42"));
        assert!(s.contains("99"));
        assert!(s.contains("stalled"));
    }
}
