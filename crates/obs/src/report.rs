//! Aggregating an event stream into a human- and machine-readable run report.
//!
//! [`RunReport::from_events`] folds a log (from a [`RecordingObserver`] or a
//! parsed JSONL file) into per-family totals, global counters, and
//! histograms. Attribution is span-based: a `fit_started` event opens a
//! family span, `fit_finished`/`fit_failed` closes it, and solver-scoped
//! events in between are charged to that family.
//!
//! All rate-style derived quantities are typed as `Option<f64>` and return
//! `None` instead of dividing by zero, so reports are `NaN`-free by
//! construction.
//!
//! [`RecordingObserver`]: crate::observer::RecordingObserver

use crate::event::{
    write_f64, write_json_str, CounterId, Event, FailureCode, HistogramId, StopKind,
};
use std::fmt::Write as _;

/// Power-of-two bucketed histogram over `u64` observations.
///
/// Bucket `i` holds values whose bit length is `i` (bucket 0 holds the value
/// 0, bucket 1 holds 1, bucket 2 holds 2–3, ... bucket 16 holds everything
/// ≥ 32768). Exact count/sum/min/max are kept alongside, which is what the
/// report actually renders; buckets exist for shape inspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (meaningless when `count == 0`).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Power-of-two buckets by bit length, saturating at the last bucket.
    pub buckets: [u64; 17],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 17],
        }
    }
}

impl Histogram {
    /// Records one observation. The running sum saturates instead of
    /// overflowing so a hostile or corrupt event stream cannot panic the
    /// aggregation (parsed logs additionally reject out-of-range values).
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bits = (64 - value.leading_zeros()) as usize;
        self.buckets[bits.min(self.buckets.len() - 1)] += 1;
    }

    /// Mean observation, or `None` when nothing was observed.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Folds `other`'s observations into this histogram (count/sum add,
    /// min/max widen, buckets add element-wise).
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets) {
            *a += b;
        }
    }

    /// Inclusive upper bound of bucket `i`: bucket 0 holds only the value 0,
    /// bucket `i` (1 ≤ i ≤ 15) holds values with bit length `i` (upper bound
    /// `2^i − 1`), and the saturating tail bucket reports `u64::MAX`.
    #[must_use]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            1..=15 => (1u64 << i) - 1,
            _ => u64::MAX,
        }
    }

    /// Upper-bound estimate of the `q`-quantile (0 < q ≤ 1), or `None` when
    /// nothing was observed.
    ///
    /// The estimate is the inclusive upper bound of the first bucket whose
    /// cumulative count reaches `ceil(q · count)`, clamped to the exact
    /// observed maximum — so `quantile(1.0)` is always exactly `max`, and
    /// every estimate is an observed-or-larger value within the bucket's
    /// power-of-two resolution.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Some(Self::bucket_upper_bound(i).min(self.max));
            }
        }
        // Bucket counts always sum to `count`, so the loop returns.
        Some(self.max)
    }

    /// Median upper bound (`quantile(0.5)`).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// 90th-percentile upper bound (`quantile(0.9)`).
    #[must_use]
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.9)
    }

    /// 99th-percentile upper bound (`quantile(0.99)`).
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

/// Aggregated telemetry for one model family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyStats {
    /// Family name.
    pub name: &'static str,
    /// `fit_started` spans opened.
    pub fits_started: u64,
    /// `fit_finished` spans (a usable model came back).
    pub fits_completed: u64,
    /// Completed fits whose winning solve met its tolerance.
    pub converged_fits: u64,
    /// Solver iterations charged to this family.
    pub iterations: u64,
    /// Objective evaluations charged to this family (counter deltas plus
    /// work recorded by stop events).
    pub evaluations: u64,
    /// Retry attempts scheduled for this family.
    pub retries: u64,
    /// Fits lost to a deadline.
    pub failed_timeout: u64,
    /// Fits lost to cancellation.
    pub failed_cancelled: u64,
    /// Fits lost to a deterministic error.
    pub failed_error: u64,
    /// Worker panics attributed to this family.
    pub panics: u64,
    /// Fits skipped because the family's circuit breaker was open.
    pub skipped: u64,
    /// Best (lowest) SSE across completed fits.
    pub best_sse: Option<f64>,
}

impl FamilyStats {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            fits_started: 0,
            fits_completed: 0,
            converged_fits: 0,
            iterations: 0,
            evaluations: 0,
            retries: 0,
            failed_timeout: 0,
            failed_cancelled: 0,
            failed_error: 0,
            panics: 0,
            skipped: 0,
            best_sse: None,
        }
    }

    /// Fraction of completed fits that converged; `None` when the family
    /// never completed a fit (never `NaN`).
    pub fn convergence_rate(&self) -> Option<f64> {
        if self.fits_completed == 0 {
            None
        } else {
            Some(self.converged_fits as f64 / self.fits_completed as f64)
        }
    }

    /// Mean objective evaluations per started fit; `None` when no fit
    /// started (never `NaN`).
    pub fn mean_evals_per_fit(&self) -> Option<f64> {
        if self.fits_started == 0 {
            None
        } else {
            Some(self.evaluations as f64 / self.fits_started as f64)
        }
    }

    /// Total failed fits across all failure kinds (breaker skips count:
    /// a skipped family produced no usable model for its cell).
    pub fn failures(&self) -> u64 {
        self.failed_timeout + self.failed_cancelled + self.failed_error + self.panics + self.skipped
    }
}

/// Latest bootstrap progress seen in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapProgress {
    /// Replicates completed.
    pub done: u32,
    /// Replicates requested.
    pub total: u32,
    /// Replicates that failed to refit.
    pub failed: u32,
}

/// Aggregation of one event log.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-family totals, in first-seen order.
    pub families: Vec<FamilyStats>,
    /// Global counter totals, in [`CounterId::ALL`] order, zero entries
    /// omitted.
    pub counters: Vec<(CounterId, u64)>,
    /// Histograms with at least one observation, in [`HistogramId::ALL`]
    /// order.
    pub histograms: Vec<(HistogramId, Histogram)>,
    /// Last `bootstrap_chunk_done` event, if any.
    pub bootstrap: Option<BootstrapProgress>,
    /// Total events consumed.
    pub events: u64,
}

impl RunReport {
    /// Folds an event stream into a report.
    pub fn from_events<I>(events: I) -> RunReport
    where
        I: IntoIterator<Item = Event>,
    {
        let mut families: Vec<FamilyStats> = Vec::new();
        let mut counters = [0u64; CounterId::ALL.len()];
        let mut histograms: Vec<Histogram> = vec![Histogram::default(); HistogramId::ALL.len()];
        let mut bootstrap = None;
        let mut total_events = 0u64;
        // Index into `families` of the currently open fit span.
        let mut current: Option<usize> = None;

        fn family_index(families: &mut Vec<FamilyStats>, name: &'static str) -> usize {
            match families.iter().position(|f| f.name == name) {
                Some(i) => i,
                None => {
                    families.push(FamilyStats::new(name));
                    families.len() - 1
                }
            }
        }
        fn counter_slot(id: CounterId) -> usize {
            CounterId::ALL
                .iter()
                .position(|c| *c == id)
                .expect("id is in ALL")
        }
        fn hist_slot(id: HistogramId) -> usize {
            HistogramId::ALL
                .iter()
                .position(|h| *h == id)
                .expect("id is in ALL")
        }

        for event in events {
            total_events += 1;
            match event {
                Event::FitStarted { family, .. } => {
                    let i = family_index(&mut families, family);
                    families[i].fits_started += 1;
                    current = Some(i);
                }
                Event::FitFinished {
                    family,
                    sse,
                    converged,
                    ..
                } => {
                    let i = family_index(&mut families, family);
                    let f = &mut families[i];
                    f.fits_completed += 1;
                    if converged {
                        f.converged_fits += 1;
                    }
                    if sse.is_finite() && f.best_sse.is_none_or(|b| sse < b) {
                        f.best_sse = Some(sse);
                    }
                    current = None;
                }
                Event::FitFailed { family, kind } => {
                    let i = family_index(&mut families, family);
                    let f = &mut families[i];
                    match kind {
                        FailureCode::TimedOut => f.failed_timeout += 1,
                        FailureCode::Cancelled => f.failed_cancelled += 1,
                        FailureCode::Error => f.failed_error += 1,
                        FailureCode::Panicked => f.panics += 1,
                        FailureCode::Skipped => f.skipped += 1,
                    }
                    if current == Some(i) {
                        current = None;
                    }
                }
                Event::StartBegan { .. } => {}
                Event::Iteration { .. } => {}
                Event::Converged { iterations, .. } => {
                    if let Some(i) = current {
                        families[i].iterations += iterations;
                    }
                }
                Event::RetryScheduled { family, .. } => {
                    let i = family_index(&mut families, family);
                    families[i].retries += 1;
                }
                Event::Stop {
                    kind, evaluations, ..
                } => {
                    // A stopped solver never flushed its eval counter; the
                    // stop event carries the work done so far.
                    if let Some(i) = current {
                        families[i].evaluations += evaluations;
                    }
                    counters[counter_slot(CounterId::ObjectiveEvals)] += evaluations;
                    let id = match kind {
                        StopKind::Deadline => CounterId::Timeouts,
                        StopKind::Cancelled => CounterId::Cancellations,
                    };
                    counters[counter_slot(id)] += 1;
                }
                Event::WorkerPanic { scope, .. } => {
                    // In ranking runs the supervising scope is the family.
                    let i = family_index(&mut families, scope);
                    if current == Some(i) {
                        current = None;
                    }
                }
                Event::BootstrapChunkDone {
                    done,
                    total,
                    failed,
                } => {
                    bootstrap = Some(BootstrapProgress {
                        done,
                        total,
                        failed,
                    });
                }
                Event::Counter { id, delta } => {
                    counters[counter_slot(id)] += delta;
                    if id == CounterId::ObjectiveEvals {
                        if let Some(i) = current {
                            families[i].evaluations += delta;
                        }
                    }
                }
                Event::Hist { id, value } => {
                    histograms[hist_slot(id)].observe(value);
                }
                // Chaos/supervision events carry no span-attributable work;
                // their totals arrive as explicit Counter deltas emitted by
                // the runtime alongside them.
                Event::ChaosInjected { .. } => {}
                Event::BreakerOpened { .. } => {}
                Event::BreakerHalfOpen { .. } => {}
                Event::BreakerClosed { .. } => {}
                Event::CellQuarantined { .. } => {}
            }
        }

        RunReport {
            families,
            counters: CounterId::ALL
                .into_iter()
                .enumerate()
                .filter(|(slot, _)| counters[*slot] > 0)
                .map(|(slot, id)| (id, counters[slot]))
                .collect(),
            histograms: HistogramId::ALL
                .into_iter()
                .enumerate()
                .filter(|(slot, _)| histograms[*slot].count > 0)
                .map(|(slot, id)| (id, histograms[slot].clone()))
                .collect(),
            bootstrap,
            events: total_events,
        }
    }

    /// Folds `other` into this report: fleet-level aggregation across the
    /// per-run (or per-shard) reports of a batch sweep.
    ///
    /// Per-family totals add by family name (preserving this report's
    /// first-seen order, with `other`'s new families appended),
    /// `best_sse` keeps the minimum, counters and histograms add in their
    /// canonical id order, and `other`'s bootstrap progress — being the
    /// later observation — wins when present.
    pub fn merge(&mut self, other: &RunReport) {
        for of in &other.families {
            match self.families.iter_mut().find(|f| f.name == of.name) {
                Some(f) => {
                    f.fits_started += of.fits_started;
                    f.fits_completed += of.fits_completed;
                    f.converged_fits += of.converged_fits;
                    f.iterations += of.iterations;
                    f.evaluations += of.evaluations;
                    f.retries += of.retries;
                    f.failed_timeout += of.failed_timeout;
                    f.failed_cancelled += of.failed_cancelled;
                    f.failed_error += of.failed_error;
                    f.panics += of.panics;
                    f.skipped += of.skipped;
                    f.best_sse = match (f.best_sse, of.best_sse) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                }
                None => self.families.push(of.clone()),
            }
        }
        let mut counters = [0u64; CounterId::ALL.len()];
        for (id, v) in self.counters.iter().chain(&other.counters) {
            let slot = CounterId::ALL
                .iter()
                .position(|c| c == id)
                .expect("id is in ALL");
            counters[slot] += v;
        }
        self.counters = CounterId::ALL
            .into_iter()
            .enumerate()
            .filter(|(slot, _)| counters[*slot] > 0)
            .map(|(slot, id)| (id, counters[slot]))
            .collect();
        let mut histograms: Vec<Histogram> = vec![Histogram::default(); HistogramId::ALL.len()];
        for (id, h) in self.histograms.iter().chain(&other.histograms) {
            let slot = HistogramId::ALL
                .iter()
                .position(|c| c == id)
                .expect("id is in ALL");
            histograms[slot].merge(h);
        }
        self.histograms = HistogramId::ALL
            .into_iter()
            .enumerate()
            .filter(|(slot, _)| histograms[*slot].count > 0)
            .map(|(slot, id)| (id, histograms[slot].clone()))
            .collect();
        self.bootstrap = other.bootstrap.or(self.bootstrap);
        self.events += other.events;
    }

    /// Total value of one counter (0 when absent).
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters
            .iter()
            .find(|(c, _)| *c == id)
            .map_or(0, |(_, v)| *v)
    }

    /// Histogram by id, if it saw any observations.
    pub fn histogram(&self, id: HistogramId) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(h, _)| *h == id)
            .map(|(_, h)| h)
    }

    /// Renders the per-family table plus counter/histogram footers as plain
    /// monospace text.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>5} {:>5} {:>9} {:>9} {:>11} {:>7} {:>5} {:>6} {:>6} {:>12}",
            "family",
            "fits",
            "done",
            "conv",
            "iters",
            "evals",
            "retries",
            "t/o",
            "cancel",
            "panic",
            "best_sse"
        );
        for f in &self.families {
            let conv = match f.convergence_rate() {
                Some(r) => format!("{:.0}%", r * 100.0),
                None => "-".into(),
            };
            let best = match f.best_sse {
                Some(s) => format!("{s:.4e}"),
                None => "-".into(),
            };
            let _ = writeln!(
                out,
                "{:<16} {:>5} {:>5} {:>9} {:>9} {:>11} {:>7} {:>5} {:>6} {:>6} {:>12}",
                f.name,
                f.fits_started,
                f.fits_completed,
                conv,
                f.iterations,
                f.evaluations,
                f.retries,
                f.failed_timeout,
                f.failed_cancelled,
                f.panics,
                best
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (id, v) in &self.counters {
                let _ = writeln!(out, "  {:<28} {v}", id.as_str());
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "\nhistograms:");
            for (id, h) in &self.histograms {
                let mean = h.mean().expect("rendered histograms are non-empty");
                let p50 = h.p50().expect("rendered histograms are non-empty");
                let p90 = h.p90().expect("rendered histograms are non-empty");
                let p99 = h.p99().expect("rendered histograms are non-empty");
                let _ = writeln!(
                    out,
                    "  {:<28} n={} min={} mean={mean:.1} p50<={p50} p90<={p90} p99<={p99} max={}",
                    id.as_str(),
                    h.count,
                    h.min,
                    h.max
                );
            }
        }
        if let Some(b) = self.bootstrap {
            let _ = writeln!(
                out,
                "\nbootstrap: {}/{} replicates ({} failed)",
                b.done, b.total, b.failed
            );
        }
        out
    }

    /// Machine-readable JSON rendering of the report. Rates that would
    /// divide by zero serialize as `null`, never `NaN`.
    pub fn to_json(&self) -> String {
        fn opt_f64(out: &mut String, x: Option<f64>) {
            match x {
                Some(v) => write_f64(out, v),
                None => out.push_str("null"),
            }
        }

        let mut out = String::from("{\"families\":[");
        for (i, f) in self.families.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_str(&mut out, f.name);
            let _ = write!(
                out,
                ",\"fits_started\":{},\"fits_completed\":{},\"converged_fits\":{},\
                 \"iterations\":{},\"evaluations\":{},\"retries\":{},\
                 \"failed_timeout\":{},\"failed_cancelled\":{},\"failed_error\":{},\
                 \"panics\":{},\"skipped\":{}",
                f.fits_started,
                f.fits_completed,
                f.converged_fits,
                f.iterations,
                f.evaluations,
                f.retries,
                f.failed_timeout,
                f.failed_cancelled,
                f.failed_error,
                f.panics,
                f.skipped
            );
            out.push_str(",\"convergence_rate\":");
            opt_f64(&mut out, f.convergence_rate());
            out.push_str(",\"mean_evals_per_fit\":");
            opt_f64(&mut out, f.mean_evals_per_fit());
            out.push_str(",\"best_sse\":");
            opt_f64(&mut out, f.best_sse);
            out.push('}');
        }
        out.push_str("],\"counters\":{");
        for (i, (id, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", id.as_str());
        }
        out.push_str("},\"histograms\":{");
        for (i, (id, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":",
                id.as_str(),
                h.count,
                h.sum,
                h.min,
                h.max
            );
            opt_f64(&mut out, h.mean());
            out.push('}');
        }
        out.push_str("},\"bootstrap\":");
        match self.bootstrap {
            Some(b) => {
                let _ = write!(
                    out,
                    "{{\"done\":{},\"total\":{},\"failed\":{}}}",
                    b.done, b.total, b.failed
                );
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"events\":{}", self.events);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ExitReason, SolverKind};
    use crate::parse::intern;

    fn sample_events() -> Vec<Event> {
        let q = intern("Quadratic");
        let g = intern("Glacial");
        vec![
            Event::FitStarted {
                family: q,
                starts: 2,
            },
            Event::StartBegan { index: 0 },
            Event::Iteration {
                solver: SolverKind::NelderMead,
                iteration: 1,
                evaluations: 5,
                best: 3.0,
            },
            Event::Converged {
                solver: SolverKind::NelderMead,
                iterations: 10,
                evaluations: 30,
                value: 1.0,
                reason: ExitReason::Converged,
            },
            Event::Counter {
                id: CounterId::ObjectiveEvals,
                delta: 30,
            },
            Event::Hist {
                id: HistogramId::EvalsPerStart,
                value: 30,
            },
            Event::FitFinished {
                family: q,
                sse: 1.0,
                evaluations: 30,
                converged: true,
            },
            Event::FitStarted {
                family: g,
                starts: 1,
            },
            Event::Stop {
                scope: intern("nelder_mead"),
                kind: StopKind::Deadline,
                evaluations: 4,
            },
            Event::FitFailed {
                family: g,
                kind: FailureCode::TimedOut,
            },
            Event::RetryScheduled {
                family: g,
                attempt: 2,
            },
        ]
    }

    #[test]
    fn aggregates_per_family_spans() {
        let report = RunReport::from_events(sample_events());
        assert_eq!(report.families.len(), 2);

        let q = &report.families[0];
        assert_eq!(q.name, "Quadratic");
        assert_eq!(q.fits_started, 1);
        assert_eq!(q.fits_completed, 1);
        assert_eq!(q.converged_fits, 1);
        assert_eq!(q.iterations, 10);
        assert_eq!(q.evaluations, 30);
        assert_eq!(q.convergence_rate(), Some(1.0));
        assert_eq!(q.best_sse, Some(1.0));

        let g = &report.families[1];
        assert_eq!(g.fits_started, 1);
        assert_eq!(g.fits_completed, 0);
        assert_eq!(g.failed_timeout, 1);
        assert_eq!(g.retries, 1);
        // The stop event's evaluations are charged to the open span.
        assert_eq!(g.evaluations, 4);
        // Satellite: zero completed fits yields None, not NaN.
        assert_eq!(g.convergence_rate(), None);

        assert_eq!(report.counter(CounterId::ObjectiveEvals), 34);
        assert_eq!(report.counter(CounterId::Timeouts), 1);
        let h = report.histogram(HistogramId::EvalsPerStart).unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (1, 30, 30, 30));
        assert_eq!(h.mean(), Some(30.0));
    }

    #[test]
    fn json_is_nan_free_for_empty_families() {
        let report = RunReport::from_events(vec![Event::FitFailed {
            family: intern("Buggy"),
            kind: FailureCode::Panicked,
        }]);
        let json = report.to_json();
        assert!(!json.contains("NaN") && !json.contains("nan"), "{json}");
        assert!(json.contains("\"convergence_rate\":null"), "{json}");
        assert!(json.contains("\"panics\":1"), "{json}");
    }

    #[test]
    fn table_renders_dashes_for_missing_rates() {
        let report = RunReport::from_events(vec![Event::FitFailed {
            family: intern("Buggy"),
            kind: FailureCode::Error,
        }]);
        let table = report.render_table();
        assert!(table.contains("Buggy"), "{table}");
        assert!(table.contains(" - "), "{table}");
        assert!(!table.contains("NaN"), "{table}");
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1 << 20] {
            h.observe(v);
        }
        assert_eq!(h.buckets[0], 1); // value 0
        assert_eq!(h.buckets[1], 1); // value 1
        assert_eq!(h.buckets[2], 2); // values 2, 3
        assert_eq!(h.buckets[16], 1); // saturating tail
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1 << 20);
    }

    #[test]
    fn merge_aggregates_families_counters_and_histograms() {
        let a = RunReport::from_events(sample_events());
        let b = RunReport::from_events(vec![
            Event::FitStarted {
                family: intern("Quadratic"),
                starts: 1,
            },
            Event::Counter {
                id: CounterId::ObjectiveEvals,
                delta: 6,
            },
            Event::Hist {
                id: HistogramId::EvalsPerStart,
                value: 6,
            },
            Event::FitFinished {
                family: intern("Quadratic"),
                sse: 0.5,
                evaluations: 6,
                converged: true,
            },
            Event::FitStarted {
                family: intern("Quartic"),
                starts: 1,
            },
            Event::FitFinished {
                family: intern("Quartic"),
                sse: 2.0,
                evaluations: 1,
                converged: false,
            },
        ]);
        let mut merged = a.clone();
        merged.merge(&b);
        // First-seen order of `a` is preserved; b's new family appends.
        let names: Vec<&str> = merged.families.iter().map(|f| f.name).collect();
        assert_eq!(names, vec!["Quadratic", "Glacial", "Quartic"]);
        let q = &merged.families[0];
        assert_eq!(q.fits_started, 2);
        assert_eq!(q.fits_completed, 2);
        assert_eq!(q.converged_fits, 2);
        assert_eq!(q.evaluations, 36);
        assert_eq!(q.best_sse, Some(0.5)); // minimum wins
        assert_eq!(
            merged.counter(CounterId::ObjectiveEvals),
            a.counter(CounterId::ObjectiveEvals) + 6
        );
        let h = merged.histogram(HistogramId::EvalsPerStart).unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 36, 6, 30));
        assert_eq!(merged.events, a.events + b.events);
        // Merging an empty report is a no-op on content.
        let mut same = a.clone();
        same.merge(&RunReport::default());
        assert_eq!(same.to_json(), a.to_json());
    }

    #[test]
    fn histogram_quantiles_match_hand_computed_fixtures() {
        // Values 1..=10 land in buckets: b1={1}, b2={2,3}, b3={4..7}, b4={8,9,10}.
        let mut h = Histogram::default();
        for v in 1..=10u64 {
            h.observe(v);
        }
        assert_eq!(h.buckets[1..=4], [1, 2, 4, 3]);
        // rank(0.5) = ceil(5.0) = 5 → cumulative 1,3,7 → bucket 3, bound 7.
        assert_eq!(h.p50(), Some(7));
        // rank(0.9) = 9 → bucket 4, bound 15, clamped to max 10.
        assert_eq!(h.p90(), Some(10));
        // rank(0.99) = ceil(9.9) = 10 → bucket 4 → 10.
        assert_eq!(h.p99(), Some(10));
        assert_eq!(h.quantile(1.0), Some(10));
        // rank clamps to at least 1: the smallest quantile is bucket 1's bound.
        assert_eq!(h.quantile(0.001), Some(1));

        // All-zero observations sit in bucket 0 with bound 0.
        let mut zeros = Histogram::default();
        for _ in 0..4 {
            zeros.observe(0);
        }
        assert_eq!((zeros.p50(), zeros.p99()), (Some(0), Some(0)));

        // Tail bucket saturates: the bound is clamped to the observed max.
        let mut tail = Histogram::default();
        tail.observe(1 << 20);
        assert_eq!(tail.p50(), Some(1 << 20));
        assert_eq!(Histogram::bucket_upper_bound(16), u64::MAX);
        assert_eq!(Histogram::bucket_upper_bound(4), 15);

        // Empty histogram has no quantiles.
        assert_eq!(Histogram::default().quantile(0.5), None);
    }

    #[test]
    fn table_renders_histogram_percentiles() {
        let mut report = RunReport::from_events(Vec::new());
        let mut h = Histogram::default();
        for v in 1..=10u64 {
            h.observe(v);
        }
        report.histograms.push((HistogramId::EvalsPerFit, h));
        let table = report.render_table();
        assert!(table.contains("p50<=7 p90<=10 p99<=10"), "{table}");
    }

    #[test]
    fn histogram_merge_and_saturating_sum() {
        let mut a = Histogram::default();
        a.observe(3);
        let mut b = Histogram::default();
        b.observe(10);
        b.observe(u64::MAX); // saturates instead of panicking
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min, 3);
        assert_eq!(a.max, u64::MAX);
        assert_eq!(a.sum, u64::MAX);
        assert_eq!(a.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn empty_report_is_well_formed() {
        let report = RunReport::from_events(Vec::new());
        assert!(report.families.is_empty());
        assert_eq!(report.events, 0);
        assert!(report.to_json().starts_with('{'));
        assert!(!report.render_table().is_empty());
    }
}
