//! The [`Observer`] sink trait and the in-process sinks.
//!
//! Three sinks ship with the crate:
//!
//! * [`NullObserver`] — the default. Reports `enabled() == false`, so
//!   instrumented code skips event construction entirely; the hot path is
//!   byte-for-byte the unobserved path (asserted by the counting-allocator
//!   tests in the workspace root).
//! * [`RecordingObserver`] — buffers events in memory. Also the building
//!   block for deterministic parallel telemetry: each parallel job records
//!   into its own buffer and the coordinator replays buffers in index order.
//! * [`TeeObserver`] — fans one event stream out to several sinks.
//!
//! The JSONL file sink lives in [`crate::jsonl`].

use crate::event::Event;
use std::sync::{Arc, Mutex};

/// A telemetry sink.
///
/// Implementations must be `Send + Sync`: parallel pipeline stages share one
/// observer behind an `Arc`. `record` takes `&self`; sinks provide their own
/// interior mutability.
pub trait Observer: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);

    /// Whether this sink wants events at all.
    ///
    /// Instrumented code checks this once per span and skips event
    /// construction (and per-job buffering) when it returns `false`.
    /// Defaults to `true`; only [`NullObserver`] returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&self) {}
}

/// The do-nothing sink; `enabled()` is `false` so instrumentation is skipped.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn record(&self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// An in-memory sink that appends every event to a `Vec`.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    events: Mutex<Vec<Event>>,
}

impl RecordingObserver {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("recording observer poisoned")
            .clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("recording observer poisoned"))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .expect("recording observer poisoned")
            .len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Observer for RecordingObserver {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("recording observer poisoned")
            .push(*event);
    }
}

/// Fans one event stream out to several sinks.
///
/// `enabled()` is true if any child is enabled; disabled children still
/// receive nothing.
pub struct TeeObserver {
    sinks: Vec<Arc<dyn Observer>>,
}

impl TeeObserver {
    /// Builds a tee over `sinks`.
    pub fn new(sinks: Vec<Arc<dyn Observer>>) -> Self {
        Self { sinks }
    }
}

impl Observer for TeeObserver {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.record(event);
            }
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// Replays `events` into `sink` in order. A convenience for the
/// per-job-buffer / index-ordered-replay pattern.
pub fn replay(events: &[Event], sink: &dyn Observer) {
    for e in events {
        sink.record(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterId, Event};

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver.enabled());
    }

    #[test]
    fn recording_observer_buffers_in_order() {
        let rec = RecordingObserver::new();
        for delta in 1..=3 {
            rec.record(&Event::Counter {
                id: CounterId::ObjectiveEvals,
                delta,
            });
        }
        let events = rec.take();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[2],
            Event::Counter {
                id: CounterId::ObjectiveEvals,
                delta: 3
            }
        );
        assert!(rec.is_empty());
    }

    #[test]
    fn tee_fans_out_and_skips_disabled_children() {
        let a = Arc::new(RecordingObserver::new());
        let b = Arc::new(RecordingObserver::new());
        let tee = TeeObserver::new(vec![a.clone(), Arc::new(NullObserver), b.clone()]);
        assert!(tee.enabled());
        tee.record(&Event::StartBegan { index: 7 });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);

        let empty = TeeObserver::new(vec![Arc::new(NullObserver)]);
        assert!(!empty.enabled());
    }

    #[test]
    fn replay_preserves_order() {
        let src = RecordingObserver::new();
        src.record(&Event::StartBegan { index: 0 });
        src.record(&Event::StartBegan { index: 1 });
        let dst = RecordingObserver::new();
        replay(&src.take(), &dst);
        assert_eq!(
            dst.events(),
            vec![
                Event::StartBegan { index: 0 },
                Event::StartBegan { index: 1 }
            ]
        );
    }
}
