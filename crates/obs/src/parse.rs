//! Parsing JSONL event logs back into [`Event`] values.
//!
//! The encoder emits flat, single-line JSON objects with a fixed key order,
//! but the parser is a small general JSON-object reader: it tolerates
//! reordered keys and extra whitespace so hand-edited or externally produced
//! logs still load. String-typed event fields (`family`, `scope`) are
//! interned into `&'static str` so parsed events are the same `Copy` type
//! the pipeline emits.

use crate::event::{
    ChaosKind, CounterId, Event, ExitReason, FailureCode, HistogramId, SolverKind, StopKind,
};
use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

/// A parse failure, with the 1-based line number when known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the log, or 0 for a standalone line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line: 0,
        message: message.into(),
    })
}

/// Interns `s`, returning a `&'static str` that lives for the process.
///
/// Event logs contain a handful of distinct family/scope names, so the
/// leaked set stays tiny; interning keeps parsed [`Event`]s `Copy` and
/// comparable by pointer-free equality with pipeline-emitted events.
pub fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut guard = pool.lock().expect("intern pool poisoned");
    if let Some(existing) = guard.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    guard.insert(leaked);
    leaked
}

/// One decoded JSON scalar.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Str(String),
    Num(f64),
    Bool(bool),
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| ParseError {
                                    line: 0,
                                    message: "non-utf8 \\u escape".into(),
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
                                line: 0,
                                message: format!("bad \\u escape {hex:?}"),
                            })?;
                            self.pos += 4;
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return err("invalid \\u code point"),
                            }
                        }
                        other => return err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: back up and take the whole char.
                    self.pos -= 1;
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| ParseError {
                            line: 0,
                            message: "invalid utf-8 in string".into(),
                        })?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<Val, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.parse_string()?)),
            Some(b't') => {
                if self.bytes[self.pos..].starts_with(b"true") {
                    self.pos += 4;
                    Ok(Val::Bool(true))
                } else {
                    err("bad literal")
                }
            }
            Some(b'f') => {
                if self.bytes[self.pos..].starts_with(b"false") {
                    self.pos += 5;
                    Ok(Val::Bool(false))
                } else {
                    err("bad literal")
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
                match token.parse::<f64>() {
                    Ok(x) => Ok(Val::Num(x)),
                    Err(_) => err(format!("bad number {token:?}")),
                }
            }
            _ => err("expected a string, number, or bool"),
        }
    }

    /// Parses a flat JSON object into key/value pairs.
    fn parse_object(&mut self) -> Result<Vec<(String, Val)>, ParseError> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut fields = Vec::with_capacity(6);
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return err("expected ',' or '}'"),
            }
        }
    }
}

struct Fields(Vec<(String, Val)>);

impl Fields {
    fn get(&self, key: &str) -> Result<&Val, ParseError> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| ParseError {
                line: 0,
                message: format!("missing field {key:?}"),
            })
    }

    fn str(&self, key: &str) -> Result<&str, ParseError> {
        match self.get(key)? {
            Val::Str(s) => Ok(s),
            _ => err(format!("field {key:?} is not a string")),
        }
    }

    fn interned(&self, key: &str) -> Result<&'static str, ParseError> {
        Ok(intern(self.str(key)?))
    }

    fn f64(&self, key: &str) -> Result<f64, ParseError> {
        match self.get(key)? {
            Val::Num(x) => Ok(*x),
            // Non-finite floats are encoded as strings.
            Val::Str(s) => match s.as_str() {
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "nan" => Ok(f64::NAN),
                _ => err(format!("field {key:?} is not a number")),
            },
            _ => err(format!("field {key:?} is not a number")),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, ParseError> {
        match self.get(key)? {
            // The upper bound rejects values ≥ 2^64 (including overflow
            // artifacts like `1e300`), which a plain `as u64` cast would
            // silently saturate to `u64::MAX`; everything below it with a
            // zero fraction converts exactly.
            Val::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x < u64::MAX as f64 => Ok(*x as u64),
            _ => err(format!("field {key:?} is not a non-negative integer")),
        }
    }

    fn u32(&self, key: &str) -> Result<u32, ParseError> {
        let v = self.u64(key)?;
        u32::try_from(v).map_err(|_| ParseError {
            line: 0,
            message: format!("field {key:?} overflows u32"),
        })
    }

    fn bool(&self, key: &str) -> Result<bool, ParseError> {
        match self.get(key)? {
            Val::Bool(b) => Ok(*b),
            _ => err(format!("field {key:?} is not a bool")),
        }
    }
}

/// Parses one JSONL line into an [`Event`].
pub fn parse_line(line: &str) -> Result<Event, ParseError> {
    let mut cursor = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let fields = Fields(cursor.parse_object()?);
    cursor.skip_ws();
    if cursor.pos != line.len() {
        return err("trailing bytes after object");
    }
    let tag = fields.str("ev")?.to_owned();
    let event = match tag.as_str() {
        "fit_started" => Event::FitStarted {
            family: fields.interned("family")?,
            starts: fields.u32("starts")?,
        },
        "fit_finished" => Event::FitFinished {
            family: fields.interned("family")?,
            sse: fields.f64("sse")?,
            evaluations: fields.u64("evals")?,
            converged: fields.bool("converged")?,
        },
        "fit_failed" => Event::FitFailed {
            family: fields.interned("family")?,
            kind: FailureCode::parse(fields.str("kind")?).ok_or_else(|| ParseError {
                line: 0,
                message: format!("unknown failure kind {:?}", fields.str("kind").unwrap()),
            })?,
        },
        "start" => Event::StartBegan {
            index: fields.u32("index")?,
        },
        "iteration" => Event::Iteration {
            solver: parse_solver(&fields)?,
            iteration: fields.u64("iter")?,
            evaluations: fields.u64("evals")?,
            best: fields.f64("best")?,
        },
        "converged" => Event::Converged {
            solver: parse_solver(&fields)?,
            iterations: fields.u64("iters")?,
            evaluations: fields.u64("evals")?,
            value: fields.f64("value")?,
            reason: ExitReason::parse(fields.str("reason")?).ok_or_else(|| ParseError {
                line: 0,
                message: format!("unknown exit reason {:?}", fields.str("reason").unwrap()),
            })?,
        },
        "retry_scheduled" => Event::RetryScheduled {
            family: fields.interned("family")?,
            attempt: fields.u32("attempt")?,
        },
        "deadline_exceeded" | "cancelled" => Event::Stop {
            scope: fields.interned("scope")?,
            kind: StopKind::parse(&tag).expect("tag matched above"),
            evaluations: fields.u64("evals")?,
        },
        "worker_panic" => Event::WorkerPanic {
            scope: fields.interned("scope")?,
            index: fields.u32("index")?,
        },
        "bootstrap_chunk_done" => Event::BootstrapChunkDone {
            done: fields.u32("done")?,
            total: fields.u32("total")?,
            failed: fields.u32("failed")?,
        },
        "chaos_injected" => Event::ChaosInjected {
            kind: ChaosKind::parse(fields.str("kind")?).ok_or_else(|| ParseError {
                line: 0,
                message: format!("unknown chaos kind {:?}", fields.str("kind").unwrap()),
            })?,
            cell: fields.u32("cell")?,
            family: fields.interned("family")?,
        },
        "breaker_opened" => Event::BreakerOpened {
            family: fields.interned("family")?,
            consecutive: fields.u32("consecutive")?,
            clock: fields.u64("clock")?,
        },
        "breaker_half_open" => Event::BreakerHalfOpen {
            family: fields.interned("family")?,
            clock: fields.u64("clock")?,
        },
        "breaker_closed" => Event::BreakerClosed {
            family: fields.interned("family")?,
            clock: fields.u64("clock")?,
        },
        "cell_quarantined" => Event::CellQuarantined {
            cell: fields.u32("cell")?,
            failures: fields.u32("failures")?,
        },
        "counter" => Event::Counter {
            id: CounterId::parse(fields.str("id")?).ok_or_else(|| ParseError {
                line: 0,
                message: format!("unknown counter id {:?}", fields.str("id").unwrap()),
            })?,
            delta: fields.u64("n")?,
        },
        "hist" => Event::Hist {
            id: HistogramId::parse(fields.str("id")?).ok_or_else(|| ParseError {
                line: 0,
                message: format!("unknown histogram id {:?}", fields.str("id").unwrap()),
            })?,
            value: fields.u64("value")?,
        },
        other => return err(format!("unknown event tag {other:?}")),
    };
    Ok(event)
}

fn parse_solver(fields: &Fields) -> Result<SolverKind, ParseError> {
    SolverKind::parse(fields.str("solver")?).ok_or_else(|| ParseError {
        line: 0,
        message: format!("unknown solver {:?}", fields.str("solver").unwrap()),
    })
}

/// Parses a whole JSONL log. Blank lines are skipped; any malformed line
/// aborts with its 1-based line number.
pub fn parse_log(text: &str) -> Result<Vec<Event>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(e) => events.push(e),
            Err(mut e) => {
                e.line = i + 1;
                return Err(e);
            }
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_returns_identical_pointers() {
        let a = intern("Quadratic");
        let b = intern("Quadratic");
        assert!(std::ptr::eq(a, b));
    }

    fn round_trip(e: Event) {
        let json = e.to_json();
        let parsed = parse_line(&json).unwrap_or_else(|err| panic!("{json}: {err}"));
        // NaN != NaN, so compare re-encodings for float-carrying events.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(Event::FitStarted {
            family: intern("Quadratic"),
            starts: 4,
        });
        round_trip(Event::FitFinished {
            family: intern("CompetingRisks"),
            sse: 0.012345678901234567,
            evaluations: 987,
            converged: true,
        });
        round_trip(Event::FitFailed {
            family: intern("Glacial"),
            kind: FailureCode::TimedOut,
        });
        round_trip(Event::StartBegan { index: 3 });
        round_trip(Event::Iteration {
            solver: SolverKind::NelderMead,
            iteration: 17,
            evaluations: 120,
            best: -1.5e-7,
        });
        round_trip(Event::Iteration {
            solver: SolverKind::DifferentialEvolution,
            iteration: 2,
            evaluations: 60,
            best: f64::INFINITY,
        });
        round_trip(Event::Converged {
            solver: SolverKind::LevenbergMarquardt,
            iterations: 9,
            evaluations: 40,
            value: 2.0,
            reason: ExitReason::Converged,
        });
        round_trip(Event::RetryScheduled {
            family: intern("Buggy"),
            attempt: 2,
        });
        round_trip(Event::Stop {
            scope: intern("nelder_mead"),
            kind: StopKind::Deadline,
            evaluations: 55,
        });
        round_trip(Event::Stop {
            scope: intern("fit"),
            kind: StopKind::Cancelled,
            evaluations: 0,
        });
        round_trip(Event::WorkerPanic {
            scope: intern("ranking"),
            index: 1,
        });
        round_trip(Event::BootstrapChunkDone {
            done: 100,
            total: 400,
            failed: 3,
        });
        round_trip(Event::ChaosInjected {
            kind: ChaosKind::Deadline,
            cell: 17,
            family: intern("Hjorth"),
        });
        round_trip(Event::BreakerOpened {
            family: intern("Hjorth"),
            consecutive: 3,
            clock: 42,
        });
        round_trip(Event::BreakerHalfOpen {
            family: intern("Hjorth"),
            clock: 57,
        });
        round_trip(Event::BreakerClosed {
            family: intern("Hjorth"),
            clock: 61,
        });
        round_trip(Event::CellQuarantined {
            cell: 12,
            failures: 4,
        });
        round_trip(Event::Counter {
            id: CounterId::LmDampingUp,
            delta: 6,
        });
        round_trip(Event::Hist {
            id: HistogramId::EvalsPerStart,
            value: 231,
        });
    }

    #[test]
    fn parse_log_reports_line_numbers() {
        let text = "{\"ev\":\"start\",\"index\":0}\n\nnot json\n";
        let err = parse_log(text).unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn parser_tolerates_reordered_keys_and_whitespace() {
        let e = parse_line(" { \"starts\" : 2 , \"family\" : \"Q\" , \"ev\" : \"fit_started\" } ")
            .unwrap();
        assert_eq!(
            e,
            Event::FitStarted {
                family: intern("Q"),
                starts: 2
            }
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_line("{}").is_err());
        assert!(parse_line("{\"ev\":\"nope\"}").is_err());
        assert!(parse_line("{\"ev\":\"start\",\"index\":-1}").is_err());
        assert!(parse_line("{\"ev\":\"start\",\"index\":0}x").is_err());
    }

    #[test]
    fn rejects_integer_fields_that_overflow_u64() {
        // `1e300` has a zero fraction, so before the range guard it cast
        // (saturating) to u64::MAX and poisoned downstream aggregation.
        assert!(parse_line("{\"ev\":\"hist\",\"id\":\"evals_per_fit\",\"value\":1e300}").is_err());
        assert!(parse_line(
            "{\"ev\":\"counter\",\"id\":\"objective_evals\",\"n\":18446744073709551616}"
        )
        .is_err());
        // A large but in-range integer (2^53) still parses exactly.
        let e = parse_line("{\"ev\":\"hist\",\"id\":\"evals_per_fit\",\"value\":9007199254740992}")
            .unwrap();
        assert_eq!(
            e,
            Event::Hist {
                id: HistogramId::EvalsPerFit,
                value: 9007199254740992,
            }
        );
    }
}
