//! Span-tree reconstruction: from a flat event log to the hierarchy
//! fleet → cell → family fit → attempt → solver.
//!
//! [`SpanTree::build`] replays a log (recorded in-process or parsed from
//! JSONL) and rebuilds the nesting the runtime flattened away, keyed purely
//! on logical clocks — event order, cell indices carried by chaos and
//! quarantine events, attempt numbers, and evaluation counters. No
//! wall-clock values exist anywhere in the input (the workspace clippy ban
//! enforces this), so the tree built from a log is a pure function of the
//! log bytes: byte-identical logs yield byte-identical [`SpanTree::render`]
//! output regardless of the worker count that produced them.
//!
//! Reconstruction relies on the replay discipline established in PR 5/8:
//! the runtime buffers each (cell, family) job's events and replays the
//! buffers serially in flattened cell-major order, appending each job's
//! reduction verdict (`fit_failed`, `worker_panic`, breaker transitions,
//! `cell_quarantined`) right after the job's own events. Within one job a
//! retried attempt re-emits `fit_started` (always preceded by
//! `retry_scheduled`), chaos-exhausted jobs emit no `fit_started` at all,
//! and an observer-loss job leaves only its `chaos_injected` line — the
//! builder handles each of these shapes explicitly.

use crate::event::{ChaosKind, CounterId, Event, ExitReason, FailureCode, SolverKind, StopKind};
use crate::report::BootstrapProgress;
use std::fmt::Write as _;

/// Which work column a top-K query ranks by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkMetric {
    /// Objective evaluations attributed to the span.
    Evaluations,
    /// Retry attempts beyond the first.
    Retries,
}

/// One solver activation inside an attempt (a multi-start probe, a polish
/// pass, a DE/SA run).
#[derive(Debug, Clone, PartialEq)]
pub struct SolverSpan {
    /// Emitting solver, once an iteration or termination identified it.
    pub solver: Option<SolverKind>,
    /// Multi-start seed index when the span was opened by a `start` event.
    pub start_index: Option<u32>,
    /// Total iterations (cumulative clock from the last event seen).
    pub iterations: u64,
    /// Total objective evaluations reported by the solver's own events.
    pub evaluations: u64,
    /// Termination reason when the solver exited normally.
    pub exit: Option<ExitReason>,
    /// Final objective value at normal termination.
    pub value: Option<f64>,
}

impl SolverSpan {
    fn new(start_index: Option<u32>) -> Self {
        Self {
            solver: None,
            start_index,
            iterations: 0,
            evaluations: 0,
            exit: None,
            value: None,
        }
    }
}

/// One fit attempt (attempt 1 is the original try; retries follow).
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptSpan {
    /// 1-based attempt number.
    pub attempt: u32,
    /// Solver activations inside this attempt, in order.
    pub solvers: Vec<SolverSpan>,
    /// Objective evaluations charged to this attempt (counter deltas plus
    /// work carried by stop events).
    pub evaluations: u64,
    /// Deadline/cancellation observed during the attempt, if any.
    pub stopped: Option<StopKind>,
    /// Chaos faults injected into this attempt.
    pub chaos: Vec<ChaosKind>,
}

impl AttemptSpan {
    fn new(attempt: u32) -> Self {
        Self {
            attempt,
            solvers: Vec::new(),
            evaluations: 0,
            stopped: None,
            chaos: Vec::new(),
        }
    }
}

/// How a family fit ended.
#[derive(Debug, Clone, PartialEq)]
pub enum FitOutcome {
    /// A usable model came back.
    Completed {
        /// Final sum of squared errors.
        sse: f64,
        /// Evaluations the runtime charged to the winning solve.
        evaluations: u64,
        /// Whether the winning solve met its tolerance.
        converged: bool,
    },
    /// The fit terminated without a usable model.
    Failed(FailureCode),
    /// The log ended (or telemetry was lost) before a terminal event.
    Lost,
}

/// One family fit inside a cell: the `fit_started` → terminal span, with
/// its retry attempts nested inside.
#[derive(Debug, Clone, PartialEq)]
pub struct FitSpan {
    /// Family name.
    pub family: &'static str,
    /// Multi-start pool size (0 when the fit never started, e.g. skipped).
    pub starts: u32,
    /// Attempts in order; empty for fits that never ran (breaker skips).
    pub attempts: Vec<AttemptSpan>,
    /// Terminal state.
    pub outcome: FitOutcome,
    /// Whether a worker panic was attributed to this fit.
    pub panicked: bool,
}

impl FitSpan {
    fn new(family: &'static str) -> Self {
        Self {
            family,
            starts: 0,
            attempts: Vec::new(),
            outcome: FitOutcome::Lost,
            panicked: false,
        }
    }

    /// Objective evaluations attributed to the fit (sum over attempts).
    pub fn evaluations(&self) -> u64 {
        self.attempts.iter().map(|a| a.evaluations).sum()
    }

    /// Retry attempts beyond the first.
    pub fn retries(&self) -> u64 {
        (self.attempts.len() as u64).saturating_sub(1)
    }

    /// Solver iterations attributed to the fit.
    pub fn iterations(&self) -> u64 {
        self.attempts
            .iter()
            .flat_map(|a| &a.solvers)
            .map(|s| s.iterations)
            .sum()
    }
}

/// One fleet cell: the family fits of one series, plus supervision facts.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpan {
    /// Fleet cell index (0 for single-series runs).
    pub cell: u32,
    /// Family fits in replay order.
    pub fits: Vec<FitSpan>,
    /// Failure count at quarantine, when the supervisor parked the cell.
    pub quarantined: Option<u32>,
    /// Circuit-breaker transitions replayed while this cell was current.
    pub breaker_transitions: u64,
    /// Evaluations observed in this cell outside any open fit span.
    pub orphan_evaluations: u64,
}

impl CellSpan {
    fn new(cell: u32) -> Self {
        Self {
            cell,
            fits: Vec::new(),
            quarantined: None,
            breaker_transitions: 0,
            orphan_evaluations: 0,
        }
    }

    /// Objective evaluations attributed to the cell (fits plus orphans).
    pub fn evaluations(&self) -> u64 {
        self.orphan_evaluations + self.fits.iter().map(FitSpan::evaluations).sum::<u64>()
    }

    /// Retry attempts attributed to the cell.
    pub fn retries(&self) -> u64 {
        self.fits.iter().map(FitSpan::retries).sum()
    }

    fn work(&self, metric: WorkMetric) -> u64 {
        match metric {
            WorkMetric::Evaluations => self.evaluations(),
            WorkMetric::Retries => self.retries(),
        }
    }
}

/// The reconstructed hierarchy of one event log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTree {
    /// Cells in replay (flattened job) order.
    pub cells: Vec<CellSpan>,
    /// Latest bootstrap progress seen in the log.
    pub bootstrap: Option<BootstrapProgress>,
    /// Evaluations observed before any cell context existed.
    pub unattributed_evaluations: u64,
    /// Total events consumed.
    pub events: u64,
}

/// Builder state while replaying the log.
struct Builder {
    tree: SpanTree,
    /// Index of the cell currently receiving events.
    current: Option<usize>,
    /// Whether the last fit of the current cell is still open.
    fit_open: bool,
    /// A `retry_scheduled` was seen and the attempt's re-emitted
    /// `fit_started` is expected next.
    awaiting_retry_start: bool,
}

impl Builder {
    fn new() -> Self {
        Self {
            tree: SpanTree::default(),
            current: None,
            fit_open: false,
            awaiting_retry_start: false,
        }
    }

    /// Cell currently receiving events, creating cell 0 on first use.
    fn cell_mut(&mut self) -> &mut CellSpan {
        if self.current.is_none() {
            self.tree.cells.push(CellSpan::new(0));
            self.current = Some(0);
        }
        let i = self.current.expect("current cell set above");
        &mut self.tree.cells[i]
    }

    /// Makes `cell` the current cell, creating intermediate cells as
    /// needed (cell indices from chaos/quarantine events are
    /// authoritative). Any fit left open in another cell lost its
    /// terminal event and is closed as [`FitOutcome::Lost`].
    fn advance_to_cell(&mut self, cell: u32) {
        let idx = cell as usize;
        if self.current == Some(idx) {
            return;
        }
        self.close_open_fit();
        while self.tree.cells.len() <= idx {
            let next = self.tree.cells.len() as u32;
            self.tree.cells.push(CellSpan::new(next));
        }
        self.current = Some(idx);
    }

    /// Starts the next sequential cell (job replay crossed a cell
    /// boundary without an explicit cell-indexed event).
    fn start_next_cell(&mut self) {
        self.close_open_fit();
        let next = self.tree.cells.len() as u32;
        self.tree.cells.push(CellSpan::new(next));
        self.current = Some(self.tree.cells.len() - 1);
    }

    /// Closes a still-open fit as lost (no terminal event arrived).
    fn close_open_fit(&mut self) {
        self.fit_open = false;
        self.awaiting_retry_start = false;
    }

    /// The open fit, if any (always the last fit of the current cell).
    fn open_fit_mut(&mut self) -> Option<&mut FitSpan> {
        if !self.fit_open {
            return None;
        }
        let i = self.current?;
        self.tree.cells[i].fits.last_mut()
    }

    /// Family of the open fit, if any.
    fn open_family(&self) -> Option<&'static str> {
        if !self.fit_open {
            return None;
        }
        let i = self.current?;
        self.tree.cells[i].fits.last().map(|f| f.family)
    }

    /// A new job for `family` is starting: close any open fit (the
    /// previous job is over) and, when the current cell already ran this
    /// family, advance to the next cell. Per-cell family rosters repeat
    /// identically across cells, so a repeated family is exactly the
    /// cell boundary.
    fn job_boundary(&mut self, family: &'static str) {
        if self.open_family().is_some_and(|f| f != family) {
            self.close_open_fit();
        }
        let repeated = self
            .current
            .map(|i| &self.tree.cells[i])
            .is_some_and(|c| c.fits.iter().any(|f| f.family == family));
        if repeated {
            self.start_next_cell();
        }
    }

    /// Opens a fresh fit (with attempt 1 ready for work) and marks it open.
    fn open_fit(&mut self, family: &'static str) -> &mut FitSpan {
        let cell = self.cell_mut();
        let mut fit = FitSpan::new(family);
        fit.attempts.push(AttemptSpan::new(1));
        cell.fits.push(fit);
        self.fit_open = true;
        self.awaiting_retry_start = false;
        self.current
            .and_then(|i| self.tree.cells[i].fits.last_mut())
            .expect("fit pushed above")
    }

    /// The open fit's current attempt, if a fit is open.
    fn attempt_mut(&mut self) -> Option<&mut AttemptSpan> {
        let fit = self.open_fit_mut()?;
        if fit.attempts.is_empty() {
            fit.attempts.push(AttemptSpan::new(1));
        }
        fit.attempts.last_mut()
    }

    /// Charges `delta` evaluations to the innermost open scope.
    fn charge_evaluations(&mut self, delta: u64) {
        if let Some(attempt) = self.attempt_mut() {
            attempt.evaluations += delta;
        } else if self.current.is_some() {
            self.cell_mut().orphan_evaluations += delta;
        } else {
            self.tree.unattributed_evaluations += delta;
        }
    }

    /// The current attempt's open solver span, opening one (and closing a
    /// mismatched predecessor) as needed.
    fn solver_mut(&mut self, solver: SolverKind) -> Option<&mut SolverSpan> {
        let attempt = self.attempt_mut()?;
        let reuse = attempt
            .solvers
            .last()
            .is_some_and(|s| s.exit.is_none() && s.solver.is_none_or(|k| k == solver));
        if !reuse {
            attempt.solvers.push(SolverSpan::new(None));
        }
        let span = attempt.solvers.last_mut().expect("span pushed above");
        span.solver = Some(solver);
        Some(span)
    }

    fn consume(&mut self, event: &Event) {
        self.tree.events += 1;
        match *event {
            Event::FitStarted { family, starts } => {
                let retry = self.awaiting_retry_start && self.open_family() == Some(family);
                if retry {
                    // A retried attempt re-emits fit_started; the attempt
                    // span was already opened by retry_scheduled.
                    self.awaiting_retry_start = false;
                    if let Some(fit) = self.open_fit_mut() {
                        fit.starts = starts;
                    }
                } else {
                    self.job_boundary(family);
                    self.open_fit(family).starts = starts;
                }
            }
            Event::FitFinished {
                family,
                sse,
                evaluations,
                converged,
            } => {
                if self.open_family() != Some(family) {
                    self.job_boundary(family);
                    self.open_fit(family);
                }
                if let Some(fit) = self.open_fit_mut() {
                    fit.outcome = FitOutcome::Completed {
                        sse,
                        evaluations,
                        converged,
                    };
                }
                self.close_open_fit();
            }
            Event::FitFailed { family, kind } => {
                if self.open_family() != Some(family) {
                    // A completed fit the selection layer then rejected
                    // (e.g. a degenerate SSE failing the ranking
                    // criteria) re-terminates as `fit_failed` right
                    // after its `fit_finished`: attach the verdict to
                    // that fit instead of inventing a phantom job.
                    let rejected = !self.fit_open
                        && self
                            .current
                            .and_then(|i| self.tree.cells[i].fits.last())
                            .is_some_and(|f| {
                                f.family == family
                                    && matches!(f.outcome, FitOutcome::Completed { .. })
                            });
                    if rejected {
                        let i = self.current.expect("checked above");
                        let fit = self.tree.cells[i].fits.last_mut().expect("checked above");
                        fit.outcome = FitOutcome::Failed(kind);
                        return;
                    }
                    // A fit that never emitted its own events (breaker
                    // skip, empty-buffer panic): record a closed fit.
                    self.job_boundary(family);
                    let cell = self.cell_mut();
                    cell.fits.push(FitSpan::new(family));
                    self.fit_open = true;
                }
                if let Some(fit) = self.open_fit_mut() {
                    fit.outcome = FitOutcome::Failed(kind);
                }
                self.close_open_fit();
            }
            Event::StartBegan { index } => {
                if let Some(attempt) = self.attempt_mut() {
                    attempt.solvers.push(SolverSpan::new(Some(index)));
                }
            }
            Event::Iteration {
                solver,
                iteration,
                evaluations,
                ..
            } => {
                if let Some(span) = self.solver_mut(solver) {
                    span.iterations = span.iterations.max(iteration);
                    span.evaluations = span.evaluations.max(evaluations);
                }
            }
            Event::Converged {
                solver,
                iterations,
                evaluations,
                value,
                reason,
            } => {
                if let Some(span) = self.solver_mut(solver) {
                    span.iterations = iterations;
                    span.evaluations = evaluations;
                    span.exit = Some(reason);
                    span.value = Some(value);
                }
            }
            Event::RetryScheduled { family, attempt } => {
                if self.open_family() != Some(family) {
                    // Chaos retry-exhaustion jobs schedule retries without
                    // ever reaching fit_started; chaos_injected usually
                    // opened the fit already, but open one defensively.
                    self.job_boundary(family);
                    self.open_fit(family);
                }
                if let Some(fit) = self.open_fit_mut() {
                    fit.attempts.push(AttemptSpan::new(attempt));
                }
                self.awaiting_retry_start = true;
            }
            Event::Stop {
                kind, evaluations, ..
            } => {
                if let Some(attempt) = self.attempt_mut() {
                    attempt.evaluations += evaluations;
                    attempt.stopped = Some(kind);
                } else {
                    self.charge_evaluations(evaluations);
                }
            }
            Event::WorkerPanic { scope, .. } => {
                if self.open_family() != Some(scope) {
                    self.job_boundary(scope);
                    self.open_fit(scope);
                }
                if let Some(fit) = self.open_fit_mut() {
                    fit.panicked = true;
                }
            }
            Event::BootstrapChunkDone {
                done,
                total,
                failed,
            } => {
                self.tree.bootstrap = Some(BootstrapProgress {
                    done,
                    total,
                    failed,
                });
            }
            Event::ChaosInjected { kind, cell, family } => {
                // The carried cell index is authoritative — no roster
                // heuristics here.
                self.advance_to_cell(cell);
                if self.open_family() != Some(family) {
                    self.close_open_fit();
                    self.open_fit(family);
                }
                if let Some(attempt) = self.attempt_mut() {
                    attempt.chaos.push(kind);
                }
            }
            Event::BreakerOpened { .. }
            | Event::BreakerHalfOpen { .. }
            | Event::BreakerClosed { .. } => {
                self.cell_mut().breaker_transitions += 1;
            }
            Event::CellQuarantined { cell, failures } => {
                self.advance_to_cell(cell);
                self.cell_mut().quarantined = Some(failures);
            }
            Event::Counter { id, delta } => {
                if id == CounterId::ObjectiveEvals {
                    self.charge_evaluations(delta);
                }
            }
            Event::Hist { .. } => {}
        }
    }
}

impl SpanTree {
    /// Rebuilds the hierarchy from an event stream.
    pub fn build<'a, I>(events: I) -> SpanTree
    where
        I: IntoIterator<Item = &'a Event>,
    {
        let mut builder = Builder::new();
        for event in events {
            builder.consume(event);
        }
        builder.close_open_fit();
        builder.tree
    }

    /// Total family fits across all cells.
    pub fn fits(&self) -> u64 {
        self.cells.iter().map(|c| c.fits.len() as u64).sum()
    }

    /// Total objective evaluations attributed anywhere in the tree.
    pub fn evaluations(&self) -> u64 {
        self.unattributed_evaluations + self.cells.iter().map(CellSpan::evaluations).sum::<u64>()
    }

    /// Total retry attempts.
    pub fn retries(&self) -> u64 {
        self.cells.iter().map(CellSpan::retries).sum()
    }

    /// The `k` hottest cells by `metric`, hottest first; ties break toward
    /// the lower cell index, so the order is deterministic.
    pub fn hottest_cells(&self, k: usize, metric: WorkMetric) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self
            .cells
            .iter()
            .map(|c| (c.cell, c.work(metric)))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// The `k` hottest families by `metric`, aggregated across cells,
    /// hottest first; ties break toward first-seen order.
    pub fn hottest_families(&self, k: usize, metric: WorkMetric) -> Vec<(&'static str, u64)> {
        let mut v: Vec<(&'static str, u64)> = Vec::new();
        for fit in self.cells.iter().flat_map(|c| &c.fits) {
            let work = match metric {
                WorkMetric::Evaluations => fit.evaluations(),
                WorkMetric::Retries => fit.retries(),
            };
            match v.iter_mut().find(|(name, _)| *name == fit.family) {
                Some((_, total)) => *total += work,
                None => v.push((fit.family, work)),
            }
        }
        v.sort_by_key(|&(_, work)| std::cmp::Reverse(work));
        v.truncate(k);
        v
    }

    /// Renders the tree as indented monospace text. `max_cells` bounds the
    /// number of cells printed (a trailer reports the omitted count);
    /// `max_depth` bounds nesting: 1 = cells, 2 = fits, 3 = attempts,
    /// 4 = solvers.
    pub fn render(&self, max_cells: usize, max_depth: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} cells, {} fits, {} evals, {} retries, {} unattributed evals",
            self.cells.len(),
            self.fits(),
            self.evaluations(),
            self.retries(),
            self.unattributed_evaluations
        );
        for cell in self.cells.iter().take(max_cells) {
            let _ = write!(
                out,
                "cell {}: {} fits, {} evals, {} retries",
                cell.cell,
                cell.fits.len(),
                cell.evaluations(),
                cell.retries()
            );
            if let Some(failures) = cell.quarantined {
                let _ = write!(out, ", QUARANTINED ({failures} failures)");
            }
            if cell.breaker_transitions > 0 {
                let _ = write!(out, ", {} breaker transitions", cell.breaker_transitions);
            }
            if cell.orphan_evaluations > 0 {
                let _ = write!(out, ", {} orphan evals", cell.orphan_evaluations);
            }
            out.push('\n');
            if max_depth < 2 {
                continue;
            }
            for fit in &cell.fits {
                let _ = write!(
                    out,
                    "  {}: evals={} attempts={}",
                    fit.family,
                    fit.evaluations(),
                    fit.attempts.len()
                );
                match &fit.outcome {
                    FitOutcome::Completed { sse, converged, .. } => {
                        let _ = write!(
                            out,
                            " ok sse={sse:.4e}{}",
                            if *converged { " converged" } else { "" }
                        );
                    }
                    FitOutcome::Failed(kind) => {
                        let _ = write!(out, " failed({})", kind.as_str());
                    }
                    FitOutcome::Lost => out.push_str(" lost"),
                }
                if fit.panicked {
                    out.push_str(" panicked");
                }
                out.push('\n');
                if max_depth < 3 {
                    continue;
                }
                for attempt in &fit.attempts {
                    let _ = write!(
                        out,
                        "    attempt {}: evals={}",
                        attempt.attempt, attempt.evaluations
                    );
                    if let Some(kind) = attempt.stopped {
                        let _ = write!(out, " stopped({})", kind.as_str());
                    }
                    for kind in &attempt.chaos {
                        let _ = write!(out, " chaos({})", kind.as_str());
                    }
                    out.push('\n');
                    if max_depth < 4 {
                        continue;
                    }
                    for span in &attempt.solvers {
                        let solver = span.solver.map_or("?", SolverKind::as_str);
                        let _ = write!(out, "      {solver}");
                        if let Some(i) = span.start_index {
                            let _ = write!(out, " start {i}");
                        }
                        let _ = write!(
                            out,
                            ": iters={} evals={}",
                            span.iterations, span.evaluations
                        );
                        if let Some(exit) = span.exit {
                            let _ = write!(out, " exit={}", exit.as_str());
                        }
                        out.push('\n');
                    }
                }
            }
        }
        if self.cells.len() > max_cells {
            let _ = writeln!(out, "... ({} more cells)", self.cells.len() - max_cells);
        }
        if let Some(b) = self.bootstrap {
            let _ = writeln!(
                out,
                "bootstrap: {}/{} replicates ({} failed)",
                b.done, b.total, b.failed
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::HistogramId;
    use crate::parse::intern;

    fn started(family: &'static str) -> Event {
        Event::FitStarted { family, starts: 4 }
    }

    fn evals(delta: u64) -> Event {
        Event::Counter {
            id: CounterId::ObjectiveEvals,
            delta,
        }
    }

    fn finished(family: &'static str, evaluations: u64) -> Event {
        Event::FitFinished {
            family,
            sse: 1.0,
            evaluations,
            converged: true,
        }
    }

    #[test]
    fn selection_rejection_reterminates_the_completed_fit() {
        let q = intern("Quadratic");
        let g = intern("Glacial");
        let events = vec![
            started(q),
            evals(7),
            finished(q, 7),
            // The selection layer rejected the numerically-complete fit:
            // a trailing verdict for the same job, not a new one.
            Event::FitFailed {
                family: q,
                kind: FailureCode::Error,
            },
            started(g),
            evals(5),
            finished(g, 5),
            // The next cell reuses the roster — still exactly two cells.
            started(q),
            evals(3),
            finished(q, 3),
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.cells.len(), 2);
        assert_eq!(tree.cells[0].fits.len(), 2);
        let fit = &tree.cells[0].fits[0];
        assert_eq!(fit.outcome, FitOutcome::Failed(FailureCode::Error));
        assert_eq!(fit.evaluations(), 7, "rejected fit keeps its work");
        assert_eq!(tree.cells[1].fits.len(), 1);
    }

    #[test]
    fn rebuilds_cells_from_repeated_family_rosters() {
        let q = intern("Quadratic");
        let g = intern("Glacial");
        // Two cells x two families; the repeated roster is the boundary.
        let events = vec![
            started(q),
            evals(10),
            finished(q, 10),
            started(g),
            evals(20),
            finished(g, 20),
            started(q),
            evals(30),
            finished(q, 30),
            started(g),
            evals(40),
            finished(g, 40),
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.cells.len(), 2);
        assert_eq!(tree.fits(), 4);
        assert_eq!(tree.cells[0].evaluations(), 30);
        assert_eq!(tree.cells[1].evaluations(), 70);
        assert_eq!(tree.evaluations(), 100);
        assert_eq!(tree.retries(), 0);
        assert_eq!(
            tree.hottest_cells(5, WorkMetric::Evaluations),
            vec![(1, 70), (0, 30)]
        );
        assert_eq!(
            tree.hottest_families(1, WorkMetric::Evaluations),
            vec![(g, 60)]
        );
    }

    #[test]
    fn retry_reemits_fit_started_within_the_same_fit() {
        let q = intern("Quadratic");
        let events = vec![
            started(q),
            Event::Stop {
                scope: intern("nelder_mead"),
                kind: StopKind::Deadline,
                evaluations: 7,
            },
            Event::RetryScheduled {
                family: q,
                attempt: 2,
            },
            started(q), // re-emission for attempt 2, NOT a new cell
            evals(13),
            finished(q, 13),
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.cells.len(), 1);
        let fit = &tree.cells[0].fits[0];
        assert_eq!(fit.attempts.len(), 2);
        assert_eq!(fit.attempts[0].evaluations, 7);
        assert_eq!(fit.attempts[0].stopped, Some(StopKind::Deadline));
        assert_eq!(fit.attempts[1].evaluations, 13);
        assert_eq!(fit.evaluations(), 20);
        assert_eq!(fit.retries(), 1);
        assert!(matches!(fit.outcome, FitOutcome::Completed { .. }));
    }

    #[test]
    fn solver_spans_nest_inside_attempts() {
        let q = intern("Quadratic");
        let events = vec![
            started(q),
            Event::StartBegan { index: 0 },
            Event::Iteration {
                solver: SolverKind::NelderMead,
                iteration: 5,
                evaluations: 12,
                best: 2.0,
            },
            Event::Converged {
                solver: SolverKind::NelderMead,
                iterations: 9,
                evaluations: 20,
                value: 1.5,
                reason: ExitReason::Converged,
            },
            Event::Converged {
                solver: SolverKind::LevenbergMarquardt,
                iterations: 3,
                evaluations: 9,
                value: 1.0,
                reason: ExitReason::Converged,
            },
            evals(29),
            finished(q, 29),
        ];
        let tree = SpanTree::build(&events);
        let attempt = &tree.cells[0].fits[0].attempts[0];
        assert_eq!(attempt.solvers.len(), 2);
        assert_eq!(attempt.solvers[0].solver, Some(SolverKind::NelderMead));
        assert_eq!(attempt.solvers[0].start_index, Some(0));
        assert_eq!(attempt.solvers[0].iterations, 9);
        assert_eq!(attempt.solvers[0].exit, Some(ExitReason::Converged));
        assert_eq!(
            attempt.solvers[1].solver,
            Some(SolverKind::LevenbergMarquardt)
        );
        assert_eq!(attempt.solvers[1].start_index, None);
        assert_eq!(tree.cells[0].fits[0].iterations(), 12);
    }

    #[test]
    fn chaos_skip_and_quarantine_shapes() {
        let q = intern("Quadratic");
        let g = intern("Glacial");
        let events = vec![
            // Cell 0: retry-exhaustion chaos on Quadratic — no fit_started
            // at all, just chaos, a scheduled retry, and the verdict.
            Event::ChaosInjected {
                kind: ChaosKind::Exhaustion,
                cell: 0,
                family: q,
            },
            Event::Counter {
                id: CounterId::ChaosInjected,
                delta: 1,
            },
            Event::RetryScheduled {
                family: q,
                attempt: 2,
            },
            Event::FitFailed {
                family: q,
                kind: FailureCode::Error,
            },
            // Glacial was skipped by an open breaker: verdict only.
            Event::FitFailed {
                family: g,
                kind: FailureCode::Skipped,
            },
            Event::BreakerOpened {
                family: q,
                consecutive: 2,
                clock: 0,
            },
            Event::CellQuarantined {
                cell: 0,
                failures: 2,
            },
            // Cell 1 runs clean.
            started(q),
            evals(11),
            finished(q, 11),
            started(g),
            evals(5),
            finished(g, 5),
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.cells.len(), 2);
        let c0 = &tree.cells[0];
        assert_eq!(c0.quarantined, Some(2));
        assert_eq!(c0.breaker_transitions, 1);
        assert_eq!(c0.fits.len(), 2);
        let exhausted = &c0.fits[0];
        assert_eq!(exhausted.family, q);
        assert_eq!(exhausted.attempts.len(), 2);
        assert_eq!(exhausted.attempts[0].chaos, vec![ChaosKind::Exhaustion]);
        assert_eq!(exhausted.outcome, FitOutcome::Failed(FailureCode::Error));
        let skipped = &c0.fits[1];
        assert!(skipped.attempts.is_empty());
        assert_eq!(skipped.outcome, FitOutcome::Failed(FailureCode::Skipped));
        assert_eq!(tree.cells[1].evaluations(), 16);
        assert_eq!(tree.hottest_cells(1, WorkMetric::Retries), vec![(0, 1)]);
        let rendered = tree.render(10, 4);
        assert!(rendered.contains("QUARANTINED (2 failures)"), "{rendered}");
        assert!(rendered.contains("failed(skipped)"), "{rendered}");
        assert!(rendered.contains("chaos(exhaustion)"), "{rendered}");
    }

    #[test]
    fn observer_loss_leaves_a_lost_fit() {
        let q = intern("Quadratic");
        let events = vec![
            // Cell 0: the observer was dropped after chaos_injected; the
            // job's own telemetry never reached the log.
            Event::ChaosInjected {
                kind: ChaosKind::ObserverLoss,
                cell: 0,
                family: q,
            },
            // Cell 1 (single-family roster): same family again.
            Event::ChaosInjected {
                kind: ChaosKind::ObserverLoss,
                cell: 1,
                family: q,
            },
            // Cell 2 runs clean.
            started(q),
            evals(3),
            finished(q, 3),
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.cells.len(), 3);
        assert_eq!(tree.cells[0].fits[0].outcome, FitOutcome::Lost);
        assert_eq!(tree.cells[1].fits[0].outcome, FitOutcome::Lost);
        assert!(matches!(
            tree.cells[2].fits[0].outcome,
            FitOutcome::Completed { .. }
        ));
    }

    #[test]
    fn panic_verdicts_attach_to_the_failing_fit() {
        let q = intern("Quadratic");
        let events = vec![
            Event::ChaosInjected {
                kind: ChaosKind::Panic,
                cell: 0,
                family: q,
            },
            Event::WorkerPanic { scope: q, index: 0 },
            Event::FitFailed {
                family: q,
                kind: FailureCode::Panicked,
            },
        ];
        let tree = SpanTree::build(&events);
        let fit = &tree.cells[0].fits[0];
        assert!(fit.panicked);
        assert_eq!(fit.outcome, FitOutcome::Failed(FailureCode::Panicked));
        assert_eq!(fit.attempts[0].chaos, vec![ChaosKind::Panic]);
    }

    #[test]
    fn work_outside_any_cell_is_unattributed() {
        let events = vec![
            evals(9),
            Event::Hist {
                id: HistogramId::EvalsPerFit,
                value: 9,
            },
        ];
        let tree = SpanTree::build(&events);
        assert!(tree.cells.is_empty());
        assert_eq!(tree.unattributed_evaluations, 9);
        assert_eq!(tree.evaluations(), 9);
        assert_eq!(tree.events, 2);
        let rendered = tree.render(5, 4);
        assert!(rendered.contains("9 unattributed evals"), "{rendered}");
    }
}
