//! Live metrics registry and deterministic Prometheus-style exposition.
//!
//! Two entry points share one snapshot type:
//!
//! * [`MetricsRegistry`] is an [`Observer`] that folds counter, histogram,
//!   stop, and bootstrap events into totals *while a run executes* — the
//!   in-process state a `/metrics` endpoint scrapes. It tracks global
//!   totals only; per-family attribution needs span context and is the
//!   report's job.
//! * [`MetricsSnapshot::from_report`] converts a finished [`RunReport`]
//!   (aggregated from a recorded or parsed log) into the same snapshot,
//!   including per-family series.
//!
//! [`MetricsSnapshot::render`] emits the text exposition format. The output
//! is a pure function of the snapshot: metric families appear in canonical
//! id order, every counter is printed (zeros included) so the shape never
//! depends on which events happened to fire, and only integer-valued
//! series are exposed — which keeps the bytes identical across runs and
//! platforms and lets CI `cmp` the file against a golden copy.

use crate::event::{CounterId, Event, HistogramId, StopKind};
use crate::observer::Observer;
use crate::report::{BootstrapProgress, FamilyStats, Histogram, RunReport};
use std::fmt::Write as _;
use std::sync::Mutex;

/// Prefix for every exposed metric name.
const PREFIX: &str = "resilience_";

struct RegistryState {
    counters: [u64; CounterId::ALL.len()],
    histograms: [Histogram; HistogramId::ALL.len()],
    bootstrap: Option<BootstrapProgress>,
    events: u64,
}

/// An [`Observer`] that maintains live counter/histogram totals.
///
/// Attach it (typically inside a `TeeObserver` next to the JSONL sink) and
/// call [`MetricsRegistry::snapshot`] at any point to export current
/// totals. Counter semantics mirror [`RunReport::from_events`]: `Stop`
/// events charge their carried evaluations to `objective_evals` and bump
/// `timeouts`/`cancellations`, so a registry snapshot agrees with the
/// report built from the same log.
pub struct MetricsRegistry {
    state: Mutex<RegistryState>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(RegistryState {
                counters: [0; CounterId::ALL.len()],
                histograms: std::array::from_fn(|_| Histogram::default()),
                bootstrap: None,
                events: 0,
            }),
        }
    }

    /// Copies the current totals out of the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let state = self.state.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: state.counters,
            histograms: state.histograms.clone(),
            families: Vec::new(),
            bootstrap: state.bootstrap,
            events: state.events,
        }
    }
}

fn counter_slot(id: CounterId) -> usize {
    CounterId::ALL
        .iter()
        .position(|c| *c == id)
        .expect("id is in ALL")
}

fn hist_slot(id: HistogramId) -> usize {
    HistogramId::ALL
        .iter()
        .position(|h| *h == id)
        .expect("id is in ALL")
}

impl Observer for MetricsRegistry {
    fn record(&self, event: &Event) {
        let mut state = self.state.lock().expect("metrics registry poisoned");
        state.events += 1;
        match *event {
            Event::Counter { id, delta } => {
                state.counters[counter_slot(id)] += delta;
            }
            Event::Hist { id, value } => {
                state.histograms[hist_slot(id)].observe(value);
            }
            Event::Stop {
                kind, evaluations, ..
            } => {
                state.counters[counter_slot(CounterId::ObjectiveEvals)] += evaluations;
                let id = match kind {
                    StopKind::Deadline => CounterId::Timeouts,
                    StopKind::Cancelled => CounterId::Cancellations,
                };
                state.counters[counter_slot(id)] += 1;
            }
            Event::BootstrapChunkDone {
                done,
                total,
                failed,
            } => {
                state.bootstrap = Some(BootstrapProgress {
                    done,
                    total,
                    failed,
                });
            }
            _ => {}
        }
    }
}

/// Point-in-time totals ready for text exposition.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Every counter total in [`CounterId::ALL`] order, zeros included.
    pub counters: [u64; CounterId::ALL.len()],
    /// Every histogram in [`HistogramId::ALL`] order, empties included.
    pub histograms: [Histogram; HistogramId::ALL.len()],
    /// Per-family totals (empty for live registry snapshots).
    pub families: Vec<FamilyStats>,
    /// Latest bootstrap progress, if any.
    pub bootstrap: Option<BootstrapProgress>,
    /// Events consumed.
    pub events: u64,
}

impl MetricsSnapshot {
    /// Builds a snapshot (including per-family series) from an aggregated
    /// report.
    pub fn from_report(report: &RunReport) -> MetricsSnapshot {
        let mut counters = [0u64; CounterId::ALL.len()];
        for (id, v) in &report.counters {
            counters[counter_slot(*id)] = *v;
        }
        let mut histograms: [Histogram; HistogramId::ALL.len()] =
            std::array::from_fn(|_| Histogram::default());
        for (id, h) in &report.histograms {
            histograms[hist_slot(*id)] = h.clone();
        }
        MetricsSnapshot {
            counters,
            histograms,
            families: report.families.clone(),
            bootstrap: report.bootstrap,
            events: report.events,
        }
    }

    /// Total for one counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[counter_slot(id)]
    }

    /// Renders the Prometheus-style text exposition.
    ///
    /// Deterministic by construction: fixed metric order, all counters
    /// printed, integer values only. Histograms emit cumulative
    /// power-of-two `_bucket{le="..."}` series plus `_sum`/`_count`, and —
    /// when non-empty — `_p50`/`_p90`/`_p99` gauges from
    /// [`Histogram::quantile`].
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);

        let _ = writeln!(out, "# TYPE {PREFIX}events_total counter");
        let _ = writeln!(out, "{PREFIX}events_total {}", self.events);

        for (slot, id) in CounterId::ALL.into_iter().enumerate() {
            let name = id.as_str();
            let _ = writeln!(out, "# TYPE {PREFIX}{name}_total counter");
            let _ = writeln!(out, "{PREFIX}{name}_total {}", self.counters[slot]);
        }

        for (slot, id) in HistogramId::ALL.into_iter().enumerate() {
            let name = id.as_str();
            let h = &self.histograms[slot];
            let _ = writeln!(out, "# TYPE {PREFIX}{name} histogram");
            let mut cumulative = 0u64;
            for (i, n) in h.buckets.iter().enumerate() {
                cumulative += n;
                if i + 1 == h.buckets.len() {
                    let _ = writeln!(out, "{PREFIX}{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                } else {
                    let _ = writeln!(
                        out,
                        "{PREFIX}{name}_bucket{{le=\"{}\"}} {cumulative}",
                        Histogram::bucket_upper_bound(i)
                    );
                }
            }
            let _ = writeln!(out, "{PREFIX}{name}_sum {}", h.sum);
            let _ = writeln!(out, "{PREFIX}{name}_count {}", h.count);
            if h.count > 0 {
                for (q, v) in [("p50", h.p50()), ("p90", h.p90()), ("p99", h.p99())] {
                    let v = v.expect("non-empty histogram has quantiles");
                    let _ = writeln!(out, "# TYPE {PREFIX}{name}_{q} gauge");
                    let _ = writeln!(out, "{PREFIX}{name}_{q} {v}");
                }
            }
        }

        if !self.families.is_empty() {
            type StatColumn = (&'static str, fn(&FamilyStats) -> u64);
            let stats: [StatColumn; 7] = [
                ("family_fits_started_total", |f| f.fits_started),
                ("family_fits_completed_total", |f| f.fits_completed),
                ("family_converged_fits_total", |f| f.converged_fits),
                ("family_iterations_total", |f| f.iterations),
                ("family_evaluations_total", |f| f.evaluations),
                ("family_retries_total", |f| f.retries),
                ("family_failures_total", FamilyStats::failures),
            ];
            for (name, get) in stats {
                let _ = writeln!(out, "# TYPE {PREFIX}{name} counter");
                for f in &self.families {
                    let _ = writeln!(out, "{PREFIX}{name}{{family=\"{}\"}} {}", f.name, get(f));
                }
            }
        }

        if let Some(b) = self.bootstrap {
            let _ = writeln!(out, "# TYPE {PREFIX}bootstrap_replicates gauge");
            let _ = writeln!(
                out,
                "{PREFIX}bootstrap_replicates{{state=\"done\"}} {}",
                b.done
            );
            let _ = writeln!(
                out,
                "{PREFIX}bootstrap_replicates{{state=\"total\"}} {}",
                b.total
            );
            let _ = writeln!(
                out,
                "{PREFIX}bootstrap_replicates{{state=\"failed\"}} {}",
                b.failed
            );
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FailureCode;
    use crate::parse::intern;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Counter {
                id: CounterId::ObjectiveEvals,
                delta: 30,
            },
            Event::Hist {
                id: HistogramId::EvalsPerFit,
                value: 30,
            },
            Event::Stop {
                scope: intern("nelder_mead"),
                kind: StopKind::Deadline,
                evaluations: 4,
            },
            Event::BootstrapChunkDone {
                done: 2,
                total: 8,
                failed: 1,
            },
        ]
    }

    #[test]
    fn registry_totals_agree_with_report() {
        let registry = MetricsRegistry::new();
        for e in sample_events() {
            registry.record(&e);
        }
        let snap = registry.snapshot();
        let report = RunReport::from_events(sample_events());
        assert_eq!(snap.events, report.events);
        for id in CounterId::ALL {
            assert_eq!(snap.counter(id), report.counter(id), "{}", id.as_str());
        }
        assert_eq!(snap.counter(CounterId::ObjectiveEvals), 34);
        assert_eq!(snap.counter(CounterId::Timeouts), 1);
        assert_eq!(snap.bootstrap, report.bootstrap);
    }

    #[test]
    fn exposition_is_deterministic_and_complete() {
        let registry = MetricsRegistry::new();
        for e in sample_events() {
            registry.record(&e);
        }
        let text = registry.snapshot().render();
        // Every counter appears, including ones that never fired.
        for id in CounterId::ALL {
            assert!(
                text.contains(&format!("resilience_{}_total ", id.as_str())),
                "missing {}",
                id.as_str()
            );
        }
        assert!(
            text.contains("resilience_objective_evals_total 34"),
            "{text}"
        );
        // Cumulative buckets: value 30 has bit length 5, so buckets below
        // le=31 hold 0 and everything from le=31 on holds 1.
        assert!(text.contains("resilience_evals_per_fit_bucket{le=\"15\"} 0"));
        assert!(text.contains("resilience_evals_per_fit_bucket{le=\"31\"} 1"));
        assert!(text.contains("resilience_evals_per_fit_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("resilience_evals_per_fit_sum 30"));
        assert!(text.contains("resilience_evals_per_fit_count 1"));
        assert!(text.contains("resilience_evals_per_fit_p50 30"));
        assert!(text.contains("resilience_bootstrap_replicates{state=\"done\"} 2"));
        // Rendering twice yields identical bytes.
        assert_eq!(text, registry.snapshot().render());
    }

    #[test]
    fn from_report_carries_family_series() {
        let report = RunReport::from_events(vec![
            Event::FitStarted {
                family: intern("Quadratic"),
                starts: 2,
            },
            Event::Counter {
                id: CounterId::ObjectiveEvals,
                delta: 12,
            },
            Event::FitFinished {
                family: intern("Quadratic"),
                sse: 1.0,
                evaluations: 12,
                converged: true,
            },
            Event::FitFailed {
                family: intern("Glacial"),
                kind: FailureCode::Skipped,
            },
        ]);
        let text = MetricsSnapshot::from_report(&report).render();
        assert!(
            text.contains("resilience_family_evaluations_total{family=\"Quadratic\"} 12"),
            "{text}"
        );
        assert!(
            text.contains("resilience_family_failures_total{family=\"Glacial\"} 1"),
            "{text}"
        );
        // Live snapshots have no family series; report snapshots do, and
        // the global totals agree between the two paths.
        let registry = MetricsRegistry::new();
        registry.record(&Event::Counter {
            id: CounterId::ObjectiveEvals,
            delta: 12,
        });
        assert_eq!(
            registry.snapshot().counter(CounterId::ObjectiveEvals),
            MetricsSnapshot::from_report(&report).counter(CounterId::ObjectiveEvals)
        );
    }
}
