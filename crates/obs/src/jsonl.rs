//! JSONL sink: one event per line, flat JSON objects, append-only.
//!
//! The writer is generic over `W: Write + Send` so tests can capture into a
//! `Vec<u8>` while production code wraps a `BufWriter<File>`. Encoding is
//! deterministic — key order is fixed by [`Event::write_json`] and floats use
//! the shortest round-trip representation — so two runs that emit the same
//! events produce byte-identical files.

use crate::event::Event;
use crate::observer::Observer;
use std::io::Write;
use std::sync::Mutex;

/// An [`Observer`] that encodes each event as one JSON line into `W`.
pub struct JsonlObserver<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlObserver<W> {
    /// Wraps `writer`; every recorded event becomes one line.
    pub fn new(writer: W) -> Self {
        Self {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner().expect("jsonl observer poisoned");
        let _ = w.flush();
        w
    }
}

impl JsonlObserver<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) `path` and returns a buffered file sink.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(std::io::BufWriter::new(file)))
    }
}

impl<W: Write + Send> Observer for JsonlObserver<W> {
    fn record(&self, event: &Event) {
        let mut line = String::with_capacity(96);
        event.write_json(&mut line);
        line.push('\n');
        let mut w = self.writer.lock().expect("jsonl observer poisoned");
        // Telemetry must never abort the computation it observes; a full
        // disk degrades to a truncated log.
        let _ = w.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl observer poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterId, Event};

    #[test]
    fn writes_one_line_per_event() {
        let sink = JsonlObserver::new(Vec::new());
        sink.record(&Event::StartBegan { index: 0 });
        sink.record(&Event::Counter {
            id: CounterId::ObjectiveEvals,
            delta: 12,
        });
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(
            text,
            "{\"ev\":\"start\",\"index\":0}\n\
             {\"ev\":\"counter\",\"id\":\"objective_evals\",\"n\":12}\n"
        );
    }
}
