//! JSONL sink: one event per line, flat JSON objects, append-only.
//!
//! The writer is generic over `W: Write + Send` so tests can capture into a
//! `Vec<u8>` while production code wraps a `BufWriter<File>`. Encoding is
//! deterministic — key order is fixed by [`Event::write_json`] and floats use
//! the shortest round-trip representation — so two runs that emit the same
//! events produce byte-identical files.
//!
//! The encode buffer lives under the same mutex as the writer and is reused
//! across events, so the steady-state record path performs zero heap
//! allocations (pinned by the counting-allocator test in
//! `tests/allocations.rs`). Write failures never abort the computation being
//! observed; they are counted as dropped lines instead so a truncated log is
//! detectable after the fact.

use crate::event::Event;
use crate::observer::Observer;
use std::io::Write;
use std::sync::Mutex;

/// Writer, reusable line buffer, and drop accounting — one lock for all
/// three keeps lines atomic and lets `record` encode without allocating.
struct Inner<W> {
    writer: W,
    line: String,
    dropped_lines: u64,
}

/// An [`Observer`] that encodes each event as one JSON line into `W`.
pub struct JsonlObserver<W: Write + Send> {
    inner: Mutex<Inner<W>>,
}

impl<W: Write + Send> JsonlObserver<W> {
    /// Wraps `writer`; every recorded event becomes one line.
    pub fn new(writer: W) -> Self {
        Self {
            inner: Mutex::new(Inner {
                writer,
                line: String::with_capacity(96),
                dropped_lines: 0,
            }),
        }
    }

    /// Number of events whose line could not be fully persisted because the
    /// underlying writer failed (write or flush error). A non-zero value
    /// means the log is truncated or corrupt and should not be trusted for
    /// byte-identity comparisons.
    pub fn dropped_lines(&self) -> u64 {
        self.inner
            .lock()
            .expect("jsonl observer poisoned")
            .dropped_lines
    }

    /// Flushes and returns the inner writer along with the dropped-line
    /// count (a final flush failure counts as one more drop).
    pub fn into_parts(self) -> (W, u64) {
        let mut inner = self.inner.into_inner().expect("jsonl observer poisoned");
        if inner.writer.flush().is_err() {
            inner.dropped_lines += 1;
        }
        (inner.writer, inner.dropped_lines)
    }

    /// Flushes and returns the inner writer, discarding drop accounting.
    pub fn into_inner(self) -> W {
        self.into_parts().0
    }
}

impl JsonlObserver<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) `path` and returns a buffered file sink.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(std::io::BufWriter::new(file)))
    }
}

impl<W: Write + Send> Observer for JsonlObserver<W> {
    fn record(&self, event: &Event) {
        let mut inner = self.inner.lock().expect("jsonl observer poisoned");
        let inner = &mut *inner;
        inner.line.clear();
        event.write_json(&mut inner.line);
        inner.line.push('\n');
        // Telemetry must never abort the computation it observes; a full
        // disk degrades to a truncated log with the loss counted.
        if inner.writer.write_all(inner.line.as_bytes()).is_err() {
            inner.dropped_lines += 1;
        }
    }

    fn flush(&self) {
        let mut inner = self.inner.lock().expect("jsonl observer poisoned");
        if inner.writer.flush().is_err() {
            inner.dropped_lines += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterId, Event};

    #[test]
    fn writes_one_line_per_event() {
        let sink = JsonlObserver::new(Vec::new());
        sink.record(&Event::StartBegan { index: 0 });
        sink.record(&Event::Counter {
            id: CounterId::ObjectiveEvals,
            delta: 12,
        });
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(
            text,
            "{\"ev\":\"start\",\"index\":0}\n\
             {\"ev\":\"counter\",\"id\":\"objective_evals\",\"n\":12}\n"
        );
    }

    /// Writer that accepts `budget` bytes and then fails every operation.
    struct FailingWriter {
        budget: usize,
        written: Vec<u8>,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.len() > self.budget {
                return Err(std::io::Error::other("disk full"));
            }
            self.budget -= buf.len();
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            if self.budget == 0 {
                Err(std::io::Error::other("disk full"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn failing_writer_counts_dropped_lines() {
        let event = Event::StartBegan { index: 7 };
        let line_len = event.to_json().len() + 1;
        let sink = JsonlObserver::new(FailingWriter {
            budget: line_len, // exactly one line fits
            written: Vec::new(),
        });
        sink.record(&event);
        assert_eq!(sink.dropped_lines(), 0);
        sink.record(&event);
        sink.record(&event);
        assert_eq!(sink.dropped_lines(), 2);
        // The final flush fails too (budget exhausted) and is counted.
        let (writer, dropped) = sink.into_parts();
        assert_eq!(dropped, 3);
        assert_eq!(writer.written.len(), line_len);
    }

    #[test]
    fn healthy_writer_reports_zero_drops() {
        let sink = JsonlObserver::new(Vec::new());
        sink.record(&Event::StartBegan { index: 0 });
        sink.flush();
        assert_eq!(sink.dropped_lines(), 0);
        let (bytes, dropped) = sink.into_parts();
        assert_eq!(dropped, 0);
        assert!(!bytes.is_empty());
    }
}
