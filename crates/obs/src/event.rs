//! The telemetry event vocabulary.
//!
//! Every observable fact in the fitting pipeline is one [`Event`] value.
//! Events are `Copy`, carry only stack data (`&'static str` names, integer
//! logical clocks, `f64` objective values), and **never** contain wall-clock
//! timestamps — determinism across serial and parallel runs depends on it.
//! Position in the log, iteration indices, and evaluation counters are the
//! only notions of time.

use std::fmt::Write as _;

/// Which solver emitted a solver-scoped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Nelder–Mead downhill simplex.
    NelderMead,
    /// Levenberg–Marquardt damped least squares.
    LevenbergMarquardt,
    /// Differential evolution.
    DifferentialEvolution,
    /// Simulated annealing.
    Annealing,
    /// Multi-start driver wrapping Nelder–Mead.
    MultiStart,
}

impl SolverKind {
    /// Stable short tag used in the JSONL encoding.
    pub const fn as_str(self) -> &'static str {
        match self {
            SolverKind::NelderMead => "nm",
            SolverKind::LevenbergMarquardt => "lm",
            SolverKind::DifferentialEvolution => "de",
            SolverKind::Annealing => "sa",
            SolverKind::MultiStart => "ms",
        }
    }

    /// Inverse of [`SolverKind::as_str`].
    pub fn parse(s: &str) -> Option<SolverKind> {
        Some(match s {
            "nm" => SolverKind::NelderMead,
            "lm" => SolverKind::LevenbergMarquardt,
            "de" => SolverKind::DifferentialEvolution,
            "sa" => SolverKind::Annealing,
            "ms" => SolverKind::MultiStart,
            _ => return None,
        })
    }
}

/// Why a solver or fit stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopKind {
    /// The deadline in the governing `Control` passed.
    Deadline,
    /// The cancellation token in the governing `Control` fired.
    Cancelled,
}

impl StopKind {
    /// Stable event tag; doubles as the JSONL `"ev"` value for stop events.
    pub const fn as_str(self) -> &'static str {
        match self {
            StopKind::Deadline => "deadline_exceeded",
            StopKind::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`StopKind::as_str`].
    pub fn parse(s: &str) -> Option<StopKind> {
        Some(match s {
            "deadline_exceeded" => StopKind::Deadline,
            "cancelled" => StopKind::Cancelled,
            _ => return None,
        })
    }
}

/// Terminal classification of a failed family fit (mirrors the runtime's
/// `FailureKind` without depending on the core crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureCode {
    /// Deterministic fit error (bad inputs, no usable starts, ...).
    Error,
    /// The family exhausted its wall-clock budget.
    TimedOut,
    /// The run was cancelled while this family was fitting.
    Cancelled,
    /// The family's objective panicked.
    Panicked,
    /// The fit was never attempted: the family's circuit breaker was
    /// open when the job was scheduled (see `DESIGN.md` §14).
    Skipped,
}

impl FailureCode {
    /// Stable string tag used in the JSONL encoding.
    pub const fn as_str(self) -> &'static str {
        match self {
            FailureCode::Error => "error",
            FailureCode::TimedOut => "timed_out",
            FailureCode::Cancelled => "cancelled",
            FailureCode::Panicked => "panicked",
            FailureCode::Skipped => "skipped",
        }
    }

    /// Inverse of [`FailureCode::as_str`].
    pub fn parse(s: &str) -> Option<FailureCode> {
        Some(match s {
            "error" => FailureCode::Error,
            "timed_out" => FailureCode::TimedOut,
            "cancelled" => FailureCode::Cancelled,
            "panicked" => FailureCode::Panicked,
            "skipped" => FailureCode::Skipped,
            _ => return None,
        })
    }
}

/// Which fault a [`Event::ChaosInjected`] record injected.
///
/// Mirrors the runtime's `ChaosFault` without depending on the core crate
/// (the same layering as [`FailureCode`] vs `FailureKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosKind {
    /// The job's fit closure was forced to panic.
    Panic,
    /// The job's deadline was collapsed to zero before fitting.
    Deadline,
    /// One fit attempt was failed with a transient error (retryable).
    Transient,
    /// Every fit attempt was failed, exhausting the retry schedule.
    Exhaustion,
    /// The job's observer was dropped (telemetry loss, result kept).
    ObserverLoss,
}

impl ChaosKind {
    /// Every chaos fault kind, in canonical (report) order.
    pub const ALL: [ChaosKind; 5] = [
        ChaosKind::Panic,
        ChaosKind::Deadline,
        ChaosKind::Transient,
        ChaosKind::Exhaustion,
        ChaosKind::ObserverLoss,
    ];

    /// Stable string tag used in the JSONL encoding.
    pub const fn as_str(self) -> &'static str {
        match self {
            ChaosKind::Panic => "panic",
            ChaosKind::Deadline => "deadline",
            ChaosKind::Transient => "transient",
            ChaosKind::Exhaustion => "exhaustion",
            ChaosKind::ObserverLoss => "observer_loss",
        }
    }

    /// Inverse of [`ChaosKind::as_str`].
    pub fn parse(s: &str) -> Option<ChaosKind> {
        ChaosKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

/// Why a solver terminated normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitReason {
    /// The convergence tolerance was met.
    Converged,
    /// The iteration budget ran out first.
    MaxIterations,
    /// Progress stalled before the tolerance was met.
    Stalled,
}

impl ExitReason {
    /// Stable string tag used in the JSONL encoding.
    pub const fn as_str(self) -> &'static str {
        match self {
            ExitReason::Converged => "converged",
            ExitReason::MaxIterations => "max_iterations",
            ExitReason::Stalled => "stalled",
        }
    }

    /// Inverse of [`ExitReason::as_str`].
    pub fn parse(s: &str) -> Option<ExitReason> {
        Some(match s {
            "converged" => ExitReason::Converged,
            "max_iterations" => ExitReason::MaxIterations,
            "stalled" => ExitReason::Stalled,
            _ => return None,
        })
    }
}

/// Identifier of a monotonic counter.
///
/// Counters are batched inside solvers as plain integer locals and flushed
/// as [`Event::Counter`] deltas at solver termination, so the hot path never
/// pays for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CounterId {
    /// Objective-function evaluations.
    ObjectiveEvals,
    /// Nelder–Mead reflection steps accepted.
    NmReflections,
    /// Nelder–Mead expansion steps accepted.
    NmExpansions,
    /// Nelder–Mead contraction steps accepted.
    NmContractions,
    /// Nelder–Mead full-simplex shrinks.
    NmShrinks,
    /// Levenberg–Marquardt damping increases (rejected / failed steps).
    LmDampingUp,
    /// Levenberg–Marquardt damping decreases (accepted steps).
    LmDampingDown,
    /// Simulated-annealing accepted moves.
    SaAccepted,
    /// Retry attempts scheduled by the runtime.
    Retries,
    /// Family fits lost to a deadline.
    Timeouts,
    /// Family fits lost to cancellation.
    Cancellations,
    /// Bootstrap replicates that refit successfully.
    BootstrapReplicatesOk,
    /// Bootstrap replicates that failed to refit.
    BootstrapReplicatesFailed,
    /// Faults injected by a chaos plan.
    ChaosInjected,
    /// Circuit-breaker transitions into the Open state.
    BreakerOpened,
    /// Circuit-breaker transitions into the HalfOpen state.
    BreakerHalfOpen,
    /// Fleet cells quarantined by the supervisor.
    CellsQuarantined,
}

impl CounterId {
    /// Every counter, in canonical (report) order.
    pub const ALL: [CounterId; 17] = [
        CounterId::ObjectiveEvals,
        CounterId::NmReflections,
        CounterId::NmExpansions,
        CounterId::NmContractions,
        CounterId::NmShrinks,
        CounterId::LmDampingUp,
        CounterId::LmDampingDown,
        CounterId::SaAccepted,
        CounterId::Retries,
        CounterId::Timeouts,
        CounterId::Cancellations,
        CounterId::BootstrapReplicatesOk,
        CounterId::BootstrapReplicatesFailed,
        CounterId::ChaosInjected,
        CounterId::BreakerOpened,
        CounterId::BreakerHalfOpen,
        CounterId::CellsQuarantined,
    ];

    /// Stable string tag used in the JSONL encoding.
    pub const fn as_str(self) -> &'static str {
        match self {
            CounterId::ObjectiveEvals => "objective_evals",
            CounterId::NmReflections => "nm_reflections",
            CounterId::NmExpansions => "nm_expansions",
            CounterId::NmContractions => "nm_contractions",
            CounterId::NmShrinks => "nm_shrinks",
            CounterId::LmDampingUp => "lm_damping_up",
            CounterId::LmDampingDown => "lm_damping_down",
            CounterId::SaAccepted => "sa_accepted",
            CounterId::Retries => "retries",
            CounterId::Timeouts => "timeouts",
            CounterId::Cancellations => "cancellations",
            CounterId::BootstrapReplicatesOk => "bootstrap_replicates_ok",
            CounterId::BootstrapReplicatesFailed => "bootstrap_replicates_failed",
            CounterId::ChaosInjected => "chaos_injected",
            CounterId::BreakerOpened => "breaker_opened",
            CounterId::BreakerHalfOpen => "breaker_half_open",
            CounterId::CellsQuarantined => "cell_quarantined",
        }
    }

    /// Inverse of [`CounterId::as_str`].
    pub fn parse(s: &str) -> Option<CounterId> {
        CounterId::ALL.into_iter().find(|id| id.as_str() == s)
    }
}

/// Identifier of a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HistogramId {
    /// Objective evaluations consumed by a single multi-start start.
    EvalsPerStart,
    /// Iterations consumed by a single multi-start start.
    IterationsPerStart,
    /// Objective evaluations consumed by one whole family fit.
    EvalsPerFit,
    /// Attempts (1 + retries) a family fit needed.
    AttemptsPerFit,
}

impl HistogramId {
    /// Every histogram, in canonical (report) order.
    pub const ALL: [HistogramId; 4] = [
        HistogramId::EvalsPerStart,
        HistogramId::IterationsPerStart,
        HistogramId::EvalsPerFit,
        HistogramId::AttemptsPerFit,
    ];

    /// Stable string tag used in the JSONL encoding.
    pub const fn as_str(self) -> &'static str {
        match self {
            HistogramId::EvalsPerStart => "evals_per_start",
            HistogramId::IterationsPerStart => "iterations_per_start",
            HistogramId::EvalsPerFit => "evals_per_fit",
            HistogramId::AttemptsPerFit => "attempts_per_fit",
        }
    }

    /// Inverse of [`HistogramId::as_str`].
    pub fn parse(s: &str) -> Option<HistogramId> {
        HistogramId::ALL.into_iter().find(|id| id.as_str() == s)
    }
}

/// One telemetry event.
///
/// All time-like fields are logical clocks: iteration indices, evaluation
/// counts, start indices. Two runs of the same seed emit the same events in
/// the same order regardless of thread count (the pipeline buffers per-job
/// events and replays them in index order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A family fit began; `starts` is the number of multi-start seeds.
    FitStarted {
        /// Family name (interned).
        family: &'static str,
        /// Number of initial guesses in the multi-start pool.
        starts: u32,
    },
    /// A family fit finished with a usable model.
    FitFinished {
        /// Family name (interned).
        family: &'static str,
        /// Final sum of squared errors.
        sse: f64,
        /// Objective evaluations charged to the winning start plus polish.
        evaluations: u64,
        /// Whether the winning solve met its convergence tolerance.
        converged: bool,
    },
    /// A family fit terminated without a usable model.
    FitFailed {
        /// Family name (interned).
        family: &'static str,
        /// Failure classification.
        kind: FailureCode,
    },
    /// One multi-start seed began (emitted inside the start's own span).
    StartBegan {
        /// Index of the start in the seed pool.
        index: u32,
    },
    /// One solver iteration completed.
    Iteration {
        /// Emitting solver.
        solver: SolverKind,
        /// Iteration index (logical clock, 1-based).
        iteration: u64,
        /// Cumulative objective evaluations at the end of the iteration.
        evaluations: u64,
        /// Best objective value seen so far.
        best: f64,
    },
    /// A solver terminated normally.
    Converged {
        /// Emitting solver.
        solver: SolverKind,
        /// Total iterations performed.
        iterations: u64,
        /// Total objective evaluations performed.
        evaluations: u64,
        /// Final objective value.
        value: f64,
        /// Why the solver stopped.
        reason: ExitReason,
    },
    /// The runtime scheduled a retry of a failed fit.
    RetryScheduled {
        /// Family name (interned).
        family: &'static str,
        /// Attempt number about to run (2 = first retry).
        attempt: u32,
    },
    /// A solver or pipeline stage hit its deadline or a cancellation.
    Stop {
        /// Where the stop was observed (e.g. `"nelder_mead"`, `"fit"`).
        scope: &'static str,
        /// Deadline or cancellation.
        kind: StopKind,
        /// Objective evaluations consumed up to the stop — this is how
        /// per-family wall-budget consumption is recorded without putting
        /// wall-clock values into the log.
        evaluations: u64,
    },
    /// A worker thread panicked and was isolated.
    WorkerPanic {
        /// Supervising scope (e.g. the family name in a ranking run).
        scope: &'static str,
        /// Job index within the scope.
        index: u32,
    },
    /// A bootstrap chunk finished.
    BootstrapChunkDone {
        /// Replicates completed so far (logical clock).
        done: u32,
        /// Total replicates requested.
        total: u32,
        /// Replicates so far that failed to refit.
        failed: u32,
    },
    /// A chaos plan injected a fault into one (cell, family) job.
    ChaosInjected {
        /// Which fault was injected.
        kind: ChaosKind,
        /// Fleet cell index (0 for single-series runs).
        cell: u32,
        /// Family name (interned).
        family: &'static str,
    },
    /// A family's circuit breaker tripped Closed → Open.
    BreakerOpened {
        /// Family name (interned).
        family: &'static str,
        /// Consecutive failures observed at the trip.
        consecutive: u32,
        /// Logical clock of the trip (flattened job index).
        clock: u64,
    },
    /// A family's circuit breaker cooled down Open → HalfOpen.
    BreakerHalfOpen {
        /// Family name (interned).
        family: &'static str,
        /// Logical clock of the transition (flattened job index).
        clock: u64,
    },
    /// A family's HalfOpen probe succeeded; the breaker reclosed.
    BreakerClosed {
        /// Family name (interned).
        family: &'static str,
        /// Logical clock of the transition (flattened job index).
        clock: u64,
    },
    /// A fleet cell was quarantined: every family failed, so the cell is
    /// parked in the store's sentinel column instead of burning budget.
    CellQuarantined {
        /// Fleet cell index.
        cell: u32,
        /// Family failures recorded against the cell at quarantine.
        failures: u32,
    },
    /// Monotonic counter increment (flushed in batches by emitters).
    Counter {
        /// Which counter.
        id: CounterId,
        /// Increment (≥ 1; zero-delta counters are not emitted).
        delta: u64,
    },
    /// One histogram observation.
    Hist {
        /// Which histogram.
        id: HistogramId,
        /// Observed value.
        value: u64,
    },
}

/// Writes `x` into `out` so that parsing recovers the exact bits.
///
/// Finite values use Rust's shortest round-trip `Display`; non-finite values
/// are encoded as the JSON strings `"inf"`, `"-inf"`, `"nan"`.
pub(crate) fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` keeps a trailing `.0` on integral values, so the token is
        // unambiguously a float on the way back in.
        let _ = write!(out, "{x:?}");
    } else if x.is_nan() {
        out.push_str("\"nan\"");
    } else if x > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

/// Writes a JSON string literal. Family names are plain identifiers in
/// practice, but escape defensively anyway.
pub(crate) fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Event {
    /// The event's `"ev"` tag in the JSONL encoding.
    pub const fn tag(&self) -> &'static str {
        match self {
            Event::FitStarted { .. } => "fit_started",
            Event::FitFinished { .. } => "fit_finished",
            Event::FitFailed { .. } => "fit_failed",
            Event::StartBegan { .. } => "start",
            Event::Iteration { .. } => "iteration",
            Event::Converged { .. } => "converged",
            Event::RetryScheduled { .. } => "retry_scheduled",
            Event::Stop { kind, .. } => kind.as_str(),
            Event::WorkerPanic { .. } => "worker_panic",
            Event::BootstrapChunkDone { .. } => "bootstrap_chunk_done",
            Event::ChaosInjected { .. } => "chaos_injected",
            Event::BreakerOpened { .. } => "breaker_opened",
            Event::BreakerHalfOpen { .. } => "breaker_half_open",
            Event::BreakerClosed { .. } => "breaker_closed",
            Event::CellQuarantined { .. } => "cell_quarantined",
            Event::Counter { .. } => "counter",
            Event::Hist { .. } => "hist",
        }
    }

    /// Appends the single-line JSON encoding of this event to `out`
    /// (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"ev\":\"");
        out.push_str(self.tag());
        out.push('"');
        match *self {
            Event::FitStarted { family, starts } => {
                out.push_str(",\"family\":");
                write_json_str(out, family);
                let _ = write!(out, ",\"starts\":{starts}");
            }
            Event::FitFinished {
                family,
                sse,
                evaluations,
                converged,
            } => {
                out.push_str(",\"family\":");
                write_json_str(out, family);
                out.push_str(",\"sse\":");
                write_f64(out, sse);
                let _ = write!(out, ",\"evals\":{evaluations},\"converged\":{converged}");
            }
            Event::FitFailed { family, kind } => {
                out.push_str(",\"family\":");
                write_json_str(out, family);
                let _ = write!(out, ",\"kind\":\"{}\"", kind.as_str());
            }
            Event::StartBegan { index } => {
                let _ = write!(out, ",\"index\":{index}");
            }
            Event::Iteration {
                solver,
                iteration,
                evaluations,
                best,
            } => {
                let _ = write!(
                    out,
                    ",\"solver\":\"{}\",\"iter\":{iteration},\"evals\":{evaluations},\"best\":",
                    solver.as_str()
                );
                write_f64(out, best);
            }
            Event::Converged {
                solver,
                iterations,
                evaluations,
                value,
                reason,
            } => {
                let _ = write!(
                    out,
                    ",\"solver\":\"{}\",\"iters\":{iterations},\"evals\":{evaluations},\"value\":",
                    solver.as_str()
                );
                write_f64(out, value);
                let _ = write!(out, ",\"reason\":\"{}\"", reason.as_str());
            }
            Event::RetryScheduled { family, attempt } => {
                out.push_str(",\"family\":");
                write_json_str(out, family);
                let _ = write!(out, ",\"attempt\":{attempt}");
            }
            Event::Stop {
                scope,
                kind: _,
                evaluations,
            } => {
                out.push_str(",\"scope\":");
                write_json_str(out, scope);
                let _ = write!(out, ",\"evals\":{evaluations}");
            }
            Event::WorkerPanic { scope, index } => {
                out.push_str(",\"scope\":");
                write_json_str(out, scope);
                let _ = write!(out, ",\"index\":{index}");
            }
            Event::BootstrapChunkDone {
                done,
                total,
                failed,
            } => {
                let _ = write!(
                    out,
                    ",\"done\":{done},\"total\":{total},\"failed\":{failed}"
                );
            }
            Event::ChaosInjected { kind, cell, family } => {
                let _ = write!(out, ",\"kind\":\"{}\",\"cell\":{cell}", kind.as_str());
                out.push_str(",\"family\":");
                write_json_str(out, family);
            }
            Event::BreakerOpened {
                family,
                consecutive,
                clock,
            } => {
                out.push_str(",\"family\":");
                write_json_str(out, family);
                let _ = write!(out, ",\"consecutive\":{consecutive},\"clock\":{clock}");
            }
            Event::BreakerHalfOpen { family, clock } => {
                out.push_str(",\"family\":");
                write_json_str(out, family);
                let _ = write!(out, ",\"clock\":{clock}");
            }
            Event::BreakerClosed { family, clock } => {
                out.push_str(",\"family\":");
                write_json_str(out, family);
                let _ = write!(out, ",\"clock\":{clock}");
            }
            Event::CellQuarantined { cell, failures } => {
                let _ = write!(out, ",\"cell\":{cell},\"failures\":{failures}");
            }
            Event::Counter { id, delta } => {
                let _ = write!(out, ",\"id\":\"{}\",\"n\":{delta}", id.as_str());
            }
            Event::Hist { id, value } => {
                let _ = write!(out, ",\"id\":\"{}\",\"value\":{value}", id.as_str());
            }
        }
        out.push('}');
    }

    /// Convenience: the JSON encoding as an owned string.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        self.write_json(&mut s);
        s
    }

    /// At least one example value per [`Event`] variant, covering every
    /// enum payload tag (`ChaosKind::ALL`, `CounterId::ALL`, ...) and the
    /// non-finite float encodings.
    ///
    /// The round-trip test in `tests/telemetry.rs` feeds every example
    /// through `write_json` → `parse`, so an event variant cannot ship
    /// without parse support: adding a variant breaks the exhaustive
    /// `match` below until an example is added here.
    pub fn examples() -> Vec<Event> {
        let family = "Quadratic";
        let mut out = vec![
            Event::FitStarted { family, starts: 8 },
            Event::FitFinished {
                family,
                sse: 1.25e-4,
                evaluations: 512,
                converged: true,
            },
            Event::StartBegan { index: 3 },
            Event::Iteration {
                solver: SolverKind::NelderMead,
                iteration: 7,
                evaluations: 21,
                best: f64::NAN,
            },
            Event::Converged {
                solver: SolverKind::LevenbergMarquardt,
                iterations: 12,
                evaluations: 96,
                value: f64::INFINITY,
                reason: ExitReason::Converged,
            },
            Event::RetryScheduled { family, attempt: 2 },
            Event::WorkerPanic {
                scope: family,
                index: 1,
            },
            Event::BootstrapChunkDone {
                done: 16,
                total: 64,
                failed: 1,
            },
            Event::BreakerOpened {
                family,
                consecutive: 3,
                clock: 42,
            },
            Event::BreakerHalfOpen { family, clock: 50 },
            Event::BreakerClosed { family, clock: 58 },
            Event::CellQuarantined {
                cell: 9,
                failures: 2,
            },
        ];
        for kind in [
            FailureCode::Error,
            FailureCode::TimedOut,
            FailureCode::Cancelled,
            FailureCode::Panicked,
            FailureCode::Skipped,
        ] {
            out.push(Event::FitFailed { family, kind });
        }
        for solver in [
            SolverKind::NelderMead,
            SolverKind::LevenbergMarquardt,
            SolverKind::DifferentialEvolution,
            SolverKind::Annealing,
            SolverKind::MultiStart,
        ] {
            out.push(Event::Converged {
                solver,
                iterations: 1,
                evaluations: 2,
                value: -0.5,
                reason: ExitReason::Stalled,
            });
        }
        for reason in [
            ExitReason::Converged,
            ExitReason::MaxIterations,
            ExitReason::Stalled,
        ] {
            out.push(Event::Converged {
                solver: SolverKind::DifferentialEvolution,
                iterations: 3,
                evaluations: 30,
                value: f64::NEG_INFINITY,
                reason,
            });
        }
        for kind in [StopKind::Deadline, StopKind::Cancelled] {
            out.push(Event::Stop {
                scope: "nelder_mead",
                kind,
                evaluations: 11,
            });
        }
        for kind in ChaosKind::ALL {
            out.push(Event::ChaosInjected {
                kind,
                cell: 4,
                family,
            });
        }
        for id in CounterId::ALL {
            out.push(Event::Counter { id, delta: 5 });
        }
        for id in HistogramId::ALL {
            out.push(Event::Hist { id, value: 1 << 20 });
        }

        // Compile-time exhaustiveness guard: a new Event variant fails this
        // match until it is represented above.
        for e in &out {
            match e {
                Event::FitStarted { .. }
                | Event::FitFinished { .. }
                | Event::FitFailed { .. }
                | Event::StartBegan { .. }
                | Event::Iteration { .. }
                | Event::Converged { .. }
                | Event::RetryScheduled { .. }
                | Event::Stop { .. }
                | Event::WorkerPanic { .. }
                | Event::BootstrapChunkDone { .. }
                | Event::ChaosInjected { .. }
                | Event::BreakerOpened { .. }
                | Event::BreakerHalfOpen { .. }
                | Event::BreakerClosed { .. }
                | Event::CellQuarantined { .. }
                | Event::Counter { .. }
                | Event::Hist { .. } => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_stable() {
        assert_eq!(
            Event::FitStarted {
                family: "Quadratic",
                starts: 3
            }
            .tag(),
            "fit_started"
        );
        assert_eq!(
            Event::Stop {
                scope: "nelder_mead",
                kind: StopKind::Deadline,
                evaluations: 10
            }
            .tag(),
            "deadline_exceeded"
        );
        assert_eq!(
            Event::Stop {
                scope: "fit",
                kind: StopKind::Cancelled,
                evaluations: 0
            }
            .tag(),
            "cancelled"
        );
    }

    #[test]
    fn ids_round_trip_through_strings() {
        for id in CounterId::ALL {
            assert_eq!(CounterId::parse(id.as_str()), Some(id));
        }
        for id in HistogramId::ALL {
            assert_eq!(HistogramId::parse(id.as_str()), Some(id));
        }
        for k in [
            SolverKind::NelderMead,
            SolverKind::LevenbergMarquardt,
            SolverKind::DifferentialEvolution,
            SolverKind::Annealing,
            SolverKind::MultiStart,
        ] {
            assert_eq!(SolverKind::parse(k.as_str()), Some(k));
        }
        for r in [
            ExitReason::Converged,
            ExitReason::MaxIterations,
            ExitReason::Stalled,
        ] {
            assert_eq!(ExitReason::parse(r.as_str()), Some(r));
        }
        for f in [
            FailureCode::Error,
            FailureCode::TimedOut,
            FailureCode::Cancelled,
            FailureCode::Panicked,
            FailureCode::Skipped,
        ] {
            assert_eq!(FailureCode::parse(f.as_str()), Some(f));
        }
        for k in ChaosKind::ALL {
            assert_eq!(ChaosKind::parse(k.as_str()), Some(k));
        }
        for k in [StopKind::Deadline, StopKind::Cancelled] {
            assert_eq!(StopKind::parse(k.as_str()), Some(k));
        }
    }

    #[test]
    fn json_encoding_is_flat_and_escaped() {
        let e = Event::FitFinished {
            family: "Comp\"Risks",
            sse: 1.5,
            evaluations: 42,
            converged: true,
        };
        assert_eq!(
            e.to_json(),
            "{\"ev\":\"fit_finished\",\"family\":\"Comp\\\"Risks\",\"sse\":1.5,\
             \"evals\":42,\"converged\":true}"
        );
    }

    #[test]
    fn non_finite_floats_encode_as_strings() {
        let e = Event::Iteration {
            solver: SolverKind::NelderMead,
            iteration: 1,
            evaluations: 2,
            best: f64::INFINITY,
        };
        assert!(e.to_json().contains("\"best\":\"inf\""));
        let e = Event::Iteration {
            solver: SolverKind::NelderMead,
            iteration: 1,
            evaluations: 2,
            best: f64::NAN,
        };
        assert!(e.to_json().contains("\"best\":\"nan\""));
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let e = Event::Converged {
            solver: SolverKind::Annealing,
            iterations: 5,
            evaluations: 6,
            value: 2.0,
            reason: ExitReason::MaxIterations,
        };
        assert!(e.to_json().contains("\"value\":2.0"));
    }
}
