//! Deterministic telemetry for the `predictive-resilience` workspace.
//!
//! The fitting pipeline (parallel multi-start solvers, supervised ranking,
//! bootstrap bands) emits span-style [`Event`]s — `fit_started`,
//! `iteration`, `converged`, `retry_scheduled`, `deadline_exceeded`,
//! `worker_panic`, `bootstrap_chunk_done` — plus monotonic counters and
//! histograms, into any sink implementing [`Observer`].
//!
//! Two properties are load-bearing and covered by tests:
//!
//! 1. **Determinism.** Events carry logical clocks only (iteration indices,
//!    evaluation counts, start/replicate indices) — never wall-clock
//!    values. Parallel pipeline stages buffer events per job
//!    ([`RecordingObserver`]) and replay them in index order, so serial and
//!    parallel runs of the same seed produce byte-identical JSONL logs.
//! 2. **Zero cost when off.** The default sink is [`NullObserver`], whose
//!    `enabled() == false` makes instrumented code skip event construction
//!    entirely; counters are batched as plain integer locals inside solvers
//!    and flushed once at termination, so the objective-evaluation hot path
//!    allocates nothing either way (asserted by the workspace's
//!    counting-allocator tests).
//!
//! Modules:
//!
//! * [`event`] — the event vocabulary and its flat JSON encoding.
//! * [`observer`] — the [`Observer`] trait, [`NullObserver`],
//!   [`RecordingObserver`], [`TeeObserver`].
//! * [`jsonl`] — the JSONL file sink ([`JsonlObserver`]).
//! * [`parse`] — JSONL → [`Event`] parsing ([`parse_log`]) with string
//!   interning.
//! * [`report`] — [`RunReport`] aggregation: per-family totals as a table
//!   and machine-readable JSON, with `Option`-typed (`NaN`-free) rates.
//! * [`metrics`] — live [`MetricsRegistry`] observer and
//!   [`MetricsSnapshot`] with deterministic Prometheus-style exposition.
//! * [`span`] — [`SpanTree`] reconstruction of the fleet → cell → fit →
//!   attempt → solver hierarchy from a log, with top-K work queries.
//! * [`diff`] — byte/field-level log and report diffing
//!   (empty output ⇔ identical).
//!
//! # Example
//!
//! ```
//! use resilience_obs::{Event, Observer, RecordingObserver, RunReport};
//!
//! let rec = RecordingObserver::new();
//! rec.record(&Event::FitStarted { family: "Quadratic", starts: 3 });
//! rec.record(&Event::FitFinished {
//!     family: "Quadratic",
//!     sse: 0.5,
//!     evaluations: 120,
//!     converged: true,
//! });
//! let report = RunReport::from_events(rec.take());
//! assert_eq!(report.families[0].convergence_rate(), Some(1.0));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diff;
pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod observer;
pub mod parse;
pub mod report;
pub mod span;

pub use diff::{
    diff_logs, diff_reports, render_field_diffs, render_line_diffs, FieldDiff, LineDiff,
};
pub use event::{
    ChaosKind, CounterId, Event, ExitReason, FailureCode, HistogramId, SolverKind, StopKind,
};
pub use jsonl::JsonlObserver;
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use observer::{replay, NullObserver, Observer, RecordingObserver, TeeObserver};
pub use parse::{intern, parse_line, parse_log, ParseError};
pub use report::{BootstrapProgress, FamilyStats, Histogram, RunReport};
pub use span::{AttemptSpan, CellSpan, FitOutcome, FitSpan, SolverSpan, SpanTree, WorkMetric};
