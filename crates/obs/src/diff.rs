//! Byte- and field-level diffing of event logs and run reports.
//!
//! The determinism contract (DESIGN.md §10/§13) says two runs of the same
//! configuration produce byte-identical JSONL logs; [`diff_logs`] is the
//! tool that *checks* that contract and explains violations. Lines are
//! compared byte-for-byte first; for lines that differ, the flat JSON
//! objects are decomposed into raw `key: value` tokens so the output names
//! the exact fields that moved. [`diff_reports`] does the analogous
//! structural comparison on aggregated [`RunReport`]s.
//!
//! Empty output ⇔ identical inputs, so CI can gate on "diff is empty".

use crate::event::{CounterId, HistogramId};
use crate::report::RunReport;
use std::fmt::Write as _;

/// One differing field inside a line or report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDiff {
    /// Field name (JSON key, or a dotted path for report diffs).
    pub key: String,
    /// Raw value on the left side (`None` when the key is absent).
    pub left: Option<String>,
    /// Raw value on the right side (`None` when the key is absent).
    pub right: Option<String>,
}

/// One differing line between two logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineDiff {
    /// 1-based line number.
    pub line: usize,
    /// The left line (`None` when the left log is shorter).
    pub left: Option<String>,
    /// The right line (`None` when the right log is shorter).
    pub right: Option<String>,
    /// Field-level decomposition when both lines exist and both parse as
    /// flat JSON objects; empty otherwise.
    pub fields: Vec<FieldDiff>,
}

/// Splits a flat (non-nested values are fine; nested objects/arrays are
/// kept as raw tokens) JSON object into `(key, raw value)` pairs in
/// document order. Returns `None` when `line` is not an object.
fn flat_fields(line: &str) -> Option<Vec<(String, String)>> {
    let bytes = line.trim().as_bytes();
    if bytes.first() != Some(&b'{') || bytes.last() != Some(&b'}') {
        return None;
    }
    let inner = &line.trim()[1..line.trim().len() - 1];
    let mut fields = Vec::new();
    let mut rest = inner.trim_start();
    while !rest.is_empty() {
        // Key: a JSON string literal.
        if !rest.starts_with('"') {
            return None;
        }
        let key_end = scan_string(rest)?;
        let key = rest[1..key_end].to_string();
        rest = rest[key_end + 1..].trim_start();
        rest = rest.strip_prefix(':')?.trim_start();
        // Value: raw token up to the next top-level comma.
        let mut depth = 0usize;
        let mut end = rest.len();
        let mut i = 0;
        while i < rest.len() {
            match rest.as_bytes()[i] {
                b'"' => i += scan_string(&rest[i..])?,
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth = depth.checked_sub(1)?,
                b',' if depth == 0 => {
                    end = i;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push((key, rest[..end].trim().to_string()));
        rest = rest[end..].trim_start();
        rest = match rest.strip_prefix(',') {
            Some(r) => r.trim_start(),
            None if rest.is_empty() => rest,
            None => return None,
        };
    }
    Some(fields)
}

/// Index of the closing quote of the string literal starting at `s[0]`.
fn scan_string(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

fn field_diffs(left: &str, right: &str) -> Vec<FieldDiff> {
    let (Some(lf), Some(rf)) = (flat_fields(left), flat_fields(right)) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (key, lv) in &lf {
        match rf.iter().find(|(k, _)| k == key) {
            Some((_, rv)) if rv == lv => {}
            Some((_, rv)) => out.push(FieldDiff {
                key: key.clone(),
                left: Some(lv.clone()),
                right: Some(rv.clone()),
            }),
            None => out.push(FieldDiff {
                key: key.clone(),
                left: Some(lv.clone()),
                right: None,
            }),
        }
    }
    for (key, rv) in &rf {
        if !lf.iter().any(|(k, _)| k == key) {
            out.push(FieldDiff {
                key: key.clone(),
                left: None,
                right: Some(rv.clone()),
            });
        }
    }
    out
}

/// Compares two JSONL logs line by line. Returns one entry per differing
/// line; an empty result means the logs are byte-identical (ignoring a
/// trailing newline).
pub fn diff_logs(left: &str, right: &str) -> Vec<LineDiff> {
    let l: Vec<&str> = left.lines().collect();
    let r: Vec<&str> = right.lines().collect();
    let mut out = Vec::new();
    for i in 0..l.len().max(r.len()) {
        let lv = l.get(i).copied();
        let rv = r.get(i).copied();
        if lv == rv {
            continue;
        }
        let fields = match (lv, rv) {
            (Some(a), Some(b)) => field_diffs(a, b),
            _ => Vec::new(),
        };
        out.push(LineDiff {
            line: i + 1,
            left: lv.map(str::to_string),
            right: rv.map(str::to_string),
            fields,
        });
    }
    out
}

/// Renders log diffs as text, at most `limit` lines of detail (a trailer
/// reports the omitted count). Empty input renders as the empty string.
pub fn render_line_diffs(diffs: &[LineDiff], limit: usize) -> String {
    let mut out = String::new();
    for d in diffs.iter().take(limit) {
        match (&d.left, &d.right) {
            (Some(_), Some(_)) if !d.fields.is_empty() => {
                let _ = writeln!(out, "line {}:", d.line);
                for f in &d.fields {
                    let _ = writeln!(
                        out,
                        "  {}: {} -> {}",
                        f.key,
                        f.left.as_deref().unwrap_or("<absent>"),
                        f.right.as_deref().unwrap_or("<absent>")
                    );
                }
            }
            (Some(l), Some(r)) => {
                let _ = writeln!(out, "line {}:\n  - {l}\n  + {r}", d.line);
            }
            (Some(l), None) => {
                let _ = writeln!(out, "line {}: only in left:\n  - {l}", d.line);
            }
            (None, Some(r)) => {
                let _ = writeln!(out, "line {}: only in right:\n  + {r}", d.line);
            }
            (None, None) => {}
        }
    }
    if diffs.len() > limit {
        let _ = writeln!(out, "... ({} more differing lines)", diffs.len() - limit);
    }
    out
}

/// Structurally compares two aggregated reports. Returns one entry per
/// differing field (dotted paths like `family.Quadratic.evaluations` or
/// `histogram.evals_per_fit.count`); an empty result means the reports
/// agree on every aggregate.
pub fn diff_reports(left: &RunReport, right: &RunReport) -> Vec<FieldDiff> {
    let mut out = Vec::new();
    let mut push = |key: String, l: Option<String>, r: Option<String>| {
        if l != r {
            out.push(FieldDiff {
                key,
                left: l,
                right: r,
            });
        }
    };

    push(
        "events".into(),
        Some(left.events.to_string()),
        Some(right.events.to_string()),
    );
    push(
        "bootstrap".into(),
        left.bootstrap
            .map(|b| format!("{}/{} ({} failed)", b.done, b.total, b.failed)),
        right
            .bootstrap
            .map(|b| format!("{}/{} ({} failed)", b.done, b.total, b.failed)),
    );
    for id in CounterId::ALL {
        push(
            format!("counter.{}", id.as_str()),
            Some(left.counter(id).to_string()),
            Some(right.counter(id).to_string()),
        );
    }
    for id in HistogramId::ALL {
        let l = left.histogram(id);
        let r = right.histogram(id);
        push(
            format!("histogram.{}", id.as_str()),
            l.map(|h| {
                format!(
                    "count={} sum={} min={} max={} buckets={:?}",
                    h.count, h.sum, h.min, h.max, h.buckets
                )
            }),
            r.map(|h| {
                format!(
                    "count={} sum={} min={} max={} buckets={:?}",
                    h.count, h.sum, h.min, h.max, h.buckets
                )
            }),
        );
    }
    let mut names: Vec<&'static str> = left.families.iter().map(|f| f.name).collect();
    for f in &right.families {
        if !names.contains(&f.name) {
            names.push(f.name);
        }
    }
    for name in names {
        let l = left.families.iter().find(|f| f.name == name);
        let r = right.families.iter().find(|f| f.name == name);
        type StatColumn = (&'static str, fn(&crate::report::FamilyStats) -> String);
        let stats: [StatColumn; 9] = [
            ("fits_started", |f| f.fits_started.to_string()),
            ("fits_completed", |f| f.fits_completed.to_string()),
            ("converged_fits", |f| f.converged_fits.to_string()),
            ("iterations", |f| f.iterations.to_string()),
            ("evaluations", |f| f.evaluations.to_string()),
            ("retries", |f| f.retries.to_string()),
            ("failures", |f| f.failures().to_string()),
            ("panics", |f| f.panics.to_string()),
            ("best_sse", |f| format!("{:?}", f.best_sse)),
        ];
        for (stat, get) in stats {
            push(format!("family.{name}.{stat}"), l.map(get), r.map(get));
        }
    }
    out
}

/// Renders report field diffs as text; empty input renders as the empty
/// string.
pub fn render_field_diffs(diffs: &[FieldDiff]) -> String {
    let mut out = String::new();
    for f in diffs {
        let _ = writeln!(
            out,
            "{}: {} -> {}",
            f.key,
            f.left.as_deref().unwrap_or("<absent>"),
            f.right.as_deref().unwrap_or("<absent>")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterId, Event, FailureCode};
    use crate::parse::intern;

    #[test]
    fn identical_logs_diff_empty() {
        let log = "{\"ev\":\"start\",\"index\":0}\n{\"ev\":\"counter\",\"id\":\"objective_evals\",\"n\":3}\n";
        assert!(diff_logs(log, log).is_empty());
        assert_eq!(render_line_diffs(&diff_logs(log, log), 10), "");
    }

    #[test]
    fn field_level_diff_names_the_changed_key() {
        let a = "{\"ev\":\"counter\",\"id\":\"objective_evals\",\"n\":3}\n";
        let b = "{\"ev\":\"counter\",\"id\":\"objective_evals\",\"n\":4}\n";
        let diffs = diff_logs(a, b);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].line, 1);
        assert_eq!(
            diffs[0].fields,
            vec![FieldDiff {
                key: "n".into(),
                left: Some("3".into()),
                right: Some("4".into()),
            }]
        );
        let text = render_line_diffs(&diffs, 10);
        assert!(text.contains("n: 3 -> 4"), "{text}");
    }

    #[test]
    fn length_mismatch_reports_extra_lines() {
        let a = "{\"ev\":\"start\",\"index\":0}\n";
        let b = "{\"ev\":\"start\",\"index\":0}\n{\"ev\":\"start\",\"index\":1}\n";
        let diffs = diff_logs(a, b);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].line, 2);
        assert!(diffs[0].left.is_none());
        let text = render_line_diffs(&diffs, 10);
        assert!(text.contains("only in right"), "{text}");
    }

    #[test]
    fn flat_fields_handles_strings_and_escapes() {
        let fields = flat_fields(
            "{\"ev\":\"fit_failed\",\"family\":\"We \\\"ird\\\", name\",\"kind\":\"error\"}",
        )
        .unwrap();
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[1].1, "\"We \\\"ird\\\", name\"");
        assert!(flat_fields("not json").is_none());
    }

    #[test]
    fn report_diff_is_empty_for_identical_reports() {
        let events = vec![
            Event::FitStarted {
                family: intern("Quadratic"),
                starts: 2,
            },
            Event::Counter {
                id: CounterId::ObjectiveEvals,
                delta: 5,
            },
            Event::FitFailed {
                family: intern("Quadratic"),
                kind: FailureCode::Error,
            },
        ];
        let a = RunReport::from_events(events.clone());
        let b = RunReport::from_events(events);
        assert!(diff_reports(&a, &b).is_empty());
    }

    #[test]
    fn report_diff_names_dotted_paths() {
        let a = RunReport::from_events(vec![Event::Counter {
            id: CounterId::ObjectiveEvals,
            delta: 5,
        }]);
        let b = RunReport::from_events(vec![
            Event::Counter {
                id: CounterId::ObjectiveEvals,
                delta: 6,
            },
            Event::FitFailed {
                family: intern("Glacial"),
                kind: FailureCode::Skipped,
            },
        ]);
        let diffs = diff_reports(&a, &b);
        let keys: Vec<&str> = diffs.iter().map(|d| d.key.as_str()).collect();
        assert!(keys.contains(&"events"), "{keys:?}");
        assert!(keys.contains(&"counter.objective_evals"), "{keys:?}");
        assert!(keys.contains(&"family.Glacial.failures"), "{keys:?}");
        let text = render_field_diffs(&diffs);
        assert!(text.contains("counter.objective_evals: 5 -> 6"), "{text}");
        assert!(
            text.contains("family.Glacial.failures: <absent> -> 1"),
            "{text}"
        );
    }
}
