//! Deterministic fault injection for pipeline robustness testing.
//!
//! The ROADMAP north star is serving degraded, adversarial real-world
//! traffic; this module gives the test suite a single vocabulary of
//! corruptions to feed through every public entry point. Each
//! [`Fault`] can render itself as a hostile CSV document
//! ([`Fault::to_csv`]) and — for the numeric faults — corrupt a clean
//! `(times, values)` pair in place ([`Fault::inject`]). The top-level
//! `tests/fault_injection.rs` harness drives both representations
//! through parsing, series construction, fitting, and evaluation, and
//! asserts graceful degradation: a structured error or a documented
//! fallback, never a panic or a silent NaN.
//!
//! # Examples
//!
//! ```
//! use resilience_data::csv::read_series;
//! use resilience_data::fault::Fault;
//!
//! // Every injected fault is rejected with a typed error.
//! for fault in Fault::ALL {
//!     let doc = fault.to_csv();
//!     assert!(read_series(doc.as_bytes(), fault.label()).is_err(), "{fault:?}");
//! }
//! ```

/// A fault-injection request that cannot be carried out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultError {
    /// The series is shorter than the corruption window: every numeric
    /// fault needs at least three points (a `mid` with a predecessor and
    /// a successor) to corrupt meaningfully.
    SeriesTooShort {
        /// Points in the series.
        len: usize,
        /// Minimum points the corruption window needs.
        min: usize,
    },
    /// `times` and `values` have different lengths.
    LengthMismatch {
        /// Length of the time grid.
        times: usize,
        /// Length of the value column.
        values: usize,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::SeriesTooShort { len, min } => {
                write!(f, "series too short to corrupt: {len} points, need {min}")
            }
            FaultError::LengthMismatch { times, values } => {
                write!(f, "times/values length mismatch: {times} vs {values}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A deliberate input corruption for robustness testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Fault {
    /// A CSV row whose value field is not a number.
    CorruptRow,
    /// A literal `nan` in the value column.
    NanValue,
    /// A value overflowing `f64` parsing to infinity.
    InfValue,
    /// A time grid that steps backwards mid-series.
    NonMonotoneTime,
    /// Two rows sharing the same time stamp.
    DuplicateTime,
    /// A record truncated before its value field.
    TruncatedRow,
}

impl Fault {
    /// Every fault, for exhaustive sweeps.
    pub const ALL: [Fault; 6] = [
        Fault::CorruptRow,
        Fault::NanValue,
        Fault::InfValue,
        Fault::NonMonotoneTime,
        Fault::DuplicateTime,
        Fault::TruncatedRow,
    ];

    /// Short label for test diagnostics.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Fault::CorruptRow => "corrupt-row",
            Fault::NanValue => "nan-value",
            Fault::InfValue => "inf-value",
            Fault::NonMonotoneTime => "non-monotone-time",
            Fault::DuplicateTime => "duplicate-time",
            Fault::TruncatedRow => "truncated-row",
        }
    }

    /// Renders a small CSV document carrying this fault amid valid rows.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let bad_row = match self {
            Fault::CorruptRow => "2,not-a-number",
            Fault::NanValue => "2,nan",
            Fault::InfValue => "2,1e309",
            Fault::NonMonotoneTime => "1,0.97",
            Fault::DuplicateTime => "1,0.97",
            Fault::TruncatedRow => "2",
        };
        format!("time,value\n0,1.0\n1,0.98\n{bad_row}\n3,0.99\n")
    }

    /// Whether this fault is representable as in-memory numbers (the
    /// CSV-shape faults only exist at the parsing layer).
    #[must_use]
    pub fn is_numeric(&self) -> bool {
        !matches!(self, Fault::CorruptRow | Fault::TruncatedRow)
    }

    /// Corrupts a clean `(times, values)` pair in place. For the
    /// CSV-shape faults ([`Fault::CorruptRow`], [`Fault::TruncatedRow`])
    /// the numeric stand-in is a NaN value — the closest in-memory
    /// analogue of an unparseable field.
    ///
    /// # Errors
    ///
    /// * [`FaultError::SeriesTooShort`] when the pair has fewer than
    ///   three points (the corruption window needs a `mid` with both
    ///   neighbors) — a typed refusal, never a silent no-op that would
    ///   let a robustness test "pass" on uncorrupted data.
    /// * [`FaultError::LengthMismatch`] when the slices disagree.
    pub fn inject(&self, times: &mut [f64], values: &mut [f64]) -> Result<(), FaultError> {
        if times.len() != values.len() {
            return Err(FaultError::LengthMismatch {
                times: times.len(),
                values: values.len(),
            });
        }
        if times.len() < 3 {
            return Err(FaultError::SeriesTooShort {
                len: times.len(),
                min: 3,
            });
        }
        let mid = times.len() / 2;
        match self {
            Fault::CorruptRow | Fault::TruncatedRow | Fault::NanValue => {
                values[mid] = f64::NAN;
            }
            Fault::InfValue => values[mid] = f64::INFINITY,
            Fault::NonMonotoneTime => times[mid] = times[mid - 1] - 1.0,
            Fault::DuplicateTime => times[mid] = times[mid - 1],
        }
        Ok(())
    }

    /// Returns a corrupted copy of any clean series' `(times, values)`
    /// pair — the bridge between the scenario engine and the fault
    /// matrix: any [`crate::scenario::ScenarioSpec`]-generated series can
    /// be fed through the corruption vocabulary without hand-unpacking.
    ///
    /// # Errors
    ///
    /// [`FaultError::SeriesTooShort`] when the series is shorter than the
    /// corruption window (see [`Fault::inject`]).
    pub fn corrupt_series(
        &self,
        series: &crate::PerformanceSeries,
    ) -> Result<(Vec<f64>, Vec<f64>), FaultError> {
        let mut times = series.times().to_vec();
        let mut values = series.values().to_vec();
        self.inject(&mut times, &mut values)?;
        Ok((times, values))
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::read_series;
    use crate::PerformanceSeries;

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> = Fault::ALL.iter().map(Fault::label).collect();
        assert_eq!(labels.len(), Fault::ALL.len());
    }

    #[test]
    fn every_csv_fault_is_rejected_by_the_parser() {
        for fault in Fault::ALL {
            let doc = fault.to_csv();
            let r = read_series(doc.as_bytes(), fault.label());
            assert!(r.is_err(), "{fault}: parser accepted {doc:?}");
            // The error renders a useful message.
            assert!(r.unwrap_err().to_string().len() > 10, "{fault}");
        }
    }

    #[test]
    fn every_numeric_fault_is_rejected_at_series_construction() {
        for fault in Fault::ALL {
            let mut times: Vec<f64> = (0..6).map(|i| i as f64).collect();
            let mut values = vec![1.0, 0.98, 0.96, 0.95, 0.97, 0.99];
            fault.inject(&mut times, &mut values).unwrap();
            assert!(
                PerformanceSeries::new(fault.label(), times, values).is_err(),
                "{fault}: constructor accepted corrupt data"
            );
        }
    }

    #[test]
    fn corrupt_series_breaks_scenario_output() {
        let spec = crate::scenario::catalog::step_outage(7);
        let clean = spec.generate("step").unwrap();
        for fault in Fault::ALL {
            let (times, values) = fault.corrupt_series(&clean).unwrap();
            assert!(
                PerformanceSeries::new(fault.label(), times, values).is_err(),
                "{fault}: constructor accepted corrupted scenario series"
            );
        }
    }

    #[test]
    fn clean_control_passes_both_paths() {
        // The harness only proves something if the un-faulted versions
        // of the same inputs are accepted.
        let doc = "time,value\n0,1.0\n1,0.98\n2,0.96\n3,0.99\n";
        assert!(read_series(doc.as_bytes(), "clean").is_ok());
        let times: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let values = vec![1.0, 0.98, 0.96, 0.95, 0.97, 0.99];
        assert!(PerformanceSeries::new("clean", times, values).is_ok());
    }

    #[test]
    fn short_series_is_a_typed_refusal_not_a_silent_no_op() {
        for fault in Fault::ALL {
            let mut times = vec![0.0, 1.0];
            let mut values = vec![1.0, 0.98];
            assert_eq!(
                fault.inject(&mut times, &mut values),
                Err(FaultError::SeriesTooShort { len: 2, min: 3 }),
                "{fault}"
            );
            // ... and the data is untouched.
            assert_eq!(times, vec![0.0, 1.0]);
            assert_eq!(values, vec![1.0, 0.98]);
        }
        let mut times = vec![0.0, 1.0, 2.0];
        let mut values = vec![1.0];
        assert_eq!(
            Fault::NanValue.inject(&mut times, &mut values),
            Err(FaultError::LengthMismatch {
                times: 3,
                values: 1
            })
        );
    }
}
