//! Error type for the data layer.

use std::fmt;

/// Errors produced by `resilience-data`.
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// A series construction or operation received invalid input.
    InvalidSeries {
        /// Routine name.
        what: &'static str,
        /// Human-readable description.
        detail: String,
    },
    /// A split index was out of range.
    BadSplit {
        /// Requested number of training points.
        train_len: usize,
        /// Total series length.
        total: usize,
    },
    /// CSV parsing failed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        detail: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidSeries { what, detail } => {
                write!(f, "{what}: invalid series: {detail}")
            }
            DataError::BadSplit { train_len, total } => write!(
                f,
                "cannot take {train_len} training points from a series of {total}"
            ),
            DataError::Parse { line, detail } => {
                write!(f, "CSV parse error on line {line}: {detail}")
            }
            DataError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

impl DataError {
    /// Convenience constructor for [`DataError::InvalidSeries`].
    pub fn invalid(what: &'static str, detail: impl Into<String>) -> Self {
        DataError::InvalidSeries {
            what,
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DataError::invalid("f", "bad").to_string().contains("bad"));
        assert!(DataError::BadSplit {
            train_len: 50,
            total: 48
        }
        .to_string()
        .contains("50"));
        assert!(DataError::Parse {
            line: 3,
            detail: "not a number".into()
        }
        .to_string()
        .contains("line 3"));
    }

    #[test]
    fn io_source_preserved() {
        use std::error::Error;
        let e = DataError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}
