//! Performance time series.
//!
//! A [`PerformanceSeries`] is the empirical resilience curve `R(t_i)` of
//! the paper: a strictly increasing time grid (months after the hazard /
//! employment peak) paired with normalized performance values. The
//! fitting, validation, and metrics layers all consume this type.

use crate::DataError;
use resilience_math::interp::{argmin, LinearInterp};

/// An observed performance curve over a strictly increasing time grid.
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceSeries {
    name: String,
    times: Vec<f64>,
    values: Vec<f64>,
}

impl PerformanceSeries {
    /// Creates a series from a name, time grid, and values.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSeries`] when the slices differ in
    /// length, have fewer than 2 points, contain non-finite entries, or
    /// the time grid is not strictly increasing.
    ///
    /// # Examples
    ///
    /// ```
    /// use resilience_data::PerformanceSeries;
    /// let s = PerformanceSeries::new(
    ///     "example",
    ///     vec![0.0, 1.0, 2.0],
    ///     vec![1.0, 0.95, 0.99],
    /// )?;
    /// assert_eq!(s.len(), 3);
    /// # Ok::<(), resilience_data::DataError>(())
    /// ```
    pub fn new(
        name: impl Into<String>,
        times: Vec<f64>,
        values: Vec<f64>,
    ) -> Result<Self, DataError> {
        if times.len() != values.len() {
            return Err(DataError::invalid(
                "PerformanceSeries::new",
                format!("{} times vs {} values", times.len(), values.len()),
            ));
        }
        if times.len() < 2 {
            return Err(DataError::invalid(
                "PerformanceSeries::new",
                "need at least two observations",
            ));
        }
        if times.iter().chain(values.iter()).any(|v| !v.is_finite()) {
            return Err(DataError::invalid(
                "PerformanceSeries::new",
                "times and values must be finite",
            ));
        }
        for w in times.windows(2) {
            if !(w[1] > w[0]) {
                return Err(DataError::invalid(
                    "PerformanceSeries::new",
                    "times must be strictly increasing",
                ));
            }
        }
        Ok(PerformanceSeries {
            name: name.into(),
            times,
            values,
        })
    }

    /// Creates a series over the monthly grid `0, 1, …, n−1`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PerformanceSeries::new`].
    pub fn monthly(name: impl Into<String>, values: Vec<f64>) -> Result<Self, DataError> {
        let times = (0..values.len()).map(|i| i as f64).collect();
        PerformanceSeries::new(name, times, values)
    }

    /// Series name (e.g. `"1990-93"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series is empty (never true post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The time grid.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The performance values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(t, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The nominal (pre-hazard) performance: the value at the first
    /// observation, `P(t_h)` in the paper's notation.
    #[must_use]
    pub fn nominal(&self) -> f64 {
        self.values[0]
    }

    /// Time and value of the performance minimum (`t_d`, `P(t_d)`).
    ///
    /// Returns `None` only for pathological all-NaN data, which
    /// construction prevents.
    #[must_use]
    pub fn trough(&self) -> Option<(f64, f64)> {
        argmin(&self.values).map(|i| (self.times[i], self.values[i]))
    }

    /// Linear interpolation of the curve at an arbitrary time (clamped
    /// outside the observed range).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSeries`] only if the internal state is
    /// inconsistent (cannot happen through the public API).
    pub fn value_at(&self, t: f64) -> Result<f64, DataError> {
        let interp = LinearInterp::new(self.times.clone(), self.values.clone())
            .map_err(|e| DataError::invalid("PerformanceSeries::value_at", e.to_string()))?;
        Ok(interp.eval(t))
    }

    /// Rescales all values so the first observation equals 1 (the
    /// normalization of the paper's Fig. 2).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSeries`] when the first value is zero.
    pub fn normalized(&self) -> Result<PerformanceSeries, DataError> {
        let base = self.values[0];
        if base == 0.0 {
            return Err(DataError::invalid(
                "PerformanceSeries::normalized",
                "first value is zero",
            ));
        }
        Ok(PerformanceSeries {
            name: self.name.clone(),
            times: self.times.clone(),
            values: self.values.iter().map(|v| v / base).collect(),
        })
    }

    /// Splits into a training prefix of `train_len` points and a test
    /// suffix (the paper fits on the prefix and computes PMSE on the
    /// suffix).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadSplit`] unless `2 ≤ train_len < len`.
    pub fn split_at(&self, train_len: usize) -> Result<TrainTestSplit, DataError> {
        if train_len < 2 || train_len >= self.len() {
            return Err(DataError::BadSplit {
                train_len,
                total: self.len(),
            });
        }
        let train = PerformanceSeries {
            name: format!("{} (train)", self.name),
            times: self.times[..train_len].to_vec(),
            values: self.values[..train_len].to_vec(),
        };
        let test = PerformanceSeries {
            name: format!("{} (test)", self.name),
            times: self.times[train_len..].to_vec(),
            values: self.values[train_len..].to_vec(),
        };
        Ok(TrainTestSplit { train, test })
    }

    /// Splits keeping the given *fraction* for training (e.g. `0.9` for
    /// the paper's mixture experiments). The count is rounded to nearest.
    ///
    /// Out-of-range fractions (including NaN and ±∞, whose `as usize`
    /// casts saturate to 0 or `usize::MAX`) produce a train length that
    /// [`PerformanceSeries::split_at`] rejects, so no separate range
    /// check is needed.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadSplit`] when the fraction leaves fewer than
    /// 2 training points or no test points.
    pub fn split_fraction(&self, train_fraction: f64) -> Result<TrainTestSplit, DataError> {
        let train_len = (self.len() as f64 * train_fraction).round() as usize;
        self.split_at(train_len)
    }
}

impl std::fmt::Display for PerformanceSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} points, t ∈ [{}, {}])",
            self.name,
            self.len(),
            self.times[0],
            self.times[self.len() - 1]
        )
    }
}

/// A train/test split of a [`PerformanceSeries`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainTestSplit {
    /// Training prefix used for parameter estimation.
    pub train: PerformanceSeries,
    /// Held-out suffix used for predictive validation (PMSE).
    pub test: PerformanceSeries,
}

impl TrainTestSplit {
    /// Number of held-out observations (the paper's `ℓ`).
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.test.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v_curve() -> PerformanceSeries {
        let values: Vec<f64> = (0..20)
            .map(|i| {
                let t = i as f64;
                1.0 - 0.05 * (-((t - 8.0) / 4.0).powi(2)).exp()
            })
            .collect();
        PerformanceSeries::monthly("v", values).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(PerformanceSeries::new("x", vec![0.0], vec![1.0]).is_err());
        assert!(PerformanceSeries::new("x", vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(PerformanceSeries::new("x", vec![1.0, 0.0], vec![1.0, 1.0]).is_err());
        assert!(PerformanceSeries::new("x", vec![0.0, 0.0], vec![1.0, 1.0]).is_err());
        assert!(PerformanceSeries::new("x", vec![0.0, f64::NAN], vec![1.0, 1.0]).is_err());
        assert!(PerformanceSeries::new("x", vec![0.0, 1.0], vec![1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn monthly_grid() {
        let s = PerformanceSeries::monthly("m", vec![1.0, 0.9, 0.95]).unwrap();
        assert_eq!(s.times(), &[0.0, 1.0, 2.0]);
        assert_eq!(s.nominal(), 1.0);
    }

    #[test]
    fn trough_detection() {
        let s = v_curve();
        let (t_min, p_min) = s.trough().unwrap();
        assert_eq!(t_min, 8.0);
        assert!((p_min - 0.95).abs() < 1e-12);
    }

    #[test]
    fn value_at_interpolates_and_clamps() {
        let s = PerformanceSeries::monthly("m", vec![1.0, 0.9, 1.1]).unwrap();
        assert!((s.value_at(0.5).unwrap() - 0.95).abs() < 1e-12);
        assert_eq!(s.value_at(-5.0).unwrap(), 1.0);
        assert_eq!(s.value_at(99.0).unwrap(), 1.1);
    }

    #[test]
    fn normalization() {
        let s = PerformanceSeries::monthly("m", vec![2.0, 1.8, 2.2]).unwrap();
        let n = s.normalized().unwrap();
        assert_eq!(n.values(), &[1.0, 0.9, 1.1]);
        let z = PerformanceSeries::monthly("z", vec![0.0, 1.0]).unwrap();
        assert!(z.normalized().is_err());
    }

    #[test]
    fn split_at_prefix_suffix() {
        let s = v_curve();
        let split = s.split_at(15).unwrap();
        assert_eq!(split.train.len(), 15);
        assert_eq!(split.test.len(), 5);
        assert_eq!(split.horizon(), 5);
        assert_eq!(split.train.times()[14], 14.0);
        assert_eq!(split.test.times()[0], 15.0);
    }

    #[test]
    fn split_bounds_checked() {
        let s = v_curve();
        assert!(s.split_at(1).is_err());
        assert!(s.split_at(20).is_err());
        assert!(s.split_at(25).is_err());
    }

    #[test]
    fn split_fraction_ninety_percent() {
        let s = v_curve(); // 20 points
        let split = s.split_fraction(0.9).unwrap();
        assert_eq!(split.train.len(), 18);
        assert_eq!(split.test.len(), 2);
    }

    #[test]
    fn split_fraction_rejects_degenerate_fractions() {
        let s = v_curve(); // 20 points
        for f in [-0.5, 0.0, 0.01, 1.0, 1.5, f64::NAN, f64::INFINITY] {
            assert!(
                s.split_fraction(f).is_err(),
                "fraction {f} must be rejected"
            );
        }
    }

    #[test]
    fn display_and_iter() {
        let s = v_curve();
        assert!(s.to_string().contains("20 points"));
        let pairs: Vec<(f64, f64)> = s.iter().collect();
        assert_eq!(pairs.len(), 20);
        assert_eq!(pairs[0].0, 0.0);
    }
}
