//! Data substrate for the `predictive-resilience` workspace: performance
//! time series, a composable scenario engine (shock grammar, recovery
//! trends, stochastic outage processes), the seven U.S. recession curves
//! expressed as scenario specs, and minimal CSV I/O.
//!
//! # Data provenance
//!
//! The paper evaluates on normalized payroll-employment curves for seven
//! U.S. recessions from the BLS Current Employment Statistics program
//! (its Fig. 2). The paper does not ship a machine-readable table, so this
//! crate generates **deterministic synthetic curves** matching the
//! published shapes — trough depth and timing, recovery slope, terminal
//! level, and the V/U/W/L classification — from documented parametric
//! profiles (see [`recessions`]). Users with the real BLS series can load
//! it through [`csv::read_series`] and run every fit unchanged. DESIGN.md
//! §2 records this substitution and why it preserves the paper's findings.
//!
//! # Examples
//!
//! ```
//! use resilience_data::recessions::Recession;
//!
//! let series = Recession::R1990_93.payroll_index();
//! assert_eq!(series.len(), 48);
//! // Month zero is the employment peak, normalized to 1.
//! assert!((series.values()[0] - 1.0).abs() < 0.01);
//! // The curve dips below 1 and recovers above it.
//! let (t_min, p_min) = series.trough().unwrap();
//! assert!(p_min < 0.995);
//! assert!(t_min > 0.0);
//! ```

// `!(x > 0.0)`-style comparisons are used deliberately throughout this
// crate: unlike `x <= 0.0`, they also reject NaN, which is exactly the
// validation semantics parameter checks need.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod csv;
pub mod error;
pub mod fault;
pub mod noise;
pub mod recessions;
pub mod scenario;
pub mod series;
pub mod transform;

pub use error::DataError;
pub use fault::{Fault, FaultError};
pub use series::{PerformanceSeries, TrainTestSplit};
