//! Canonical scenario catalog: the paper's letter shapes plus canned
//! disruption stories used by smoke tests and fault-injection sweeps.

use crate::scenario::shock::{Recovery, Shock};
use crate::scenario::{Drift, Noise, ScenarioSpec};

/// The letter taxonomy of recession shapes from the paper's §V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeKind {
    /// Sharp drop, sharp recovery.
    V,
    /// Slow drop, slow recovery.
    U,
    /// Two successive degradation/recovery episodes.
    W,
    /// Sudden crash followed by prolonged under-performance.
    L,
    /// Slow recovery that eventually rejoins the pre-hazard growth trend.
    J,
    /// Sharp drop with divergent recovery paths; represented here by its
    /// aggregate: a crash with only partial long-run recovery.
    K,
}

impl ShapeKind {
    /// All shapes, in display order.
    pub const ALL: [ShapeKind; 6] = [
        ShapeKind::V,
        ShapeKind::U,
        ShapeKind::W,
        ShapeKind::L,
        ShapeKind::J,
        ShapeKind::K,
    ];

    /// A canonical scenario of this shape over `n` months.
    ///
    /// Used by the shape-sweep ablation: the paper's conclusion — V and U
    /// fit well, W/L/K break both model families — is reproduced over
    /// these controlled curves. The specs are bit-identical to the
    /// pre-grammar `ShapeKind::canonical` output (pinned by
    /// `tests/scenarios.rs`).
    #[must_use]
    pub fn scenario(self, n: usize, seed: u64) -> ScenarioSpec {
        let exp = |rate: f64| Recovery::Exponential { rate };
        let smooth = |duration: f64| Recovery::Smoothstep { duration };
        let horizon = n as f64;
        let pulse =
            |start: f64, trough: f64, depth: f64, sharpness: f64, rec: Recovery| Shock::Pulse {
                start,
                trough,
                depth,
                sharpness,
                recovery: rec,
            };
        let spec = |shocks: Vec<Shock>, drift_total: f64| ScenarioSpec {
            n,
            shocks,
            events: None,
            drift: Drift::Linear { total: drift_total },
            noise: Noise::Gaussian { sd: 0.0008, seed },
            floor: None,
        };
        match self {
            ShapeKind::V => spec(
                vec![pulse(0.0, 0.3 * horizon, 0.05, 1.2, exp(8.0 / horizon))],
                0.04,
            ),
            ShapeKind::U => spec(
                vec![pulse(
                    0.0,
                    0.35 * horizon,
                    0.04,
                    1.0,
                    smooth(0.55 * horizon),
                )],
                0.03,
            ),
            ShapeKind::W => spec(
                vec![
                    pulse(0.0, 0.12 * horizon, 0.02, 1.1, exp(16.0 / horizon)),
                    pulse(
                        0.3 * horizon,
                        0.55 * horizon,
                        0.035,
                        1.1,
                        exp(10.0 / horizon),
                    ),
                ],
                0.01,
            ),
            ShapeKind::L => spec(
                vec![
                    pulse(0.0, 0.06 * horizon, 0.10, 0.7, exp(20.0 / horizon)),
                    pulse(0.0, 0.06 * horizon, 0.05, 0.7, exp(0.6 / horizon)),
                ],
                0.0,
            ),
            ShapeKind::J => spec(
                vec![pulse(0.0, 0.25 * horizon, 0.05, 1.0, exp(3.0 / horizon))],
                0.06,
            ),
            ShapeKind::K => spec(
                vec![
                    pulse(0.0, 0.05 * horizon, 0.09, 0.6, exp(25.0 / horizon)),
                    pulse(0.0, 0.05 * horizon, 0.07, 0.6, exp(0.3 / horizon)),
                ],
                -0.01,
            ),
        }
    }
}

impl std::fmt::Display for ShapeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ShapeKind::V => "V",
            ShapeKind::U => "U",
            ShapeKind::W => "W",
            ShapeKind::L => "L",
            ShapeKind::J => "J",
            ShapeKind::K => "K",
        };
        write!(f, "{s}")
    }
}

/// A step outage: performance drops 20 % at month 8 and restores
/// exponentially (half-life ≈ 3.5 months) over a 48-month window.
#[must_use]
pub fn step_outage(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        n: 48,
        shocks: vec![Shock::Step {
            at: 8.0,
            depth: 0.2,
            recovery: Recovery::Exponential { rate: 0.2 },
        }],
        events: None,
        drift: Drift::None,
        noise: Noise::Gaussian { sd: 0.001, seed },
        floor: None,
    }
}

/// A W-shaped double-dip: two pulse shocks with a partial rebound between
/// them over a 60-month window.
#[must_use]
pub fn double_dip(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        n: 60,
        shocks: vec![
            Shock::Pulse {
                start: 0.0,
                trough: 8.0,
                depth: 0.04,
                sharpness: 1.1,
                recovery: Recovery::Exponential { rate: 0.3 },
            },
            Shock::Pulse {
                start: 20.0,
                trough: 32.0,
                depth: 0.05,
                sharpness: 1.1,
                recovery: Recovery::Exponential { rate: 0.2 },
            },
        ],
        events: None,
        drift: Drift::Linear { total: 0.02 },
        noise: Noise::Gaussian { sd: 0.001, seed },
        floor: None,
    }
}

/// A slow-burn degradation: a long shallow ramp with a logistic recovery
/// that never quite completes inside the 72-month window.
#[must_use]
pub fn slow_burn(seed: u64) -> ScenarioSpec {
    ScenarioSpec {
        n: 72,
        shocks: vec![Shock::Ramp {
            start: 4.0,
            end: 40.0,
            depth: 0.08,
            recovery: Recovery::Logistic {
                rate: 0.25,
                midpoint: 12.0,
            },
        }],
        events: None,
        drift: Drift::Linear { total: 0.01 },
        noise: Noise::Gaussian { sd: 0.0008, seed },
        floor: None,
    }
}

/// The canonical scenario set driven by smoke tests and the verify
/// pipeline: the six letter shapes at 48 months plus the three canned
/// disruption stories, all seeded from `seed`.
#[must_use]
pub fn canonical_set(seed: u64) -> Vec<(String, ScenarioSpec)> {
    let mut set: Vec<(String, ScenarioSpec)> = ShapeKind::ALL
        .iter()
        .map(|kind| (format!("shape-{kind}"), kind.scenario(48, seed)))
        .collect();
    set.push(("step-outage".to_string(), step_outage(seed)));
    set.push(("double-dip".to_string(), double_dip(seed)));
    set.push(("slow-burn".to_string(), slow_burn(seed)));
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v_shape_dips_and_recovers() {
        let s = ShapeKind::V.scenario(48, 11).generate("v").unwrap();
        let (t_min, p_min) = s.trough().unwrap();
        assert!(p_min < 0.97);
        assert!(t_min > 5.0 && t_min < 25.0);
        // Recovered above nominal by the end.
        assert!(s.values()[47] > 1.0);
    }

    #[test]
    fn w_shape_has_two_local_minima() {
        let s = ShapeKind::W.scenario(48, 5).generate("w").unwrap();
        let v = s.values();
        // Count strict local minima over a smoothed 3-point window.
        let mut minima = 0;
        for i in 2..(v.len() - 2) {
            let prev = (v[i - 2] + v[i - 1]) / 2.0;
            let next = (v[i + 1] + v[i + 2]) / 2.0;
            if v[i] < prev - 1e-4 && v[i] < next - 1e-4 {
                minima += 1;
            }
        }
        assert!(minima >= 2, "expected a W (two minima), found {minima}");
    }

    #[test]
    fn l_shape_crashes_fast_and_stays_low() {
        let s = ShapeKind::L.scenario(24, 9).generate("l").unwrap();
        let v = s.values();
        let (_, p_min) = s.trough().unwrap();
        assert!(p_min < 0.88, "deep crash: {p_min}");
        // Still visibly below nominal at the end.
        assert!(v[23] < 0.99);
        // The crash happens within the first few months.
        let early_min = v[..5].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(early_min < 0.9);
    }

    #[test]
    fn k_shape_ends_below_nominal() {
        let s = ShapeKind::K.scenario(24, 13).generate("k").unwrap();
        assert!(s.values()[23] < 0.99);
    }

    #[test]
    fn all_canonical_shapes_generate() {
        for kind in ShapeKind::ALL {
            let s = kind.scenario(48, 1).generate(kind.to_string()).unwrap();
            assert_eq!(s.len(), 48);
            assert!(s.values().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn display_letters() {
        assert_eq!(ShapeKind::V.to_string(), "V");
        assert_eq!(ShapeKind::K.to_string(), "K");
    }

    #[test]
    fn step_outage_drops_and_restores() {
        let s = step_outage(1).generate("step").unwrap();
        let v = s.values();
        // Pre-outage flat at nominal (noise aside).
        assert!((v[7] - 1.0).abs() < 0.01);
        // Post-outage month is ~20 % down.
        assert!(v[9] < 0.85);
        // Mostly restored by the end.
        assert!(v[47] > 0.98);
    }

    #[test]
    fn double_dip_is_w_shaped() {
        let s = double_dip(1).generate("w").unwrap();
        let v = s.values();
        let first_min = v[4..=14].iter().cloned().fold(f64::INFINITY, f64::min);
        let mid_max = v[14..=22].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let second_min = v[26..=40].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(mid_max > first_min + 0.005, "no rebound between dips");
        assert!(mid_max > second_min + 0.005, "no second dip");
    }

    #[test]
    fn slow_burn_degrades_gradually() {
        let s = slow_burn(1).generate("burn").unwrap();
        let v = s.values();
        let (t_min, p_min) = s.trough().unwrap();
        // Trough arrives late (slow burn, not a crash).
        assert!(t_min > 20.0, "trough at {t_min}");
        assert!(p_min < 0.95);
        // Early months remain near nominal.
        assert!(v[4] > 0.99);
    }

    #[test]
    fn canonical_set_generates_cleanly() {
        let set = canonical_set(42);
        assert_eq!(set.len(), 9);
        for (name, spec) in &set {
            let s = spec.generate(name.clone()).unwrap();
            assert!(s.values().iter().all(|v| v.is_finite()), "{name}");
        }
    }
}
