//! Deterministic Poisson outage/restore event processes.
//!
//! Following Dobson's *Models, metrics, and formulas for electric power
//! system resilience events* (PAPERS.md), outages arrive as a Poisson
//! process, each carries an exponentially distributed magnitude, and
//! restoration completes after an exponentially distributed repair time
//! — producing the staircase performance curves of real utility data.
//!
//! Determinism discipline: every outage event draws from its own
//! counter-derived [`XorShift64`] stream (`stream(seed, k)` for event
//! `k`), never from a shared sequential generator. A realized event list
//! is therefore a pure function of `(spec, horizon)` — bit-identical
//! across runs, platforms, and thread counts, and event `k`'s draws
//! cannot shift when another event's sampling changes.

use crate::noise::XorShift64;
use crate::scenario::shock::Shock;
use crate::DataError;

/// One realized outage event: performance drops by `depth` at `at` and
/// restores instantly at `restore_at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outage {
    /// Outage start time.
    pub at: f64,
    /// Restoration time.
    pub restore_at: f64,
    /// Performance lost while the outage is active.
    pub depth: f64,
}

/// A stochastic outage/restore event process with Poisson arrivals.
///
/// # Examples
///
/// ```
/// use resilience_data::scenario::EventProcess;
///
/// let process = EventProcess {
///     outage_rate: 0.1,
///     mean_restore: 4.0,
///     mean_depth: 0.05,
///     max_depth: 0.2,
///     seed: 7,
///     max_events: 1024,
/// };
/// let a = process.realize(200.0)?;
/// let b = process.realize(200.0)?;
/// assert_eq!(a, b); // pure function of (spec, horizon)
/// assert!(!a.is_empty());
/// # Ok::<(), resilience_data::DataError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventProcess {
    /// Expected outages per time unit (Poisson arrival rate, > 0).
    pub outage_rate: f64,
    /// Mean repair time (exponentially distributed restore delays, > 0).
    pub mean_restore: f64,
    /// Mean outage magnitude (exponentially distributed depths, > 0).
    pub mean_depth: f64,
    /// Hard cap on a single outage's depth (≥ `0`, keeps stacked events
    /// from driving performance arbitrarily negative).
    pub max_depth: f64,
    /// Stream seed: same seed ⇒ identical realization.
    pub seed: u64,
    /// Upper bound on realized events (backstop against degenerate
    /// rate/horizon combinations).
    pub max_events: usize,
}

impl EventProcess {
    /// A conservative default event budget.
    pub const DEFAULT_MAX_EVENTS: usize = 4096;

    /// Validates rates and bounds.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSeries`] for non-positive rates,
    /// depths, or event budgets.
    pub fn validate(&self) -> Result<(), DataError> {
        let what = "EventProcess";
        for (name, v) in [
            ("outage_rate", self.outage_rate),
            ("mean_restore", self.mean_restore),
            ("mean_depth", self.mean_depth),
            ("max_depth", self.max_depth),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(DataError::invalid(
                    what,
                    format!("{name} must be positive and finite, got {v}"),
                ));
            }
        }
        if self.max_events == 0 {
            return Err(DataError::invalid(what, "max_events must be positive"));
        }
        Ok(())
    }

    /// Realizes the event list over `[0, horizon]`.
    ///
    /// Event `k` draws its inter-arrival gap, repair time, and magnitude
    /// from the counter-derived stream `XorShift64::stream(seed, k)`, so
    /// the realization is deterministic and schedule-invariant.
    ///
    /// # Errors
    ///
    /// Propagates validation failures; rejects a non-positive or
    /// non-finite horizon.
    pub fn realize(&self, horizon: f64) -> Result<Vec<Outage>, DataError> {
        self.validate()?;
        if !(horizon > 0.0) || !horizon.is_finite() {
            return Err(DataError::invalid(
                "EventProcess::realize",
                format!("horizon must be positive and finite, got {horizon}"),
            ));
        }
        let mut outages = Vec::new();
        let mut t = 0.0;
        for k in 0..self.max_events {
            let mut stream = XorShift64::stream(self.seed, k as u64);
            t += exp_draw(&mut stream) / self.outage_rate;
            if t > horizon {
                break;
            }
            let duration = exp_draw(&mut stream) * self.mean_restore;
            let depth = (exp_draw(&mut stream) * self.mean_depth).min(self.max_depth);
            // A zero-magnitude or zero-length draw would fail Shock
            // validation; nudge to the smallest meaningful event.
            outages.push(Outage {
                at: t,
                restore_at: t + duration.max(1e-9),
                depth: depth.max(1e-12),
            });
        }
        Ok(outages)
    }

    /// Realizes the process and renders each event as a rectangular
    /// [`Shock::Outage`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`EventProcess::realize`].
    pub fn shocks(&self, horizon: f64) -> Result<Vec<Shock>, DataError> {
        Ok(self
            .realize(horizon)?
            .iter()
            .map(|o| Shock::Outage {
                at: o.at,
                restore_at: o.restore_at,
                depth: o.depth,
            })
            .collect())
    }
}

/// Standard exponential deviate via inverse CDF. `next_f64` yields
/// `u ∈ [0, 1)`, so `1 − u ∈ (0, 1]` and the log is always finite.
fn exp_draw(rng: &mut XorShift64) -> f64 {
    -(1.0 - rng.next_f64()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process(seed: u64) -> EventProcess {
        EventProcess {
            outage_rate: 0.05,
            mean_restore: 3.0,
            mean_depth: 0.04,
            max_depth: 0.15,
            seed,
            max_events: EventProcess::DEFAULT_MAX_EVENTS,
        }
    }

    #[test]
    fn realization_is_deterministic() {
        let p = process(11);
        assert_eq!(p.realize(500.0).unwrap(), p.realize(500.0).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            process(1).realize(500.0).unwrap(),
            process(2).realize(500.0).unwrap()
        );
    }

    #[test]
    fn events_are_ordered_and_bounded() {
        let p = process(3);
        let events = p.realize(400.0).unwrap();
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[1].at > w[0].at);
        }
        for e in &events {
            assert!(e.at > 0.0 && e.at <= 400.0);
            assert!(e.restore_at > e.at);
            assert!(e.depth > 0.0 && e.depth <= p.max_depth);
        }
    }

    #[test]
    fn shorter_horizon_is_a_prefix() {
        // Counter-derived streams: truncating the horizon only drops
        // events, never changes the surviving ones.
        let p = process(5);
        let long = p.realize(600.0).unwrap();
        let short = p.realize(300.0).unwrap();
        assert!(short.len() < long.len());
        assert_eq!(&long[..short.len()], &short[..]);
    }

    #[test]
    fn max_events_caps_the_realization() {
        let p = EventProcess {
            max_events: 3,
            ..process(9)
        };
        assert!(p.realize(100_000.0).unwrap().len() <= 3);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        for bad in [
            EventProcess {
                outage_rate: 0.0,
                ..process(1)
            },
            EventProcess {
                mean_restore: -1.0,
                ..process(1)
            },
            EventProcess {
                mean_depth: f64::NAN,
                ..process(1)
            },
            EventProcess {
                max_events: 0,
                ..process(1)
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} accepted");
        }
        assert!(process(1).validate().is_ok());
        assert!(process(1).realize(-5.0).is_err());
    }
}
