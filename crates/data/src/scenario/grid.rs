//! Fleet-scale scenario grids: the cartesian product
//! scenarios × noise models × lengths × seeds, indexable cell by cell.
//!
//! The fleet driver (DESIGN.md §13) fits thousands of generated series
//! through the ranking pipeline with work-stealing over flattened
//! series × family jobs. That fan-out wants *indexed* access — job `i`
//! must map to one fully determined [`ScenarioSpec`] without materializing
//! the whole grid up front — so a [`ScenarioGrid`] is a tiny mixed-radix
//! number system over its four axes: [`ScenarioGrid::cell`] decodes an
//! index into a [`GridCell`] deterministically, and two decodes of the
//! same index are identical by construction.
//!
//! Per-cell seeds drive both the scenario's stochastic parts (the Poisson
//! event process) and the observation-noise stream, so the seed axis
//! turns one scenario story into an ensemble of independent realizations
//! — the ensemble framing of Dobson's outage models and Ganin's scenario
//! matrices (PAPERS.md).

use crate::scenario::catalog::{self, ShapeKind};
use crate::scenario::events::EventProcess;
use crate::scenario::{Noise, ScenarioSpec};
use crate::DataError;

/// One scenario story usable as a grid axis value: the catalog shapes and
/// canned disruption stories, parameterized by grid length and seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridScenario {
    /// A canonical letter shape ([`ShapeKind`]).
    Shape(ShapeKind),
    /// The step-outage story ([`catalog::step_outage`]).
    StepOutage,
    /// The W-shaped double dip ([`catalog::double_dip`]).
    DoubleDip,
    /// The slow-burn ramp ([`catalog::slow_burn`]).
    SlowBurn,
    /// A stochastic Poisson outage/restore process; the seed realizes a
    /// fresh outage schedule per cell.
    PoissonOutages,
}

impl GridScenario {
    /// Every grid scenario, in display order: the six letter shapes, then
    /// the three canned stories, then the Poisson process.
    pub const ALL: [GridScenario; 10] = [
        GridScenario::Shape(ShapeKind::V),
        GridScenario::Shape(ShapeKind::U),
        GridScenario::Shape(ShapeKind::W),
        GridScenario::Shape(ShapeKind::L),
        GridScenario::Shape(ShapeKind::J),
        GridScenario::Shape(ShapeKind::K),
        GridScenario::StepOutage,
        GridScenario::DoubleDip,
        GridScenario::SlowBurn,
        GridScenario::PoissonOutages,
    ];

    /// Stable label used in results stores and cell names.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            GridScenario::Shape(kind) => format!("shape-{kind}"),
            GridScenario::StepOutage => "step-outage".to_string(),
            GridScenario::DoubleDip => "double-dip".to_string(),
            GridScenario::SlowBurn => "slow-burn".to_string(),
            GridScenario::PoissonOutages => "poisson-outages".to_string(),
        }
    }

    /// The scenario spec at grid length `n`, seeded with `seed`. Catalog
    /// stories keep their shock schedules; only the horizon is re-sized
    /// (shocks beyond a short horizon simply contribute nothing).
    #[must_use]
    pub fn spec(&self, n: usize, seed: u64) -> ScenarioSpec {
        match self {
            GridScenario::Shape(kind) => kind.scenario(n, seed),
            GridScenario::StepOutage => {
                let mut spec = catalog::step_outage(seed);
                spec.n = n;
                spec
            }
            GridScenario::DoubleDip => {
                let mut spec = catalog::double_dip(seed);
                spec.n = n;
                spec
            }
            GridScenario::SlowBurn => {
                let mut spec = catalog::slow_burn(seed);
                spec.n = n;
                spec
            }
            GridScenario::PoissonOutages => ScenarioSpec {
                n,
                shocks: Vec::new(),
                events: Some(EventProcess {
                    outage_rate: 0.08,
                    mean_restore: 5.0,
                    mean_depth: 0.05,
                    max_depth: 0.2,
                    seed,
                    max_events: EventProcess::DEFAULT_MAX_EVENTS,
                }),
                drift: crate::scenario::Drift::None,
                noise: Noise::None,
                floor: Some(0.0),
            },
        }
    }
}

/// An observation-noise level, independent of the per-cell seed: the grid
/// binds each level to the cell's own seed at decode time so every cell
/// draws an independent noise stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseLevel {
    /// Noise-free generation.
    Clean,
    /// Additive Gaussian noise with standard deviation `sd`.
    Gaussian {
        /// Standard deviation (≥ 0).
        sd: f64,
    },
    /// Additive uniform noise on `[-amplitude, amplitude]`.
    Uniform {
        /// Half-width of the noise band (≥ 0).
        amplitude: f64,
    },
}

impl NoiseLevel {
    /// Stable label used in results stores and cell names.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            NoiseLevel::Clean => "clean".to_string(),
            NoiseLevel::Gaussian { sd } => format!("gaussian-{sd:e}"),
            NoiseLevel::Uniform { amplitude } => format!("uniform-{amplitude:e}"),
        }
    }

    /// Binds this level to a concrete seed, yielding the [`Noise`] model
    /// a cell generates with.
    #[must_use]
    pub fn noise(&self, seed: u64) -> Noise {
        match self {
            NoiseLevel::Clean => Noise::None,
            NoiseLevel::Gaussian { sd } => Noise::Gaussian { sd: *sd, seed },
            NoiseLevel::Uniform { amplitude } => Noise::Uniform {
                amplitude: *amplitude,
                seed,
            },
        }
    }
}

/// One fully decoded grid cell: the axis labels plus the concrete
/// [`ScenarioSpec`] to generate.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Cell index in `0..grid.len()`.
    pub index: usize,
    /// Scenario axis label (e.g. `shape-V`, `poisson-outages`).
    pub scenario: String,
    /// Noise axis label (e.g. `clean`, `gaussian-1e-3`).
    pub noise: String,
    /// Grid length.
    pub n: usize,
    /// Cell seed (drives noise and any stochastic event process).
    pub seed: u64,
    /// The spec to generate.
    pub spec: ScenarioSpec,
}

impl GridCell {
    /// Canonical series name for this cell.
    #[must_use]
    pub fn series_name(&self) -> String {
        format!(
            "{}/{}/n{}/s{}",
            self.scenario, self.noise, self.n, self.seed
        )
    }

    /// Generates the cell's series.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioSpec::generate`] validation failures.
    pub fn generate(&self) -> Result<crate::PerformanceSeries, DataError> {
        self.spec.generate(self.series_name())
    }
}

/// A cartesian grid over scenarios × noise levels × lengths × seeds.
///
/// Cells are ordered scenario-major, seed-minor:
/// `index = ((s·|noises| + z)·|lengths| + l)·|seeds| + d`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGrid {
    /// Scenario axis.
    pub scenarios: Vec<GridScenario>,
    /// Noise-model axis.
    pub noises: Vec<NoiseLevel>,
    /// Grid-length axis.
    pub lengths: Vec<usize>,
    /// Seed axis (one independent realization per seed).
    pub seeds: Vec<u64>,
}

impl ScenarioGrid {
    /// Number of cells (the product of the four axis lengths).
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenarios.len() * self.noises.len() * self.lengths.len() * self.seeds.len()
    }

    /// Whether any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes cell `index` (mixed-radix over the four axes).
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.len()`.
    #[must_use]
    pub fn cell(&self, index: usize) -> GridCell {
        assert!(index < self.len(), "cell index {index} out of range");
        let d = index % self.seeds.len();
        let rest = index / self.seeds.len();
        let l = rest % self.lengths.len();
        let rest = rest / self.lengths.len();
        let z = rest % self.noises.len();
        let s = rest / self.noises.len();
        let scenario = self.scenarios[s];
        let noise = self.noises[z];
        let n = self.lengths[l];
        let seed = self.seeds[d];
        let mut spec = scenario.spec(n, seed);
        spec.noise = noise.noise(seed);
        GridCell {
            index,
            scenario: scenario.label(),
            noise: noise.label(),
            n,
            seed,
            spec,
        }
    }

    /// Iterates every cell in index order.
    pub fn cells(&self) -> impl Iterator<Item = GridCell> + '_ {
        (0..self.len()).map(|i| self.cell(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> ScenarioGrid {
        ScenarioGrid {
            scenarios: vec![
                GridScenario::Shape(ShapeKind::V),
                GridScenario::PoissonOutages,
            ],
            noises: vec![NoiseLevel::Clean, NoiseLevel::Gaussian { sd: 0.001 }],
            lengths: vec![32, 48],
            seeds: vec![42, 43, 44],
        }
    }

    #[test]
    fn len_is_the_axis_product() {
        assert_eq!(small_grid().len(), 2 * 2 * 2 * 3);
        assert!(!small_grid().is_empty());
        let empty = ScenarioGrid {
            seeds: Vec::new(),
            ..small_grid()
        };
        assert!(empty.is_empty());
    }

    #[test]
    fn cells_enumerate_every_combination_once() {
        let grid = small_grid();
        let cells: Vec<GridCell> = grid.cells().collect();
        assert_eq!(cells.len(), grid.len());
        let mut names: Vec<String> = cells.iter().map(GridCell::series_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), grid.len(), "cell names must be unique");
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
    }

    #[test]
    fn cell_decode_is_deterministic_and_generates() {
        let grid = small_grid();
        for i in 0..grid.len() {
            let a = grid.cell(i);
            let b = grid.cell(i);
            assert_eq!(a, b);
            let sa = a.generate().unwrap();
            let sb = b.generate().unwrap();
            assert_eq!(sa.len(), a.n);
            let bits = |s: &crate::PerformanceSeries| {
                s.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(bits(&sa), bits(&sb), "cell {i} regenerated differently");
        }
    }

    #[test]
    fn seeds_realize_independent_noise_streams() {
        let grid = small_grid();
        // Cells 1 and 2 differ only in seed (n=32, gaussian... pick two
        // gaussian cells at same scenario/length): indices with z=1,l=0
        // are 6+0..6+2 (s=0,z=1,l=0,d).
        let a = grid.cell(6).generate().unwrap();
        let b = grid.cell(7).generate().unwrap();
        assert_eq!(grid.cell(6).noise, "gaussian-1e-3");
        assert_ne!(a.values(), b.values(), "seeds must decorrelate noise");
    }

    #[test]
    fn poisson_cells_realize_per_seed_schedules() {
        let grid = ScenarioGrid {
            scenarios: vec![GridScenario::PoissonOutages],
            noises: vec![NoiseLevel::Clean],
            lengths: vec![96],
            seeds: vec![1, 2],
        };
        let a = grid.cell(0).generate().unwrap();
        let b = grid.cell(1).generate().unwrap();
        assert_ne!(a.values(), b.values());
    }

    #[test]
    fn every_grid_scenario_generates_at_short_and_long_horizons() {
        for scenario in GridScenario::ALL {
            for n in [24usize, 72] {
                let spec = scenario.spec(n, 7);
                let s = spec.generate(scenario.label()).unwrap();
                assert_eq!(s.len(), n, "{}", scenario.label());
                assert!(
                    s.values().iter().all(|v| v.is_finite()),
                    "{}",
                    scenario.label()
                );
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(GridScenario::Shape(ShapeKind::W).label(), "shape-W");
        assert_eq!(GridScenario::PoissonOutages.label(), "poisson-outages");
        assert_eq!(NoiseLevel::Clean.label(), "clean");
        assert_eq!(NoiseLevel::Gaussian { sd: 0.001 }.label(), "gaussian-1e-3");
        assert_eq!(
            NoiseLevel::Uniform { amplitude: 0.002 }.label(),
            "uniform-2e-3"
        );
    }
}
