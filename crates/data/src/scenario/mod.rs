//! Composable scenario engine: declarative disruption/recovery specs.
//!
//! The paper's evaluation is fixed to seven U.S. recession curves; this
//! module replaces that closed generator with an open grammar. A
//! [`ScenarioSpec`] names a grid length, a list of [`Shock`] primitives
//! (smooth pulses, instantaneous steps, slow-burn ramps, rectangular
//! outages), a secular [`Drift`], a deterministic [`Noise`] model, and —
//! optionally — a stochastic Poisson [`EventProcess`] whose realized
//! outages are appended to the shock list. Any disruption/recovery story
//! (recession, cyber outage, grid storm, pandemic, cascading failure)
//! becomes a declarative spec over these atoms; the seven embedded
//! recessions of [`crate::recessions`] and the letter shapes of
//! [`ShapeKind`] are themselves expressed through this grammar, pinned
//! bit-identical to their pre-grammar output by `tests/scenarios.rs`.
//!
//! # Determinism
//!
//! Generation is a pure function of the spec: noise streams are seeded
//! [`XorShift64`] sequences and every stochastic outage event draws from
//! its own counter-derived substream, so generated series are
//! bit-identical across runs, platforms, and thread counts (DESIGN.md
//! §12).
//!
//! # Examples
//!
//! ```
//! use resilience_data::scenario::{Drift, Noise, Recovery, ScenarioSpec, Shock};
//!
//! // A 48-month V-shaped disruption with 4 % secular growth.
//! let spec = ScenarioSpec {
//!     n: 48,
//!     shocks: vec![Shock::Pulse {
//!         start: 0.0,
//!         trough: 12.0,
//!         depth: 0.05,
//!         sharpness: 1.2,
//!         recovery: Recovery::Exponential { rate: 0.2 },
//!     }],
//!     events: None,
//!     drift: Drift::Linear { total: 0.04 },
//!     noise: Noise::Gaussian { sd: 0.001, seed: 7 },
//!     floor: None,
//! };
//! let series = spec.generate("v-shape")?;
//! let (t_min, _) = series.trough().unwrap();
//! assert!((t_min - 12.0).abs() <= 3.0);
//! # Ok::<(), resilience_data::DataError>(())
//! ```

pub mod catalog;
pub mod events;
pub mod grid;
pub mod shock;

pub use catalog::ShapeKind;
pub use events::{EventProcess, Outage};
pub use grid::{GridCell, GridScenario, NoiseLevel, ScenarioGrid};
pub use shock::{smoothstep, Recovery, Shock};

use crate::noise::XorShift64;
use crate::series::PerformanceSeries;
use crate::DataError;

/// Secular background trend added to the nominal level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Drift {
    /// No background trend.
    None,
    /// Linear drift accruing `total` from the first to the last grid
    /// point (positive for systems that out-grow their pre-hazard peak).
    Linear {
        /// Total drift accrued over the horizon.
        total: f64,
    },
}

impl Drift {
    /// Drift offset at time `t` over a grid ending at `horizon`.
    #[must_use]
    pub fn offset_at(&self, t: f64, horizon: f64) -> f64 {
        match self {
            Drift::None => 0.0,
            Drift::Linear { total } => total * t / horizon,
        }
    }

    fn validate(&self) -> Result<(), DataError> {
        match self {
            Drift::None => Ok(()),
            Drift::Linear { total } if !total.is_finite() => Err(DataError::invalid(
                "ScenarioSpec",
                format!("drift total must be finite, got {total}"),
            )),
            Drift::Linear { .. } => Ok(()),
        }
    }
}

/// Deterministic observation-noise model.
///
/// Noise is suppressed at the first grid point so normalization stays
/// exact (`P(t_0) = 1` absent shocks at the origin).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Noise {
    /// Noise-free generation.
    None,
    /// Additive Gaussian noise with standard deviation `sd`, drawn
    /// sequentially from a seeded [`XorShift64`] (one deviate per grid
    /// point after the first).
    Gaussian {
        /// Standard deviation (≥ 0).
        sd: f64,
        /// Stream seed: same seed ⇒ identical noise.
        seed: u64,
    },
    /// Additive uniform noise on `[-amplitude, amplitude]`.
    Uniform {
        /// Half-width of the noise band (≥ 0).
        amplitude: f64,
        /// Stream seed.
        seed: u64,
    },
}

impl Noise {
    fn seed(&self) -> u64 {
        match self {
            Noise::None => 0,
            Noise::Gaussian { seed, .. } | Noise::Uniform { seed, .. } => *seed,
        }
    }

    fn sample(&self, rng: &mut XorShift64) -> f64 {
        match self {
            Noise::None => 0.0,
            Noise::Gaussian { sd, .. } => sd * rng.next_gaussian(),
            Noise::Uniform { amplitude, .. } => amplitude * (2.0 * rng.next_f64() - 1.0),
        }
    }

    fn validate(&self) -> Result<(), DataError> {
        let check = |name: &str, v: f64| -> Result<(), DataError> {
            if !(v >= 0.0) || !v.is_finite() {
                return Err(DataError::invalid(
                    "ScenarioSpec",
                    format!("{name} must be non-negative and finite, got {v}"),
                ));
            }
            Ok(())
        };
        match self {
            Noise::None => Ok(()),
            Noise::Gaussian { sd, .. } => check("noise sd", *sd),
            Noise::Uniform { amplitude, .. } => check("noise amplitude", *amplitude),
        }
    }
}

/// A declarative specification of a full resilience scenario.
///
/// See the [module docs](self) for the grammar and a worked example.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Number of grid observations (monthly/hourly grid `0, 1, …, n−1`).
    pub n: usize,
    /// Deterministic disruption episodes.
    pub shocks: Vec<Shock>,
    /// Optional stochastic outage/restore process; its realized events
    /// are appended to `shocks` at generation time.
    pub events: Option<EventProcess>,
    /// Secular background trend.
    pub drift: Drift,
    /// Observation-noise model.
    pub noise: Noise,
    /// Optional hard floor clamped onto generated values (stacked
    /// stochastic outages cannot drive performance below it).
    pub floor: Option<f64>,
}

impl ScenarioSpec {
    /// Validates the spec without generating.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSeries`] for fewer than 4 points, a
    /// spec with neither shocks nor an event process, or any invalid
    /// shock, drift, noise, event, or floor parameter.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.n < 4 {
            return Err(DataError::invalid(
                "ScenarioSpec::generate",
                "need at least 4 points",
            ));
        }
        if self.shocks.is_empty() && self.events.is_none() {
            return Err(DataError::invalid(
                "ScenarioSpec::generate",
                "need at least one shock or an event process",
            ));
        }
        for shock in &self.shocks {
            shock.validate("ScenarioSpec::generate")?;
        }
        if let Some(events) = &self.events {
            events.validate()?;
        }
        self.drift.validate()?;
        self.noise.validate()?;
        if let Some(floor) = self.floor {
            if !floor.is_finite() {
                return Err(DataError::invalid(
                    "ScenarioSpec::generate",
                    format!("floor must be finite, got {floor}"),
                ));
            }
        }
        Ok(())
    }

    /// Generates the scenario as a [`PerformanceSeries`] over the grid
    /// `0, 1, …, n−1`.
    ///
    /// The first observation carries no noise, so a scenario with no
    /// shock active at `t = 0` starts at exactly the nominal level 1.0.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ScenarioSpec::validate`].
    pub fn generate(&self, name: impl Into<String>) -> Result<PerformanceSeries, DataError> {
        self.validate()?;
        let horizon = (self.n - 1) as f64;
        let realized: Vec<Shock> = match &self.events {
            Some(process) => process.shocks(horizon)?,
            None => Vec::new(),
        };
        let mut rng = XorShift64::new(self.noise.seed());
        let values: Vec<f64> = (0..self.n)
            .map(|i| {
                let t = i as f64;
                let loss: f64 = self
                    .shocks
                    .iter()
                    .chain(realized.iter())
                    .map(|s| s.loss_at(t))
                    .sum();
                let drift = self.drift.offset_at(t, horizon);
                let noise = if i == 0 {
                    0.0
                } else {
                    self.noise.sample(&mut rng)
                };
                let value = 1.0 - loss + drift + noise;
                match self.floor {
                    Some(floor) => value.max(floor),
                    None => value,
                }
            })
            .collect();
        PerformanceSeries::monthly(name, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v_spec() -> ScenarioSpec {
        ScenarioSpec {
            n: 48,
            shocks: vec![Shock::Pulse {
                start: 0.0,
                trough: 12.0,
                depth: 0.05,
                sharpness: 1.2,
                recovery: Recovery::Exponential { rate: 0.2 },
            }],
            events: None,
            drift: Drift::Linear { total: 0.04 },
            noise: Noise::Gaussian { sd: 0.001, seed: 7 },
            floor: None,
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let a = v_spec().generate("a").unwrap();
        let b = v_spec().generate("b").unwrap();
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn first_point_is_exactly_nominal() {
        let s = v_spec().generate("v").unwrap();
        assert_eq!(s.values()[0], 1.0);
    }

    #[test]
    fn generate_validates() {
        let mut spec = v_spec();
        spec.n = 3;
        assert!(spec.generate("x").is_err()); // too short
        let mut spec = v_spec();
        spec.shocks.clear();
        assert!(spec.generate("x").is_err()); // neither shocks nor events
        let mut spec = v_spec();
        spec.noise = Noise::Gaussian { sd: -1.0, seed: 1 };
        assert!(spec.generate("x").is_err());
        let mut spec = v_spec();
        spec.drift = Drift::Linear {
            total: f64::INFINITY,
        };
        assert!(spec.generate("x").is_err());
        let mut spec = v_spec();
        spec.floor = Some(f64::NAN);
        assert!(spec.generate("x").is_err());
    }

    #[test]
    fn event_only_scenario_is_valid() {
        let spec = ScenarioSpec {
            n: 200,
            shocks: Vec::new(),
            events: Some(EventProcess {
                outage_rate: 0.05,
                mean_restore: 4.0,
                mean_depth: 0.05,
                max_depth: 0.2,
                seed: 9,
                max_events: EventProcess::DEFAULT_MAX_EVENTS,
            }),
            drift: Drift::None,
            noise: Noise::None,
            floor: Some(0.0),
        };
        let s = spec.generate("poisson").unwrap();
        assert_eq!(s.len(), 200);
        assert!(s.values().iter().all(|v| v.is_finite() && *v >= 0.0));
        // Some outage visibly degrades performance.
        assert!(s.values().iter().any(|v| *v < 1.0));
    }

    #[test]
    fn floor_clamps_stacked_outages() {
        let spec = ScenarioSpec {
            n: 100,
            shocks: Vec::new(),
            events: Some(EventProcess {
                outage_rate: 2.0, // dense arrivals: outages overlap
                mean_restore: 10.0,
                mean_depth: 0.8,
                max_depth: 1.0,
                seed: 21,
                max_events: EventProcess::DEFAULT_MAX_EVENTS,
            }),
            drift: Drift::None,
            noise: Noise::None,
            floor: Some(0.0),
        };
        let s = spec.generate("stacked").unwrap();
        assert!(s.values().iter().all(|v| *v >= 0.0));
        assert!(s.values().contains(&0.0), "floor never engaged");
    }

    #[test]
    fn uniform_noise_stays_in_band() {
        let spec = ScenarioSpec {
            noise: Noise::Uniform {
                amplitude: 0.002,
                seed: 3,
            },
            ..v_spec()
        };
        let clean = ScenarioSpec {
            noise: Noise::None,
            ..v_spec()
        };
        let noisy = spec.generate("noisy").unwrap();
        let base = clean.generate("clean").unwrap();
        for (a, b) in noisy.values().iter().zip(base.values()) {
            assert!((a - b).abs() <= 0.002 + 1e-12);
        }
    }

    #[test]
    fn drift_none_matches_zero_linear() {
        let none = ScenarioSpec {
            drift: Drift::None,
            ..v_spec()
        };
        let zero = ScenarioSpec {
            drift: Drift::Linear { total: 0.0 },
            ..v_spec()
        };
        assert_eq!(
            none.generate("a").unwrap().values(),
            zero.generate("b").unwrap().values()
        );
    }
}
