//! Shock primitives and recovery trends — the atoms of the scenario
//! grammar.
//!
//! A [`Shock`] is one disruption episode expressed as a time-varying
//! *performance loss* `loss_at(t) ≥ 0`; a scenario sums the losses of
//! all its shocks and subtracts them from the nominal level. A
//! [`Recovery`] describes how the loss decays after the episode's worst
//! point. Composing a handful of these atoms reproduces every curve the
//! repo previously hardcoded (the V/U/W/L/J/K recession letters) and an
//! unbounded space beyond them (cyber outages, grid storms, supply
//! shocks, cascading failures).

use crate::DataError;

/// Cubic smoothstep `3u² − 2u³`, clamped to `[0, 1]`.
#[must_use]
pub fn smoothstep(u: f64) -> f64 {
    let u = u.clamp(0.0, 1.0);
    u * u * (3.0 - 2.0 * u)
}

/// How a shock's loss decays after its worst point.
///
/// `remaining(since)` is the fraction of the peak loss still present
/// `since` time units after the trough; every profile starts at exactly
/// `1.0` so the loss is continuous through the trough.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Recovery {
    /// Exponential approach back to baseline: `exp(−rate·since)` of the
    /// loss remains. Characteristic of V-shaped rebounds.
    Exponential {
        /// Recovery rate per time unit (> 0).
        rate: f64,
    },
    /// Smoothstep recovery completing over a fixed duration: S-shaped,
    /// characteristic of U-shaped recoveries.
    Smoothstep {
        /// Time from trough to full recovery (> 0).
        duration: f64,
    },
    /// Logistic (sigmoid) recovery: slow start, fast middle, saturating
    /// finish — restoration that must be organized before it scales
    /// (mutual-aid crews, phased restarts).
    Logistic {
        /// Steepness of the sigmoid (> 0).
        rate: f64,
        /// Time after the trough at which half the loss is recovered
        /// (> 0).
        midpoint: f64,
    },
    /// Partial (K-shaped) recovery: only `fraction` of the loss is ever
    /// recovered, exponentially at `rate`; the rest is permanent.
    Partial {
        /// Fraction of the loss that recovers, in `(0, 1]`.
        fraction: f64,
        /// Recovery rate of the recovering fraction (> 0).
        rate: f64,
    },
    /// No recovery: the loss is permanent (L-shaped step changes).
    None,
}

impl Recovery {
    /// Fraction of the peak loss still present `since` time units after
    /// the trough. Exactly `1.0` at `since = 0` for every profile.
    #[must_use]
    pub fn remaining(&self, since: f64) -> f64 {
        match self {
            Recovery::Exponential { rate } => (-rate * since).exp(),
            Recovery::Smoothstep { duration } => 1.0 - smoothstep((since / duration).min(1.0)),
            Recovery::Logistic { rate, midpoint } => {
                (1.0 + (-rate * midpoint).exp()) / (1.0 + (rate * (since - midpoint)).exp())
            }
            Recovery::Partial { fraction, rate } => 1.0 - fraction * (1.0 - (-rate * since).exp()),
            Recovery::None => 1.0,
        }
    }

    pub(crate) fn validate(&self, what: &'static str) -> Result<(), DataError> {
        match *self {
            Recovery::Exponential { rate } if !(rate > 0.0) => Err(DataError::invalid(
                what,
                format!("recovery rate must be positive, got {rate}"),
            )),
            Recovery::Smoothstep { duration } if !(duration > 0.0) => Err(DataError::invalid(
                what,
                format!("recovery duration must be positive, got {duration}"),
            )),
            Recovery::Logistic { rate, midpoint } if !(rate > 0.0) || !(midpoint > 0.0) => {
                Err(DataError::invalid(
                    what,
                    format!("logistic recovery needs rate > 0 and midpoint > 0, got {rate}/{midpoint}"),
                ))
            }
            Recovery::Partial { fraction, rate }
                if !(fraction > 0.0 && fraction <= 1.0 && rate > 0.0) =>
            {
                Err(DataError::invalid(
                    what,
                    format!(
                        "partial recovery needs fraction in (0, 1] and rate > 0, got {fraction}/{rate}"
                    ),
                ))
            }
            _ => Ok(()),
        }
    }
}

/// One disruption episode, expressed as a non-negative performance loss
/// over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shock {
    /// Smooth decline into a trough followed by a recovery trend — the
    /// general-purpose dip behind the V/U/W/J recession letters.
    Pulse {
        /// Time at which degradation begins.
        start: f64,
        /// Time of the loss maximum.
        trough: f64,
        /// Peak performance loss (e.g. 0.03 = 3 %).
        depth: f64,
        /// Decline sharpness: the decline progress is
        /// `smoothstep(u^sharpness)`; values < 1 front-load the drop
        /// (crashes), values > 1 delay it.
        sharpness: f64,
        /// Recovery trend after the trough.
        recovery: Recovery,
    },
    /// Instantaneous drop at `at` followed by a recovery trend — a
    /// breaker trip, a failover, a cyber take-down.
    Step {
        /// Time of the drop.
        at: f64,
        /// Performance lost at the drop.
        depth: f64,
        /// Recovery trend after the drop.
        recovery: Recovery,
    },
    /// Linear decline from `start` to `end` (slow-burn degradation),
    /// then a recovery trend.
    Ramp {
        /// Time at which degradation begins.
        start: f64,
        /// Time of the loss maximum (> `start`).
        end: f64,
        /// Peak performance loss.
        depth: f64,
        /// Recovery trend after `end`.
        recovery: Recovery,
    },
    /// Rectangular outage: full loss from `at` until `restore_at`, then
    /// instant restoration — the staircase performance curves of
    /// Dobson's power-system resilience events, and the shape the
    /// Poisson event process emits.
    Outage {
        /// Outage start.
        at: f64,
        /// Restoration time (> `at`).
        restore_at: f64,
        /// Performance lost while the outage is active.
        depth: f64,
    },
}

impl Shock {
    /// Performance lost to this shock at time `t` (non-negative, at most
    /// its depth).
    #[must_use]
    pub fn loss_at(&self, t: f64) -> f64 {
        match self {
            Shock::Pulse {
                start,
                trough,
                depth,
                sharpness,
                recovery,
            } => {
                if t <= *start {
                    return 0.0;
                }
                if t < *trough {
                    let u = (t - start) / (trough - start);
                    return depth * smoothstep(u.powf(*sharpness));
                }
                depth * recovery.remaining(t - trough)
            }
            Shock::Step {
                at,
                depth,
                recovery,
            } => {
                if t < *at {
                    0.0
                } else {
                    depth * recovery.remaining(t - at)
                }
            }
            Shock::Ramp {
                start,
                end,
                depth,
                recovery,
            } => {
                if t <= *start {
                    0.0
                } else if t < *end {
                    depth * (t - start) / (end - start)
                } else {
                    depth * recovery.remaining(t - end)
                }
            }
            Shock::Outage {
                at,
                restore_at,
                depth,
            } => {
                if t < *at || t >= *restore_at {
                    0.0
                } else {
                    *depth
                }
            }
        }
    }

    /// Validates the shock's geometry and parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSeries`] for non-positive depths,
    /// inverted time windows, or invalid recovery parameters.
    pub fn validate(&self, what: &'static str) -> Result<(), DataError> {
        let check_depth = |depth: f64| -> Result<(), DataError> {
            if !(depth > 0.0) || !depth.is_finite() {
                return Err(DataError::invalid(
                    what,
                    format!("depth must be positive and finite, got {depth}"),
                ));
            }
            Ok(())
        };
        match self {
            Shock::Pulse {
                start,
                trough,
                depth,
                sharpness,
                recovery,
            } => {
                if !(*start >= 0.0) || !(*trough > *start) {
                    return Err(DataError::invalid(
                        what,
                        format!("need 0 <= start < trough, got start={start}, trough={trough}"),
                    ));
                }
                check_depth(*depth)?;
                if !(*sharpness > 0.0) {
                    return Err(DataError::invalid(
                        what,
                        format!("sharpness must be positive, got {sharpness}"),
                    ));
                }
                recovery.validate(what)
            }
            Shock::Step {
                at,
                depth,
                recovery,
            } => {
                if !(*at >= 0.0) {
                    return Err(DataError::invalid(
                        what,
                        format!("step time must be non-negative, got {at}"),
                    ));
                }
                check_depth(*depth)?;
                recovery.validate(what)
            }
            Shock::Ramp {
                start,
                end,
                depth,
                recovery,
            } => {
                if !(*start >= 0.0) || !(*end > *start) {
                    return Err(DataError::invalid(
                        what,
                        format!("need 0 <= start < end, got start={start}, end={end}"),
                    ));
                }
                check_depth(*depth)?;
                recovery.validate(what)
            }
            Shock::Outage {
                at,
                restore_at,
                depth,
            } => {
                if !(*at >= 0.0) || !(*restore_at > *at) {
                    return Err(DataError::invalid(
                        what,
                        format!("need 0 <= at < restore_at, got at={at}, restore_at={restore_at}"),
                    ));
                }
                check_depth(*depth)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse(recovery: Recovery) -> Shock {
        Shock::Pulse {
            start: 0.0,
            trough: 10.0,
            depth: 0.05,
            sharpness: 1.0,
            recovery,
        }
    }

    #[test]
    fn pulse_loss_profile() {
        let d = pulse(Recovery::Exponential { rate: 0.2 });
        assert_eq!(d.loss_at(0.0), 0.0);
        assert_eq!(d.loss_at(-1.0), 0.0);
        assert!((d.loss_at(10.0) - 0.05).abs() < 1e-12);
        // Monotone decline into the trough.
        assert!(d.loss_at(3.0) < d.loss_at(7.0));
        // Monotone recovery afterwards.
        assert!(d.loss_at(15.0) > d.loss_at(25.0));
        assert!(d.loss_at(100.0) < 1e-8);
    }

    #[test]
    fn smoothstep_recovery_completes() {
        let d = Shock::Pulse {
            start: 0.0,
            trough: 5.0,
            depth: 0.1,
            sharpness: 1.0,
            recovery: Recovery::Smoothstep { duration: 10.0 },
        };
        assert!((d.loss_at(5.0) - 0.1).abs() < 1e-12);
        assert!((d.loss_at(10.0) - 0.05).abs() < 1e-12); // midpoint
        assert_eq!(d.loss_at(15.0), 0.0);
        assert_eq!(d.loss_at(50.0), 0.0);
    }

    #[test]
    fn sharpness_front_loads_decline() {
        let with_sharpness = |sharpness: f64| Shock::Pulse {
            start: 0.0,
            trough: 10.0,
            depth: 0.1,
            sharpness,
            recovery: Recovery::Exponential { rate: 0.1 },
        };
        let sharp = with_sharpness(0.5);
        let gentle = with_sharpness(2.0);
        // Early in the decline the sharp pulse has lost more.
        assert!(sharp.loss_at(2.0) > gentle.loss_at(2.0));
    }

    #[test]
    fn every_recovery_starts_at_exactly_one() {
        let profiles = [
            Recovery::Exponential { rate: 0.3 },
            Recovery::Smoothstep { duration: 8.0 },
            Recovery::Logistic {
                rate: 0.7,
                midpoint: 5.0,
            },
            Recovery::Partial {
                fraction: 0.6,
                rate: 0.3,
            },
            Recovery::None,
        ];
        for r in profiles {
            assert_eq!(r.remaining(0.0), 1.0, "{r:?}");
        }
    }

    #[test]
    fn logistic_recovery_is_sigmoid() {
        let r = Recovery::Logistic {
            rate: 1.0,
            midpoint: 5.0,
        };
        // Monotone decreasing, ~half recovered at the midpoint, nearly
        // complete far past it.
        assert!(r.remaining(2.0) > r.remaining(5.0));
        assert!((r.remaining(5.0) - 0.5).abs() < 0.01);
        assert!(r.remaining(30.0) < 1e-6);
    }

    #[test]
    fn partial_recovery_leaves_permanent_loss() {
        let r = Recovery::Partial {
            fraction: 0.6,
            rate: 0.5,
        };
        // The asymptote is 1 − fraction, never zero.
        assert!((r.remaining(1e6) - 0.4).abs() < 1e-9);
        let d = pulse(r);
        assert!((d.loss_at(1e6) - 0.05 * 0.4).abs() < 1e-9);
    }

    #[test]
    fn step_drops_instantly_and_recovers() {
        let s = Shock::Step {
            at: 4.0,
            depth: 0.5,
            recovery: Recovery::Exponential { rate: 0.5 },
        };
        assert_eq!(s.loss_at(3.999), 0.0);
        assert_eq!(s.loss_at(4.0), 0.5);
        assert!(s.loss_at(10.0) < 0.5);
        assert!(s.loss_at(10.0) > 0.0);
    }

    #[test]
    fn ramp_declines_linearly() {
        let s = Shock::Ramp {
            start: 0.0,
            end: 10.0,
            depth: 0.4,
            recovery: Recovery::None,
        };
        assert_eq!(s.loss_at(0.0), 0.0);
        assert!((s.loss_at(5.0) - 0.2).abs() < 1e-12);
        assert!((s.loss_at(10.0) - 0.4).abs() < 1e-12);
        // Recovery::None: the loss is permanent.
        assert!((s.loss_at(100.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn outage_is_rectangular() {
        let s = Shock::Outage {
            at: 2.0,
            restore_at: 5.0,
            depth: 0.25,
        };
        assert_eq!(s.loss_at(1.0), 0.0);
        assert_eq!(s.loss_at(2.0), 0.25);
        assert_eq!(s.loss_at(4.999), 0.25);
        assert_eq!(s.loss_at(5.0), 0.0);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let bad: [Shock; 6] = [
            Shock::Pulse {
                start: 5.0,
                trough: 5.0,
                depth: 0.1,
                sharpness: 1.0,
                recovery: Recovery::None,
            },
            Shock::Pulse {
                start: 0.0,
                trough: 5.0,
                depth: -0.1,
                sharpness: 1.0,
                recovery: Recovery::None,
            },
            Shock::Step {
                at: -1.0,
                depth: 0.1,
                recovery: Recovery::None,
            },
            Shock::Ramp {
                start: 3.0,
                end: 2.0,
                depth: 0.1,
                recovery: Recovery::None,
            },
            Shock::Outage {
                at: 2.0,
                restore_at: 2.0,
                depth: 0.1,
            },
            Shock::Step {
                at: 0.0,
                depth: 0.1,
                recovery: Recovery::Partial {
                    fraction: 1.5,
                    rate: 0.1,
                },
            },
        ];
        for s in bad {
            assert!(s.validate("test").is_err(), "{s:?} accepted");
        }
        assert!(pulse(Recovery::Exponential { rate: 0.2 })
            .validate("test")
            .is_ok());
    }

    #[test]
    fn nan_parameters_are_rejected() {
        let s = Shock::Step {
            at: f64::NAN,
            depth: 0.1,
            recovery: Recovery::None,
        };
        assert!(s.validate("test").is_err());
        let s = Shock::Outage {
            at: 0.0,
            restore_at: 3.0,
            depth: f64::NAN,
        };
        assert!(s.validate("test").is_err());
    }
}
