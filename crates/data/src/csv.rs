//! Minimal CSV I/O for performance series.
//!
//! Two-column format `time,value` with an optional header line. This is
//! the escape hatch for users who have the real BLS payroll data (or any
//! other resilience curve): load it here and run the identical pipeline.

use crate::series::PerformanceSeries;
use crate::DataError;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Reads a `time,value` series from a reader.
///
/// * Blank lines are skipped.
/// * A first line whose fields do not both parse as numbers is treated as
///   a header and skipped.
///
/// Note that a `&mut` reference can be passed as the reader.
///
/// # Errors
///
/// * [`DataError::Parse`] for malformed rows past the optional header.
/// * [`DataError::InvalidSeries`] when the parsed data violates series
///   invariants (see [`PerformanceSeries::new`]).
/// * [`DataError::Io`] for underlying read failures.
///
/// # Examples
///
/// ```
/// use resilience_data::csv::read_series;
/// let csv = "t,performance\n0,1.0\n1,0.98\n2,0.99\n";
/// let s = read_series(csv.as_bytes(), "demo")?;
/// assert_eq!(s.len(), 3);
/// # Ok::<(), resilience_data::DataError>(())
/// ```
pub fn read_series<R: Read>(reader: R, name: &str) -> Result<PerformanceSeries, DataError> {
    let buf = BufReader::new(reader);
    let mut times = Vec::new();
    let mut values = Vec::new();
    let mut saw_data = false;
    for (idx, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut fields = trimmed.split(',').map(str::trim);
        let (a, b) = match (fields.next(), fields.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(DataError::Parse {
                    line: idx + 1,
                    detail: "expected two comma-separated fields".into(),
                })
            }
        };
        if fields.next().is_some() {
            return Err(DataError::Parse {
                line: idx + 1,
                detail: "expected exactly two fields".into(),
            });
        }
        match (a.parse::<f64>(), b.parse::<f64>()) {
            (Ok(t), Ok(v)) => {
                times.push(t);
                values.push(v);
                saw_data = true;
            }
            _ if !saw_data => {
                // Header line.
                continue;
            }
            _ => {
                return Err(DataError::Parse {
                    line: idx + 1,
                    detail: format!("could not parse '{trimmed}' as numbers"),
                })
            }
        }
    }
    PerformanceSeries::new(name, times, values)
}

/// Reads a series from a file path, using the file stem as the name.
///
/// # Errors
///
/// Same conditions as [`read_series`] plus file-open failures.
pub fn read_series_file<P: AsRef<Path>>(path: P) -> Result<PerformanceSeries, DataError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("series")
        .to_owned();
    let file = std::fs::File::open(path)?;
    read_series(file, &name)
}

/// Writes a series as `time,value` CSV with a header.
///
/// Note that a `&mut` reference can be passed as the writer.
///
/// # Errors
///
/// Returns [`DataError::Io`] on write failure.
///
/// # Examples
///
/// ```
/// use resilience_data::csv::{read_series, write_series};
/// use resilience_data::PerformanceSeries;
/// let s = PerformanceSeries::monthly("x", vec![1.0, 0.9, 1.05])?;
/// let mut out = Vec::new();
/// write_series(&mut out, &s)?;
/// let back = read_series(out.as_slice(), "x")?;
/// assert_eq!(back.values(), s.values());
/// # Ok::<(), resilience_data::DataError>(())
/// ```
pub fn write_series<W: Write>(mut writer: W, series: &PerformanceSeries) -> Result<(), DataError> {
    writeln!(writer, "time,value")?;
    for (t, v) in series.iter() {
        writeln!(writer, "{t},{v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let s = PerformanceSeries::monthly("r", vec![1.0, 0.95, 0.97, 1.01]).unwrap();
        let mut buf = Vec::new();
        write_series(&mut buf, &s).unwrap();
        let back = read_series(buf.as_slice(), "r").unwrap();
        assert_eq!(back.times(), s.times());
        assert_eq!(back.values(), s.values());
    }

    #[test]
    fn header_is_optional() {
        let with = read_series("t,v\n0,1\n1,2\n".as_bytes(), "a").unwrap();
        let without = read_series("0,1\n1,2\n".as_bytes(), "a").unwrap();
        assert_eq!(with.values(), without.values());
    }

    #[test]
    fn blank_lines_skipped() {
        let s = read_series("\n0,1\n\n1,2\n\n".as_bytes(), "b").unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn malformed_rows_error_with_line_numbers() {
        let err = read_series("0,1\nbad,row\n".as_bytes(), "c").unwrap_err();
        match err {
            DataError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn wrong_field_count_errors() {
        assert!(read_series("0,1,2\n".as_bytes(), "d").is_err());
        assert!(read_series("0\n1\n".as_bytes(), "e").is_err());
    }

    #[test]
    fn invariants_still_enforced() {
        // Non-increasing times are a series error, not a parse error.
        let err = read_series("1,1\n0,2\n".as_bytes(), "f").unwrap_err();
        assert!(matches!(err, DataError::InvalidSeries { .. }));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("resilience_data_csv_test.csv");
        let s = PerformanceSeries::monthly("disk", vec![1.0, 0.9]).unwrap();
        {
            let f = std::fs::File::create(&path).unwrap();
            write_series(f, &s).unwrap();
        }
        let back = read_series_file(&path).unwrap();
        assert_eq!(back.values(), s.values());
        assert_eq!(back.name(), "resilience_data_csv_test");
        std::fs::remove_file(&path).ok();
    }
}
