//! Deterministic noise for reproducible synthetic data.
//!
//! The recession curves and shape generators need small month-to-month
//! irregularity so fits exercise realistic residuals, but the workspace's
//! tables must be bit-reproducible across runs and platforms. This module
//! provides a tiny self-contained xorshift generator (no dependency on
//! `rand`, whose stream stability across versions is not guaranteed) and a
//! Box–Muller normal transform.

/// A deterministic 64-bit xorshift* generator.
///
/// Not cryptographic; used only to perturb synthetic curves.
///
/// # Examples
///
/// ```
/// use resilience_data::noise::XorShift64;
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (zero is mapped to a fixed
    /// non-zero constant, since xorshift cannot leave state 0).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a full-precision mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Standard normal deviate via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_streams() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut g = XorShift64::new(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = g.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut g = XorShift64::new(123);
        let xs: Vec<f64> = (0..20_000).map(|_| g.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }
}
