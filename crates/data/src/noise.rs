//! Deterministic noise for reproducible synthetic data.
//!
//! The recession curves and shape generators need small month-to-month
//! irregularity so fits exercise realistic residuals, but the workspace's
//! tables must be bit-reproducible across runs and platforms. The
//! generator itself now lives in [`resilience_stats::rng`] — the single
//! canonical PRNG for the whole workspace — and is re-exported here
//! unchanged (same algorithm, same streams) for the existing call sites.

pub use resilience_stats::rng::{RandomSource, SplitMix64, XorShift64};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_is_the_canonical_generator() {
        // The historical noise streams must survive the move to
        // resilience-stats: seed 7 produces the same sequence through
        // either path.
        let mut a = XorShift64::new(7);
        let mut b = resilience_stats::XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gaussian_still_available() {
        let mut g = XorShift64::new(123);
        let x = g.next_gaussian();
        assert!(x.is_finite());
    }
}
