//! Series transforms: smoothing, differencing, and rebasing.
//!
//! Real performance telemetry is noisier than the BLS monthly aggregates;
//! these helpers condition such data before fitting (centered moving
//! average), inspect momentum (first differences — the `ΔP(t_i)` quantity
//! the paper's Eq. 13 bounds), and re-anchor curves whose pre-hazard
//! baseline is not the first sample.

use crate::series::PerformanceSeries;
use crate::DataError;

/// Centered moving average with an odd window of width `2k + 1`;
/// endpoints use the available one-sided samples (shrinking window).
///
/// # Errors
///
/// Returns [`DataError::InvalidSeries`] when `half_width == 0` would be a
/// no-op is allowed, but a window wider than the series is rejected.
///
/// # Examples
///
/// ```
/// use resilience_data::transform::moving_average;
/// use resilience_data::PerformanceSeries;
/// let s = PerformanceSeries::monthly("n", vec![1.0, 3.0, 1.0, 3.0, 1.0])?;
/// let smooth = moving_average(&s, 1)?;
/// // Interior points average their neighbours.
/// assert!((smooth.values()[2] - (3.0 + 1.0 + 3.0) / 3.0).abs() < 1e-12);
/// # Ok::<(), resilience_data::DataError>(())
/// ```
pub fn moving_average(
    series: &PerformanceSeries,
    half_width: usize,
) -> Result<PerformanceSeries, DataError> {
    let n = series.len();
    if 2 * half_width + 1 > n {
        return Err(DataError::invalid(
            "moving_average",
            format!("window {} exceeds series length {n}", 2 * half_width + 1),
        ));
    }
    let values = series.values();
    let smoothed: Vec<f64> = (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half_width);
            let hi = (i + half_width).min(n - 1);
            let window = &values[lo..=hi];
            window.iter().sum::<f64>() / window.len() as f64
        })
        .collect();
    PerformanceSeries::new(
        format!("{} (ma{})", series.name(), 2 * half_width + 1),
        series.times().to_vec(),
        smoothed,
    )
}

/// First differences `ΔP(t_i) = P(t_i) − P(t_{i−1})`, indexed at the
/// later time of each pair (length `n − 1`).
///
/// # Errors
///
/// Returns [`DataError::InvalidSeries`] for series with fewer than 3
/// points (the result must itself be a valid series of ≥ 2 points).
///
/// # Examples
///
/// ```
/// use resilience_data::transform::first_differences;
/// use resilience_data::PerformanceSeries;
/// let s = PerformanceSeries::monthly("d", vec![1.0, 0.98, 0.99])?;
/// let d = first_differences(&s)?;
/// assert!((d.values()[0] + 0.02).abs() < 1e-12);
/// assert!((d.values()[1] - 0.01).abs() < 1e-12);
/// # Ok::<(), resilience_data::DataError>(())
/// ```
pub fn first_differences(series: &PerformanceSeries) -> Result<PerformanceSeries, DataError> {
    if series.len() < 3 {
        return Err(DataError::invalid(
            "first_differences",
            "need at least three points",
        ));
    }
    let times = series.times()[1..].to_vec();
    let values: Vec<f64> = series.values().windows(2).map(|w| w[1] - w[0]).collect();
    PerformanceSeries::new(format!("{} (diff)", series.name()), times, values)
}

/// Rebases the series so the value at (the sample nearest to) `t_base`
/// becomes 1 — e.g. re-anchoring a curve whose pre-hazard peak is not the
/// first observation.
///
/// # Errors
///
/// Returns [`DataError::InvalidSeries`] when the base value is zero or
/// `t_base` is outside the observed range.
pub fn rebase(series: &PerformanceSeries, t_base: f64) -> Result<PerformanceSeries, DataError> {
    let times = series.times();
    if t_base < times[0] || t_base > times[times.len() - 1] {
        return Err(DataError::invalid(
            "rebase",
            format!("t_base {t_base} outside observed range"),
        ));
    }
    let idx = times
        .iter()
        .enumerate()
        .min_by(|a, b| (a.1 - t_base).abs().total_cmp(&(b.1 - t_base).abs()))
        .map(|(i, _)| i)
        .expect("non-empty series");
    let base = series.values()[idx];
    if base == 0.0 {
        return Err(DataError::invalid("rebase", "base value is zero"));
    }
    PerformanceSeries::new(
        format!("{} (rebased)", series.name()),
        times.to_vec(),
        series.values().iter().map(|v| v / base).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> PerformanceSeries {
        PerformanceSeries::monthly("t", vec![1.0, 0.98, 0.95, 0.96, 0.99, 1.01]).unwrap()
    }

    #[test]
    fn moving_average_preserves_length_and_mean_roughly() {
        let s = series();
        let m = moving_average(&s, 1).unwrap();
        assert_eq!(m.len(), s.len());
        // Smoothing reduces total variation.
        let tv = |v: &[f64]| v.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>();
        assert!(tv(m.values()) <= tv(s.values()) + 1e-12);
    }

    #[test]
    fn moving_average_zero_width_is_identity() {
        let s = series();
        let m = moving_average(&s, 0).unwrap();
        assert_eq!(m.values(), s.values());
    }

    #[test]
    fn moving_average_rejects_oversized_window() {
        assert!(moving_average(&series(), 3).is_err());
    }

    #[test]
    fn moving_average_endpoint_uses_one_sided_window() {
        let s = series();
        let m = moving_average(&s, 1).unwrap();
        assert!((m.values()[0] - (1.0 + 0.98) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn differences_recover_increments() {
        let s = series();
        let d = first_differences(&s).unwrap();
        assert_eq!(d.len(), s.len() - 1);
        assert!((d.values()[0] + 0.02).abs() < 1e-12);
        assert_eq!(d.times()[0], 1.0);
    }

    #[test]
    fn differences_need_three_points() {
        let s = PerformanceSeries::monthly("s", vec![1.0, 0.9]).unwrap();
        assert!(first_differences(&s).is_err());
    }

    #[test]
    fn rebase_reanchors() {
        let s = series();
        let r = rebase(&s, 2.0).unwrap();
        assert!((r.values()[2] - 1.0).abs() < 1e-12);
        assert!((r.values()[0] - 1.0 / 0.95).abs() < 1e-12);
    }

    #[test]
    fn rebase_validates() {
        let s = series();
        assert!(rebase(&s, -1.0).is_err());
        assert!(rebase(&s, 100.0).is_err());
        let z = PerformanceSeries::monthly("z", vec![0.0, 1.0]).unwrap();
        assert!(rebase(&z, 0.0).is_err());
    }

    #[test]
    fn rebase_nearest_sample_snapping() {
        let s = series();
        let r = rebase(&s, 2.4).unwrap(); // nearest sample is t = 2
        assert!((r.values()[2] - 1.0).abs() < 1e-12);
    }
}
