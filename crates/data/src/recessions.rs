//! The seven U.S. recession payroll curves of the paper's Fig. 2,
//! expressed as declarative [`ScenarioSpec`]s over the scenario grammar.
//!
//! # Provenance and substitution
//!
//! The paper plots normalized payroll employment ("payroll employment
//! index") for seven U.S. recessions from the BLS Current Employment
//! Statistics program: 1974-76, 1980, 1981-83, 1990-93, 2001-05, 2007-09
//! (48 monthly observations each) and 2020-21 (24 observations). The paper
//! ships no machine-readable table, so this module generates
//! **deterministic synthetic equivalents** from parametric scenario
//! specifications tuned to the published figure: trough depth and month,
//! recovery speed and profile, terminal level, and the economist's letter
//! classification. Every qualitative property the evaluation depends on is
//! preserved:
//!
//! | Recession | Shape | Trough (month, level) | End level |
//! |-----------|-------|----------------------|-----------|
//! | 1974-76   | V     | ~16, ~0.972          | ~1.055    |
//! | 1980      | W     | two dips (~6, ~26)   | ~0.99     |
//! | 1981-83   | V/U   | ~17, ~0.969          | ~1.095    |
//! | 1990-93   | U     | ~11, ~0.988          | ~1.035    |
//! | 2001-05   | U     | ~28, ~0.978          | ~1.005    |
//! | 2007-09   | U     | ~25, ~0.937          | ~0.96     |
//! | 2020-21   | L/K   | ~2, ~0.853           | ~0.96     |
//!
//! The specs are pinned bit-identical to the pre-grammar generator by
//! `tests/scenarios.rs`. Users who obtain the real BLS series can load it
//! with [`crate::csv::read_series`] and pass it through the identical
//! pipeline.

use crate::scenario::{Drift, Noise, Recovery, ScenarioSpec, ShapeKind, Shock};
use crate::series::PerformanceSeries;

/// One of the seven U.S. recessions used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(non_camel_case_types)]
pub enum Recession {
    /// November 1973 – 1976 recovery window (V-shaped).
    R1974_76,
    /// January 1980 recession, running into the 1981 recession
    /// (W-shaped).
    R1980,
    /// July 1981 – 1983 recovery window (deep V).
    R1981_83,
    /// July 1990 – 1993 recovery window (shallow U).
    R1990_93,
    /// March 2001 – 2005 recovery window (long shallow U).
    R2001_05,
    /// December 2007 – 2009+ window (deep U).
    R2007_09,
    /// March 2020 COVID-19 window (L/K-shaped, 24 months).
    R2020_21,
}

impl Recession {
    /// All seven recessions in chronological order.
    pub const ALL: [Recession; 7] = [
        Recession::R1974_76,
        Recession::R1980,
        Recession::R1981_83,
        Recession::R1990_93,
        Recession::R2001_05,
        Recession::R2007_09,
        Recession::R2020_21,
    ];

    /// Human-readable label matching the paper's tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Recession::R1974_76 => "1974-76",
            Recession::R1980 => "1980",
            Recession::R1981_83 => "1981-83",
            Recession::R1990_93 => "1990-93",
            Recession::R2001_05 => "2001-05",
            Recession::R2007_09 => "2007-09",
            Recession::R2020_21 => "2020-21",
        }
    }

    /// The economist's letter classification used in the paper's
    /// discussion.
    #[must_use]
    pub fn shape(&self) -> ShapeKind {
        match self {
            Recession::R1974_76 | Recession::R1981_83 => ShapeKind::V,
            Recession::R1980 => ShapeKind::W,
            Recession::R1990_93 | Recession::R2001_05 | Recession::R2007_09 => ShapeKind::U,
            Recession::R2020_21 => ShapeKind::L,
        }
    }

    /// Number of monthly observations (48, except 24 for 2020-21),
    /// matching the paper's Table I.
    #[must_use]
    pub fn n_observations(&self) -> usize {
        match self {
            Recession::R2020_21 => 24,
            _ => 48,
        }
    }

    /// The declarative scenario specification behind the synthetic curve.
    #[must_use]
    pub fn scenario(&self) -> ScenarioSpec {
        let exp = |rate: f64| Recovery::Exponential { rate };
        let smooth = |duration: f64| Recovery::Smoothstep { duration };
        let pulse =
            |start: f64, trough: f64, depth: f64, sharpness: f64, rec: Recovery| Shock::Pulse {
                start,
                trough,
                depth,
                sharpness,
                recovery: rec,
            };
        let spec =
            |n: usize, shocks: Vec<Shock>, drift_total: f64, sd: f64, seed: u64| ScenarioSpec {
                n,
                shocks,
                events: None,
                drift: Drift::Linear { total: drift_total },
                noise: Noise::Gaussian { sd, seed },
                floor: None,
            };
        match self {
            Recession::R1974_76 => spec(
                48,
                vec![pulse(0.0, 16.0, 0.048, 1.2, exp(0.18))],
                0.06,
                0.0006,
                1974,
            ),
            Recession::R1980 => spec(
                48,
                vec![
                    pulse(0.0, 6.0, 0.030, 1.1, exp(0.5)),
                    pulse(14.0, 26.0, 0.032, 1.1, exp(0.25)),
                ],
                0.005,
                0.0006,
                1980,
            ),
            Recession::R1981_83 => spec(
                48,
                vec![pulse(0.0, 17.0, 0.065, 1.3, exp(0.15))],
                0.095,
                0.0006,
                1981,
            ),
            Recession::R1990_93 => spec(
                48,
                vec![pulse(0.0, 11.0, 0.021, 1.0, smooth(30.0))],
                0.036,
                0.0005,
                1990,
            ),
            Recession::R2001_05 => spec(
                48,
                vec![pulse(0.0, 28.0, 0.028, 1.0, smooth(24.0))],
                0.012,
                0.0005,
                2001,
            ),
            Recession::R2007_09 => spec(
                48,
                vec![pulse(0.0, 25.0, 0.078, 1.1, smooth(60.0))],
                0.01,
                0.0006,
                2007,
            ),
            // COVID-19: the crash is concentrated in a single month
            // (sharpness 3 keeps month 1 near nominal), followed by a
            // fast partial rebound and a slow, nearly flat grind — the
            // L/K structure that defeats both model families in the
            // paper's Tables I and III.
            Recession::R2020_21 => spec(
                24,
                vec![
                    pulse(0.0, 2.0, 0.090, 3.0, exp(0.5)),
                    pulse(0.0, 2.0, 0.058, 3.0, exp(0.01)),
                ],
                0.0,
                0.0008,
                2020,
            ),
        }
    }

    /// The synthetic normalized payroll-employment curve (the analogue of
    /// one line in the paper's Fig. 2).
    ///
    /// The series is deterministic: calling this twice yields identical
    /// values.
    ///
    /// # Panics
    ///
    /// Never panics: the embedded specifications are validated by the
    /// test suite.
    #[must_use]
    pub fn payroll_index(&self) -> PerformanceSeries {
        self.scenario()
            .generate(self.label())
            .expect("embedded recession specs are valid")
    }
}

impl std::fmt::Display for Recession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// All seven curves, in chronological order — the full Fig. 2 data set.
#[must_use]
pub fn all_payroll_curves() -> Vec<PerformanceSeries> {
    Recession::ALL
        .iter()
        .map(Recession::payroll_index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_recessions_with_correct_lengths() {
        assert_eq!(Recession::ALL.len(), 7);
        for r in Recession::ALL {
            let s = r.payroll_index();
            assert_eq!(s.len(), r.n_observations(), "{r}");
            assert_eq!(s.name(), r.label());
        }
    }

    #[test]
    fn curves_are_deterministic() {
        for r in Recession::ALL {
            assert_eq!(r.payroll_index().values(), r.payroll_index().values());
        }
    }

    #[test]
    fn all_start_at_nominal_one() {
        for r in Recession::ALL {
            assert_eq!(r.payroll_index().values()[0], 1.0, "{r}");
        }
    }

    #[test]
    fn trough_depths_match_paper_figure() {
        let expect = [
            (Recession::R1974_76, 0.96, 0.985),
            (Recession::R1980, 0.96, 0.99),
            (Recession::R1981_83, 0.955, 0.98),
            (Recession::R1990_93, 0.982, 0.993),
            (Recession::R2001_05, 0.97, 0.988),
            (Recession::R2007_09, 0.925, 0.95),
            (Recession::R2020_21, 0.84, 0.87),
        ];
        for (r, lo, hi) in expect {
            let (_, p_min) = r.payroll_index().trough().unwrap();
            assert!(
                p_min > lo && p_min < hi,
                "{r}: trough {p_min} outside ({lo}, {hi})"
            );
        }
    }

    #[test]
    fn trough_months_match_paper_figure() {
        let expect = [
            (Recession::R1974_76, 12.0, 22.0),
            (Recession::R1981_83, 14.0, 24.0),
            (Recession::R1990_93, 8.0, 16.0),
            (Recession::R2001_05, 24.0, 34.0),
            (Recession::R2007_09, 22.0, 30.0),
            (Recession::R2020_21, 1.0, 4.0),
        ];
        for (r, lo, hi) in expect {
            let (t_min, _) = r.payroll_index().trough().unwrap();
            assert!(
                t_min >= lo && t_min <= hi,
                "{r}: trough month {t_min} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn strong_recoveries_exceed_nominal() {
        for r in [
            Recession::R1974_76,
            Recession::R1981_83,
            Recession::R1990_93,
        ] {
            let s = r.payroll_index();
            let last = s.values()[s.len() - 1];
            assert!(last > 1.02, "{r}: end level {last}");
        }
        // 1981-83 is the strongest recovery in the figure (~1.095).
        let s81 = Recession::R1981_83.payroll_index();
        assert!(s81.values()[47] > 1.07);
    }

    #[test]
    fn weak_recoveries_stay_below_nominal() {
        for r in [Recession::R2007_09, Recession::R2020_21] {
            let s = r.payroll_index();
            let last = s.values()[s.len() - 1];
            assert!(last < 1.0, "{r}: end level {last}");
        }
    }

    #[test]
    fn w_shape_recession_has_double_dip() {
        let s = Recession::R1980.payroll_index();
        let v = s.values();
        // There is a local recovery between the two troughs: find the max
        // between months 8 and 16 and confirm it exceeds both neighbors'
        // minima by a visible margin.
        let mid_max = v[8..=16].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let first_min = v[2..=8].iter().cloned().fold(f64::INFINITY, f64::min);
        let second_min = v[16..=32].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(mid_max > first_min + 0.004, "no rebound between dips");
        assert!(mid_max > second_min + 0.004, "no second dip");
    }

    #[test]
    fn covid_crash_is_immediate() {
        let s = Recession::R2020_21.payroll_index();
        let v = s.values();
        // >10 % loss within two months — the L-shape signature that breaks
        // the bathtub fits in the paper's Table I.
        assert!(v[2] < 0.88, "month-2 level {}", v[2]);
    }

    #[test]
    fn shapes_classification() {
        assert_eq!(Recession::R1980.shape(), ShapeKind::W);
        assert_eq!(Recession::R2020_21.shape(), ShapeKind::L);
        assert_eq!(Recession::R1990_93.shape(), ShapeKind::U);
    }

    #[test]
    fn all_payroll_curves_order() {
        let curves = all_payroll_curves();
        assert_eq!(curves.len(), 7);
        assert_eq!(curves[0].name(), "1974-76");
        assert_eq!(curves[6].name(), "2020-21");
    }

    #[test]
    fn values_stay_in_plausible_band() {
        for r in Recession::ALL {
            for (t, v) in r.payroll_index().iter() {
                assert!((0.8..1.15).contains(&v), "{r} at t={t}: {v}");
            }
        }
    }
}
