//! Parametric resilience-curve generators.
//!
//! Economists label recession curves with letters — V, U, W, L, J, K
//! (paper §V). This module builds synthetic curves of each shape from a
//! small set of interpretable parameters: dips (when, how deep, how the
//! decline and recovery progress), a secular drift, and deterministic
//! noise. The seven embedded recessions in [`crate::recessions`] are
//! specified through this machinery, and the workspace's shape-sweep
//! ablation (DESIGN.md §5) generates controlled families from it.

use crate::noise::XorShift64;
use crate::series::PerformanceSeries;
use crate::DataError;

/// How a dip's recovery progresses after the trough.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryProfile {
    /// Exponential approach back to baseline: fraction
    /// `exp(−rate·(t−t_d))` of the depth remains at time `t`.
    /// Characteristic of V-shaped rebounds.
    Exponential {
        /// Recovery rate per month (> 0).
        rate: f64,
    },
    /// Smoothstep recovery completing over a fixed duration: S-shaped,
    /// characteristic of U-shaped recoveries.
    Smoothstep {
        /// Months from trough to full recovery (> 0).
        duration: f64,
    },
}

/// One degradation/recovery episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dip {
    /// Month at which degradation begins.
    pub start: f64,
    /// Month of the performance minimum for this dip.
    pub trough: f64,
    /// Performance lost at the trough (e.g. 0.03 = 3 %).
    pub depth: f64,
    /// Decline sharpness: the decline progress is
    /// `smoothstep(u^sharpness)`; values < 1 front-load the drop
    /// (L-shaped crashes), values > 1 delay it.
    pub sharpness: f64,
    /// Recovery profile after the trough.
    pub recovery: RecoveryProfile,
}

impl Dip {
    fn validate(&self, what: &'static str) -> Result<(), DataError> {
        if !(self.start >= 0.0) || !(self.trough > self.start) {
            return Err(DataError::invalid(
                what,
                format!(
                    "need 0 <= start < trough, got start={}, trough={}",
                    self.start, self.trough
                ),
            ));
        }
        if !(self.depth > 0.0) || !self.depth.is_finite() {
            return Err(DataError::invalid(
                what,
                format!("depth must be positive, got {}", self.depth),
            ));
        }
        if !(self.sharpness > 0.0) {
            return Err(DataError::invalid(
                what,
                format!("sharpness must be positive, got {}", self.sharpness),
            ));
        }
        match self.recovery {
            RecoveryProfile::Exponential { rate } if !(rate > 0.0) => Err(DataError::invalid(
                what,
                format!("recovery rate must be positive, got {rate}"),
            )),
            RecoveryProfile::Smoothstep { duration } if !(duration > 0.0) => {
                Err(DataError::invalid(
                    what,
                    format!("recovery duration must be positive, got {duration}"),
                ))
            }
            _ => Ok(()),
        }
    }

    /// Performance lost to this dip at time `t` (non-negative, at most
    /// `depth`).
    #[must_use]
    pub fn loss_at(&self, t: f64) -> f64 {
        if t <= self.start {
            return 0.0;
        }
        if t < self.trough {
            let u = (t - self.start) / (self.trough - self.start);
            return self.depth * smoothstep(u.powf(self.sharpness));
        }
        let since = t - self.trough;
        let remaining = match self.recovery {
            RecoveryProfile::Exponential { rate } => (-rate * since).exp(),
            RecoveryProfile::Smoothstep { duration } => {
                1.0 - smoothstep((since / duration).min(1.0))
            }
        };
        self.depth * remaining
    }
}

fn smoothstep(u: f64) -> f64 {
    let u = u.clamp(0.0, 1.0);
    u * u * (3.0 - 2.0 * u)
}

/// Specification of a full synthetic resilience curve.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveSpec {
    /// Number of monthly observations.
    pub n: usize,
    /// Degradation/recovery episodes (one for V/U/L, two for W).
    pub dips: Vec<Dip>,
    /// Total secular drift accrued linearly from month 0 to month `n−1`
    /// (positive for economies that out-grow the pre-hazard peak).
    pub drift_total: f64,
    /// Standard deviation of additive Gaussian observation noise.
    pub noise_sd: f64,
    /// Noise seed (same seed ⇒ identical curve).
    pub seed: u64,
}

impl CurveSpec {
    /// Generates the curve as a monthly [`PerformanceSeries`].
    ///
    /// The first observation is exactly the nominal level 1.0 (noise is
    /// suppressed at `t = 0` so normalization is exact).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidSeries`] for fewer than 4 points, no
    /// dips, negative noise, or an invalid dip.
    ///
    /// # Examples
    ///
    /// ```
    /// use resilience_data::shapes::{CurveSpec, Dip, RecoveryProfile};
    /// let spec = CurveSpec {
    ///     n: 36,
    ///     dips: vec![Dip {
    ///         start: 0.0,
    ///         trough: 10.0,
    ///         depth: 0.04,
    ///         sharpness: 1.0,
    ///         recovery: RecoveryProfile::Exponential { rate: 0.2 },
    ///     }],
    ///     drift_total: 0.03,
    ///     noise_sd: 0.0,
    ///     seed: 1,
    /// };
    /// let series = spec.generate("demo")?;
    /// let (t_min, _) = series.trough().unwrap();
    /// assert!((t_min - 10.0).abs() <= 2.0);
    /// # Ok::<(), resilience_data::DataError>(())
    /// ```
    pub fn generate(&self, name: impl Into<String>) -> Result<PerformanceSeries, DataError> {
        if self.n < 4 {
            return Err(DataError::invalid(
                "CurveSpec::generate",
                "need at least 4 points",
            ));
        }
        if self.dips.is_empty() {
            return Err(DataError::invalid(
                "CurveSpec::generate",
                "need at least one dip",
            ));
        }
        if !(self.noise_sd >= 0.0) || !self.noise_sd.is_finite() {
            return Err(DataError::invalid(
                "CurveSpec::generate",
                format!("noise_sd must be non-negative, got {}", self.noise_sd),
            ));
        }
        for dip in &self.dips {
            dip.validate("CurveSpec::generate")?;
        }
        let mut rng = XorShift64::new(self.seed);
        let horizon = (self.n - 1) as f64;
        let values: Vec<f64> = (0..self.n)
            .map(|i| {
                let t = i as f64;
                let loss: f64 = self.dips.iter().map(|d| d.loss_at(t)).sum();
                let drift = self.drift_total * t / horizon;
                let noise = if i == 0 {
                    0.0
                } else {
                    self.noise_sd * rng.next_gaussian()
                };
                1.0 - loss + drift + noise
            })
            .collect();
        PerformanceSeries::monthly(name, values)
    }
}

/// The letter taxonomy of recession shapes from the paper's §V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeKind {
    /// Sharp drop, sharp recovery.
    V,
    /// Slow drop, slow recovery.
    U,
    /// Two successive degradation/recovery episodes.
    W,
    /// Sudden crash followed by prolonged under-performance.
    L,
    /// Slow recovery that eventually rejoins the pre-hazard growth trend.
    J,
    /// Sharp drop with divergent recovery paths; represented here by its
    /// aggregate: a crash with only partial long-run recovery.
    K,
}

impl ShapeKind {
    /// All shapes, in display order.
    pub const ALL: [ShapeKind; 6] = [
        ShapeKind::V,
        ShapeKind::U,
        ShapeKind::W,
        ShapeKind::L,
        ShapeKind::J,
        ShapeKind::K,
    ];

    /// A canonical specification of this shape over `n` months.
    ///
    /// Used by the shape-sweep ablation: the paper's conclusion — V and U
    /// fit well, W/L/K break both model families — is reproduced over
    /// these controlled curves.
    #[must_use]
    pub fn canonical(self, n: usize, seed: u64) -> CurveSpec {
        let exp = |rate: f64| RecoveryProfile::Exponential { rate };
        let smooth = |duration: f64| RecoveryProfile::Smoothstep { duration };
        let horizon = n as f64;
        let dip = |start: f64, trough: f64, depth: f64, sharpness: f64, rec: RecoveryProfile| Dip {
            start,
            trough,
            depth,
            sharpness,
            recovery: rec,
        };
        match self {
            ShapeKind::V => CurveSpec {
                n,
                dips: vec![dip(0.0, 0.3 * horizon, 0.05, 1.2, exp(8.0 / horizon))],
                drift_total: 0.04,
                noise_sd: 0.0008,
                seed,
            },
            ShapeKind::U => CurveSpec {
                n,
                dips: vec![dip(0.0, 0.35 * horizon, 0.04, 1.0, smooth(0.55 * horizon))],
                drift_total: 0.03,
                noise_sd: 0.0008,
                seed,
            },
            ShapeKind::W => CurveSpec {
                n,
                dips: vec![
                    dip(0.0, 0.12 * horizon, 0.02, 1.1, exp(16.0 / horizon)),
                    dip(
                        0.3 * horizon,
                        0.55 * horizon,
                        0.035,
                        1.1,
                        exp(10.0 / horizon),
                    ),
                ],
                drift_total: 0.01,
                noise_sd: 0.0008,
                seed,
            },
            ShapeKind::L => CurveSpec {
                n,
                dips: vec![
                    dip(0.0, 0.06 * horizon, 0.10, 0.7, exp(20.0 / horizon)),
                    dip(0.0, 0.06 * horizon, 0.05, 0.7, exp(0.6 / horizon)),
                ],
                drift_total: 0.0,
                noise_sd: 0.0008,
                seed,
            },
            ShapeKind::J => CurveSpec {
                n,
                dips: vec![dip(0.0, 0.25 * horizon, 0.05, 1.0, exp(3.0 / horizon))],
                drift_total: 0.06,
                noise_sd: 0.0008,
                seed,
            },
            ShapeKind::K => CurveSpec {
                n,
                dips: vec![
                    dip(0.0, 0.05 * horizon, 0.09, 0.6, exp(25.0 / horizon)),
                    dip(0.0, 0.05 * horizon, 0.07, 0.6, exp(0.3 / horizon)),
                ],
                drift_total: -0.01,
                noise_sd: 0.0008,
                seed,
            },
        }
    }
}

impl std::fmt::Display for ShapeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ShapeKind::V => "V",
            ShapeKind::U => "U",
            ShapeKind::W => "W",
            ShapeKind::L => "L",
            ShapeKind::J => "J",
            ShapeKind::K => "K",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dip_loss_profile() {
        let d = Dip {
            start: 0.0,
            trough: 10.0,
            depth: 0.05,
            sharpness: 1.0,
            recovery: RecoveryProfile::Exponential { rate: 0.2 },
        };
        assert_eq!(d.loss_at(0.0), 0.0);
        assert_eq!(d.loss_at(-1.0), 0.0);
        assert!((d.loss_at(10.0) - 0.05).abs() < 1e-12);
        // Monotone decline into the trough.
        assert!(d.loss_at(3.0) < d.loss_at(7.0));
        // Monotone recovery afterwards.
        assert!(d.loss_at(15.0) > d.loss_at(25.0));
        assert!(d.loss_at(100.0) < 1e-8);
    }

    #[test]
    fn smoothstep_recovery_completes() {
        let d = Dip {
            start: 0.0,
            trough: 5.0,
            depth: 0.1,
            sharpness: 1.0,
            recovery: RecoveryProfile::Smoothstep { duration: 10.0 },
        };
        assert!((d.loss_at(5.0) - 0.1).abs() < 1e-12);
        assert!((d.loss_at(10.0) - 0.05).abs() < 1e-12); // midpoint
        assert_eq!(d.loss_at(15.0), 0.0);
        assert_eq!(d.loss_at(50.0), 0.0);
    }

    #[test]
    fn sharpness_front_loads_decline() {
        let sharp = Dip {
            start: 0.0,
            trough: 10.0,
            depth: 0.1,
            sharpness: 0.5,
            recovery: RecoveryProfile::Exponential { rate: 0.1 },
        };
        let gentle = Dip {
            sharpness: 2.0,
            ..sharp
        };
        // Early in the decline the sharp dip has lost more.
        assert!(sharp.loss_at(2.0) > gentle.loss_at(2.0));
    }

    #[test]
    fn generate_validates() {
        let good_dip = Dip {
            start: 0.0,
            trough: 5.0,
            depth: 0.05,
            sharpness: 1.0,
            recovery: RecoveryProfile::Exponential { rate: 0.2 },
        };
        let mut spec = CurveSpec {
            n: 3,
            dips: vec![good_dip],
            drift_total: 0.0,
            noise_sd: 0.0,
            seed: 1,
        };
        assert!(spec.generate("x").is_err()); // too short
        spec.n = 20;
        spec.dips.clear();
        assert!(spec.generate("x").is_err()); // no dips
        spec.dips = vec![Dip {
            trough: 0.0,
            ..good_dip
        }];
        assert!(spec.generate("x").is_err()); // trough <= start
        spec.dips = vec![good_dip];
        spec.noise_sd = -1.0;
        assert!(spec.generate("x").is_err());
        spec.noise_sd = 0.0;
        assert!(spec.generate("x").is_ok());
    }

    #[test]
    fn generate_is_deterministic() {
        let spec = ShapeKind::V.canonical(48, 7);
        let a = spec.generate("a").unwrap();
        let b = spec.generate("b").unwrap();
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn first_point_is_exactly_nominal() {
        let spec = ShapeKind::U.canonical(48, 3);
        let s = spec.generate("u").unwrap();
        assert_eq!(s.values()[0], 1.0);
    }

    #[test]
    fn v_shape_dips_and_recovers() {
        let s = ShapeKind::V.canonical(48, 11).generate("v").unwrap();
        let (t_min, p_min) = s.trough().unwrap();
        assert!(p_min < 0.97);
        assert!(t_min > 5.0 && t_min < 25.0);
        // Recovered above nominal by the end.
        assert!(s.values()[47] > 1.0);
    }

    #[test]
    fn w_shape_has_two_local_minima() {
        let s = ShapeKind::W.canonical(48, 5).generate("w").unwrap();
        let v = s.values();
        // Count strict local minima over a smoothed 3-point window.
        let mut minima = 0;
        for i in 2..(v.len() - 2) {
            let prev = (v[i - 2] + v[i - 1]) / 2.0;
            let next = (v[i + 1] + v[i + 2]) / 2.0;
            if v[i] < prev - 1e-4 && v[i] < next - 1e-4 {
                minima += 1;
            }
        }
        assert!(minima >= 2, "expected a W (two minima), found {minima}");
    }

    #[test]
    fn l_shape_crashes_fast_and_stays_low() {
        let s = ShapeKind::L.canonical(24, 9).generate("l").unwrap();
        let v = s.values();
        let (_, p_min) = s.trough().unwrap();
        assert!(p_min < 0.88, "deep crash: {p_min}");
        // Still visibly below nominal at the end.
        assert!(v[23] < 0.99);
        // The crash happens within the first few months.
        let early_min = v[..5].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(early_min < 0.9);
    }

    #[test]
    fn k_shape_ends_below_nominal() {
        let s = ShapeKind::K.canonical(24, 13).generate("k").unwrap();
        assert!(s.values()[23] < 0.99);
    }

    #[test]
    fn all_canonical_shapes_generate() {
        for kind in ShapeKind::ALL {
            let s = kind.canonical(48, 1).generate(kind.to_string()).unwrap();
            assert_eq!(s.len(), 48);
            assert!(s.values().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn display_letters() {
        assert_eq!(ShapeKind::V.to_string(), "V");
        assert_eq!(ShapeKind::K.to_string(), "K");
    }
}
