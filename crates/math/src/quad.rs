//! One-dimensional numerical quadrature.
//!
//! The interval-based resilience metrics of the paper (its Eq. 14–21) are
//! integrals of a fitted performance curve `P(t)`. The bathtub models have
//! closed-form areas (paper Eq. 3 and 6) but the mixture models do not, so
//! the metrics layer falls back to the routines here.
//!
//! All routines integrate a callable `f: f64 -> f64` over a finite interval
//! `[a, b]` and reject non-finite integrand values with
//! [`MathError::NonFinite`] rather than silently propagating NaN into a
//! reported metric.

use crate::MathError;

/// Composite trapezoid rule with `n ≥ 1` panels.
///
/// Error is `O(h²)`; prefer [`simpson`] or [`adaptive_simpson`] unless the
/// integrand is only piecewise smooth (the trapezoid rule is exact for the
/// piecewise-linear empirical curves used by the *actual* metric values).
///
/// # Errors
///
/// * [`MathError::Domain`] when `n == 0` or `a > b`.
/// * [`MathError::NonFinite`] when the integrand returns NaN/∞.
///
/// # Examples
///
/// ```
/// use resilience_math::quad::trapezoid;
/// let area = trapezoid(|x| x, 0.0, 1.0, 1)?; // exact for linear f
/// assert!((area - 0.5).abs() < 1e-15);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn trapezoid<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    n: usize,
) -> Result<f64, MathError> {
    check_interval("trapezoid", a, b)?;
    if n == 0 {
        return Err(MathError::domain("trapezoid", "need at least one panel"));
    }
    if a == b {
        return Ok(0.0);
    }
    let h = (b - a) / n as f64;
    let mut sum = 0.5 * (eval(&mut f, a, "trapezoid")? + eval(&mut f, b, "trapezoid")?);
    for i in 1..n {
        sum += eval(&mut f, a + i as f64 * h, "trapezoid")?;
    }
    Ok(sum * h)
}

/// Integrates a sampled curve `(t_i, y_i)` with the trapezoid rule.
///
/// This is the discrete form used for the “actual” side of the paper's
/// interval-based metrics, where the curve is only known at the monthly
/// observations.
///
/// # Errors
///
/// * [`MathError::Shape`] when the slices differ in length or have fewer
///   than two points.
/// * [`MathError::Domain`] when the abscissae are not strictly increasing.
///
/// # Examples
///
/// ```
/// use resilience_math::quad::trapezoid_sampled;
/// let t = [0.0, 1.0, 2.0];
/// let y = [0.0, 1.0, 2.0];
/// assert!((trapezoid_sampled(&t, &y)? - 2.0).abs() < 1e-15);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn trapezoid_sampled(t: &[f64], y: &[f64]) -> Result<f64, MathError> {
    if t.len() != y.len() {
        return Err(MathError::shape(
            "trapezoid_sampled",
            format!("t has {} points but y has {}", t.len(), y.len()),
        ));
    }
    if t.len() < 2 {
        return Err(MathError::shape(
            "trapezoid_sampled",
            "need at least two samples",
        ));
    }
    let mut acc = 0.0;
    for i in 1..t.len() {
        let dt = t[i] - t[i - 1];
        if dt <= 0.0 {
            return Err(MathError::domain(
                "trapezoid_sampled",
                format!("abscissae must be strictly increasing at index {i}"),
            ));
        }
        acc += 0.5 * dt * (y[i] + y[i - 1]);
    }
    Ok(acc)
}

/// Composite Simpson rule with `n` panels (`n` is rounded up to even).
///
/// Error is `O(h⁴)` for smooth integrands.
///
/// # Errors
///
/// * [`MathError::Domain`] when `n == 0` or `a > b`.
/// * [`MathError::NonFinite`] when the integrand returns NaN/∞.
///
/// # Examples
///
/// ```
/// use resilience_math::quad::simpson;
/// let area = simpson(|x| x * x, 0.0, 3.0, 8)?; // exact for cubics
/// assert!((area - 9.0).abs() < 1e-12);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn simpson<F: FnMut(f64) -> f64>(mut f: F, a: f64, b: f64, n: usize) -> Result<f64, MathError> {
    check_interval("simpson", a, b)?;
    if n == 0 {
        return Err(MathError::domain("simpson", "need at least one panel"));
    }
    if a == b {
        return Ok(0.0);
    }
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut sum = eval(&mut f, a, "simpson")? + eval(&mut f, b, "simpson")?;
    for i in 1..n {
        let weight = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += weight * eval(&mut f, a + i as f64 * h, "simpson")?;
    }
    Ok(sum * h / 3.0)
}

/// Adaptive Simpson quadrature with error target `tol` and recursion depth
/// limit `max_depth`.
///
/// This is the workhorse integrator for the mixture-model metrics: it
/// concentrates points near the curve's trough where curvature is highest.
///
/// # Errors
///
/// * [`MathError::Domain`] when `a > b` or `tol ≤ 0`.
/// * [`MathError::NonFinite`] when the integrand returns NaN/∞.
/// * [`MathError::NoConvergence`] when the depth limit is reached before
///   the tolerance is met.
///
/// # Examples
///
/// ```
/// use resilience_math::quad::adaptive_simpson;
/// let area = adaptive_simpson(|x| (-x).exp(), 0.0, 10.0, 1e-12, 40)?;
/// assert!((area - (1.0 - (-10.0f64).exp())).abs() < 1e-10);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn adaptive_simpson<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_depth: usize,
) -> Result<f64, MathError> {
    check_interval("adaptive_simpson", a, b)?;
    if !(tol > 0.0) {
        return Err(MathError::domain(
            "adaptive_simpson",
            format!("tolerance must be positive, got {tol}"),
        ));
    }
    if a == b {
        return Ok(0.0);
    }
    let fa = eval(&mut f, a, "adaptive_simpson")?;
    let fb = eval(&mut f, b, "adaptive_simpson")?;
    let m = 0.5 * (a + b);
    let fm = eval(&mut f, m, "adaptive_simpson")?;
    let whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
    adaptive_step(&mut f, a, b, fa, fm, fb, whole, tol, max_depth)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_step<F: FnMut(f64) -> f64>(
    f: &mut F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: usize,
) -> Result<f64, MathError> {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = eval(f, lm, "adaptive_simpson")?;
    let frm = eval(f, rm, "adaptive_simpson")?;
    let left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
    let right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
    let delta = left + right - whole;
    if delta.abs() <= 15.0 * tol {
        // Richardson extrapolation removes the leading error term.
        return Ok(left + right + delta / 15.0);
    }
    if depth == 0 {
        return Err(MathError::NoConvergence {
            what: "adaptive_simpson",
            iterations: 0,
            last_error: delta.abs(),
        });
    }
    let l = adaptive_step(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)?;
    let r = adaptive_step(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)?;
    Ok(l + r)
}

/// Nodes/weights for Gauss–Legendre quadrature on [−1, 1], order 10.
/// Symmetric halves; (node, weight).
const GL10: [(f64, f64); 5] = [
    (0.148_874_338_981_631_21, 0.295_524_224_714_752_87),
    (0.433_395_394_129_247_2, 0.269_266_719_309_996_35),
    (0.679_409_568_299_024_4, 0.219_086_362_515_982_04),
    (0.865_063_366_688_984_5, 0.149_451_349_150_580_6),
    (0.973_906_528_517_171_7, 0.066_671_344_308_688_14),
];

/// Nodes/weights for Gauss–Legendre quadrature on [−1, 1], order 20.
const GL20: [(f64, f64); 10] = [
    (0.076_526_521_133_497_33, 0.152_753_387_130_725_85),
    (0.227_785_851_141_645_08, 0.149_172_986_472_603_75),
    (0.373_706_088_715_419_56, 0.142_096_109_318_382_05),
    (0.510_867_001_950_827_1, 0.131_688_638_449_176_63),
    (0.636_053_680_726_515, 0.118_194_531_961_518_42),
    (0.746_331_906_460_150_8, 0.101_930_119_817_240_44),
    (0.839_116_971_822_218_8, 0.083_276_741_576_704_75),
    (0.912_234_428_251_326, 0.062_672_048_334_109_06),
    (0.963_971_927_277_913_8, 0.040_601_429_800_386_94),
    (0.993_128_599_185_094_9, 0.017_614_007_139_152_12),
];

/// Fixed-order Gauss–Legendre quadrature (order 10 or 20) over `[a, b]`.
///
/// Exact for polynomials up to degree `2·order − 1`; very efficient for the
/// smooth parametric curves produced by the resilience models.
///
/// # Errors
///
/// * [`MathError::Domain`] when `a > b` or the order is unsupported.
/// * [`MathError::NonFinite`] when the integrand returns NaN/∞.
///
/// # Examples
///
/// ```
/// use resilience_math::quad::gauss_legendre;
/// let area = gauss_legendre(f64::exp, 0.0, 1.0, 10)?;
/// assert!((area - (std::f64::consts::E - 1.0)).abs() < 1e-14);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn gauss_legendre<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    order: usize,
) -> Result<f64, MathError> {
    check_interval("gauss_legendre", a, b)?;
    if a == b {
        return Ok(0.0);
    }
    let half: &[(f64, f64)] = match order {
        10 => &GL10,
        20 => &GL20,
        _ => {
            return Err(MathError::domain(
                "gauss_legendre",
                format!("supported orders are 10 and 20, got {order}"),
            ))
        }
    };
    let c = 0.5 * (b - a);
    let d = 0.5 * (a + b);
    let mut sum = 0.0;
    for &(x, w) in half {
        sum += w
            * (eval(&mut f, d + c * x, "gauss_legendre")?
                + eval(&mut f, d - c * x, "gauss_legendre")?);
    }
    Ok(c * sum)
}

/// Composite Gauss–Legendre: splits `[a, b]` into `panels` sub-intervals and
/// applies order-20 Gauss–Legendre on each.
///
/// # Errors
///
/// Same conditions as [`gauss_legendre`], plus `panels == 0`.
pub fn gauss_legendre_composite<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    panels: usize,
) -> Result<f64, MathError> {
    check_interval("gauss_legendre_composite", a, b)?;
    if panels == 0 {
        return Err(MathError::domain(
            "gauss_legendre_composite",
            "need at least one panel",
        ));
    }
    let h = (b - a) / panels as f64;
    let mut total = 0.0;
    for i in 0..panels {
        let lo = a + i as f64 * h;
        total += gauss_legendre(&mut f, lo, lo + h, 20)?;
    }
    Ok(total)
}

/// Romberg integration: Richardson-extrapolated trapezoid rule.
///
/// Halts when two successive diagonal entries agree to `tol`, or errors
/// after `max_levels` refinements.
///
/// # Errors
///
/// * [`MathError::Domain`] for bad intervals/tolerances.
/// * [`MathError::NoConvergence`] if the tableau does not settle.
/// * [`MathError::NonFinite`] when the integrand returns NaN/∞.
///
/// # Examples
///
/// ```
/// use resilience_math::quad::romberg;
/// let area = romberg(|x| 1.0 / (1.0 + x * x), 0.0, 1.0, 1e-12, 20)?;
/// assert!((area - std::f64::consts::FRAC_PI_4).abs() < 1e-11);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn romberg<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_levels: usize,
) -> Result<f64, MathError> {
    check_interval("romberg", a, b)?;
    if !(tol > 0.0) {
        return Err(MathError::domain(
            "romberg",
            format!("tolerance must be positive, got {tol}"),
        ));
    }
    if a == b {
        return Ok(0.0);
    }
    let max_levels = max_levels.max(2);
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(max_levels);
    let mut h = b - a;
    let first = 0.5 * h * (eval(&mut f, a, "romberg")? + eval(&mut f, b, "romberg")?);
    rows.push(vec![first]);
    for level in 1..max_levels {
        h *= 0.5;
        // Trapezoid refinement: add midpoints of the previous grid.
        let points = 1usize << (level - 1);
        let mut mid_sum = 0.0;
        for i in 0..points {
            let x = a + (2 * i + 1) as f64 * h;
            mid_sum += eval(&mut f, x, "romberg")?;
        }
        let t = 0.5 * rows[level - 1][0] + h * mid_sum;
        let mut row = vec![t];
        for k in 1..=level {
            let factor = 4f64.powi(k as i32);
            let extrap = (factor * row[k - 1] - rows[level - 1][k - 1]) / (factor - 1.0);
            row.push(extrap);
        }
        let prev_diag = rows[level - 1][level - 1];
        let diag = row[level];
        rows.push(row);
        if (diag - prev_diag).abs() <= tol * (1.0 + diag.abs()) {
            return Ok(diag);
        }
    }
    let last = rows[max_levels - 1][max_levels - 1];
    let prev = rows[max_levels - 2][max_levels - 2];
    Err(MathError::NoConvergence {
        what: "romberg",
        iterations: max_levels,
        last_error: (last - prev).abs(),
    })
}

fn check_interval(what: &'static str, a: f64, b: f64) -> Result<(), MathError> {
    if !a.is_finite() || !b.is_finite() {
        return Err(MathError::domain(
            what,
            format!("interval endpoints must be finite, got [{a}, {b}]"),
        ));
    }
    if a > b {
        return Err(MathError::domain(
            what,
            format!("interval is reversed: [{a}, {b}]"),
        ));
    }
    Ok(())
}

fn eval<F: FnMut(f64) -> f64>(f: &mut F, x: f64, what: &'static str) -> Result<f64, MathError> {
    let y = f(x);
    if y.is_finite() {
        Ok(y)
    } else {
        Err(MathError::NonFinite { what, at: x })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn trapezoid_exact_for_linear() {
        let v = trapezoid(|x| 2.0 * x + 1.0, 0.0, 4.0, 1).unwrap();
        assert!(approx_eq(v, 20.0, 1e-12, 1e-12));
    }

    #[test]
    fn trapezoid_converges_quadratically() {
        let exact = 2.0; // ∫₀^π sin
        let e1 = (trapezoid(f64::sin, 0.0, std::f64::consts::PI, 50).unwrap() - exact).abs();
        let e2 = (trapezoid(f64::sin, 0.0, std::f64::consts::PI, 100).unwrap() - exact).abs();
        assert!(
            e2 < e1 / 3.5,
            "halving h should quarter the error: {e1} -> {e2}"
        );
    }

    #[test]
    fn trapezoid_rejects_zero_panels_and_reversed_interval() {
        assert!(trapezoid(|x| x, 0.0, 1.0, 0).is_err());
        assert!(trapezoid(|x| x, 1.0, 0.0, 4).is_err());
    }

    #[test]
    fn trapezoid_degenerate_interval_is_zero() {
        assert_eq!(trapezoid(|x| x * x, 2.0, 2.0, 4).unwrap(), 0.0);
    }

    #[test]
    fn trapezoid_rejects_nan_integrand() {
        let err = trapezoid(|_| f64::NAN, 0.0, 1.0, 2).unwrap_err();
        assert!(matches!(err, MathError::NonFinite { .. }));
    }

    #[test]
    fn trapezoid_sampled_matches_continuous() {
        let t: Vec<f64> = (0..=100).map(|i| i as f64 * 0.01).collect();
        let y: Vec<f64> = t.iter().map(|&x| x * x).collect();
        let v = trapezoid_sampled(&t, &y).unwrap();
        assert!(approx_eq(v, 1.0 / 3.0, 1e-4, 1e-4));
    }

    #[test]
    fn trapezoid_sampled_rejects_bad_shapes() {
        assert!(trapezoid_sampled(&[0.0, 1.0], &[0.0]).is_err());
        assert!(trapezoid_sampled(&[0.0], &[0.0]).is_err());
        assert!(trapezoid_sampled(&[0.0, 0.0], &[1.0, 2.0]).is_err());
        assert!(trapezoid_sampled(&[1.0, 0.5], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn simpson_exact_for_cubic() {
        let v = simpson(|x| x * x * x - x, 0.0, 2.0, 2).unwrap();
        assert!(approx_eq(v, 2.0, 1e-12, 1e-12));
    }

    #[test]
    fn simpson_rounds_odd_panels_up() {
        let odd = simpson(f64::sin, 0.0, 1.0, 3).unwrap();
        let even = simpson(f64::sin, 0.0, 1.0, 4).unwrap();
        assert!(approx_eq(odd, even, 1e-12, 1e-12));
    }

    #[test]
    fn adaptive_simpson_smooth() {
        let v = adaptive_simpson(f64::sin, 0.0, std::f64::consts::PI, 1e-12, 30).unwrap();
        assert!(approx_eq(v, 2.0, 1e-10, 1e-10));
    }

    #[test]
    fn adaptive_simpson_peaked_integrand() {
        // Narrow Gaussian bump: ∫ exp(−200(x−0.5)²) over [0,1] = √(π/200)·erf-ish ≈ 0.12533141.
        let v = adaptive_simpson(
            |x| (-200.0 * (x - 0.5) * (x - 0.5)).exp(),
            0.0,
            1.0,
            1e-12,
            40,
        )
        .unwrap();
        // Exact value √(π/200)·erf(0.5·√200); erf(7.07…) = 1 to machine precision.
        let exact =
            (std::f64::consts::PI / 200.0).sqrt() * crate::special::erf(0.5 * 200f64.sqrt());
        assert!(approx_eq(v, exact, 1e-9, 1e-9));
    }

    #[test]
    fn adaptive_simpson_depth_exhaustion() {
        // |x|^0.1 has an endpoint singularity in derivatives; with depth 1 the
        // tolerance can't be met.
        let r = adaptive_simpson(|x: f64| x.abs().powf(0.1), -1.0, 1.0, 1e-14, 1);
        assert!(matches!(r, Err(MathError::NoConvergence { .. })));
    }

    #[test]
    fn adaptive_simpson_rejects_bad_tol() {
        assert!(adaptive_simpson(|x| x, 0.0, 1.0, 0.0, 10).is_err());
        assert!(adaptive_simpson(|x| x, 0.0, 1.0, -1.0, 10).is_err());
    }

    #[test]
    fn gauss_legendre_polynomial_exactness() {
        // Order 10 integrates degree-19 polynomials exactly.
        let v = gauss_legendre(|x| x.powi(19) + x.powi(4), -1.0, 1.0, 10).unwrap();
        assert!(approx_eq(v, 0.4, 1e-13, 1e-12));
        let v20 = gauss_legendre(|x| x.powi(39) + 1.0, -1.0, 1.0, 20).unwrap();
        assert!(approx_eq(v20, 2.0, 1e-13, 1e-12));
    }

    #[test]
    fn gauss_legendre_rejects_unsupported_order() {
        assert!(gauss_legendre(|x| x, 0.0, 1.0, 7).is_err());
    }

    #[test]
    fn gauss_legendre_composite_long_interval() {
        let v = gauss_legendre_composite(f64::sin, 0.0, 20.0, 8).unwrap();
        let exact = 1.0 - 20f64.cos();
        assert!(approx_eq(v, exact, 1e-10, 1e-10));
    }

    #[test]
    fn gauss_legendre_composite_rejects_zero_panels() {
        assert!(gauss_legendre_composite(|x| x, 0.0, 1.0, 0).is_err());
    }

    #[test]
    fn romberg_converges_on_smooth() {
        let v = romberg(f64::exp, 0.0, 2.0, 1e-12, 20).unwrap();
        assert!(approx_eq(v, 2f64.exp() - 1.0, 1e-10, 1e-12));
    }

    #[test]
    fn romberg_reports_non_convergence() {
        // max_levels too small to resolve the oscillation.
        let r = romberg(|x| (50.0 * x).sin(), 0.0, 10.0, 1e-14, 3);
        assert!(matches!(r, Err(MathError::NoConvergence { .. })));
    }

    #[test]
    fn all_rules_agree_on_resilience_like_curve() {
        // A V-shaped dip-and-recover curve similar to what the models produce.
        let f = |t: f64| 1.0 - 0.05 * (-0.3 * (t - 10.0).powi(2) / 20.0).exp();
        let a = 0.0;
        let b = 40.0;
        let s = simpson(f, a, b, 4096).unwrap();
        let ad = adaptive_simpson(f, a, b, 1e-12, 40).unwrap();
        let gl = gauss_legendre_composite(f, a, b, 8).unwrap();
        let ro = romberg(f, a, b, 1e-12, 22).unwrap();
        assert!(approx_eq(s, ad, 1e-9, 1e-12));
        assert!(approx_eq(ad, gl, 1e-9, 1e-12));
        assert!(approx_eq(gl, ro, 1e-9, 1e-12));
    }

    #[test]
    fn non_finite_endpoints_rejected() {
        assert!(simpson(|x| x, f64::NAN, 1.0, 2).is_err());
        assert!(gauss_legendre(|x| x, 0.0, f64::INFINITY, 10).is_err());
    }
}
