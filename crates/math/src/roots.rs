//! Scalar root finding.
//!
//! The workspace needs roots in three places: inverting distribution CDFs
//! (quantiles of the Weibull mixture components that lack closed forms),
//! solving the recovery-time equations of the bathtub models (paper Eq. 2
//! and Eq. 5 cover the closed-form cases; the general path solves
//! `P(t) = level` numerically), and locating curve minima via derivative
//! sign changes.

use crate::MathError;

/// Result of a successful root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Root {
    /// Abscissa of the root.
    pub x: f64,
    /// Function value at `x` (should be ~0).
    pub f_x: f64,
    /// Number of iterations used.
    pub iterations: usize,
}

/// Bisection on a bracketing interval `[lo, hi]`.
///
/// Robust but linearly convergent; use [`brent`] unless you need the
/// guaranteed bracket-halving behaviour.
///
/// # Errors
///
/// * [`MathError::NoBracket`] when `f(lo)` and `f(hi)` have the same sign.
/// * [`MathError::NoConvergence`] when `max_iter` is exhausted.
/// * [`MathError::Domain`] for invalid intervals or tolerances.
///
/// # Examples
///
/// ```
/// use resilience_math::roots::bisection;
/// let r = bisection(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200)?;
/// assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-10);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn bisection<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Root, MathError> {
    check_args("bisection", lo, hi, tol)?;
    let mut lo = lo;
    let mut hi = hi;
    let mut f_lo = f(lo);
    let f_hi = f(hi);
    if f_lo == 0.0 {
        return Ok(Root {
            x: lo,
            f_x: 0.0,
            iterations: 0,
        });
    }
    if f_hi == 0.0 {
        return Ok(Root {
            x: hi,
            f_x: 0.0,
            iterations: 0,
        });
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(MathError::NoBracket {
            what: "bisection",
            f_lo,
            f_hi,
        });
    }
    for i in 1..=max_iter {
        let mid = 0.5 * (lo + hi);
        let f_mid = f(mid);
        if f_mid == 0.0 || 0.5 * (hi - lo) < tol {
            return Ok(Root {
                x: mid,
                f_x: f_mid,
                iterations: i,
            });
        }
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Err(MathError::NoConvergence {
        what: "bisection",
        iterations: max_iter,
        last_error: hi - lo,
    })
}

/// Newton–Raphson iteration from an initial guess with an explicit
/// derivative.
///
/// # Errors
///
/// * [`MathError::NoConvergence`] if `max_iter` is exhausted or the
///   derivative vanishes.
/// * [`MathError::NonFinite`] if an iterate escapes to NaN/∞.
///
/// # Examples
///
/// ```
/// use resilience_math::roots::newton;
/// let r = newton(|x| x * x - 2.0, |x| 2.0 * x, 1.0, 1e-14, 50)?;
/// assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-12);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn newton<F, D>(
    mut f: F,
    mut df: D,
    x0: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Root, MathError>
where
    F: FnMut(f64) -> f64,
    D: FnMut(f64) -> f64,
{
    if !(tol > 0.0) {
        return Err(MathError::domain(
            "newton",
            format!("tolerance must be positive, got {tol}"),
        ));
    }
    let mut x = x0;
    for i in 1..=max_iter {
        let fx = f(x);
        if !fx.is_finite() {
            return Err(MathError::NonFinite {
                what: "newton",
                at: x,
            });
        }
        let dfx = df(x);
        if dfx == 0.0 || !dfx.is_finite() {
            return Err(MathError::NoConvergence {
                what: "newton",
                iterations: i,
                last_error: fx.abs(),
            });
        }
        let next = x - fx / dfx;
        if !next.is_finite() {
            return Err(MathError::NonFinite {
                what: "newton",
                at: x,
            });
        }
        if (next - x).abs() <= tol * (1.0 + x.abs()) {
            return Ok(Root {
                x: next,
                f_x: f(next),
                iterations: i,
            });
        }
        x = next;
    }
    Err(MathError::NoConvergence {
        what: "newton",
        iterations: max_iter,
        last_error: f(x).abs(),
    })
}

/// Secant method from two initial guesses (derivative-free Newton).
///
/// # Errors
///
/// * [`MathError::NoConvergence`] if `max_iter` is exhausted or the secant
///   slope degenerates.
/// * [`MathError::NonFinite`] if an iterate escapes to NaN/∞.
///
/// # Examples
///
/// ```
/// use resilience_math::roots::secant;
/// let r = secant(|x| x.cos() - x, 0.0, 1.0, 1e-13, 100)?;
/// assert!((r.x - 0.7390851332151607).abs() < 1e-11);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn secant<F: FnMut(f64) -> f64>(
    mut f: F,
    x0: f64,
    x1: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Root, MathError> {
    if !(tol > 0.0) {
        return Err(MathError::domain(
            "secant",
            format!("tolerance must be positive, got {tol}"),
        ));
    }
    let mut a = x0;
    let mut b = x1;
    let mut fa = f(a);
    let mut fb = f(b);
    for i in 1..=max_iter {
        if fb == 0.0 {
            return Ok(Root {
                x: b,
                f_x: 0.0,
                iterations: i,
            });
        }
        let denom = fb - fa;
        if denom == 0.0 || !denom.is_finite() {
            return Err(MathError::NoConvergence {
                what: "secant",
                iterations: i,
                last_error: fb.abs(),
            });
        }
        let next = b - fb * (b - a) / denom;
        if !next.is_finite() {
            return Err(MathError::NonFinite {
                what: "secant",
                at: b,
            });
        }
        if (next - b).abs() <= tol * (1.0 + b.abs()) {
            return Ok(Root {
                x: next,
                f_x: f(next),
                iterations: i,
            });
        }
        a = b;
        fa = fb;
        b = next;
        fb = f(b);
    }
    Err(MathError::NoConvergence {
        what: "secant",
        iterations: max_iter,
        last_error: fb.abs(),
    })
}

/// Brent's method: inverse-quadratic interpolation with bisection fallback.
///
/// The default root finder across the workspace — superlinear on smooth
/// functions and never worse than bisection.
///
/// # Errors
///
/// * [`MathError::NoBracket`] when `[lo, hi]` does not bracket a sign change.
/// * [`MathError::NoConvergence`] when `max_iter` is exhausted.
/// * [`MathError::Domain`] for invalid intervals or tolerances.
///
/// # Examples
///
/// ```
/// use resilience_math::roots::brent;
/// // Recovery-time-style problem: when does the curve re-cross 0.99?
/// let p = |t: f64| 1.0 - 0.05 * (-(t - 10.0).powi(2) / 30.0).exp() - 0.99;
/// let r = brent(p, 10.0, 40.0, 1e-12, 100)?;
/// assert!(r.f_x.abs() < 1e-10);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<Root, MathError> {
    check_args("brent", lo, hi, tol)?;
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(Root {
            x: a,
            f_x: 0.0,
            iterations: 0,
        });
    }
    if fb == 0.0 {
        return Ok(Root {
            x: b,
            f_x: 0.0,
            iterations: 0,
        });
    }
    if fa.signum() == fb.signum() {
        return Err(MathError::NoBracket {
            what: "brent",
            f_lo: fa,
            f_hi: fb,
        });
    }
    // Ensure |f(b)| <= |f(a)|: b is the best iterate.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = 0.0;
    for i in 1..=max_iter {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(Root {
                x: b,
                f_x: fb,
                iterations: i,
            });
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let lo_bound = (3.0 * a + b) / 4.0;
        let between = (lo_bound.min(b)..=lo_bound.max(b)).contains(&s);
        let cond = !between
            || (mflag && (s - b).abs() >= 0.5 * (b - c).abs())
            || (!mflag && (s - b).abs() >= 0.5 * (c - d).abs())
            || (mflag && (b - c).abs() < tol)
            || (!mflag && (c - d).abs() < tol);
        if cond {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(MathError::NoConvergence {
        what: "brent",
        iterations: max_iter,
        last_error: fb.abs(),
    })
}

/// Expands an interval geometrically around `[lo, hi]` until it brackets a
/// sign change of `f`, then returns the bracketing interval.
///
/// Useful when only a rough location of the root is known (e.g. searching
/// for a recovery time beyond the observed data).
///
/// # Errors
///
/// * [`MathError::NoBracket`] when no sign change is found within
///   `max_expansions`.
/// * [`MathError::Domain`] for invalid intervals.
///
/// # Examples
///
/// ```
/// use resilience_math::roots::{bracket_root, brent};
/// let f = |x: f64| x - 37.5;
/// let (lo, hi) = bracket_root(f, 0.0, 1.0, 60)?;
/// let root = brent(f, lo, hi, 1e-12, 100)?;
/// assert!((root.x - 37.5).abs() < 1e-9);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn bracket_root<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    max_expansions: usize,
) -> Result<(f64, f64), MathError> {
    if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
        return Err(MathError::domain(
            "bracket_root",
            format!("need finite lo < hi, got [{lo}, {hi}]"),
        ));
    }
    let mut lo = lo;
    let mut hi = hi;
    let mut f_lo = f(lo);
    let mut f_hi = f(hi);
    const GROW: f64 = 1.6;
    for _ in 0..max_expansions {
        if f_lo.signum() != f_hi.signum() {
            return Ok((lo, hi));
        }
        // Expand the side with the smaller |f| — the root is likelier there.
        if f_lo.abs() < f_hi.abs() {
            lo -= GROW * (hi - lo);
            f_lo = f(lo);
        } else {
            hi += GROW * (hi - lo);
            f_hi = f(hi);
        }
    }
    Err(MathError::NoBracket {
        what: "bracket_root",
        f_lo,
        f_hi,
    })
}

fn check_args(what: &'static str, lo: f64, hi: f64, tol: f64) -> Result<(), MathError> {
    if !lo.is_finite() || !hi.is_finite() || lo >= hi {
        return Err(MathError::domain(
            what,
            format!("need finite lo < hi, got [{lo}, {hi}]"),
        ));
    }
    if !(tol > 0.0) {
        return Err(MathError::domain(
            what,
            format!("tolerance must be positive, got {tol}"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f_cubic(x: f64) -> f64 {
        (x - 1.0) * (x + 2.0) * (x - 5.0)
    }

    #[test]
    fn bisection_finds_simple_root() {
        let r = bisection(f_cubic, 0.0, 2.0, 1e-12, 200).unwrap();
        assert!((r.x - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bisection_endpoint_root_short_circuits() {
        let r = bisection(|x| x, 0.0, 1.0, 1e-12, 10).unwrap();
        assert_eq!(r.x, 0.0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn bisection_no_bracket() {
        assert!(matches!(
            bisection(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100),
            Err(MathError::NoBracket { .. })
        ));
    }

    #[test]
    fn bisection_rejects_bad_interval() {
        assert!(bisection(|x| x, 1.0, 0.0, 1e-12, 10).is_err());
        assert!(bisection(|x| x, 0.0, 1.0, -1.0, 10).is_err());
    }

    #[test]
    fn newton_quadratic_convergence() {
        let r = newton(|x| x * x - 612.0, |x| 2.0 * x, 10.0, 1e-14, 100).unwrap();
        assert!((r.x - 612f64.sqrt()).abs() < 1e-10);
        assert!(r.iterations < 12);
    }

    #[test]
    fn newton_zero_derivative_errors() {
        let r = newton(|x| x * x + 1.0, |_| 0.0, 1.0, 1e-12, 10);
        assert!(matches!(r, Err(MathError::NoConvergence { .. })));
    }

    #[test]
    fn secant_matches_newton() {
        let n = newton(|x| x.exp() - 3.0, |x| x.exp(), 1.0, 1e-13, 100).unwrap();
        let s = secant(|x| x.exp() - 3.0, 0.5, 1.5, 1e-13, 100).unwrap();
        assert!((n.x - s.x).abs() < 1e-9);
    }

    #[test]
    fn brent_beats_bisection_iterations() {
        // Interval chosen so no bisection midpoint lands on the root.
        let b = brent(f_cubic, 4.1, 6.3, 1e-13, 200).unwrap();
        let bi = bisection(f_cubic, 4.1, 6.3, 1e-13, 200).unwrap();
        assert!((b.x - 5.0).abs() < 1e-9);
        assert!(b.iterations <= bi.iterations);
    }

    #[test]
    fn brent_handles_flat_regions() {
        // Nearly flat away from the root.
        let f = |x: f64| (x - 2.0).powi(7);
        let r = brent(f, 0.0, 5.0, 1e-10, 300).unwrap();
        assert!(
            (r.x - 2.0).abs() < 1e-2,
            "multiple root located approximately"
        );
    }

    #[test]
    fn brent_no_bracket() {
        assert!(matches!(
            brent(|x| x * x + 0.5, -1.0, 1.0, 1e-12, 100),
            Err(MathError::NoBracket { .. })
        ));
    }

    #[test]
    fn bracket_root_expands_upward() {
        let (lo, hi) = bracket_root(|x| x - 100.0, 0.0, 1.0, 60).unwrap();
        assert!(lo < 100.0 && 100.0 < hi);
    }

    #[test]
    fn bracket_root_expands_downward() {
        let (lo, hi) = bracket_root(|x| x + 50.0, 0.0, 1.0, 60).unwrap();
        assert!(lo < -50.0 && -50.0 < hi);
    }

    #[test]
    fn bracket_root_gives_up() {
        assert!(matches!(
            bracket_root(|x| x * x + 1.0, 0.0, 1.0, 5),
            Err(MathError::NoBracket { .. })
        ));
    }

    #[test]
    fn recovery_time_style_problem() {
        // P(t) = 1 − 0.04·exp(−((t−12)/8)²); find when P returns to 0.995
        // after the trough at t = 12.
        let level = 0.995;
        let p = |t: f64| 1.0 - 0.04 * (-((t - 12.0) / 8.0).powi(2)).exp() - level;
        let r = brent(p, 12.0, 60.0, 1e-12, 200).unwrap();
        assert!(r.x > 12.0);
        // Check P(r.x) == level.
        let val = 1.0 - 0.04 * (-((r.x - 12.0) / 8.0).powi(2)).exp();
        assert!((val - level).abs() < 1e-10);
    }
}
