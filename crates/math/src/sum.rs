//! Compensated and pairwise summation.
//!
//! SSE/PMSE accumulations (paper Eq. 9–10) sum many numbers that span
//! orders of magnitude (squared residuals of 1e-8 next to 1e-2). Naive
//! summation loses digits; the Neumaier variant of Kahan summation keeps
//! the accumulated error at machine epsilon independent of length.

/// Running compensated sum (Neumaier's improved Kahan algorithm).
///
/// # Examples
///
/// ```
/// use resilience_math::sum::CompensatedSum;
/// let mut s = CompensatedSum::new();
/// s.add(1e16);
/// s.add(1.0);
/// s.add(-1e16);
/// assert_eq!(s.value(), 1.0); // naive summation would return 0.0
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompensatedSum {
    sum: f64,
    compensation: f64,
}

impl CompensatedSum {
    /// Creates an empty sum.
    #[must_use]
    pub fn new() -> Self {
        CompensatedSum::default()
    }

    /// Adds one term.
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl FromIterator<f64> for CompensatedSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = CompensatedSum::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for CompensatedSum {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Compensated sum of a slice.
///
/// # Examples
///
/// ```
/// use resilience_math::sum::compensated_sum;
/// assert_eq!(compensated_sum(&[1e16, 1.0, -1e16]), 1.0);
/// ```
#[must_use]
pub fn compensated_sum(values: &[f64]) -> f64 {
    values.iter().copied().collect::<CompensatedSum>().value()
}

/// Pairwise (cascade) summation: `O(log n)` error growth with no
/// per-element overhead, used where the full Neumaier machinery is
/// overkill.
///
/// # Examples
///
/// ```
/// use resilience_math::sum::pairwise_sum;
/// let v: Vec<f64> = (1..=100).map(f64::from).collect();
/// assert_eq!(pairwise_sum(&v), 5050.0);
/// ```
#[must_use]
pub fn pairwise_sum(values: &[f64]) -> f64 {
    const BASE: usize = 32;
    if values.len() <= BASE {
        return values.iter().sum();
    }
    let mid = values.len() / 2;
    pairwise_sum(&values[..mid]) + pairwise_sum(&values[mid..])
}

/// Compensated sum of squared residuals `Σ (a_i − b_i)²` — the exact shape
/// of the paper's Eq. 9.
///
/// # Panics
///
/// Panics when the slices differ in length.
///
/// # Examples
///
/// ```
/// use resilience_math::sum::sum_squared_diff;
/// assert_eq!(sum_squared_diff(&[1.0, 2.0], &[0.0, 0.0]), 5.0);
/// ```
#[must_use]
pub fn sum_squared_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sum_squared_diff: length mismatch");
    let mut s = CompensatedSum::new();
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        s.add(d * d);
    }
    s.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_recovers_cancellation() {
        let mut s = CompensatedSum::new();
        for _ in 0..10 {
            s.add(0.1);
        }
        assert!((s.value() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn kahan_extreme_magnitudes() {
        assert_eq!(compensated_sum(&[1e100, 1.0, -1e100]), 1.0);
        assert_eq!(compensated_sum(&[1.0, 1e100, 1.0, -1e100]), 2.0);
    }

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(compensated_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[]), 0.0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: CompensatedSum = [1.0, 2.0, 3.0].into_iter().collect();
        s.extend([4.0, 5.0]);
        assert_eq!(s.value(), 15.0);
    }

    #[test]
    fn pairwise_matches_exact_on_integers() {
        let v: Vec<f64> = (1..=1000).map(f64::from).collect();
        assert_eq!(pairwise_sum(&v), 500_500.0);
    }

    #[test]
    fn pairwise_beats_naive_on_ill_conditioned() {
        // Alternating large/small values.
        let mut v = Vec::new();
        for i in 0..10_000 {
            v.push(if i % 2 == 0 { 1e10 } else { 0.123_456_789 });
        }
        let exact = 5_000.0 * 1e10 + 5_000.0 * 0.123_456_789;
        let pw = pairwise_sum(&v);
        assert!((pw - exact).abs() / exact < 1e-12);
    }

    #[test]
    fn sse_shape() {
        let observed = [1.0, 0.99, 0.98, 0.99];
        let predicted = [1.0, 0.985, 0.982, 0.991];
        let want = 0.0 + 0.005f64.powi(2) + 0.002f64.powi(2) + 0.001f64.powi(2);
        assert!((sum_squared_diff(&observed, &predicted) - want).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sse_length_mismatch_panics() {
        let _ = sum_squared_diff(&[1.0], &[1.0, 2.0]);
    }
}
