//! Small dense linear algebra: column-major matrices with LU, Cholesky,
//! and QR solvers.
//!
//! The Levenberg–Marquardt optimizer in `resilience-optim` solves the
//! normal equations `(JᵀJ + λ diag(JᵀJ)) δ = Jᵀr` at every step; the
//! resilience models have 2–5 parameters, so a simple dense implementation
//! with partial pivoting is both sufficient and easy to audit.

use crate::MathError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Shape`] when `data.len() != rows * cols`.
    ///
    /// # Examples
    ///
    /// ```
    /// use resilience_math::linalg::Matrix;
    /// let m = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0])?;
    /// assert_eq!(m[(1, 0)], 3.0);
    /// # Ok::<(), resilience_math::MathError>(())
    /// ```
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MathError> {
        if rows == 0 || cols == 0 || data.len() != rows * cols {
            return Err(MathError::shape(
                "Matrix::from_rows",
                format!(
                    "{rows}x{cols} needs {} entries, got {}",
                    rows * cols,
                    data.len()
                ),
            ));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Shape`] when the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, MathError> {
        if self.cols != other.rows {
            return Err(MathError::shape(
                "Matrix::matmul",
                format!(
                    "{}x{} · {}x{} inner dimensions disagree",
                    self.rows, self.cols, other.rows, other.cols
                ),
            ));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Shape`] when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, MathError> {
        if v.len() != self.cols {
            return Err(MathError::shape(
                "Matrix::matvec",
                format!(
                    "matrix has {} cols but vector has {} entries",
                    self.cols,
                    v.len()
                ),
            ));
        }
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Gram matrix `AᵀA` (always square, symmetric positive semidefinite).
    #[must_use]
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for j in 0..self.cols {
            for k in j..self.cols {
                let mut acc = 0.0;
                for i in 0..self.rows {
                    acc += self[(i, j)] * self[(i, k)];
                }
                g[(j, k)] = acc;
                g[(k, j)] = acc;
            }
        }
        g
    }

    /// `Aᵀ v` without forming the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Shape`] when `v.len() != rows`.
    pub fn transpose_matvec(&self, v: &[f64]) -> Result<Vec<f64>, MathError> {
        if v.len() != self.rows {
            return Err(MathError::shape(
                "Matrix::transpose_matvec",
                format!(
                    "matrix has {} rows but vector has {} entries",
                    self.rows,
                    v.len()
                ),
            ));
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[j] += self[(i, j)] * v[i];
            }
        }
        Ok(out)
    }

    /// Solves `self · x = b` by LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`MathError::Shape`] when the matrix is not square or `b` has the
    ///   wrong length.
    /// * [`MathError::Singular`] when a pivot underflows.
    ///
    /// # Examples
    ///
    /// ```
    /// use resilience_math::linalg::Matrix;
    /// let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 3.0])?;
    /// let x = a.solve(&[3.0, 5.0])?;
    /// assert!((x[0] - 0.8).abs() < 1e-12);
    /// assert!((x[1] - 1.4).abs() < 1e-12);
    /// # Ok::<(), resilience_math::MathError>(())
    /// ```
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MathError> {
        if self.rows != self.cols {
            return Err(MathError::shape(
                "Matrix::solve",
                format!("matrix is {}x{}, not square", self.rows, self.cols),
            ));
        }
        if b.len() != self.rows {
            return Err(MathError::shape(
                "Matrix::solve",
                format!(
                    "rhs has {} entries for an {}-dim system",
                    b.len(),
                    self.rows
                ),
            ));
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();
        // Forward elimination with partial pivoting.
        for col in 0..n {
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(MathError::Singular {
                    what: "Matrix::solve",
                    n,
                });
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in (col + 1)..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }

    /// Cholesky factor `L` with `self = L·Lᵀ` for a symmetric positive
    /// definite matrix; returns the lower-triangular factor.
    ///
    /// # Errors
    ///
    /// * [`MathError::Shape`] when the matrix is not square.
    /// * [`MathError::Singular`] when the matrix is not positive definite.
    pub fn cholesky(&self) -> Result<Matrix, MathError> {
        if self.rows != self.cols {
            return Err(MathError::shape(
                "Matrix::cholesky",
                format!("matrix is {}x{}, not square", self.rows, self.cols),
            ));
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut acc = self[(i, j)];
                for k in 0..j {
                    acc -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if acc <= 0.0 {
                        return Err(MathError::Singular {
                            what: "Matrix::cholesky",
                            n,
                        });
                    }
                    l[(i, j)] = acc.sqrt();
                } else {
                    l[(i, j)] = acc / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `self · x = b` for a symmetric positive definite matrix via
    /// Cholesky (twice as fast and more stable than LU for the LM normal
    /// equations).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Matrix::cholesky`] plus a shape check on `b`.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, MathError> {
        if b.len() != self.rows {
            return Err(MathError::shape(
                "Matrix::solve_spd",
                format!(
                    "rhs has {} entries for an {}-dim system",
                    b.len(),
                    self.rows
                ),
            ));
        }
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward solve L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for k in 0..i {
                acc -= l[(i, k)] * y[k];
            }
            y[i] = acc / l[(i, i)];
        }
        // Back solve Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for k in (i + 1)..n {
                acc -= l[(k, i)] * x[k];
            }
            x[i] = acc / l[(i, i)];
        }
        Ok(x)
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns `true` if every entry is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

/// Euclidean norm of a vector.
#[must_use]
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics when the slices differ in length (programmer error, not data
/// error — every call site controls both lengths).
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn identity_solves_to_rhs() {
        let i = Matrix::identity(3);
        let x = i.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_rejects_bad_shape() {
        assert!(Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_rows(0, 2, vec![]).is_err());
    }

    #[test]
    fn solve_3x3_known_system() {
        let a =
            Matrix::from_rows(3, 3, vec![4.0, -2.0, 1.0, -2.0, 4.0, -2.0, 1.0, -2.0, 4.0]).unwrap();
        let b = [11.0, -16.0, 17.0];
        let x = a.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (got, want) in back.iter().zip(b) {
            assert!(approx_eq(*got, want, 1e-10, 1e-10));
        }
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal: naive elimination would fail.
        let a = Matrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(MathError::Singular { .. })
        ));
    }

    #[test]
    fn solve_rejects_non_square_and_bad_rhs() {
        let a = Matrix::zeros(2, 3);
        assert!(a.solve(&[1.0, 2.0]).is_err());
        let b = Matrix::identity(2);
        assert!(b.solve(&[1.0]).is_err());
    }

    #[test]
    fn matmul_shapes_and_values() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(1, 1)], 154.0);
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert_eq!(g, explicit);
    }

    #[test]
    fn transpose_matvec_matches_explicit() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let v = [1.0, 0.5, -1.0];
        let got = a.transpose_matvec(&v).unwrap();
        let want = a.transpose().matvec(&v).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(
            3,
            3,
            vec![25.0, 15.0, -5.0, 15.0, 18.0, 0.0, -5.0, 0.0, 11.0],
        )
        .unwrap();
        let l = a.cholesky().unwrap();
        let back = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx_eq(back[(i, j)], a[(i, j)], 1e-10, 1e-10));
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(a.cholesky(), Err(MathError::Singular { .. })));
    }

    #[test]
    fn solve_spd_matches_lu() {
        let a = Matrix::from_rows(
            3,
            3,
            vec![25.0, 15.0, -5.0, 15.0, 18.0, 0.0, -5.0, 0.0, 11.0],
        )
        .unwrap();
        let b = [1.0, 2.0, 3.0];
        let x1 = a.solve(&b).unwrap();
        let x2 = a.solve_spd(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!(approx_eq(*u, *v, 1e-10, 1e-10));
        }
    }

    #[test]
    fn norm_and_dot() {
        assert!(approx_eq(norm2(&[3.0, 4.0]), 5.0, 1e-15, 0.0));
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn frobenius_and_finiteness() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(approx_eq(a.frobenius_norm(), 5.0, 1e-12, 0.0));
        assert!(a.is_finite());
        let mut b = a.clone();
        b[(0, 0)] = f64::NAN;
        assert!(!b.is_finite());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::identity(2);
        let _ = a[(2, 0)];
    }
}
