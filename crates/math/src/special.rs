//! Special functions: gamma family, error function family, beta family,
//! and digamma.
//!
//! Implementations follow the classical algorithms (Lanczos approximation
//! for `ln Γ`, series/continued-fraction split for the incomplete gamma and
//! beta functions, Abramowitz–Stegun-style rational approximations for the
//! error function inverses). Accuracies are on the order of 1e-12 or better
//! over the domains the workspace exercises, and each routine is unit-tested
//! against high-precision reference values.

use crate::MathError;

/// Lanczos coefficients (g = 7, n = 9), Boost/GSL-compatible.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for small arguments.
/// Absolute error is below 1e-12 for `x ∈ (0, 1e10)`.
///
/// # Errors
///
/// Returns [`MathError::Domain`] when `x ≤ 0` or `x` is not finite.
///
/// # Examples
///
/// ```
/// use resilience_math::special::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0)?.exp() - 24.0).abs() < 1e-10);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn ln_gamma(x: f64) -> Result<f64, MathError> {
    if !x.is_finite() || x <= 0.0 {
        return Err(MathError::domain(
            "ln_gamma",
            format!("x must be finite and positive, got {x}"),
        ));
    }
    Ok(ln_gamma_unchecked(x))
}

/// `ln Γ(x)` without the domain check; callers must guarantee `x > 0`.
fn ln_gamma_unchecked(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma_unchecked(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The gamma function `Γ(x)` for `x > 0`.
///
/// # Errors
///
/// Returns [`MathError::Domain`] when `x ≤ 0` or `x` is not finite.
///
/// # Examples
///
/// ```
/// use resilience_math::special::gamma;
/// assert!((gamma(0.5)? - std::f64::consts::PI.sqrt()).abs() < 1e-12);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn gamma(x: f64) -> Result<f64, MathError> {
    Ok(ln_gamma(x)?.exp())
}

/// The error function `erf(x)`, accurate to ~1e-13 over the real line.
///
/// Computed from the regularized incomplete gamma function via
/// `erf(x) = sign(x) · P(1/2, x²)`.
///
/// # Examples
///
/// ```
/// use resilience_math::special::erf;
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// assert_eq!(erf(0.0), 0.0);
/// ```
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    if x.is_nan() {
        return f64::NAN;
    }
    let p = reg_gamma_p_unchecked(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`, computed
/// without cancellation for large positive `x`.
///
/// # Examples
///
/// ```
/// use resilience_math::special::erfc;
/// assert!((erfc(0.0) - 1.0).abs() < 1e-15);
/// assert!(erfc(10.0) > 0.0 && erfc(10.0) < 1e-40);
/// ```
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x <= 0.0 {
        // No cancellation on this side: erf(x) ≤ 0 so 1 − erf(x) ≥ 1.
        return 1.0 - erf(x);
    }
    // For x > 0 use Q(1/2, x²) which avoids the 1 − erf cancellation.
    reg_gamma_q_unchecked(0.5, x * x)
}

/// Inverse of the error function: returns `x` with `erf(x) = p` for
/// `p ∈ (−1, 1)`.
///
/// Uses the Giles (2010) polynomial approximation refined by two Newton
/// steps, giving ~1e-14 relative accuracy.
///
/// # Errors
///
/// Returns [`MathError::Domain`] when `p ∉ (−1, 1)`.
///
/// # Examples
///
/// ```
/// use resilience_math::special::{erf, inv_erf};
/// let x = inv_erf(0.5)?;
/// assert!((erf(x) - 0.5).abs() < 1e-13);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn inv_erf(p: f64) -> Result<f64, MathError> {
    if !(p > -1.0 && p < 1.0) {
        return Err(MathError::domain(
            "inv_erf",
            format!("p must be in (-1, 1), got {p}"),
        ));
    }
    if p == 0.0 {
        return Ok(0.0);
    }
    let target = p.abs();
    // Bracket the root of erf(x) = target: erf(6) = 1 − 2e-17, so [0, 6]
    // covers every representable target < 1; expand defensively anyway.
    let mut hi = 1.0;
    while erf(hi) < target && hi < 64.0 {
        hi *= 2.0;
    }
    let root = crate::roots::brent(|x| erf(x) - target, 0.0, hi, 1e-15, 200)
        .map_err(|_| MathError::domain("inv_erf", format!("failed to invert erf at p = {p}")))?;
    let mut x = root.x;
    // Newton polish: f(x) = erf(x) − target, f'(x) = 2/√π · exp(−x²).
    let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
    for _ in 0..2 {
        let err = erf(x) - target;
        let deriv = two_over_sqrt_pi * (-x * x).exp();
        if deriv == 0.0 {
            break;
        }
        x -= err / deriv;
    }
    Ok(if p < 0.0 { -x } else { x })
}

/// Regularized lower incomplete gamma function
/// `P(a, x) = γ(a, x) / Γ(a)` for `a > 0`, `x ≥ 0`.
///
/// Uses the power-series expansion for `x < a + 1` and the continued
/// fraction for the complement otherwise.
///
/// # Errors
///
/// Returns [`MathError::Domain`] when `a ≤ 0` or `x < 0`.
///
/// # Examples
///
/// ```
/// use resilience_math::special::reg_gamma_p;
/// // P(1, x) = 1 − e^{−x}
/// let x = 1.3;
/// assert!((reg_gamma_p(1.0, x)? - (1.0 - (-x).exp())).abs() < 1e-13);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn reg_gamma_p(a: f64, x: f64) -> Result<f64, MathError> {
    check_gamma_args("reg_gamma_p", a, x)?;
    Ok(reg_gamma_p_unchecked(a, x))
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// # Errors
///
/// Returns [`MathError::Domain`] when `a ≤ 0` or `x < 0`.
///
/// # Examples
///
/// ```
/// use resilience_math::special::{reg_gamma_p, reg_gamma_q};
/// let (a, x) = (2.5, 1.7);
/// assert!((reg_gamma_p(a, x)? + reg_gamma_q(a, x)? - 1.0).abs() < 1e-12);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn reg_gamma_q(a: f64, x: f64) -> Result<f64, MathError> {
    check_gamma_args("reg_gamma_q", a, x)?;
    Ok(reg_gamma_q_unchecked(a, x))
}

fn check_gamma_args(what: &'static str, a: f64, x: f64) -> Result<(), MathError> {
    if !(a > 0.0) || !a.is_finite() {
        return Err(MathError::domain(
            what,
            format!("shape a must be finite and positive, got {a}"),
        ));
    }
    if !(x >= 0.0) {
        return Err(MathError::domain(
            what,
            format!("x must be non-negative, got {x}"),
        ));
    }
    Ok(())
}

fn reg_gamma_p_unchecked(a: f64, x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

fn reg_gamma_q_unchecked(a: f64, x: f64) -> f64 {
    if x == 0.0 {
        1.0
    } else if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of P(a, x), valid and fast for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let ln_ga = ln_gamma_unchecked(a);
    let mut ap = a;
    let mut term = 1.0 / a;
    let mut sum = term;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (a * x.ln() - x - ln_ga).exp()
}

/// Continued-fraction evaluation of Q(a, x) (modified Lentz), valid for
/// x ≥ a + 1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let ln_ga = ln_gamma_unchecked(a);
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (a * x.ln() - x - ln_ga).exp() * h
}

/// Natural logarithm of the beta function,
/// `ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b)`.
///
/// # Errors
///
/// Returns [`MathError::Domain`] when `a ≤ 0` or `b ≤ 0`.
///
/// # Examples
///
/// ```
/// use resilience_math::special::ln_beta;
/// // B(1, 1) = 1
/// assert!(ln_beta(1.0, 1.0)?.abs() < 1e-14);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn ln_beta(a: f64, b: f64) -> Result<f64, MathError> {
    if !(a > 0.0) || !(b > 0.0) {
        return Err(MathError::domain(
            "ln_beta",
            format!("a and b must be positive, got a={a}, b={b}"),
        ));
    }
    Ok(ln_gamma_unchecked(a) + ln_gamma_unchecked(b) - ln_gamma_unchecked(a + b))
}

/// Regularized incomplete beta function `I_x(a, b)` for `x ∈ [0, 1]`,
/// `a, b > 0`.
///
/// Evaluated with the standard continued fraction and the symmetry
/// relation `I_x(a,b) = 1 − I_{1−x}(b,a)`.
///
/// # Errors
///
/// Returns [`MathError::Domain`] when `x ∉ [0, 1]` or `a, b ≤ 0`.
///
/// # Examples
///
/// ```
/// use resilience_math::special::reg_inc_beta;
/// // I_x(1, 1) = x
/// assert!((reg_inc_beta(0.3, 1.0, 1.0)? - 0.3).abs() < 1e-13);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn reg_inc_beta(x: f64, a: f64, b: f64) -> Result<f64, MathError> {
    if !(a > 0.0) || !(b > 0.0) {
        return Err(MathError::domain(
            "reg_inc_beta",
            format!("a and b must be positive, got a={a}, b={b}"),
        ));
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(MathError::domain(
            "reg_inc_beta",
            format!("x must be in [0, 1], got {x}"),
        ));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)?;
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(front * beta_cf(x, a, b) / a)
    } else {
        let ln_front_sym = b * (1.0 - x).ln() + a * x.ln() - ln_beta(b, a)?;
        Ok(1.0 - ln_front_sym.exp() * beta_cf(1.0 - x, b, a) / b)
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses the asymptotic expansion after shifting the argument above 6.
///
/// # Errors
///
/// Returns [`MathError::Domain`] when `x ≤ 0`.
///
/// # Examples
///
/// ```
/// use resilience_math::special::digamma;
/// // ψ(1) = −γ (Euler–Mascheroni)
/// assert!((digamma(1.0)? + 0.5772156649015329).abs() < 1e-12);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn digamma(x: f64) -> Result<f64, MathError> {
    if !(x > 0.0) || !x.is_finite() {
        return Err(MathError::domain(
            "digamma",
            format!("x must be finite and positive, got {x}"),
        ));
    }
    let mut x = x;
    let mut result = 0.0;
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion with Bernoulli terms through x⁻¹⁰.
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result += x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2
                    * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))));
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    const TOL: f64 = 1e-11;

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n−1)!
        let factorials = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (i, &f) in factorials.iter().enumerate() {
            let x = (i + 1) as f64;
            assert!(
                approx_eq(ln_gamma(x).unwrap(), f64::ln(f), TOL, TOL),
                "ln_gamma({x})"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integers() {
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!(approx_eq(gamma(0.5).unwrap(), sqrt_pi, TOL, TOL));
        assert!(approx_eq(gamma(1.5).unwrap(), 0.5 * sqrt_pi, TOL, TOL));
        assert!(approx_eq(gamma(2.5).unwrap(), 0.75 * sqrt_pi, TOL, TOL));
    }

    #[test]
    fn ln_gamma_small_argument_reflection() {
        // Γ(0.1) = 9.513507698668732...
        assert!(approx_eq(
            gamma(0.1).unwrap(),
            9.513_507_698_668_732,
            1e-10,
            1e-10
        ));
    }

    #[test]
    fn ln_gamma_large_argument() {
        // Stirling series with the 1/(12x) correction gives
        // ln Γ(100.5) ≈ 361.43554047 to ~1e-8.
        assert!(approx_eq(
            ln_gamma(100.5).unwrap(),
            361.435_540_47,
            1e-6,
            1e-10
        ));
    }

    #[test]
    fn ln_gamma_rejects_nonpositive() {
        assert!(ln_gamma(0.0).is_err());
        assert!(ln_gamma(-1.5).is_err());
        assert!(ln_gamma(f64::NAN).is_err());
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun.
        let cases = [
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (2.0, 0.995_322_265_018_952_7),
            (3.0, 0.999_977_909_503_001_4),
        ];
        for (x, want) in cases {
            assert!(approx_eq(erf(x), want, 1e-12, 1e-12), "erf({x})");
            assert!(approx_eq(erf(-x), -want, 1e-12, 1e-12), "erf(-{x})");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[0.0, 0.3, 1.0, 2.5, 5.0] {
            assert!(approx_eq(erfc(x), 1.0 - erf(x), 1e-12, 1e-10), "erfc({x})");
        }
    }

    #[test]
    fn erfc_large_argument_no_underflow_to_garbage() {
        let v = erfc(8.0);
        // erfc(8) ≈ 1.1224297172982928e-29
        assert!(approx_eq(v, 1.122_429_717_298_292_8e-29, 0.0, 1e-8));
    }

    #[test]
    fn inv_erf_roundtrip() {
        for &p in &[-0.999, -0.9, -0.5, -0.1, 0.1, 0.5, 0.9, 0.999] {
            let x = inv_erf(p).unwrap();
            assert!(approx_eq(erf(x), p, 1e-13, 1e-12), "roundtrip p={p}");
        }
    }

    #[test]
    fn inv_erf_zero() {
        assert_eq!(inv_erf(0.0).unwrap(), 0.0);
    }

    #[test]
    fn inv_erf_rejects_out_of_range() {
        assert!(inv_erf(1.0).is_err());
        assert!(inv_erf(-1.0).is_err());
        assert!(inv_erf(1.5).is_err());
        assert!(inv_erf(f64::NAN).is_err());
    }

    #[test]
    fn reg_gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.0, 0.1, 1.0, 3.0, 10.0] {
            assert!(
                approx_eq(reg_gamma_p(1.0, x).unwrap(), 1.0 - (-x).exp(), 1e-13, 1e-12),
                "P(1, {x})"
            );
        }
    }

    #[test]
    fn reg_gamma_p_q_sum_to_one() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.01, 0.5, 1.0, 5.0, 30.0, 100.0] {
                let p = reg_gamma_p(a, x).unwrap();
                let q = reg_gamma_q(a, x).unwrap();
                assert!(approx_eq(p + q, 1.0, 1e-12, 1e-12), "a={a}, x={x}");
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn reg_gamma_p_monotone_in_x() {
        let a = 2.3;
        let mut prev = 0.0;
        for i in 1..200 {
            let x = i as f64 * 0.1;
            let p = reg_gamma_p(a, x).unwrap();
            assert!(p >= prev, "P(a, x) must be nondecreasing");
            prev = p;
        }
    }

    #[test]
    fn reg_gamma_reference_values() {
        // From mpmath: P(3, 2) = 0.32332358381693654.
        assert!(approx_eq(
            reg_gamma_p(3.0, 2.0).unwrap(),
            0.323_323_583_816_936_54,
            1e-12,
            1e-12
        ));
        // Q(0.5, 4) = erfc(2) = 0.004677734981063127.
        assert!(approx_eq(
            reg_gamma_q(0.5, 4.0).unwrap(),
            0.004_677_734_981_063_127,
            1e-13,
            1e-10
        ));
    }

    #[test]
    fn reg_gamma_rejects_bad_args() {
        assert!(reg_gamma_p(0.0, 1.0).is_err());
        assert!(reg_gamma_p(-1.0, 1.0).is_err());
        assert!(reg_gamma_p(1.0, -0.5).is_err());
        assert!(reg_gamma_q(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn ln_beta_symmetry_and_identity() {
        assert!(approx_eq(
            ln_beta(2.0, 3.0).unwrap(),
            ln_beta(3.0, 2.0).unwrap(),
            1e-14,
            0.0
        ));
        // B(2, 3) = 1/12.
        assert!(approx_eq(
            ln_beta(2.0, 3.0).unwrap().exp(),
            1.0 / 12.0,
            1e-13,
            1e-12
        ));
    }

    #[test]
    fn reg_inc_beta_uniform_case() {
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!(approx_eq(
                reg_inc_beta(x, 1.0, 1.0).unwrap(),
                x,
                1e-13,
                1e-12
            ));
        }
    }

    #[test]
    fn reg_inc_beta_symmetry() {
        let (a, b, x) = (2.5, 4.0, 0.3);
        let lhs = reg_inc_beta(x, a, b).unwrap();
        let rhs = 1.0 - reg_inc_beta(1.0 - x, b, a).unwrap();
        assert!(approx_eq(lhs, rhs, 1e-12, 1e-12));
    }

    #[test]
    fn reg_inc_beta_reference_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.3}(2, 5) = 0.579825 exactly
        // (binomial expansion: Σ_{j=2}^{6} C(6,j) 0.3^j 0.7^{6−j}).
        assert!(approx_eq(
            reg_inc_beta(0.5, 2.0, 2.0).unwrap(),
            0.5,
            1e-13,
            0.0
        ));
        assert!(approx_eq(
            reg_inc_beta(0.3, 2.0, 5.0).unwrap(),
            0.579_825,
            1e-12,
            1e-12
        ));
    }

    #[test]
    fn reg_inc_beta_rejects_bad_args() {
        assert!(reg_inc_beta(-0.1, 1.0, 1.0).is_err());
        assert!(reg_inc_beta(1.1, 1.0, 1.0).is_err());
        assert!(reg_inc_beta(0.5, 0.0, 1.0).is_err());
        assert!(reg_inc_beta(0.5, 1.0, -2.0).is_err());
    }

    #[test]
    fn digamma_recurrence() {
        // ψ(x+1) = ψ(x) + 1/x.
        for &x in &[0.5, 1.0, 2.3, 7.7] {
            let lhs = digamma(x + 1.0).unwrap();
            let rhs = digamma(x).unwrap() + 1.0 / x;
            assert!(approx_eq(lhs, rhs, 1e-11, 1e-11), "x={x}");
        }
    }

    #[test]
    fn digamma_rejects_nonpositive() {
        assert!(digamma(0.0).is_err());
        assert!(digamma(-3.0).is_err());
    }
}
