//! Numerical foundations for the `predictive-resilience` workspace.
//!
//! This crate is a small, dependency-free numerics toolbox written from
//! scratch for the reproduction of *Predictive Resilience Modeling*
//! (Silva et al., RWS 2022). It provides exactly the machinery the higher
//! layers need:
//!
//! * [`special`] — special functions (`ln Γ`, `erf`, regularized incomplete
//!   gamma and beta functions, digamma) used by the probability
//!   distributions in `resilience-stats`.
//! * [`quad`] — one-dimensional quadrature (trapezoid, Simpson, adaptive
//!   Simpson, Gauss–Legendre, Romberg) used to evaluate the interval-based
//!   resilience metrics when no closed form exists.
//! * [`roots`] — scalar root finding (bisection, Newton, secant, Brent)
//!   used for quantile inversion and recovery-time solving.
//! * [`poly`] — polynomial evaluation and low-degree root formulas used by
//!   the quadratic bathtub model.
//! * [`linalg`] — small dense matrices with LU / Cholesky / QR solvers used
//!   by the Levenberg–Marquardt optimizer in `resilience-optim`.
//! * [`sum`] — compensated (Kahan/Neumaier) and pairwise summation used to
//!   keep goodness-of-fit accumulations stable.
//! * [`interp`] — piecewise-linear interpolation over sampled curves.
//!
//! # Examples
//!
//! ```
//! use resilience_math::quad::adaptive_simpson;
//!
//! // ∫₀^π sin t dt = 2
//! let area = adaptive_simpson(f64::sin, 0.0, std::f64::consts::PI, 1e-12, 30)?;
//! assert!((area - 2.0).abs() < 1e-10);
//! # Ok::<(), resilience_math::MathError>(())
//! ```

// `!(x > 0.0)`-style comparisons are used deliberately throughout this
// crate: unlike `x <= 0.0`, they also reject NaN, which is exactly the
// validation semantics parameter checks need.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod error;
pub mod interp;
pub mod linalg;
pub mod poly;
pub mod quad;
pub mod roots;
pub mod special;
pub mod sum;

pub use error::MathError;

/// Machine-epsilon-scale tolerance used as a default across the crate.
pub const EPS: f64 = f64::EPSILON;

/// Returns `true` when two floats agree to within `abs_tol` or `rel_tol`
/// (whichever is looser), treating NaN as never close.
///
/// This is the comparison helper used throughout the workspace's tests.
///
/// # Examples
///
/// ```
/// use resilience_math::approx_eq;
/// assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-12, 1e-12));
/// assert!(!approx_eq(1.0, 1.1, 1e-12, 1e-12));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, abs_tol: f64, rel_tol: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    if a == b {
        return true;
    }
    if a.is_infinite() || b.is_infinite() {
        return false;
    }
    let diff = (a - b).abs();
    diff <= abs_tol || diff <= rel_tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_exact() {
        assert!(approx_eq(1.5, 1.5, 0.0, 0.0));
    }

    #[test]
    fn approx_eq_abs_tolerance() {
        assert!(approx_eq(0.0, 1e-13, 1e-12, 0.0));
    }

    #[test]
    fn approx_eq_rel_tolerance() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 0.0, 1e-11));
    }

    #[test]
    fn approx_eq_rejects_nan() {
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0, 1.0));
        assert!(!approx_eq(1.0, f64::NAN, 1.0, 1.0));
    }

    #[test]
    fn approx_eq_infinities() {
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 0.0, 0.0));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY, 1e300, 1.0));
    }
}
