//! Error type shared by the numerical routines in this crate.

use std::fmt;

/// Errors produced by the numerical routines in `resilience-math`.
///
/// Every fallible public function in this crate returns
/// `Result<_, MathError>`. The variants carry enough context to diagnose
/// which precondition failed without capturing large payloads.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MathError {
    /// An argument was outside the mathematical domain of the function
    /// (e.g. `ln_gamma(0.0)`, a negative variance, an empty interval).
    Domain {
        /// Name of the offending routine.
        what: &'static str,
        /// Human-readable description of the violated precondition.
        detail: String,
    },
    /// An iterative method exhausted its iteration budget before reaching
    /// the requested tolerance.
    NoConvergence {
        /// Name of the offending routine.
        what: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Best error estimate at the time of failure, if meaningful.
        last_error: f64,
    },
    /// A root-bracketing method was given an interval whose endpoints do
    /// not bracket a sign change.
    NoBracket {
        /// Name of the offending routine.
        what: &'static str,
        /// Function value at the lower endpoint.
        f_lo: f64,
        /// Function value at the upper endpoint.
        f_hi: f64,
    },
    /// A linear system was singular (or numerically indistinguishable from
    /// singular) and could not be solved.
    Singular {
        /// Name of the offending routine.
        what: &'static str,
        /// Size of the system.
        n: usize,
    },
    /// A function evaluation produced a NaN or infinity where a finite
    /// value was required.
    NonFinite {
        /// Name of the offending routine.
        what: &'static str,
        /// The point at which the non-finite value was observed.
        at: f64,
    },
    /// Dimension mismatch between inputs (e.g. matrix shapes).
    Shape {
        /// Name of the offending routine.
        what: &'static str,
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::Domain { what, detail } => {
                write!(f, "{what}: domain error: {detail}")
            }
            MathError::NoConvergence {
                what,
                iterations,
                last_error,
            } => write!(
                f,
                "{what}: failed to converge after {iterations} iterations (last error {last_error:e})"
            ),
            MathError::NoBracket { what, f_lo, f_hi } => write!(
                f,
                "{what}: interval does not bracket a root (f(lo) = {f_lo:e}, f(hi) = {f_hi:e})"
            ),
            MathError::Singular { what, n } => {
                write!(f, "{what}: {n}x{n} system is singular")
            }
            MathError::NonFinite { what, at } => {
                write!(f, "{what}: non-finite function value at t = {at}")
            }
            MathError::Shape { what, detail } => {
                write!(f, "{what}: shape mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for MathError {}

impl MathError {
    /// Convenience constructor for [`MathError::Domain`].
    pub fn domain(what: &'static str, detail: impl Into<String>) -> Self {
        MathError::Domain {
            what,
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`MathError::Shape`].
    pub fn shape(what: &'static str, detail: impl Into<String>) -> Self {
        MathError::Shape {
            what,
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_domain() {
        let e = MathError::domain("ln_gamma", "x must be positive");
        assert_eq!(e.to_string(), "ln_gamma: domain error: x must be positive");
    }

    #[test]
    fn display_no_convergence() {
        let e = MathError::NoConvergence {
            what: "brent",
            iterations: 100,
            last_error: 1e-3,
        };
        let s = e.to_string();
        assert!(s.contains("brent"));
        assert!(s.contains("100"));
    }

    #[test]
    fn display_no_bracket() {
        let e = MathError::NoBracket {
            what: "bisection",
            f_lo: 1.0,
            f_hi: 2.0,
        };
        assert!(e.to_string().contains("does not bracket"));
    }

    #[test]
    fn display_singular() {
        let e = MathError::Singular { what: "lu", n: 3 };
        assert_eq!(e.to_string(), "lu: 3x3 system is singular");
    }

    #[test]
    fn display_non_finite() {
        let e = MathError::NonFinite {
            what: "simpson",
            at: 0.5,
        };
        assert!(e.to_string().contains("non-finite"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(MathError::domain("f", "bad"));
        assert!(e.to_string().contains("bad"));
    }
}
