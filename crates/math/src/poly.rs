//! Polynomials and closed-form low-degree root formulas.
//!
//! The quadratic bathtub model (paper Eq. 1–3) is a polynomial hazard: its
//! recovery time (Eq. 2) is a quadratic root, its area (Eq. 3) a cubic
//! antiderivative. This module provides a small dense polynomial type plus
//! numerically careful quadratic and cubic solvers.

use crate::MathError;

/// A dense univariate polynomial with coefficients in ascending order:
/// `coeffs[k]` multiplies `x^k`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending coefficients, trimming trailing
    /// zeros so that `degree` is meaningful.
    ///
    /// # Examples
    ///
    /// ```
    /// use resilience_math::poly::Polynomial;
    /// let p = Polynomial::new(vec![1.0, 0.0, 3.0]); // 1 + 3x²
    /// assert_eq!(p.degree(), 2);
    /// ```
    #[must_use]
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Polynomial { coeffs }
    }

    /// The zero polynomial.
    #[must_use]
    pub fn zero() -> Self {
        Polynomial { coeffs: vec![0.0] }
    }

    /// Degree of the polynomial (0 for constants, including zero).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Ascending coefficient slice.
    #[must_use]
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Evaluates the polynomial at `x` by Horner's scheme.
    ///
    /// # Examples
    ///
    /// ```
    /// use resilience_math::poly::Polynomial;
    /// let p = Polynomial::new(vec![2.0, -3.0, 1.0]); // (x−1)(x−2)
    /// assert_eq!(p.eval(1.0), 0.0);
    /// assert_eq!(p.eval(3.0), 2.0);
    /// ```
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Formal derivative.
    ///
    /// # Examples
    ///
    /// ```
    /// use resilience_math::poly::Polynomial;
    /// let p = Polynomial::new(vec![0.0, 0.0, 1.0]); // x²
    /// assert_eq!(p.derivative().coeffs(), &[0.0, 2.0]);
    /// ```
    #[must_use]
    pub fn derivative(&self) -> Polynomial {
        if self.coeffs.len() <= 1 {
            return Polynomial::zero();
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(k, &c)| k as f64 * c)
            .collect();
        Polynomial::new(coeffs)
    }

    /// Antiderivative with integration constant `c0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use resilience_math::poly::Polynomial;
    /// let p = Polynomial::new(vec![0.0, 2.0]); // 2x
    /// let int = p.antiderivative(1.0);          // x² + 1
    /// assert_eq!(int.eval(3.0), 10.0);
    /// ```
    #[must_use]
    pub fn antiderivative(&self, c0: f64) -> Polynomial {
        let mut coeffs = Vec::with_capacity(self.coeffs.len() + 1);
        coeffs.push(c0);
        for (k, &c) in self.coeffs.iter().enumerate() {
            coeffs.push(c / (k as f64 + 1.0));
        }
        Polynomial::new(coeffs)
    }

    /// Definite integral over `[a, b]` via the antiderivative.
    #[must_use]
    pub fn integral(&self, a: f64, b: f64) -> f64 {
        let anti = self.antiderivative(0.0);
        anti.eval(b) - anti.eval(a)
    }
}

impl std::fmt::Display for Polynomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate() {
            if c == 0.0 && self.degree() > 0 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let mag = c.abs();
            match k {
                0 => write!(f, "{mag}")?,
                1 => write!(f, "{mag}·t")?,
                _ => write!(f, "{mag}·t^{k}")?,
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

/// Real roots of `a x² + b x + c = 0`, in ascending order.
///
/// Uses the numerically stable form that avoids catastrophic cancellation
/// when `b² ≫ 4ac`. A linear equation (`a == 0`) yields at most one root.
///
/// # Errors
///
/// Returns [`MathError::Domain`] when all coefficients are zero (the
/// identically-zero equation has no meaningful root set).
///
/// # Examples
///
/// ```
/// use resilience_math::poly::quadratic_roots;
/// let roots = quadratic_roots(1.0, -3.0, 2.0)?;
/// assert_eq!(roots, vec![1.0, 2.0]);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn quadratic_roots(a: f64, b: f64, c: f64) -> Result<Vec<f64>, MathError> {
    if a == 0.0 {
        if b == 0.0 {
            if c == 0.0 {
                return Err(MathError::domain(
                    "quadratic_roots",
                    "all coefficients are zero",
                ));
            }
            return Ok(vec![]);
        }
        return Ok(vec![-c / b]);
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return Ok(vec![]);
    }
    if disc == 0.0 {
        return Ok(vec![-b / (2.0 * a)]);
    }
    let sqrt_disc = disc.sqrt();
    // q = −(b + sign(b)·√disc)/2 avoids subtracting nearly equal numbers.
    let q = -0.5 * (b + b.signum() * sqrt_disc);
    let (r1, r2) = if b == 0.0 {
        let r = (disc.sqrt()) / (2.0 * a);
        (-r, r)
    } else {
        (q / a, c / q)
    };
    let mut roots = vec![r1, r2];
    roots.sort_by(|x, y| x.partial_cmp(y).expect("roots are finite"));
    Ok(roots)
}

/// Real roots of the cubic `a x³ + b x² + c x + d = 0`, ascending.
///
/// Uses the trigonometric method for three real roots and Cardano's
/// formula otherwise; degenerate leading coefficients fall back to
/// [`quadratic_roots`].
///
/// # Errors
///
/// Returns [`MathError::Domain`] when all coefficients are zero.
///
/// # Examples
///
/// ```
/// use resilience_math::poly::cubic_roots;
/// // (x−1)(x−2)(x−3) = x³ − 6x² + 11x − 6
/// let roots = cubic_roots(1.0, -6.0, 11.0, -6.0)?;
/// assert_eq!(roots.len(), 3);
/// assert!((roots[0] - 1.0).abs() < 1e-9);
/// assert!((roots[2] - 3.0).abs() < 1e-9);
/// # Ok::<(), resilience_math::MathError>(())
/// ```
pub fn cubic_roots(a: f64, b: f64, c: f64, d: f64) -> Result<Vec<f64>, MathError> {
    if a == 0.0 {
        return quadratic_roots(b, c, d);
    }
    // Depressed cubic t³ + pt + q with x = t − b/(3a).
    let shift = b / (3.0 * a);
    let p = (3.0 * a * c - b * b) / (3.0 * a * a);
    let q = (2.0 * b * b * b - 9.0 * a * b * c + 27.0 * a * a * d) / (27.0 * a * a * a);
    let disc = -(4.0 * p * p * p + 27.0 * q * q);
    let mut roots = if disc > 0.0 {
        // Three distinct real roots: trigonometric method.
        let m = 2.0 * (-p / 3.0).sqrt();
        let theta = (3.0 * q / (p * m)).acos() / 3.0;
        let two_pi_3 = 2.0 * std::f64::consts::PI / 3.0;
        vec![
            m * theta.cos() - shift,
            m * (theta - two_pi_3).cos() - shift,
            m * (theta + two_pi_3).cos() - shift,
        ]
    } else if p == 0.0 && q == 0.0 {
        vec![-shift]
    } else {
        // One real root: Cardano with stable cube roots.
        let half_q = q / 2.0;
        let inner = half_q * half_q + p * p * p / 27.0;
        let sqrt_inner = inner.max(0.0).sqrt();
        let u = (-half_q + sqrt_inner).cbrt();
        let v = (-half_q - sqrt_inner).cbrt();
        let mut rs = vec![u + v - shift];
        if inner == 0.0 && q != 0.0 {
            // Double root case.
            rs.push(-u - shift);
        }
        rs
    };
    roots.sort_by(|x, y| x.partial_cmp(y).expect("roots are finite"));
    roots.dedup_by(|x, y| (*x - *y).abs() < 1e-12 * (1.0 + x.abs()));
    Ok(roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn polynomial_trims_trailing_zeros() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn polynomial_zero_is_degree_zero() {
        assert_eq!(Polynomial::zero().degree(), 0);
        assert_eq!(Polynomial::new(vec![]).degree(), 0);
    }

    #[test]
    fn horner_matches_naive() {
        let p = Polynomial::new(vec![1.5, -2.0, 0.5, 3.0]);
        for &x in &[-2.0, -0.5, 0.0, 1.0, 2.5] {
            let naive = 1.5 - 2.0 * x + 0.5 * x * x + 3.0 * x * x * x;
            assert!(approx_eq(p.eval(x), naive, 1e-12, 1e-12));
        }
    }

    #[test]
    fn derivative_of_constant_is_zero() {
        let p = Polynomial::new(vec![42.0]);
        assert_eq!(p.derivative(), Polynomial::zero());
    }

    #[test]
    fn derivative_antiderivative_roundtrip() {
        let p = Polynomial::new(vec![1.0, 2.0, 3.0]);
        let back = p.antiderivative(7.0).derivative();
        assert_eq!(back, p);
    }

    #[test]
    fn integral_matches_quadrature() {
        // ∫₀² (α + βt + γt²) dt = αt + βt²/2 + γt³/3 — the paper's Eq. 3.
        let (alpha, beta, gamma) = (0.05, -0.01, 0.002);
        let p = Polynomial::new(vec![alpha, beta, gamma]);
        let exact = alpha * 2.0 + beta * 4.0 / 2.0 + gamma * 8.0 / 3.0;
        assert!(approx_eq(p.integral(0.0, 2.0), exact, 1e-14, 1e-13));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Polynomial::zero().to_string(), "0");
        let p = Polynomial::new(vec![1.0, -2.0, 3.0]);
        let s = p.to_string();
        assert!(s.contains("t^2"));
    }

    #[test]
    fn quadratic_two_roots() {
        let roots = quadratic_roots(2.0, -10.0, 12.0).unwrap();
        assert_eq!(roots.len(), 2);
        assert!(approx_eq(roots[0], 2.0, 1e-12, 0.0));
        assert!(approx_eq(roots[1], 3.0, 1e-12, 0.0));
    }

    #[test]
    fn quadratic_no_real_roots() {
        assert!(quadratic_roots(1.0, 0.0, 1.0).unwrap().is_empty());
    }

    #[test]
    fn quadratic_double_root() {
        let roots = quadratic_roots(1.0, -2.0, 1.0).unwrap();
        assert_eq!(roots, vec![1.0]);
    }

    #[test]
    fn quadratic_linear_fallback() {
        assert_eq!(quadratic_roots(0.0, 2.0, -4.0).unwrap(), vec![2.0]);
        assert!(quadratic_roots(0.0, 0.0, 3.0).unwrap().is_empty());
        assert!(quadratic_roots(0.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn quadratic_cancellation_stability() {
        // x² − 1e8·x + 1 = 0 has roots ~1e8 and ~1e-8; the naive formula
        // destroys the small one.
        let roots = quadratic_roots(1.0, -1e8, 1.0).unwrap();
        assert_eq!(roots.len(), 2);
        assert!(approx_eq(roots[0], 1e-8, 0.0, 1e-9));
        assert!(approx_eq(roots[1], 1e8, 0.0, 1e-12));
    }

    #[test]
    fn cubic_three_real_roots() {
        let roots = cubic_roots(1.0, -6.0, 11.0, -6.0).unwrap();
        assert_eq!(roots.len(), 3);
        for (got, want) in roots.iter().zip([1.0, 2.0, 3.0]) {
            assert!(approx_eq(*got, want, 1e-9, 1e-9));
        }
    }

    #[test]
    fn cubic_one_real_root() {
        // x³ + x + 1 has a single real root ≈ −0.6823278.
        let roots = cubic_roots(1.0, 0.0, 1.0, 1.0).unwrap();
        assert_eq!(roots.len(), 1);
        assert!(approx_eq(roots[0], -0.682_327_803_828_019_3, 1e-10, 1e-10));
    }

    #[test]
    fn cubic_triple_root() {
        // (x−2)³ = x³ − 6x² + 12x − 8.
        let roots = cubic_roots(1.0, -6.0, 12.0, -8.0).unwrap();
        assert_eq!(roots.len(), 1);
        assert!(approx_eq(roots[0], 2.0, 1e-7, 1e-7));
    }

    #[test]
    fn cubic_degenerates_to_quadratic() {
        let roots = cubic_roots(0.0, 1.0, -3.0, 2.0).unwrap();
        assert_eq!(roots.len(), 2);
    }

    #[test]
    fn cubic_roots_satisfy_equation() {
        let (a, b, c, d) = (2.0, -3.0, -11.0, 6.0);
        for r in cubic_roots(a, b, c, d).unwrap() {
            let v = a * r * r * r + b * r * r + c * r + d;
            assert!(v.abs() < 1e-8, "residual {v} at root {r}");
        }
    }
}
