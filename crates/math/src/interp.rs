//! Piecewise-linear interpolation over sampled curves.
//!
//! The empirical (“actual”) side of the paper's interval metrics treats the
//! observed monthly series as a piecewise-linear curve; this module holds
//! the shared interpolation helper plus min/argmin utilities used to find
//! the trough time `t_d`.

use crate::MathError;

/// A piecewise-linear interpolant over strictly increasing abscissae.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterp {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterp {
    /// Builds an interpolant from samples.
    ///
    /// # Errors
    ///
    /// * [`MathError::Shape`] when the slices differ in length or have
    ///   fewer than two points.
    /// * [`MathError::Domain`] when `xs` is not strictly increasing or any
    ///   value is non-finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use resilience_math::interp::LinearInterp;
    /// let f = LinearInterp::new(vec![0.0, 1.0, 2.0], vec![0.0, 2.0, 0.0])?;
    /// assert_eq!(f.eval(0.5), 1.0);
    /// # Ok::<(), resilience_math::MathError>(())
    /// ```
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, MathError> {
        if xs.len() != ys.len() {
            return Err(MathError::shape(
                "LinearInterp::new",
                format!("{} abscissae vs {} ordinates", xs.len(), ys.len()),
            ));
        }
        if xs.len() < 2 {
            return Err(MathError::shape(
                "LinearInterp::new",
                "need at least two samples",
            ));
        }
        for w in xs.windows(2) {
            if !(w[1] > w[0]) {
                return Err(MathError::domain(
                    "LinearInterp::new",
                    "abscissae must be strictly increasing",
                ));
            }
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(MathError::domain(
                "LinearInterp::new",
                "samples must be finite",
            ));
        }
        Ok(LinearInterp { xs, ys })
    }

    /// Evaluates the interpolant; clamps outside the sample range
    /// (constant extrapolation).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Binary search for the containing segment.
        let idx = match self.xs.partition_point(|&v| v <= x) {
            0 => 1,
            i => i,
        };
        let (x0, x1) = (self.xs[idx - 1], self.xs[idx]);
        let (y0, y1) = (self.ys[idx - 1], self.ys[idx]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// The sample abscissae.
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The sample ordinates.
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

/// Index of the minimum value (first occurrence). Returns `None` for empty
/// input or when every value is NaN.
///
/// # Examples
///
/// ```
/// use resilience_math::interp::argmin;
/// assert_eq!(argmin(&[3.0, 1.0, 2.0, 1.0]), Some(1));
/// assert_eq!(argmin(&[]), None);
/// ```
#[must_use]
pub fn argmin(values: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the maximum value (first occurrence). Returns `None` for empty
/// input or when every value is NaN.
///
/// # Examples
///
/// ```
/// use resilience_math::interp::argmax;
/// assert_eq!(argmax(&[3.0, 5.0, 2.0]), Some(1));
/// ```
#[must_use]
pub fn argmax(values: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tent() -> LinearInterp {
        LinearInterp::new(vec![0.0, 1.0, 2.0], vec![0.0, 2.0, 0.0]).unwrap()
    }

    #[test]
    fn eval_at_knots() {
        let f = tent();
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(1.0), 2.0);
        assert_eq!(f.eval(2.0), 0.0);
    }

    #[test]
    fn eval_between_knots() {
        let f = tent();
        assert_eq!(f.eval(0.25), 0.5);
        assert_eq!(f.eval(1.5), 1.0);
    }

    #[test]
    fn eval_clamps_outside() {
        let f = tent();
        assert_eq!(f.eval(-5.0), 0.0);
        assert_eq!(f.eval(10.0), 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(LinearInterp::new(vec![0.0], vec![1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterp::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, f64::NAN], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn many_knots_binary_search() {
        let xs: Vec<f64> = (0..=100).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let f = LinearInterp::new(xs, ys).unwrap();
        for &x in &[0.5, 17.25, 50.0, 99.999] {
            assert!((f.eval(x) - (2.0 * x + 1.0)).abs() < 1e-10);
        }
    }

    #[test]
    fn argmin_argmax_basic() {
        let v = [0.99, 0.95, 0.97, 0.95, 1.02];
        assert_eq!(argmin(&v), Some(1), "first trough wins");
        assert_eq!(argmax(&v), Some(4));
    }

    #[test]
    fn argmin_skips_nan() {
        assert_eq!(argmin(&[f64::NAN, 2.0, 1.0]), Some(2));
        assert_eq!(argmin(&[f64::NAN, f64::NAN]), None);
    }
}
