//! Exponential distribution.

use crate::{ContinuousDistribution, StatsError};

/// Exponential distribution with rate `λ > 0`.
///
/// This is the simpler of the two mixture components the paper evaluates
/// (its Eq. 23 with `k = 1`): `F(t) = 1 − e^{−λt}` for `t ≥ 0`.
///
/// # Examples
///
/// ```
/// use resilience_stats::{ContinuousDistribution, Exponential};
/// let e = Exponential::new(0.5)?;
/// assert!((e.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-15);
/// assert_eq!(e.mean(), Some(2.0));
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `rate` is finite
    /// and positive.
    pub fn new(rate: f64) -> Result<Self, StatsError> {
        if !(rate > 0.0) || !rate.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "Exponential",
                param: "rate",
                value: rate,
                constraint: "rate > 0 and finite",
            });
        }
        Ok(Exponential { rate })
    }

    /// Creates the distribution from its mean `1/λ`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `mean` is finite
    /// and positive.
    pub fn from_mean(mean: f64) -> Result<Self, StatsError> {
        if !(mean > 0.0) || !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "Exponential",
                param: "mean",
                value: mean,
                constraint: "mean > 0 and finite",
            });
        }
        Exponential::new(1.0 / mean)
    }

    /// The rate parameter `λ`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDistribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }

    fn survival(&self, x: f64) -> f64 {
        if x < 0.0 {
            1.0
        } else {
            (-self.rate * x).exp()
        }
    }

    fn hazard(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate
        }
    }

    fn cumulative_hazard(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * x
        }
    }

    fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        if !(p > 0.0 && p < 1.0) {
            return Err(StatsError::InvalidProbability {
                what: "Exponential::quantile",
                value: p,
            });
        }
        Ok(-(-p).ln_1p() / self.rate)
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.rate)
    }

    fn variance(&self) -> Option<f64> {
        Some(1.0 / (self.rate * self.rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn from_mean_roundtrip() {
        let e = Exponential::from_mean(4.0).unwrap();
        assert_eq!(e.mean(), Some(4.0));
        assert_eq!(e.rate(), 0.25);
        assert!(Exponential::from_mean(0.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let e = Exponential::new(1.7).unwrap();
        let total =
            resilience_math::quad::adaptive_simpson(|x| e.pdf(x), 0.0, 50.0, 1e-12, 40).unwrap();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_matches_integral_of_pdf() {
        let e = Exponential::new(0.8).unwrap();
        for &x in &[0.5, 1.0, 3.0] {
            let int =
                resilience_math::quad::adaptive_simpson(|t| e.pdf(t), 0.0, x, 1e-12, 40).unwrap();
            assert!((int - e.cdf(x)).abs() < 1e-10);
        }
    }

    #[test]
    fn negative_support_clamps() {
        let e = Exponential::new(1.0).unwrap();
        assert_eq!(e.pdf(-1.0), 0.0);
        assert_eq!(e.cdf(-1.0), 0.0);
        assert_eq!(e.survival(-1.0), 1.0);
        assert_eq!(e.hazard(-1.0), 0.0);
    }

    #[test]
    fn constant_hazard() {
        let e = Exponential::new(2.5).unwrap();
        for &x in &[0.0, 1.0, 10.0] {
            assert_eq!(e.hazard(x), 2.5);
        }
    }

    #[test]
    fn quantile_closed_form() {
        let e = Exponential::new(2.0).unwrap();
        let m = e.quantile(0.5).unwrap();
        assert!((m - 2f64.ln() / 2.0).abs() < 1e-14);
        for &p in &[0.01, 0.25, 0.75, 0.999] {
            assert!((e.cdf(e.quantile(p).unwrap()) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn memorylessness() {
        // S(s + t) = S(s)·S(t).
        let e = Exponential::new(0.3).unwrap();
        let (s, t) = (1.2, 3.4);
        assert!((e.survival(s + t) - e.survival(s) * e.survival(t)).abs() < 1e-14);
    }

    #[test]
    fn moments() {
        let e = Exponential::new(4.0).unwrap();
        assert_eq!(e.mean(), Some(0.25));
        assert_eq!(e.variance(), Some(0.0625));
        assert_eq!(e.std_dev(), Some(0.25));
    }
}
