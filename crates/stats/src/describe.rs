//! Descriptive statistics.
//!
//! These are the building blocks of the paper's goodness-of-fit measures:
//! the naive predictor `R̄(t)` in adjusted R² (its Eq. 11) is a sample
//! mean, and `SSY` is a centered sum of squares.

use crate::StatsError;
use resilience_math::sum::CompensatedSum;

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] for an empty slice.
///
/// # Examples
///
/// ```
/// use resilience_stats::describe::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0])?, 2.0);
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
pub fn mean(values: &[f64]) -> Result<f64, StatsError> {
    if values.is_empty() {
        return Err(StatsError::NotEnoughData {
            what: "mean",
            needed: 1,
            got: 0,
        });
    }
    let s: CompensatedSum = values.iter().copied().collect();
    Ok(s.value() / values.len() as f64)
}

/// Sample variance with Bessel's correction (`n − 1` denominator),
/// computed with a numerically stable two-pass algorithm.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] when fewer than two observations
/// are given.
///
/// # Examples
///
/// ```
/// use resilience_stats::describe::variance;
/// assert_eq!(variance(&[1.0, 2.0, 3.0])?, 1.0);
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
pub fn variance(values: &[f64]) -> Result<f64, StatsError> {
    if values.len() < 2 {
        return Err(StatsError::NotEnoughData {
            what: "variance",
            needed: 2,
            got: values.len(),
        });
    }
    let m = mean(values)?;
    let mut s = CompensatedSum::new();
    for &v in values {
        let d = v - m;
        s.add(d * d);
    }
    Ok(s.value() / (values.len() - 1) as f64)
}

/// Sample standard deviation (Bessel-corrected).
///
/// # Errors
///
/// Same conditions as [`variance`].
pub fn std_dev(values: &[f64]) -> Result<f64, StatsError> {
    Ok(variance(values)?.sqrt())
}

/// Centered sum of squares `Σ (x_i − x̄)²` — the paper's `SSY`.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] for an empty slice.
pub fn centered_sum_of_squares(values: &[f64]) -> Result<f64, StatsError> {
    if values.is_empty() {
        return Err(StatsError::NotEnoughData {
            what: "centered_sum_of_squares",
            needed: 1,
            got: 0,
        });
    }
    let m = mean(values)?;
    let mut s = CompensatedSum::new();
    for &v in values {
        let d = v - m;
        s.add(d * d);
    }
    Ok(s.value())
}

/// Linear-interpolated sample quantile (type-7, the R default) for
/// `q ∈ [0, 1]`.
///
/// # Errors
///
/// * [`StatsError::NotEnoughData`] for an empty slice.
/// * [`StatsError::InvalidProbability`] when `q ∉ [0, 1]`.
/// * [`StatsError::InvalidParameter`] when the data contain NaN.
///
/// # Examples
///
/// ```
/// use resilience_stats::describe::quantile;
/// let q = quantile(&[1.0, 2.0, 3.0, 4.0], 0.5)?;
/// assert_eq!(q, 2.5);
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
pub fn quantile(values: &[f64], q: f64) -> Result<f64, StatsError> {
    if values.is_empty() {
        return Err(StatsError::NotEnoughData {
            what: "quantile",
            needed: 1,
            got: 0,
        });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidProbability {
            what: "quantile",
            value: q,
        });
    }
    if values.iter().any(|v| v.is_nan()) {
        return Err(StatsError::InvalidParameter {
            what: "quantile",
            param: "values",
            value: f64::NAN,
            constraint: "no NaN values",
        });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        return Ok(sorted[lo]);
    }
    let frac = h - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Sample median (50 % quantile).
///
/// # Errors
///
/// Same conditions as [`quantile`].
pub fn median(values: &[f64]) -> Result<f64, StatsError> {
    quantile(values, 0.5)
}

/// Sample skewness (adjusted Fisher–Pearson, `g1` with bias correction).
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] when fewer than three
/// observations are given, and [`StatsError::InvalidParameter`] when the
/// variance is zero.
pub fn skewness(values: &[f64]) -> Result<f64, StatsError> {
    let n = values.len();
    if n < 3 {
        return Err(StatsError::NotEnoughData {
            what: "skewness",
            needed: 3,
            got: n,
        });
    }
    let m = mean(values)?;
    let mut m2 = 0.0;
    let mut m3 = 0.0;
    for &v in values {
        let d = v - m;
        m2 += d * d;
        m3 += d * d * d;
    }
    m2 /= n as f64;
    m3 /= n as f64;
    if m2 == 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "skewness",
            param: "variance",
            value: 0.0,
            constraint: "variance > 0",
        });
    }
    let g1 = m3 / m2.powf(1.5);
    let nf = n as f64;
    Ok(g1 * (nf * (nf - 1.0)).sqrt() / (nf - 2.0))
}

/// Sample excess kurtosis (bias-corrected), 0 for a normal population.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] when fewer than four
/// observations are given, and [`StatsError::InvalidParameter`] when the
/// variance is zero.
pub fn excess_kurtosis(values: &[f64]) -> Result<f64, StatsError> {
    let n = values.len();
    if n < 4 {
        return Err(StatsError::NotEnoughData {
            what: "excess_kurtosis",
            needed: 4,
            got: n,
        });
    }
    let m = mean(values)?;
    let mut m2 = 0.0;
    let mut m4 = 0.0;
    for &v in values {
        let d = v - m;
        let d2 = d * d;
        m2 += d2;
        m4 += d2 * d2;
    }
    let nf = n as f64;
    m2 /= nf;
    m4 /= nf;
    if m2 == 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "excess_kurtosis",
            param: "variance",
            value: 0.0,
            constraint: "variance > 0",
        });
    }
    // Bias-corrected excess kurtosis (the standard G2 estimator).
    let g2 = m4 / (m2 * m2) - 3.0;
    Ok(((nf - 1.0) / ((nf - 2.0) * (nf - 3.0))) * ((nf + 1.0) * g2 + 6.0))
}

/// Lag-`k` sample autocorrelation.
///
/// Useful for inspecting residual structure after a model fit (white
/// residuals ⇒ the model captured the curve's dynamics).
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] when `values.len() <= k + 1` and
/// [`StatsError::InvalidParameter`] when the series is constant.
pub fn autocorrelation(values: &[f64], k: usize) -> Result<f64, StatsError> {
    if values.len() <= k + 1 {
        return Err(StatsError::NotEnoughData {
            what: "autocorrelation",
            needed: k + 2,
            got: values.len(),
        });
    }
    let m = mean(values)?;
    let mut num = 0.0;
    for i in k..values.len() {
        num += (values[i] - m) * (values[i - k] - m);
    }
    let mut den = 0.0;
    for &v in values {
        den += (v - m) * (v - m);
    }
    if den == 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "autocorrelation",
            param: "values",
            value: 0.0,
            constraint: "series must not be constant",
        });
    }
    Ok(num / den)
}

/// Minimum and maximum, ignoring nothing (NaN rejected).
///
/// # Errors
///
/// * [`StatsError::NotEnoughData`] for an empty slice.
/// * [`StatsError::InvalidParameter`] when the data contain NaN.
pub fn min_max(values: &[f64]) -> Result<(f64, f64), StatsError> {
    if values.is_empty() {
        return Err(StatsError::NotEnoughData {
            what: "min_max",
            needed: 1,
            got: 0,
        });
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        if v.is_nan() {
            return Err(StatsError::InvalidParameter {
                what: "min_max",
                param: "values",
                value: f64::NAN,
                constraint: "no NaN values",
            });
        }
        lo = lo.min(v);
        hi = hi.max(v);
    }
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic_and_empty() {
        assert_eq!(mean(&[2.0, 4.0, 6.0]).unwrap(), 4.0);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn mean_is_stable_for_large_offsets() {
        let values: Vec<f64> = (0..1000).map(|i| 1e9 + (i % 7) as f64).collect();
        let m = mean(&values).unwrap();
        let exact = 1e9 + (0..1000).map(|i| (i % 7) as f64).sum::<f64>() / 1000.0;
        assert!((m - exact).abs() < 1e-6);
    }

    #[test]
    fn variance_known_values() {
        assert_eq!(variance(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 5.0 / 3.0);
        assert!(variance(&[1.0]).is_err());
    }

    #[test]
    fn std_dev_is_sqrt_variance() {
        let v = [3.0, 7.0, 7.0, 19.0];
        assert!((std_dev(&v).unwrap() - variance(&v).unwrap().sqrt()).abs() < 1e-15);
    }

    #[test]
    fn centered_ss_matches_variance() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let ssy = centered_sum_of_squares(&v).unwrap();
        assert!((ssy - 3.0 * variance(&v).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn quantile_type7() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&v, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&v, 0.5).unwrap(), 2.5);
        assert_eq!(quantile(&v, 0.25).unwrap(), 1.75);
    }

    #[test]
    fn quantile_rejects_bad_input() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[1.0, f64::NAN], 0.5).is_err());
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
    }

    #[test]
    fn skewness_signs() {
        // Right-skewed data has positive skewness.
        let right = [1.0, 1.0, 1.0, 2.0, 2.0, 10.0];
        assert!(skewness(&right).unwrap() > 0.0);
        let left = [-10.0, -2.0, -2.0, -1.0, -1.0, -1.0];
        assert!(skewness(&left).unwrap() < 0.0);
        // Symmetric data ~ 0.
        let sym = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&sym).unwrap().abs() < 1e-12);
    }

    #[test]
    fn skewness_rejects_constant_and_short() {
        assert!(skewness(&[1.0, 2.0]).is_err());
        assert!(skewness(&[3.0, 3.0, 3.0]).is_err());
    }

    #[test]
    fn kurtosis_signs() {
        // Heavy-tailed data (outliers) ⇒ positive excess kurtosis.
        let heavy = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 10.0, -10.0];
        assert!(excess_kurtosis(&heavy).unwrap() > 1.0);
        // A uniform-ish spread is platykurtic (negative excess).
        let flat: Vec<f64> = (0..20).map(f64::from).collect();
        assert!(excess_kurtosis(&flat).unwrap() < 0.0);
    }

    #[test]
    fn kurtosis_rejects_degenerate() {
        assert!(excess_kurtosis(&[1.0, 2.0, 3.0]).is_err());
        assert!(excess_kurtosis(&[2.0, 2.0, 2.0, 2.0]).is_err());
    }

    #[test]
    fn autocorrelation_of_alternating_series() {
        let v = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        let r1 = autocorrelation(&v, 1).unwrap();
        assert!(
            r1 < -0.8,
            "alternating series has strong negative lag-1: {r1}"
        );
        let r2 = autocorrelation(&v, 2).unwrap();
        assert!(r2 > 0.5);
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let v = [1.0, 3.0, 2.0, 5.0, 4.0];
        assert!((autocorrelation(&v, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_errors() {
        assert!(autocorrelation(&[1.0, 2.0], 1).is_err());
        assert!(autocorrelation(&[2.0, 2.0, 2.0, 2.0], 1).is_err());
    }

    #[test]
    fn min_max_basic() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]).unwrap(), (-1.0, 3.0));
        assert!(min_max(&[]).is_err());
        assert!(min_max(&[1.0, f64::NAN]).is_err());
    }
}
