//! Simple ordinary least squares (one predictor).
//!
//! Used for diagnostics (residual trend checks) and as the reference
//! implementation that the nonlinear LSE pipeline in `resilience-core` is
//! validated against on linear problems.

use crate::StatsError;
use resilience_math::sum::CompensatedSum;

/// Result of a simple linear regression `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleOls {
    /// Estimated intercept.
    pub intercept: f64,
    /// Estimated slope.
    pub slope: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Residual sum of squares.
    pub sse: f64,
    /// Number of observations.
    pub n: usize,
}

impl SimpleOls {
    /// Fits `y = a + b·x` by least squares.
    ///
    /// # Errors
    ///
    /// * [`StatsError::NotEnoughData`] with fewer than two points or
    ///   mismatched lengths.
    /// * [`StatsError::InvalidParameter`] when all `x` are identical (the
    ///   slope is unidentifiable).
    ///
    /// # Examples
    ///
    /// ```
    /// use resilience_stats::ols::SimpleOls;
    /// let x = [0.0, 1.0, 2.0, 3.0];
    /// let y = [1.0, 3.0, 5.0, 7.0];
    /// let fit = SimpleOls::fit(&x, &y)?;
    /// assert!((fit.slope - 2.0).abs() < 1e-12);
    /// assert!((fit.intercept - 1.0).abs() < 1e-12);
    /// assert!((fit.r_squared - 1.0).abs() < 1e-12);
    /// # Ok::<(), resilience_stats::StatsError>(())
    /// ```
    pub fn fit(x: &[f64], y: &[f64]) -> Result<Self, StatsError> {
        if x.len() != y.len() || x.len() < 2 {
            return Err(StatsError::NotEnoughData {
                what: "SimpleOls::fit",
                needed: 2,
                got: x.len().min(y.len()),
            });
        }
        let n = x.len() as f64;
        let mean_x = crate::describe::mean(x)?;
        let mean_y = crate::describe::mean(y)?;
        let mut sxx = CompensatedSum::new();
        let mut sxy = CompensatedSum::new();
        for (&xi, &yi) in x.iter().zip(y) {
            let dx = xi - mean_x;
            sxx.add(dx * dx);
            sxy.add(dx * (yi - mean_y));
        }
        let sxx = sxx.value();
        if sxx == 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "SimpleOls::fit",
                param: "x",
                value: mean_x,
                constraint: "x values must not all be equal",
            });
        }
        let slope = sxy.value() / sxx;
        let intercept = mean_y - slope * mean_x;
        let mut sse = CompensatedSum::new();
        let mut ssy = CompensatedSum::new();
        for (&xi, &yi) in x.iter().zip(y) {
            let resid = yi - (intercept + slope * xi);
            sse.add(resid * resid);
            let dy = yi - mean_y;
            ssy.add(dy * dy);
        }
        let sse = sse.value();
        let ssy = ssy.value();
        let r_squared = if ssy == 0.0 { 1.0 } else { 1.0 - sse / ssy };
        Ok(SimpleOls {
            intercept,
            slope,
            r_squared,
            sse,
            n: n as usize,
        })
    }

    /// Predicts `y` at a new `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        let fit = SimpleOls::fit(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-13);
        assert!(fit.intercept.abs() < 1e-13);
        assert!(fit.sse < 1e-24);
        assert_eq!(fit.n, 3);
    }

    #[test]
    fn noisy_line_r_squared_below_one() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.1, 0.9, 2.2, 2.8, 4.1];
        let fit = SimpleOls::fit(&x, &y).unwrap();
        assert!(fit.r_squared > 0.98 && fit.r_squared < 1.0);
        assert!((fit.slope - 1.0).abs() < 0.1);
    }

    #[test]
    fn constant_y_gives_zero_slope() {
        let x = [0.0, 1.0, 2.0];
        let y = [5.0, 5.0, 5.0];
        let fit = SimpleOls::fit(&x, &y).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0); // degenerate SSY convention
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(SimpleOls::fit(&[1.0], &[1.0]).is_err());
        assert!(SimpleOls::fit(&[1.0, 2.0], &[1.0]).is_err());
        assert!(SimpleOls::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn predict_interpolates() {
        let fit = SimpleOls::fit(&[0.0, 10.0], &[0.0, 20.0]).unwrap();
        assert!((fit.predict(5.0) - 10.0).abs() < 1e-12);
    }
}
