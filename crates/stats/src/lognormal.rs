//! Log-normal distribution.

use crate::{ContinuousDistribution, Normal, StatsError};

/// Log-normal distribution: `ln X ~ N(μ, σ²)`.
///
/// Offered as an *extension* mixture component beyond the paper's
/// Exponential/Weibull pair (DESIGN.md §5) — its long right tail models
/// slow-recovery (“J-shaped”) processes.
///
/// # Examples
///
/// ```
/// use resilience_stats::{ContinuousDistribution, LogNormal};
/// let ln = LogNormal::new(0.0, 1.0)?;
/// // Median is e^μ = 1.
/// assert!((ln.cdf(1.0) - 0.5).abs() < 1e-12);
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    underlying: Normal,
}

impl LogNormal {
    /// Creates a log-normal with log-mean `mu` and log-std-dev `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `sigma` is finite
    /// and positive and `mu` is finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        Ok(LogNormal {
            underlying: Normal::new(mu, sigma)?,
        })
    }

    /// The log-scale mean `μ`.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.underlying.mu()
    }

    /// The log-scale standard deviation `σ`.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.underlying.sigma()
    }
}

impl ContinuousDistribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.underlying.pdf(x.ln()) / x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.underlying.cdf(x.ln())
        }
    }

    fn survival(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            self.underlying.survival(x.ln())
        }
    }

    fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        Ok(self.underlying.quantile(p)?.exp())
    }

    fn mean(&self) -> Option<f64> {
        let s2 = self.sigma() * self.sigma();
        Some((self.mu() + 0.5 * s2).exp())
    }

    fn variance(&self) -> Option<f64> {
        let s2 = self.sigma() * self.sigma();
        Some((s2.exp() - 1.0) * (2.0 * self.mu() + s2).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn support_is_positive_reals() {
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(ln.pdf(-1.0), 0.0);
        assert_eq!(ln.pdf(0.0), 0.0);
        assert_eq!(ln.cdf(0.0), 0.0);
        assert_eq!(ln.survival(-2.0), 1.0);
        assert!(ln.pdf(1.0) > 0.0);
    }

    #[test]
    fn median_is_exp_mu() {
        let ln = LogNormal::new(1.5, 0.8).unwrap();
        assert!((ln.quantile(0.5).unwrap() - 1.5f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let ln = LogNormal::new(0.0, 0.5).unwrap();
        let total =
            resilience_math::quad::adaptive_simpson(|x| ln.pdf(x), 1e-9, 50.0, 1e-11, 45).unwrap();
        assert!((total - 1.0).abs() < 1e-7);
    }

    #[test]
    fn moments_closed_form() {
        let (mu, sigma) = (0.3, 0.6);
        let ln = LogNormal::new(mu, sigma).unwrap();
        let want_mean = (mu + 0.5 * sigma * sigma).exp();
        assert!((ln.mean().unwrap() - want_mean).abs() < 1e-12);
        assert!(ln.variance().unwrap() > 0.0);
    }

    #[test]
    fn quantile_roundtrip() {
        let ln = LogNormal::new(-0.5, 1.2).unwrap();
        for &p in &[0.05, 0.5, 0.95] {
            let x = ln.quantile(p).unwrap();
            assert!((ln.cdf(x) - p).abs() < 1e-10);
        }
    }
}
