//! Gamma distribution.

use crate::{ContinuousDistribution, StatsError};
use resilience_math::special::{ln_gamma, reg_gamma_p, reg_gamma_q};

/// Gamma distribution with shape `k > 0` and rate `θ⁻¹` (i.e. rate
/// parameterization: density `∝ x^{k−1} e^{−rate·x}`).
///
/// Offered as an *extension* mixture component beyond the paper's
/// Exponential/Weibull pair (DESIGN.md §5). With `shape = 1` it reduces to
/// the exponential distribution.
///
/// # Examples
///
/// ```
/// use resilience_stats::{ContinuousDistribution, Gamma};
/// let g = Gamma::new(2.0, 1.0)?;
/// // Mean of Γ(k, rate) is k / rate.
/// assert_eq!(g.mean(), Some(2.0));
/// # Ok::<(), resilience_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    rate: f64,
}

impl Gamma {
    /// Creates a gamma distribution with the given shape and rate.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both parameters are
    /// finite and positive.
    pub fn new(shape: f64, rate: f64) -> Result<Self, StatsError> {
        if !(shape > 0.0) || !shape.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "Gamma",
                param: "shape",
                value: shape,
                constraint: "shape > 0 and finite",
            });
        }
        if !(rate > 0.0) || !rate.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "Gamma",
                param: "rate",
                value: rate,
                constraint: "rate > 0 and finite",
            });
        }
        Ok(Gamma { shape, rate })
    }

    /// The shape parameter `k`.
    #[must_use]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The rate parameter.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDistribution for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return match self.shape.partial_cmp(&1.0) {
                Some(std::cmp::Ordering::Greater) => 0.0,
                Some(std::cmp::Ordering::Equal) => self.rate,
                _ => f64::INFINITY,
            };
        }
        let ln_g = ln_gamma(self.shape).expect("shape validated at construction");
        (self.shape * self.rate.ln() + (self.shape - 1.0) * x.ln() - self.rate * x - ln_g).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_gamma_p(self.shape, self.rate * x).expect("arguments validated")
        }
    }

    fn survival(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            reg_gamma_q(self.shape, self.rate * x).expect("arguments validated")
        }
    }

    fn mean(&self) -> Option<f64> {
        Some(self.shape / self.rate)
    }

    fn variance(&self) -> Option<f64> {
        Some(self.shape / (self.rate * self.rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -1.0).is_err());
        assert!(Gamma::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn reduces_to_exponential_at_shape_one() {
        let g = Gamma::new(1.0, 0.7).unwrap();
        let e = crate::Exponential::new(0.7).unwrap();
        for &x in &[0.0, 0.5, 2.0, 8.0] {
            assert!((g.cdf(x) - e.cdf(x)).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let g = Gamma::new(3.0, 2.0).unwrap();
        let int =
            resilience_math::quad::adaptive_simpson(|x| g.pdf(x), 0.0, 4.0, 1e-12, 40).unwrap();
        assert!((int - g.cdf(4.0)).abs() < 1e-9);
    }

    #[test]
    fn quantile_via_default_numeric_inversion() {
        let g = Gamma::new(2.5, 1.5).unwrap();
        for &p in &[0.1, 0.5, 0.9] {
            let x = g.quantile(p).unwrap();
            assert!((g.cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
    }

    #[test]
    fn erlang_sum_property() {
        // Sum of two Exp(λ) is Γ(2, λ): check CDF against the closed form
        // 1 − e^{−λx}(1 + λx).
        let lam = 1.3;
        let g = Gamma::new(2.0, lam).unwrap();
        for &x in &[0.5, 1.0, 3.0] {
            let want = 1.0 - (-lam * x).exp() * (1.0 + lam * x);
            assert!((g.cdf(x) - want).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn moments() {
        let g = Gamma::new(4.0, 2.0).unwrap();
        assert_eq!(g.mean(), Some(2.0));
        assert_eq!(g.variance(), Some(1.0));
    }

    #[test]
    fn density_at_zero_by_shape() {
        assert_eq!(Gamma::new(2.0, 1.0).unwrap().pdf(0.0), 0.0);
        assert_eq!(Gamma::new(1.0, 3.0).unwrap().pdf(0.0), 3.0);
        assert_eq!(Gamma::new(0.5, 1.0).unwrap().pdf(0.0), f64::INFINITY);
    }
}
